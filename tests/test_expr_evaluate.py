"""Unit tests for numeric expression evaluation."""

from __future__ import annotations

import math

import pytest

from repro.errors import EvaluationError
from repro.expr import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Integral,
    Previous,
    UnaryOp,
    Variable,
    evaluate,
)


class TestArithmetic:
    def test_basic_operations(self):
        x = Variable("x")
        assert evaluate(x + 3, {"x": 2}) == 5.0
        assert evaluate(x - 3, {"x": 2}) == -1.0
        assert evaluate(x * 3, {"x": 2}) == 6.0
        assert evaluate(x / 4, {"x": 2}) == 0.5
        assert evaluate(x ** 3, {"x": 2}) == 8.0

    def test_unary_operators(self):
        assert evaluate(UnaryOp("-", Constant(4))) == -4.0
        assert evaluate(UnaryOp("+", Constant(4))) == 4.0
        assert evaluate(UnaryOp("!", Constant(0))) == 1.0
        assert evaluate(UnaryOp("!", Constant(2))) == 0.0

    def test_comparisons_return_zero_or_one(self):
        assert evaluate(BinaryOp("<", Constant(1), Constant(2))) == 1.0
        assert evaluate(BinaryOp(">=", Constant(1), Constant(2))) == 0.0
        assert evaluate(BinaryOp("==", Constant(3), Constant(3))) == 1.0
        assert evaluate(BinaryOp("!=", Constant(3), Constant(3))) == 0.0

    def test_logical_operators(self):
        assert evaluate(BinaryOp("&&", Constant(1), Constant(2))) == 1.0
        assert evaluate(BinaryOp("&&", Constant(1), Constant(0))) == 0.0
        assert evaluate(BinaryOp("||", Constant(0), Constant(5))) == 1.0

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(BinaryOp("/", Constant(1), Constant(0)))


class TestBindings:
    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError, match="unbound variable"):
            evaluate(Variable("missing"))

    def test_previous_uses_dedicated_mapping(self):
        expr = BinaryOp("+", Previous("x"), Variable("x"))
        assert evaluate(expr, {"x": 1.0}, previous={"x": 10.0}) == 11.0

    def test_previous_falls_back_to_bindings(self):
        assert evaluate(Previous("x"), {"x": 4.0}) == 4.0

    def test_unbound_previous_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(Previous("x"), {}, previous={})


class TestFunctions:
    def test_standard_functions(self):
        assert evaluate(Call("exp", (Constant(0),))) == 1.0
        assert evaluate(Call("sqrt", (Constant(9),))) == 3.0
        assert evaluate(Call("abs", (Constant(-2),))) == 2.0
        assert evaluate(Call("max", (Constant(1), Constant(5)))) == 5.0
        assert evaluate(Call("ln", (Constant(math.e),))) == pytest.approx(1.0)
        assert evaluate(Call("log", (Constant(100),))) == pytest.approx(2.0)

    def test_limexp_is_bounded(self):
        small = evaluate(Call("limexp", (Constant(1.0),)))
        assert small == pytest.approx(math.e)
        huge = evaluate(Call("limexp", (Constant(200.0),)))
        assert math.isfinite(huge)

    def test_custom_function_table(self):
        result = evaluate(Call("sin", (Constant(0.5),)), functions={"sin": lambda v: 42.0})
        assert result == 42.0

    def test_math_domain_error_is_wrapped(self):
        with pytest.raises(EvaluationError):
            evaluate(Call("sqrt", (Constant(-1.0),)))


class TestControlFlowAndOperators:
    def test_conditional_selects_branch(self):
        expr = Conditional(Variable("c"), Constant(1), Constant(2))
        assert evaluate(expr, {"c": 1.0}) == 1.0
        assert evaluate(expr, {"c": 0.0}) == 2.0

    def test_ddt_cannot_be_evaluated(self):
        with pytest.raises(EvaluationError, match="discretise"):
            evaluate(Derivative(Variable("x")), {"x": 1.0})

    def test_idt_cannot_be_evaluated(self):
        with pytest.raises(EvaluationError):
            evaluate(Integral(Variable("x")), {"x": 1.0})
