"""Tests for the Verilog-AMS lexer."""

from __future__ import annotations

import pytest

from repro.errors import VamsLexerError
from repro.vams import parse_number, tokenize
from repro.vams.lexer import EOF, IDENT, KEYWORD, NUMBER, OPERATOR, PUNCT, SYSTEM_IDENT


def kinds(source: str) -> list[str]:
    return [token.kind for token in tokenize(source)]


def values(source: str) -> list[str]:
    return [token.value for token in tokenize(source) if token.kind != EOF]


class TestTokens:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("module foo; endmodule")
        assert [t.kind for t in tokens[:2]] == [KEYWORD, IDENT]
        assert tokens[0].value == "module"

    def test_contribution_operator(self):
        assert "<+" in values("V(out) <+ 1.0;")

    def test_multi_character_operators_are_greedy(self):
        assert values("a <= b == c && d || !e") == [
            "a", "<=", "b", "==", "c", "&&", "d", "||", "!", "e",
        ]

    def test_power_operator(self):
        assert "**" in values("x ** 2")

    def test_system_identifier(self):
        tokens = tokenize("$abstime")
        assert tokens[0].kind == SYSTEM_IDENT
        assert tokens[0].value == "$abstime"

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].value == "hello world"

    def test_punctuation(self):
        assert values("(a, b);") == ["(", "a", ",", "b", ")", ";"]

    def test_assignment_is_an_operator(self):
        tokens = tokenize("x = 1;")
        operator = [t for t in tokens if t.value == "="][0]
        assert operator.kind == OPERATOR

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_terminates(self):
        assert kinds("")[-1] == EOF


class TestCommentsAndDirectives:
    def test_line_comments_are_skipped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comments_are_skipped(self):
        assert values("a /* anything\n at all */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(VamsLexerError):
            tokenize("a /* never closed")

    def test_compiler_directives_are_skipped(self):
        assert values('`include "disciplines.vams"\nmodule') == ["module"]

    def test_unexpected_character_raises(self):
        with pytest.raises(VamsLexerError):
            tokenize("a § b")


class TestNumbers:
    def test_integers_and_floats(self):
        assert [t.value for t in tokenize("42 3.14") if t.kind == NUMBER] == ["42", "3.14"]

    def test_scientific_notation(self):
        assert parse_number("1e-9") == pytest.approx(1e-9)
        assert parse_number("2.5E3") == pytest.approx(2500.0)

    @pytest.mark.parametrize(
        "literal, expected",
        [
            ("5k", 5e3),
            ("25n", 25e-9),
            ("1.6K", 1.6e3),
            ("40p", 40e-12),
            ("3u", 3e-6),
            ("7m", 7e-3),
            ("2M", 2e6),
            ("1G", 1e9),
            ("4f", 4e-15),
        ],
    )
    def test_engineering_scale_factors(self, literal, expected):
        assert parse_number(literal) == pytest.approx(expected)

    def test_scale_factor_tokenised_with_number(self):
        numbers = [t.value for t in tokenize("R = 5k;") if t.kind == NUMBER]
        assert numbers == ["5k"]

    def test_identifier_starting_after_number_not_merged(self):
        # "5kilo" is a number followed by an identifier, not a scaled literal.
        tokens = [t for t in tokenize("5 kilo") if t.kind in (NUMBER, IDENT)]
        assert [t.value for t in tokens] == ["5", "kilo"]
