"""Tests of the fault-campaign engine and detectability analysis.

The layer's guarantees: campaigns expand deterministically (golden runs
first), execute through the platform sweep fan-out with identical outcomes
serial or multiprocess, classify *every* fault into one of the verdicts,
compare against golden runs that are bit-identical to plain platform runs,
and render coverage/collapse reports.  (The fifth verdict, ``lint-rejected``,
needs the opt-in static-analysis gate and is exercised in test_lint.py.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_opamp, build_rc_filter, opamp_benchmark, rc_benchmark
from repro.core import abstract_circuit
from repro.errors import FaultError
from repro.fault import (
    VERDICT_CRASH,
    VERDICT_DETECTED,
    VERDICT_LINT,
    VERDICT_SILENT,
    VERDICT_TRACE,
    VERDICTS,
    AdcStuckBitFault,
    FaultCampaignRunner,
    FaultCampaignSpec,
    InstructionCorruptionFault,
    MemoryBitFlipFault,
    ParameterDriftFault,
    ResistorShortFault,
    analog_fault_universe,
    digital_fault_universe,
)
from repro.sim import SquareWave
from repro.sweep import GridSpec, PlatformScenarioSpec, spawn_seeds
from repro.vp import SmartSystemPlatform, threshold_monitor_source

TIMESTEP = 50e-9
DURATION = 1.2e-4
ACTIVATION = 6e-5
WAVE = {"vin": SquareWave(period=4e-5)}

FIRMWARES = {"threshold": threshold_monitor_source(500)}


def find_poll_loop_address() -> int:
    """An instruction address inside the firmware's busy-poll loop."""
    model = abstract_circuit(build_rc_filter(1), "out", TIMESTEP)
    platform = SmartSystemPlatform(firmware=FIRMWARES["threshold"])
    platform.attach_analog_python(model, WAVE)
    platform.run(10e-6)
    return platform.cpu.pc & ~0x3


class TestFaultCampaignSpec:
    def universe(self):
        return [
            ParameterDriftFault("r1", 1.5),
            AdcStuckBitFault(bit=3),
            MemoryBitFlipFault(bit=0),
        ]

    def test_expansion_golden_first_then_fault_major(self):
        spec = FaultCampaignSpec(
            faults=self.universe(),
            activation_times=(1e-5, 2e-5),
            scenarios=PlatformScenarioSpec(styles=("python", "de")),
        )
        runs = spec.expand()
        assert len(runs) == len(spec) == 2 + 2 * (1 + 2 * 2)
        assert [run.index for run in runs] == list(range(len(runs)))
        assert all(run.golden for run in runs[:2])
        assert not any(run.golden for run in runs[2:])
        # the analog fault expands once per scenario, digital ones per time
        drift_runs = [run for run in runs if run.fault and run.fault.kind == "drift"]
        assert len(drift_runs) == 2
        stuck_runs = [
            run for run in runs if run.fault and run.fault.kind == "adc-stuck"
        ]
        assert sorted({run.at_time for run in stuck_runs}) == [1e-5, 2e-5]

    def test_seeds_come_from_the_shared_helper(self):
        spec = FaultCampaignSpec(faults=self.universe(), seed=42)
        runs = spec.expand()
        assert [run.seed for run in runs] == spawn_seeds(42, len(runs))
        assert len({run.seed for run in runs}) == len(runs)

    def test_validation(self):
        with pytest.raises(FaultError, match="at least one fault"):
            FaultCampaignSpec(faults=[])
        with pytest.raises(FaultError, match="duplicate fault"):
            FaultCampaignSpec(
                faults=[AdcStuckBitFault(bit=3), AdcStuckBitFault(bit=3)]
            )
        with pytest.raises(FaultError, match="non-negative"):
            FaultCampaignSpec(faults=self.universe(), activation_times=(-1.0,))
        with pytest.raises(FaultError, match="activation time"):
            FaultCampaignSpec(faults=self.universe(), activation_times=())

    def test_activation_beyond_duration_rejected(self):
        spec = FaultCampaignSpec(
            faults=[AdcStuckBitFault(bit=3)], activation_times=(1.0,)
        )
        runner = FaultCampaignRunner(rc_benchmark(1).build, "out", WAVE)
        with pytest.raises(FaultError, match="never strike"):
            runner.run(spec, DURATION)

    def test_nrmse_threshold_validated(self):
        with pytest.raises(FaultError):
            FaultCampaignRunner(
                rc_benchmark(1).build, "out", WAVE, nrmse_threshold=0.0
            )


class TestFaultCampaignExecution:
    @pytest.fixture(scope="class")
    def spec(self):
        return FaultCampaignSpec(
            faults=[
                ParameterDriftFault("r1", 1.0 + 1e-9),  # silent anchor
                ParameterDriftFault("r1", 2.0),  # analog divergence
                AdcStuckBitFault(bit=9, stuck_at=1),  # firmware must react
                InstructionCorruptionFault(find_poll_loop_address()),  # crash
                MemoryBitFlipFault(0x8000, 0),  # unused RAM: no effect
                MemoryBitFlipFault(0x8800, 1),  # unused RAM: same outcome
            ],
            activation_times=(ACTIVATION,),
            scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
            seed=3,
        )

    @pytest.fixture(scope="class")
    def result(self, spec):
        runner = FaultCampaignRunner(rc_benchmark(1).build, "out", WAVE)
        return runner.run(spec, DURATION)

    def test_every_fault_is_classified(self, spec, result):
        verdicts = result.verdicts()
        assert len(verdicts) == len(spec) - 1  # one golden run
        assert all(entry.verdict in VERDICTS for entry in verdicts)
        assert sum(result.counts().values()) == len(verdicts)

    def test_all_four_execution_verdict_classes_occur(self, result):
        by_name = {entry.run.fault.name: entry.verdict for entry in result.verdicts()}
        assert by_name["drift:r1x1.000000001"] == VERDICT_SILENT
        assert by_name["drift:r1x2.0"] == VERDICT_TRACE
        assert by_name["adc-stuck1:bit9"] == VERDICT_DETECTED
        assert by_name[f"code-corrupt:{find_poll_loop_address():#x}"] == VERDICT_CRASH
        # lint-rejected only occurs with the lint=True strict gate enabled
        # (see test_lint.py); every execution verdict occurs here.
        assert set(by_name.values()) == set(VERDICTS) - {VERDICT_LINT}

    def test_crash_detail_names_the_cpu_fault(self, result):
        crash = [e for e in result.verdicts() if e.verdict == VERDICT_CRASH]
        assert len(crash) == 1
        assert "CpuFault" in crash[0].detail
        assert crash[0].result.crashed is not None

    def test_golden_run_matches_plain_platform_run(self, result):
        """Acceptance: the zero-fault campaign run is fingerprint-identical
        to a hand-built SmartSystemPlatform simulation."""
        model = abstract_circuit(build_rc_filter(1), "out", TIMESTEP)
        platform = SmartSystemPlatform(
            firmware=FIRMWARES["threshold"], record_analog=True
        )
        platform.attach_analog_python(model, WAVE)
        plain = platform.run(DURATION)
        golden = result.golden_results()[0]
        assert golden.fingerprint() == plain.fingerprint()
        assert golden.analog_trace == plain.analog_trace

    def test_parallel_equals_serial(self, spec, result):
        parallel = FaultCampaignRunner(
            rc_benchmark(1).build, "out", WAVE, workers=2
        ).run(spec, DURATION)
        assert parallel.fingerprints() == result.fingerprints()
        assert [e.verdict for e in parallel.verdicts()] == [
            e.verdict for e in result.verdicts()
        ]

    def test_collapse_groups_indistinguishable_faults(self, result):
        groups = result.collapse()
        assert sum(len(group) for group in groups) == len(result.verdicts())
        largest = groups[0]
        members = {entry.run.fault.name for entry in largest}
        # the two upsets in unused RAM are observationally equivalent
        assert {"mem-flip:0x8000.0", "mem-flip:0x8800.1"} <= members
        assert all(entry.verdict == VERDICT_SILENT for entry in largest)

    def test_reports_render(self, result):
        markdown = result.to_markdown()
        assert "## Verdicts" in markdown
        assert "## Coverage by fault kind" in markdown
        assert "adc-stuck1:bit9" in markdown
        assert f"{100.0 * result.detected_fraction():.1f} %" in markdown
        csv = result.to_csv()
        assert len(csv.splitlines()) == 1 + len(result.verdicts())
        assert csv.splitlines()[0].startswith("#,fault,kind,layer")
        # free-text columns (scenario label, detail) are quoted so grid
        # labels like "r=1k,c=25n" cannot shift the columns
        first_row = csv.splitlines()[1].split(",")
        assert first_row[5].startswith('"')
        header = csv.splitlines()[0].split(",")
        assert header[5] == "scenario" and header[-1] == "detail"

    def test_cli_sentinel_adapts_to_the_circuit(self):
        """The CLI's guaranteed-silent drift targets a real branch of the
        chosen benchmark instead of assuming RC naming."""
        from repro.circuits import build_two_input
        from repro.fault.cli import silent_sentinel

        assert silent_sentinel(build_rc_filter(1)).branch == "r1"
        assert silent_sentinel(build_opamp()).branch == "rb1"
        assert silent_sentinel(build_two_input()).branch is not None

    def test_misapplied_analog_fault_is_captured_as_crash(self):
        """A fault that cannot be applied to the netlist (short on a
        capacitor) is a crash outcome for that run, not a campaign abort."""
        spec = FaultCampaignSpec(
            faults=[ResistorShortFault("c1")],
            scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
        )
        result = FaultCampaignRunner(rc_benchmark(1).build, "out", WAVE).run(
            spec, 2e-5
        )
        (entry,) = result.verdicts()
        assert entry.verdict == VERDICT_CRASH
        assert "FaultError" in entry.detail


class TestAcceptanceCampaign:
    """The 64+-fault acceptance campaign over the RC/OA platform scenarios."""

    @pytest.fixture(scope="class")
    def campaign(self):
        faults = [
            ParameterDriftFault("rb2", 1.0 + 1e-9),
            *analog_fault_universe(build_opamp()),
            *digital_fault_universe(
                adc_bits=tuple(range(12)),
                register_indices=(8, 9, 10, 11, 16, 17, 23, 24),
                memory_bits=(0, 1, 2, 3),
                uart_masks=(0x20, 0x01),
            ),
        ]
        spec = FaultCampaignSpec(
            faults=faults,
            activation_times=(1e-5,),
            scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
            seed=11,
        )
        runner = FaultCampaignRunner(opamp_benchmark().build, "out", WAVE)
        return spec, runner

    def test_campaign_is_large_enough(self, campaign):
        spec, _ = campaign
        assert len(spec.faults) >= 64

    @pytest.fixture(scope="class")
    def serial_result(self, campaign):
        spec, runner = campaign
        return runner.run(spec, 2e-5)

    def test_every_fault_classified_and_counted(self, campaign, serial_result):
        spec, _ = campaign
        assert len(serial_result.verdicts()) == len(spec.faults)
        counts = serial_result.counts()
        assert sum(counts.values()) == len(spec.faults)
        assert counts[VERDICT_SILENT] >= 1
        assert sum(counts[v] for v in VERDICTS if v != VERDICT_SILENT) >= 1
        assert 0.0 <= serial_result.detected_fraction() <= 1.0

    def test_multiprocessing_path_matches_serial(self, campaign, serial_result):
        spec, _ = campaign
        parallel = FaultCampaignRunner(
            opamp_benchmark().build, "out", WAVE, workers=3
        ).run(spec, 2e-5)
        assert parallel.workers > 1
        assert parallel.fingerprints() == serial_result.fingerprints()

    def test_coverage_report_emits(self, serial_result):
        matrix = serial_result.coverage_matrix()
        assert set(matrix) >= {"drift", "open", "short", "adc-stuck"}
        for row in matrix.values():
            assert set(row) == set(VERDICTS)
        markdown = serial_result.to_markdown()
        assert "faulted runs" in markdown
        csv = serial_result.to_csv()
        assert len(csv.splitlines()) == 1 + len(serial_result.verdicts())
