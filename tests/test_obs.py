"""Tests of the observability subsystem (``repro.obs``).

The layer's guarantees: instrumentation is inert while tracing is disabled
(bit-identical sweep fingerprints, counters untouched), enabled tracing
yields counters that reconcile *exactly* with the result counters — serial
and multiprocess alike — and the exporters emit valid Chrome ``trace_event``
JSON that round-trips through the ``repro-trace`` CLI.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.circuits import build_rc_filter, rc_benchmark
from repro.fault import (
    AdcStuckBitFault,
    FaultCampaignRunner,
    FaultCampaignSpec,
    MemoryBitFlipFault,
    ParameterDriftFault,
)
from repro.obs import (
    TRACER,
    ProgressReporter,
    TelemetryReport,
    Tracer,
    disable_tracing,
    enable_tracing,
    tracing_enabled,
)
from repro.obs.cli import main as trace_main
from repro.obs.export import (
    counters_from_trace,
    to_trace_events,
    validate_trace_events,
    write_trace_json,
)
from repro.sim import SquareWave
from repro.sweep import (
    GridSpec,
    MonteCarloSpec,
    PlatformScenarioSpec,
    PlatformSweepRunner,
    SweepRunner,
)
from repro.vp import averaging_monitor_source, threshold_monitor_source

TIMESTEP = 50e-9
SHORT = 20e-6
WAVE = {"vin": SquareWave(period=8e-6)}


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Every test starts and ends with the process-wide tracer disabled."""
    disable_tracing()
    TRACER.reset()
    yield
    disable_tracing()
    TRACER.reset()


def platform_runner(**kwargs) -> PlatformSweepRunner:
    kwargs.setdefault("timestep", TIMESTEP)
    return PlatformSweepRunner(build_rc_filter, "out", WAVE, **kwargs)


def single_scenario_spec() -> PlatformScenarioSpec:
    return PlatformScenarioSpec(
        parameters=GridSpec(axes={}, base={"order": 1}),
        firmwares={"threshold": threshold_monitor_source(500)},
    )


def sixteen_scenario_spec() -> PlatformScenarioSpec:
    """2 resistances x 2 capacitances x 2 styles x 2 firmwares = 16."""
    return PlatformScenarioSpec(
        parameters=GridSpec(
            axes={"resistance": [4e3, 6e3], "capacitance": [20e-9, 30e-9]},
            base={"order": 1},
        ),
        styles=("python", "de"),
        firmwares={
            "threshold": threshold_monitor_source(500),
            "averaging": averaging_monitor_source(4),
        },
    )


class TestTracer:
    def test_disabled_by_default_and_inert(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.add("x")
        tracer.complete("span", 0.0, 1.0)
        tracer.instant("point")
        with tracer.span("ctx"):
            pass
        assert tracer.events == [] and tracer.counters == {}

    def test_enable_disable_round_trip(self):
        assert not tracing_enabled()
        enable_tracing()
        assert tracing_enabled() and TRACER.enabled
        disable_tracing()
        assert not tracing_enabled()

    def test_records_spans_instants_and_counters(self):
        tracer = Tracer()
        tracer.enabled = True
        start = tracer.now()
        tracer.complete("work", start, 0.25, "cat", detail=3)
        tracer.instant("tick", "cat")
        tracer.add("n", 2.0)
        tracer.add("n")
        assert tracer.counters == {"n": 3.0}
        phases = [event[0] for event in tracer.events]
        assert phases == ["X", "i"]
        name, args = tracer.events[0][1], tracer.events[0][5]
        assert name == "work" and args == {"detail": 3}
        assert tracer.events[0][4] == 0.25  # duration seconds

    def test_end_measures_elapsed_time(self):
        tracer = Tracer()
        tracer.enabled = True
        start = tracer.now()
        tracer.end("span", start)
        duration = tracer.events[0][4]
        assert duration >= 0.0

    def test_mark_collect_returns_only_the_delta(self):
        tracer = Tracer()
        tracer.enabled = True
        tracer.add("runs", 5.0)
        tracer.instant("before")
        mark = tracer.mark()
        tracer.add("runs", 2.0)
        tracer.instant("after")
        payload = tracer.collect(mark)
        assert payload["counters"] == {"runs": 2.0}
        assert [event[1] for event in payload["events"]] == ["after"]
        assert isinstance(payload["pid"], int)

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        tracer.enabled = True
        for index in range(5):
            tracer.instant(f"e{index}")
        assert len(tracer.events) == 2 and tracer.dropped == 3
        assert tracer.collect()["dropped"] == 3
        tracer.reset()
        assert tracer.events == [] and tracer.dropped == 0


class TestTelemetryReport:
    def payload(self, pid: int = 1) -> dict:
        tracer = Tracer()
        tracer.enabled = True
        tracer.add("platform.runs", 2.0)
        tracer.complete("platform.run", tracer.now(), 0.01, "platform")
        payload = tracer.collect()
        payload["pid"] = pid
        return payload

    def test_merge_sums_counters_and_orders_events(self):
        report = TelemetryReport.merge(
            "test",
            [self.payload(1), self.payload(2), None],
            scenarios=5,
            executed=4,
            wall=1.0,
            workers=2,
        )
        assert report.counters == {"platform.runs": 4.0}
        assert report.loaded == 1
        assert len(report.events) == 2
        timestamps = [event["ts"] for event in report.events]
        assert timestamps == sorted(timestamps)
        assert report.throughput == 4.0

    def test_percentiles_and_utilization(self):
        report = TelemetryReport.merge(
            "test",
            [self.payload()],
            scenarios=4,
            executed=4,
            wall=2.0,
            workers=2,
            latencies=np.array([1.0, 1.0, 1.0, 1.0]),
        )
        stats = report.latency_percentiles()
        assert stats["p50"] == stats["max"] == 1.0
        assert report.worker_utilization == 1.0
        assert "worker_utilization" in report.summary()

    def test_markdown_report_names_the_engine_and_counters(self):
        report = TelemetryReport.merge(
            "platform-sweep", [self.payload()], scenarios=2, executed=2, wall=0.5,
            workers=1,
        )
        text = report.to_markdown()
        assert "platform-sweep" in text and "platform.runs" in text


class TestExport:
    def report(self) -> TelemetryReport:
        tracer = Tracer()
        tracer.enabled = True
        start = tracer.now()
        tracer.complete("platform.run", start, 0.01, "platform", style="python")
        tracer.instant("marker", "platform")
        tracer.add("platform.runs", 3.0)
        return TelemetryReport.merge(
            "unit", [tracer.collect()], scenarios=3, executed=3, wall=0.1, workers=1
        )

    def test_trace_events_validate_and_recover_counters(self):
        payload = to_trace_events(self.report())
        assert validate_trace_events(payload) == []
        assert counters_from_trace(payload) == {"platform.runs": 3.0}
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert {"X", "i", "C", "M"} <= phases
        assert payload["metadata"]["repro"]["engine"] == "unit"

    def test_validation_flags_schema_violations(self):
        assert validate_trace_events({"traceEvents": [{"ph": "X", "name": "a"}]})
        assert validate_trace_events([{"ph": "?", "name": "a", "ts": 0, "pid": 1, "tid": 1}])
        assert validate_trace_events("nonsense")

    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace_json(path, self.report())
        payload = json.loads(path.read_text())
        assert validate_trace_events(payload) == []

    def test_validation_edge_cases_name_the_offending_event(self):
        def problems(event) -> str:
            return "\n".join(validate_trace_events([event]))

        # unknown phase
        assert "invalid phase 'Z'" in problems(
            {"ph": "Z", "name": "a", "ts": 0, "pid": 1, "tid": 1}
        )
        # negative timestamp
        assert "'ts' must be a non-negative number" in problems(
            {"ph": "i", "name": "a", "ts": -1.0, "pid": 1, "tid": 1}
        )
        # missing timestamp
        assert "'ts' must be a non-negative number" in problems(
            {"ph": "i", "name": "a", "pid": 1, "tid": 1}
        )
        # non-dict event names its index
        report = validate_trace_events([{"ph": "i", "name": "a", "ts": 0}, "junk"])
        assert any("event[1]: not an object" in problem for problem in report)
        # non-integer pid/tid
        assert "'pid' must be an integer" in problems(
            {"ph": "i", "name": "a", "ts": 0, "pid": "one"}
        )
        # complete event without a duration
        assert "non-negative 'dur'" in problems(
            {"ph": "X", "name": "a", "ts": 0, "pid": 1, "tid": 1}
        )
        # counter without args
        assert "needs an 'args' object" in problems(
            {"ph": "C", "name": "a", "ts": 0, "pid": 1, "tid": 1}
        )

    def test_truncation_warning_in_markdown_and_html(self):
        from dataclasses import replace

        from repro.obs.export import to_html

        complete = self.report()
        assert "truncated" not in complete.to_markdown()
        assert "truncated" not in to_html(complete)
        truncated = replace(complete, dropped=41)
        for text in (truncated.to_markdown(), to_html(truncated)):
            assert "WARNING — telemetry truncated" in text
            assert "41 event(s)" in text
            assert "max_events" in text

    def test_report_round_trips_through_trace_export(self):
        from repro.obs.export import report_from_trace

        original = self.report()
        recovered = report_from_trace(to_trace_events(original))
        assert recovered.engine == original.engine
        assert recovered.executed == original.executed
        assert recovered.counters == original.counters
        assert len(recovered.events) == len(original.events)
        assert recovered.span_stats().keys() == original.span_stats().keys()
        # durations survive the µs round-trip to within rounding
        assert recovered.span_stats()["platform.run"]["total"] == pytest.approx(
            original.span_stats()["platform.run"]["total"], abs=1e-6
        )

    def test_report_round_trips_through_jsonl(self):
        from repro.obs.export import report_from_jsonl, to_jsonl

        original = self.report()
        recovered = report_from_jsonl(to_jsonl(original))
        assert recovered.engine == original.engine
        assert recovered.counters == original.counters
        assert recovered.span_stats() == original.span_stats()
        assert recovered.dropped == original.dropped


class TestZeroOverheadGuarantee:
    def test_cross_engine_matrix_unchanged_by_tracing(self):
        """Scalar and vectorized analog backends agree, traced or not."""
        spec = MonteCarloSpec(
            nominal={"order": 1, "resistance": 5e3, "capacitance": 25e-9},
            tolerances={"resistance": 0.05},
            samples=4,
            seed=7,
        )

        def outputs(backend: str, trace: bool) -> np.ndarray:
            runner = SweepRunner(
                build_rc_filter, "out", stimuli=WAVE, timestep=TIMESTEP,
                backend=backend, trace=trace,
            )
            return runner.run(spec, SHORT).ensemble("V(out)")

        plain = {backend: outputs(backend, False) for backend in ("python", "numpy")}
        traced = {backend: outputs(backend, True) for backend in ("python", "numpy")}
        for backend in ("python", "numpy"):
            # tracing is pure observation: bit-identical waveforms
            assert np.array_equal(plain[backend], traced[backend])
        np.testing.assert_allclose(
            plain["python"], plain["numpy"], rtol=1e-9, atol=1e-12
        )

    def test_sixteen_scenario_sweep_fingerprints_are_trace_invariant(self):
        spec = sixteen_scenario_spec()
        assert len(spec) == 16
        plain = platform_runner(trace=False).run(spec, SHORT)
        traced = platform_runner(trace=True).run(spec, SHORT)
        assert plain.fingerprints() == traced.fingerprints()
        assert plain.telemetry is None

    def test_global_tracer_untouched_by_untraced_runs(self):
        platform_runner().run(single_scenario_spec(), SHORT)
        assert TRACER.events == [] and TRACER.counters == {}


class TestCounterReconciliation:
    def test_platform_sweep_counters_match_results(self):
        spec = sixteen_scenario_spec()
        result = platform_runner(trace=True).run(spec, SHORT)
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.counters["platform.runs"] == result.executed_count == 16
        assert telemetry.counters["de.runs"] == 16.0
        total_instructions = sum(r.instructions for r in result.results)
        assert telemetry.counters["platform.instructions"] == total_instructions
        assert telemetry.executed == 16 and telemetry.scenarios == 16
        assert telemetry.latency_percentiles()["max"] > 0.0

    def test_analog_sweep_counters_match_results(self):
        spec = MonteCarloSpec(
            nominal={"order": 1, "resistance": 5e3, "capacitance": 25e-9},
            tolerances={"resistance": 0.05},
            samples=6,
            seed=3,
        )
        result = SweepRunner(
            build_rc_filter, "out", stimuli=WAVE, timestep=TIMESTEP, trace=True
        ).run(spec, SHORT)
        assert result.telemetry is not None
        assert result.telemetry.counters["sweep.scenarios"] == result.executed_count

    def test_multiprocess_fault_campaign_reconciles_exactly(self):
        """The acceptance criterion: merged worker telemetry == result counts."""
        spec = FaultCampaignSpec(
            faults=[
                ParameterDriftFault("r1", 1.0 + 1e-9),
                ParameterDriftFault("r1", 2.0),
                AdcStuckBitFault(bit=9, stuck_at=1),
                MemoryBitFlipFault(bit=0),
            ],
            activation_times=(SHORT / 2.0,),
            scenarios=PlatformScenarioSpec(
                styles=("python",),
                firmwares={"threshold": threshold_monitor_source(500)},
            ),
        )
        bench = rc_benchmark(1)
        runner = FaultCampaignRunner(
            bench.build, "out", WAVE, workers=2, trace=True, progress=False
        )
        result = runner.run(spec, SHORT)
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.engine == "fault-campaign"
        assert telemetry.counters["platform.runs"] == result.executed_count
        assert result.executed_count == result.n_runs == len(spec)
        assert telemetry.counters["de.runs"] == result.n_runs
        # worker payloads arrived from more than one process
        assert len({event["pid"] for event in telemetry.events}) >= 1
        payload = to_trace_events(telemetry)
        assert validate_trace_events(payload) == []
        assert counters_from_trace(payload)["platform.runs"] == result.n_runs
        # the parent process tracer saw nothing: collection is worker-local
        assert TRACER.events == [] and TRACER.counters == {}


class TestProgressReporter:
    def test_renders_progress_and_final_newline(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            4, "units", enabled=True, stream=stream, min_interval=0.0
        )
        assert reporter.active
        reporter.advance(1)
        reporter.advance(3)
        reporter.finish()
        text = stream.getvalue()
        assert "units" in text and "4/4" in text and text.endswith("\n")

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(4, "units", enabled=False, stream=stream)
        assert not reporter.active
        reporter.advance(4)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_default_follows_stream_tty(self):
        reporter = ProgressReporter(1, "units", stream=io.StringIO())
        assert not reporter.active  # StringIO is not a terminal


class TestTraceCli:
    def exported(self, tmp_path):
        result = platform_runner(trace=True).run(single_scenario_spec(), SHORT)
        path = tmp_path / "trace.json"
        write_trace_json(path, result.telemetry)
        return path

    def test_round_trip_validates_and_reconciles(self, tmp_path, capsys):
        path = self.exported(tmp_path)
        jsonl = tmp_path / "events.jsonl"
        status = trace_main(
            [
                str(path),
                "--validate",
                "--expect-counter",
                "platform.runs=1",
                "--jsonl",
                str(jsonl),
            ]
        )
        captured = capsys.readouterr()
        assert status == 0
        assert "trace_event schema: OK" in captured.out
        assert "platform.runs = 1: OK" in captured.out
        lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert any(event.get("name") == "platform.run" for event in lines)

    def test_counter_mismatch_exits_one(self, tmp_path, capsys):
        path = self.exported(tmp_path)
        status = trace_main([str(path), "--quiet", "--expect-counter", "platform.runs=99"])
        assert status == 1
        assert "COUNTER MISMATCH" in capsys.readouterr().err

    def test_invalid_payload_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "X", "name": "a"}]}))
        status = trace_main([str(path), "--quiet", "--validate"])
        assert status == 2
        assert "INVALID" in capsys.readouterr().err


class TestBenchmarkProvenance:
    def test_environment_meta_carries_git_identity(self):
        from repro.perf.baseline import BenchmarkRecord, git_identity

        meta = BenchmarkRecord.environment_meta()
        assert "git_commit" in meta and "git_dirty" in meta
        commit, dirty = git_identity()
        # This test runs from a git checkout, so the identity must resolve;
        # the cached lookup and the meta must agree.
        assert meta["git_commit"] == commit
        assert meta["git_dirty"] == dirty
        if commit is not None:
            assert len(commit) == 40 and isinstance(dirty, bool)
