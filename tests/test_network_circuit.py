"""Tests for the circuit container, components and topology graph."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network import (
    Capacitor,
    Circuit,
    CircuitGraph,
    Resistor,
    VoltageSource,
    count_state_variables,
)


class TestCircuitConstruction:
    def test_auto_naming_by_type(self):
        circuit = Circuit("c")
        first = circuit.add_resistor("a", "b", 100.0)
        second = circuit.add_resistor("b", "gnd", 200.0)
        assert (first.name, second.name) == ("R1", "R2")

    def test_duplicate_branch_name_rejected(self):
        circuit = Circuit("c")
        circuit.add_resistor("a", "gnd", 100.0, name="R1")
        with pytest.raises(TopologyError):
            circuit.add_resistor("a", "gnd", 100.0, name="R1")

    def test_self_loop_rejected(self):
        circuit = Circuit("c")
        with pytest.raises(TopologyError):
            circuit.add_resistor("a", "a", 100.0)

    def test_component_value_validation(self):
        with pytest.raises(ValueError):
            Resistor(-1.0)
        with pytest.raises(ValueError):
            Capacitor(0.0)

    def test_branches_at_and_other_end(self):
        circuit = Circuit("c")
        branch = circuit.add_resistor("a", "b", 1.0)
        assert circuit.branches_at("a") == [branch]
        assert branch.other_end("a") == "b"
        with pytest.raises(TopologyError):
            branch.other_end("zz")

    def test_input_names_in_order(self):
        circuit = Circuit("c")
        circuit.add_voltage_source("a", "gnd", input_signal="u1")
        circuit.add_voltage_source("b", "gnd", input_signal="u2")
        circuit.add_resistor("a", "b", 1.0)
        assert circuit.input_names() == ["u1", "u2"]

    def test_count_state_variables(self, rc3_circuit):
        assert count_state_variables(rc3_circuit) == 3


class TestValidation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(TopologyError):
            Circuit("c").validate()

    def test_floating_section_rejected(self):
        circuit = Circuit("c")
        circuit.add_resistor("a", "gnd", 1.0)
        circuit.add_resistor("x", "y", 1.0)  # not connected to ground
        with pytest.raises(TopologyError, match="not connected"):
            circuit.validate()

    def test_missing_ground_rejected(self):
        circuit = Circuit("c")
        circuit.add_resistor("a", "b", 1.0)
        with pytest.raises(TopologyError):
            circuit.validate()

    def test_valid_circuit_passes(self, rc1_circuit):
        rc1_circuit.validate()


class TestDipoleEquations:
    def test_resistor_equation_shape(self):
        circuit = Circuit("c")
        circuit.add_voltage_source("a", "gnd", input_signal="u")
        circuit.add_resistor("a", "gnd", 50.0, name="R1")
        equations = {eq.name: str(eq) for eq in circuit.dipole_equations()}
        assert equations["dipole:R1"] == "V(a) - 0 = 50 * I(R1)"

    def test_capacitor_equation_has_ddt(self):
        circuit = Circuit("c")
        circuit.add_voltage_source("a", "gnd", input_signal="u")
        circuit.add_capacitor("a", "gnd", 1e-9, name="C1")
        cap = [eq for eq in circuit.dipole_equations() if eq.name == "dipole:C1"][0]
        assert cap.has_derivative()

    def test_source_equation_references_input(self):
        circuit = Circuit("c")
        circuit.add_voltage_source("a", "gnd", input_signal="u", name="V1")
        circuit.add_resistor("a", "gnd", 1.0)
        source = [eq for eq in circuit.dipole_equations() if eq.name == "dipole:V1"][0]
        assert "u" in source.variables()


class TestGraph:
    def test_counts(self, rc3_circuit):
        graph = CircuitGraph(rc3_circuit)
        assert graph.node_count == 5  # gnd, vin, n1, n2, out
        assert graph.branch_count == 7  # source + 3 R + 3 C
        assert graph.mesh_count() == 3

    def test_spanning_tree_reaches_every_node(self, rc3_circuit):
        graph = CircuitGraph(rc3_circuit)
        tree = graph.spanning_tree()
        assert set(tree) == set(rc3_circuit.node_names())
        assert tree[rc3_circuit.ground] is None

    def test_chords_plus_tree_is_everything(self, rc3_circuit):
        graph = CircuitGraph(rc3_circuit)
        tree = graph.tree_branches()
        chords = {branch.name for branch in graph.chords()}
        assert tree | chords == set(rc3_circuit.branch_names())
        assert not tree & chords

    def test_fundamental_loops_one_per_chord(self, rc3_circuit):
        graph = CircuitGraph(rc3_circuit)
        loops = graph.fundamental_loops()
        assert len(loops) == graph.mesh_count()
        for loop in loops:
            # Every loop is a closed walk: each node is entered and left.
            assert len(loop.edges) >= 2

    def test_loop_orientation_sums_to_zero(self, rc3_circuit):
        """Traversing a fundamental loop must return to the starting node."""
        graph = CircuitGraph(rc3_circuit)
        for loop in graph.fundamental_loops():
            balance: dict[str, int] = {}
            for edge in loop.edges:
                branch = rc3_circuit.branch(edge.branch)
                start, end = (
                    (branch.positive, branch.negative)
                    if edge.forward
                    else (branch.negative, branch.positive)
                )
                balance[start] = balance.get(start, 0) + 1
                balance[end] = balance.get(end, 0) - 1
            assert all(value == 0 for value in balance.values())

    def test_reachability(self, rc1_circuit):
        graph = CircuitGraph(rc1_circuit)
        assert graph.reachable_from("gnd") == set(rc1_circuit.node_names())
        with pytest.raises(TopologyError):
            graph.reachable_from("nope")

    def test_degree_and_neighbours(self, rc1_circuit):
        graph = CircuitGraph(rc1_circuit)
        assert graph.degree("out") == 2
        assert set(graph.neighbours("out")) == {"vin", "gnd"}
