"""Tests for the peripherals, the APB bus and the complete virtual platform."""

from __future__ import annotations

import pytest

from repro.core import abstract_circuit
from repro.errors import BusError, PlatformError
from repro.sim import SquareWave
from repro.vp import (
    ADC_BASE,
    AdcBridge,
    ApbBus,
    SmartSystemPlatform,
    UART_BASE,
    Uart,
    averaging_monitor_source,
    threshold_monitor_source,
)
from repro.vp.adc_bridge import DATA, SAMPLE_COUNT, STATUS, STATUS_VALID
from repro.vp.uart import STATUS_TX_READY, TX_DATA
from repro.vp.uart import STATUS as UART_STATUS

DT = 50e-9


class TestPeripherals:
    def test_uart_transmit_log(self):
        uart = Uart()
        assert uart.read_register(UART_STATUS) & STATUS_TX_READY
        uart.write_register(TX_DATA, ord("H"))
        uart.write_register(TX_DATA, ord("i"))
        assert uart.output_text() == "Hi"
        assert uart.tx_count == 2

    def test_uart_receive_queue(self):
        uart = Uart()
        uart.receive("ok")
        assert uart.read_register(UART_STATUS) & 0x2
        assert uart.read_register(0x08) == ord("o")
        assert uart.read_register(0x08) == ord("k")
        assert not uart.read_register(UART_STATUS) & 0x2

    def test_adc_bridge_scaling_and_status(self):
        adc = AdcBridge()
        assert not adc.read_register(STATUS) & STATUS_VALID
        adc.push_sample(0.75)
        assert adc.read_register(STATUS) & STATUS_VALID
        assert adc.read_register(DATA) == 750
        assert adc.read_register(SAMPLE_COUNT) == 1
        adc.push_sample(-0.5)
        assert adc.read_register(DATA) == (-500) & 0xFFFFFFFF

    def test_apb_decoding_and_statistics(self):
        bus = ApbBus()
        uart = Uart()
        adc = AdcBridge()
        bus.attach("uart0", UART_BASE, uart)
        bus.attach("adc0", ADC_BASE, adc)
        bus.write(UART_BASE + TX_DATA, ord("x"))
        adc.push_sample(1.0)
        assert bus.read(ADC_BASE + DATA) == 1000
        assert bus.transaction_count == 2
        assert bus.cycles == 2 * ApbBus.CYCLES_PER_TRANSFER
        assert set(bus.peripherals()) == {"uart0", "adc0"}

    def test_apb_errors(self):
        bus = ApbBus()
        bus.attach("uart0", UART_BASE, Uart())
        with pytest.raises(BusError):
            bus.read(UART_BASE + 0x10_0000)
        with pytest.raises(BusError):
            bus.attach("overlap", UART_BASE + 4, AdcBridge())


@pytest.fixture(scope="module")
def rc1_compiled():
    from repro.circuits import build_rc_filter

    return abstract_circuit(build_rc_filter(1), "out", DT)


class TestSmartSystemPlatform:
    def test_run_requires_analog(self):
        platform = SmartSystemPlatform()
        with pytest.raises(PlatformError):
            platform.run(1e-6)

    def test_double_attach_rejected(self, rc1_compiled):
        platform = SmartSystemPlatform()
        stimuli = {"vin": SquareWave()}
        platform.attach_analog_python(rc1_compiled, stimuli)
        with pytest.raises(PlatformError):
            platform.attach_analog_python(rc1_compiled, stimuli)

    def test_threshold_firmware_reports_crossings(self, rc1_compiled):
        # A fast square wave so that several threshold crossings happen in a
        # short simulated time window.
        # With a 40 us square wave and tau = 125 us the output swings roughly
        # between 70 mV and 150 mV, so a 100 mV threshold is crossed twice per
        # period.
        stimuli = {"vin": SquareWave(period=40e-6)}
        platform = SmartSystemPlatform(firmware=threshold_monitor_source(100))
        platform.attach_analog_python(rc1_compiled, stimuli)
        result = platform.run(200e-6)
        assert result.analog_samples == 4000
        assert result.instructions > 1000
        assert result.crossings_reported >= 2
        assert set(result.uart_output) <= {"H", "L"}
        assert result.uart_output.count("H") >= 1

    def test_all_integration_styles_agree_on_software_behaviour(self, rc1_compiled):
        from repro.circuits import build_rc_filter

        stimuli = {"vin": SquareWave(period=40e-6)}
        duration = 120e-6
        observed = {}
        for style in ("python", "de", "tdf", "eln"):
            platform = SmartSystemPlatform()
            if style == "python":
                platform.attach_analog_python(rc1_compiled, stimuli)
            elif style == "de":
                platform.attach_analog_de(rc1_compiled, stimuli)
            elif style == "tdf":
                platform.attach_analog_tdf(rc1_compiled, stimuli)
            else:
                platform.attach_analog_eln(build_rc_filter(1), stimuli, "V(out)")
            result = platform.run(duration)
            observed[style] = (result.uart_output, result.crossings_reported)
        assert len(set(observed.values())) == 1, observed

    def test_cosim_style_runs(self, rc1_compiled):
        from repro.circuits import build_rc_filter

        stimuli = {"vin": SquareWave(period=40e-6)}
        platform = SmartSystemPlatform()
        platform.attach_analog_cosim(build_rc_filter(1), stimuli, "V(out)")
        result = platform.run(60e-6)
        assert result.analog_style == "verilog_ams_cosim"
        assert result.analog_samples > 0

    def test_averaging_firmware_streams_bytes(self, rc1_compiled):
        platform = SmartSystemPlatform(firmware=averaging_monitor_source())
        platform.attach_analog_python(rc1_compiled, {"vin": SquareWave(period=40e-6)})
        result = platform.run(100e-6)
        assert len(result.uart_output) > 5

    @pytest.mark.parametrize("style", ["python", "de", "tdf", "eln", "cosim"])
    def test_block_stepping_fingerprint_identical_per_style(self, rc1_compiled, style):
        """Block-stepped CPU scheduling is timing-equivalent to per-tick.

        For every analog integration style the software-visible outcome
        (:meth:`PlatformRunResult.fingerprint`) *and* the recorded ADC sample
        stream must be bit-identical whether the CPU advances one instruction
        per kernel event or in blocks — including an odd block size that
        never divides the peripheral-access pattern evenly.
        """
        from repro.circuits import build_rc_filter

        duration = 60e-6 if style == "cosim" else 120e-6
        outcomes = []
        for block in (1, 7, 256):
            stimuli = {"vin": SquareWave(period=40e-6)}
            platform = SmartSystemPlatform(
                firmware=threshold_monitor_source(100),
                cpu_block_cycles=block,
                record_analog=True,
            )
            if style in ("python", "de", "tdf"):
                platform.attach_analog(style, stimuli, model=rc1_compiled)
            else:
                platform.attach_analog(
                    style, stimuli, circuit=build_rc_filter(1), output="V(out)"
                )
            result = platform.run(duration)
            outcomes.append((result.fingerprint(), tuple(result.analog_trace)))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_cpu_block_cycles_must_be_positive(self):
        with pytest.raises(ValueError):
            SmartSystemPlatform(cpu_block_cycles=0)

    def test_cpu_clock_controls_instruction_count(self, rc1_compiled):
        stimuli = {"vin": SquareWave(period=40e-6)}
        fast = SmartSystemPlatform(cpu_clock_hz=20e6)
        fast.attach_analog_python(rc1_compiled, stimuli)
        slow = SmartSystemPlatform(cpu_clock_hz=5e6)
        slow.attach_analog_python(rc1_compiled, stimuli)
        duration = 50e-6
        assert fast.run(duration).instructions > slow.run(duration).instructions
