"""Resume correctness of the platform-scale engines (the PR's acceptance bar).

A campaign interrupted mid-chunk (simulated with ``interrupt_after``, which
raises :class:`~repro.errors.CampaignInterrupted` after N committed
executions per worker) and resumed from the same store must reproduce the
uninterrupted run's outcome fingerprints and reports bit-identically while
re-executing *only* the unfinished scenarios — asserted through the
per-scenario execution counters, for both
:class:`~repro.sweep.platform.PlatformSweepRunner` and
:class:`~repro.fault.campaign.FaultCampaignRunner`, serial and
multiprocess.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import rc_benchmark
from repro.errors import CampaignInterrupted
from repro.fault import (
    AdcStuckBitFault,
    FaultCampaignRunner,
    FaultCampaignSpec,
    MemoryBitFlipFault,
    ParameterDriftFault,
    UartCorruptionFault,
)
from repro.sim import SquareWave
from repro.store import RunStore
from repro.sweep import GridSpec, PlatformScenarioSpec, PlatformSweepRunner, SweepError
from repro.vp import threshold_monitor_source

TIMESTEP = 50e-9
DURATION = 1e-4
CAMPAIGN_DURATION = 1.2e-4
ACTIVATION = 6e-5
WAVE = {"vin": SquareWave(period=4e-5)}
FIRMWARES = {"threshold": threshold_monitor_source(500)}
BENCH = rc_benchmark(1)


def platform_runner(**kwargs) -> PlatformSweepRunner:
    return PlatformSweepRunner(
        BENCH.build, "out", WAVE, timestep=TIMESTEP, **kwargs
    )


def platform_spec(styles=("python", "de")) -> PlatformScenarioSpec:
    return PlatformScenarioSpec(
        parameters=GridSpec(axes={"resistance": [4e3, 5e3]}),
        styles=styles,
        firmwares=FIRMWARES,
    )


def campaign_runner(**kwargs) -> FaultCampaignRunner:
    return FaultCampaignRunner(
        BENCH.build, "out", WAVE, timestep=TIMESTEP, **kwargs
    )


def campaign_spec() -> FaultCampaignSpec:
    return FaultCampaignSpec(
        faults=[
            ParameterDriftFault("r1", 2.0),
            AdcStuckBitFault(bit=9, stuck_at=1),
            MemoryBitFlipFault(bit=0),
            UartCorruptionFault(0x20),
        ],
        activation_times=(ACTIVATION,),
        scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
        seed=3,
    )


def deterministic_markdown(report: str) -> str:
    """A campaign report minus its wall-clock provenance lines.

    Wall-clock timings (and the worker count, which is execution topology,
    not outcome) can never be bit-stable between two executions; everything
    else — verdicts, coverage, collapse, per-run rows — must be.
    """
    return "\n".join(
        line
        for line in report.splitlines()
        if not line.startswith(("- wall:", "- simulate:", "- workers:"))
    )


class TestPlatformSweepResume:
    def test_interrupt_commits_a_prefix_then_resume_completes(self, tmp_path):
        spec = platform_spec()
        baseline = platform_runner().run(spec, DURATION)

        with pytest.raises(CampaignInterrupted):
            platform_runner(store=tmp_path, interrupt_after=1).run(spec, DURATION)
        committed = len(RunStore(tmp_path))
        assert 1 <= committed < len(spec)

        resumed = platform_runner(store=tmp_path, resume=True).run(spec, DURATION)
        assert resumed.executed_count == len(spec) - committed
        assert resumed.fingerprints() == baseline.fingerprints()
        for ours, theirs in zip(resumed.results, baseline.results):
            assert ours.analog_trace == theirs.analog_trace
        assert len(RunStore(tmp_path)) == len(spec)

    def test_multiprocess_interrupt_and_resume(self, tmp_path):
        spec = platform_spec()
        baseline = platform_runner().run(spec, DURATION)

        with pytest.raises(CampaignInterrupted):
            platform_runner(store=tmp_path, interrupt_after=1, workers=2).run(
                spec, DURATION
            )
        committed = len(RunStore(tmp_path))
        assert committed >= 1

        resumed = platform_runner(store=tmp_path, resume=True, workers=2).run(
            spec, DURATION
        )
        assert resumed.executed_count == len(spec) - committed
        assert resumed.fingerprints() == baseline.fingerprints()

    def test_fully_stored_sweep_executes_nothing(self, tmp_path):
        spec = platform_spec(styles=("python",))
        first = platform_runner(store=tmp_path).run(spec, DURATION)
        assert first.executed.all()
        again = platform_runner(store=tmp_path, resume=True).run(spec, DURATION)
        assert again.executed_count == 0
        assert again.fingerprints() == first.fingerprints()

    def test_records_are_shared_across_block_sizes(self, tmp_path):
        # Block-stepped execution is bit-identical at any block size (the
        # PR-3 guarantee), so cpu_block_cycles is deliberately not part of
        # the content key: a store filled at 256 serves a resume at 1.
        spec = platform_spec(styles=("python",))
        platform_runner(store=tmp_path, cpu_block_cycles=256).run(spec, DURATION)
        per_tick = platform_runner(
            store=tmp_path, resume=True, cpu_block_cycles=1
        ).run(spec, DURATION)
        assert per_tick.executed_count == 0

    def test_store_key_separates_styles_firmware_and_duration(self, tmp_path):
        spec = platform_spec(styles=("python",))
        platform_runner(store=tmp_path).run(spec, DURATION)
        stored = len(RunStore(tmp_path))
        other_style = platform_runner(store=tmp_path, resume=True).run(
            platform_spec(styles=("de",)), DURATION
        )
        assert other_style.executed_count == len(other_style.scenarios)
        longer = platform_runner(store=tmp_path, resume=True).run(
            spec, 2 * DURATION
        )
        assert longer.executed_count == len(longer.scenarios)
        assert len(RunStore(tmp_path)) == stored + other_style.executed_count + (
            longer.executed_count
        )

    def test_crashed_records_do_not_serve_a_no_capture_resume(self, tmp_path):
        # A crashed outcome is only meaningful under capture_errors=True;
        # resuming without error capture must re-execute the scenario so
        # the real error surfaces, not smuggle a crashed result through.
        import json

        spec = platform_spec(styles=("python",))
        platform_runner(store=tmp_path).run(spec, DURATION)
        store = RunStore(tmp_path)
        victim = store.path_for(store.keys()[0])
        payload = json.loads(victim.read_text())
        payload["record"]["result"]["crashed"] = "CpuFault: staged"
        victim.write_text(json.dumps(payload), encoding="utf-8")
        resumed = platform_runner(store=tmp_path, resume=True).run(spec, DURATION)
        assert resumed.executed_count == 1
        assert all(result.crashed is None for result in resumed.results)

    def test_resume_and_interrupt_need_a_store(self):
        with pytest.raises(SweepError, match="resume"):
            platform_runner(resume=True)
        with pytest.raises(SweepError, match="interrupt_after"):
            platform_runner(interrupt_after=1)


class TestFaultCampaignResume:
    def test_interrupted_multiprocess_campaign_resumes_bit_identically(
        self, tmp_path
    ):
        spec = campaign_spec()
        baseline = campaign_runner(workers=2).run(spec, CAMPAIGN_DURATION)

        with pytest.raises(CampaignInterrupted):
            campaign_runner(store=tmp_path, interrupt_after=1, workers=2).run(
                spec, CAMPAIGN_DURATION
            )
        committed = len(RunStore(tmp_path))
        assert 1 <= committed < len(spec)

        resumed = campaign_runner(store=tmp_path, resume=True, workers=2).run(
            spec, CAMPAIGN_DURATION
        )
        # Only the unfinished runs were re-executed...
        assert resumed.executed_count == len(spec) - committed
        # ...and the outcome is indistinguishable from the uninterrupted run:
        assert resumed.fingerprints() == baseline.fingerprints()
        assert resumed.to_csv() == baseline.to_csv()
        assert deterministic_markdown(resumed.to_markdown()) == (
            deterministic_markdown(baseline.to_markdown())
        )

    def test_serial_interrupt_and_resume(self, tmp_path):
        spec = campaign_spec()
        baseline = campaign_runner().run(spec, CAMPAIGN_DURATION)
        with pytest.raises(CampaignInterrupted):
            campaign_runner(store=tmp_path, interrupt_after=2).run(
                spec, CAMPAIGN_DURATION
            )
        committed = len(RunStore(tmp_path))
        assert committed == 2
        resumed = campaign_runner(store=tmp_path, resume=True).run(
            spec, CAMPAIGN_DURATION
        )
        assert resumed.executed_count == len(spec) - committed
        assert resumed.fingerprints() == baseline.fingerprints()
        assert resumed.to_csv() == baseline.to_csv()

    def test_loaded_golden_runs_still_anchor_the_verdicts(self, tmp_path):
        # Golden runs expand first, so an early interrupt commits exactly
        # them; the resumed campaign classifies faulted runs against golden
        # results that came from the store.
        spec = campaign_spec()
        golden_count = len(spec.platform_scenarios())
        with pytest.raises(CampaignInterrupted):
            campaign_runner(store=tmp_path, interrupt_after=golden_count).run(
                spec, CAMPAIGN_DURATION
            )
        assert len(RunStore(tmp_path)) == golden_count
        resumed = campaign_runner(store=tmp_path, resume=True).run(
            spec, CAMPAIGN_DURATION
        )
        assert not resumed.executed[:golden_count].any()
        assert resumed.executed[golden_count:].all()
        assert resumed.verdicts()  # classification works on loaded goldens

    def test_fault_parameterization_is_part_of_the_key(self, tmp_path):
        base = FaultCampaignSpec(
            faults=[ParameterDriftFault("r1", 2.0)],
            activation_times=(ACTIVATION,),
            scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
        )
        campaign_runner(store=tmp_path).run(base, CAMPAIGN_DURATION)
        # Same fault *name*, different drift: must not hit the old records.
        drifted = FaultCampaignSpec(
            faults=[ParameterDriftFault("r1", 3.0)],
            activation_times=(ACTIVATION,),
            scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
        )
        resumed = campaign_runner(store=tmp_path, resume=True).run(
            drifted, CAMPAIGN_DURATION
        )
        # The golden run is shared; the faulted run re-executes.
        assert resumed.executed_count == 1
        assert resumed.executed[-1]

    def test_activation_time_is_part_of_the_key(self, tmp_path):
        def spec_at(when: float) -> FaultCampaignSpec:
            return FaultCampaignSpec(
                faults=[AdcStuckBitFault(bit=9, stuck_at=1)],
                activation_times=(when,),
                scenarios=PlatformScenarioSpec(firmwares=FIRMWARES),
            )

        campaign_runner(store=tmp_path).run(spec_at(ACTIVATION), CAMPAIGN_DURATION)
        resumed = campaign_runner(store=tmp_path, resume=True).run(
            spec_at(ACTIVATION / 2), CAMPAIGN_DURATION
        )
        assert resumed.executed_count == 1


class TestEmptyCoverageRendering:
    def test_zero_faulted_runs_render_na_not_nan(self):
        from repro.fault.report import FaultCampaignResult
        from repro.fault.campaign import FaultRun
        from repro.sweep import PlatformScenarioSpec

        scenario = PlatformScenarioSpec(firmwares=FIRMWARES).expand()[0]
        golden = platform_runner().run([scenario], DURATION, firmwares=FIRMWARES)
        result = FaultCampaignResult(
            runs=[FaultRun(0, None, 0.0, scenario, 0)],
            results=golden.results,
            elapsed=golden.elapsed,
            duration=DURATION,
            timestep=TIMESTEP,
        )
        assert np.isnan(result.detected_fraction())
        assert result.coverage_text() == "n/a (0 faulted runs)"
        report = result.to_markdown()
        assert "nan" not in report
        assert "n/a (0 faulted runs)" in report
        # The CSV stays well-formed: a single header row, no dangling commas.
        csv = result.to_csv()
        assert csv.splitlines()[0].startswith("#,fault,")
        assert len(csv.splitlines()) == 1
