"""Frontend error paths on malformed netlists, with exact positions.

The fuzz harness leans on the frontend rejecting bad inputs *diagnosably*:
every lexer/parser error must carry the line and column of the offence, and
netlist-level rejections must name the construct they refused.
"""

from __future__ import annotations

import pytest

from repro.errors import VamsLexerError, VamsParseError
from repro.vams import NetlistError, parse_module, to_circuit, tokenize


class TestLexerErrors:
    def test_unterminated_block_comment_position(self):
        source = "module m(a);\n  /* never closed\nendmodule"
        with pytest.raises(VamsLexerError) as excinfo:
            tokenize(source)
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
        assert "unterminated block comment" in str(excinfo.value)

    def test_unterminated_string_position(self):
        with pytest.raises(VamsLexerError) as excinfo:
            tokenize('module m;\n  "never closed')
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
        assert "unterminated string" in str(excinfo.value)


class TestParserErrors:
    def test_unknown_access_function_names_itself_with_position(self):
        source = (
            'module bad(vin, out);\n'
            "  input vin;\n"
            "  output out;\n"
            "  electrical vin, out;\n"
            "  analog begin\n"
            "    Q(out) <+ 1.0;\n"
            "  end\n"
            "endmodule\n"
        )
        with pytest.raises(VamsParseError) as excinfo:
            parse_module(source)
        message = str(excinfo.value)
        assert "'Q'" in message and "access function" in message
        assert excinfo.value.line == 6
        assert excinfo.value.column == 5

    def test_bad_contribution_target_position(self):
        source = (
            "module bad(out);\n"
            "  output out;\n"
            "  electrical out;\n"
            "  analog begin\n"
            "    3.0 <+ V(out);\n"
            "  end\n"
            "endmodule\n"
        )
        with pytest.raises(VamsParseError) as excinfo:
            parse_module(source)
        assert excinfo.value.line == 5

    def test_missing_endmodule_is_a_parse_error(self):
        with pytest.raises(VamsParseError):
            parse_module("module bad(out);\n  output out;\n")


class TestNetlistErrors:
    def test_nonlinear_contribution_is_rejected_with_the_branch_name(self):
        source = (
            "module bad(vin, out);\n"
            "  input vin;\n"
            "  output out;\n"
            "  electrical vin, out, gnd;\n"
            "  ground gnd;\n"
            "  branch (out, gnd) rb;\n"
            "  analog begin\n"
            "    I(vin, out) <+ V(vin, out) / 1k;\n"
            "    V(rb) <+ V(rb) * I(rb);\n"
            "  end\n"
            "endmodule\n"
        )
        with pytest.raises(NetlistError, match="rb"):
            to_circuit(parse_module(source))

    def test_unfoldable_conditional_is_rejected(self):
        source = (
            "module bad(vin, out);\n"
            "  input vin;\n"
            "  output out;\n"
            "  electrical vin, out, gnd;\n"
            "  ground gnd;\n"
            "  parameter real G = 2.0;\n"
            "  branch (out, gnd) amp;\n"
            "  analog begin\n"
            "    I(vin, out) <+ V(vin, out) / 1k;\n"
            "    if (V(out) > 0.5)\n"
            "      V(amp) <+ G * V(vin);\n"
            "    else\n"
            "      V(amp) <+ V(vin);\n"
            "  end\n"
            "endmodule\n"
        )
        with pytest.raises(NetlistError, match="fold"):
            to_circuit(parse_module(source))

    def test_unknown_parameter_override_is_rejected(self):
        source = (
            "module m(vin, out);\n"
            "  input vin;\n"
            "  output out;\n"
            "  electrical vin, out, gnd;\n"
            "  ground gnd;\n"
            "  parameter real R = 1k;\n"
            "  analog begin\n"
            "    V(vin, out) <+ R * I(vin, out);\n"
            "    I(out) <+ V(out) / 2k;\n"
            "  end\n"
            "endmodule\n"
        )
        module = parse_module(source)
        with pytest.raises(NetlistError, match="RX"):
            to_circuit(module, overrides={"RX": 5.0})
        circuit = to_circuit(module, overrides={"R": 3e3})
        assert circuit is not None
