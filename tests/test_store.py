"""Tests of the ``repro.store`` subsystem: atomic writes, keys, RunStore,
and checkpoint/resume through :class:`~repro.sweep.runner.SweepRunner`.

The platform-sweep and fault-campaign resume guarantees (interrupt
mid-chunk, bit-identical resume) live in ``test_store_resume.py``; this
module covers the primitives and the signal-flow sweep integration.
"""

from __future__ import annotations

import functools
import json
import os

import numpy as np
import pytest

from repro.circuits import build_rc_filter
from repro.errors import StoreError
from repro.sim import SquareWave
from repro.store import (
    RunStore,
    as_run_store,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    digest_key,
    fingerprint,
)
from repro.store.atomic import TMP_SUFFIX
from repro.sweep import MonteCarloSpec, SweepError, SweepRunner

TIMESTEP = 50e-9
SHORT = 2e-5
WAVE = {"vin": SquareWave(period=1e-3)}
RC_NOMINAL = {"order": 1, "resistance": 5e3, "capacitance": 25e-9}


def rc_runner(**kwargs) -> SweepRunner:
    return SweepRunner(
        build_rc_filter, "out", stimuli=WAVE, timestep=TIMESTEP, **kwargs
    )


def poisoned_factory(**params):
    """Module-level (hence picklable) factory that fails inside workers."""
    raise RuntimeError("this circuit cannot pickle its destiny")


def mc_spec(samples: int = 6, seed: int = 7) -> MonteCarloSpec:
    return MonteCarloSpec(
        nominal=RC_NOMINAL,
        tolerances={"resistance": 0.05, "capacitance": 0.05},
        samples=samples,
        seed=seed,
    )


class TestAtomicWrites:
    def test_publishes_content_and_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "file.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_overwrites_atomically_without_tmp_orphans(self, tmp_path):
        path = tmp_path / "file.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text())["v"] == 2
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_unserializable_payload_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="JSON"):
            atomic_write_json(tmp_path / "bad.json", {"f": object()})
        assert not (tmp_path / "bad.json").exists()

    def test_failure_cleans_up_the_temp_file(self, tmp_path):
        target = tmp_path / "dir_in_the_way"
        target.mkdir()
        with pytest.raises(StoreError):
            atomic_write_text(target, "x")
        assert not any(p.name.endswith(TMP_SUFFIX) for p in tmp_path.iterdir())


class TestFingerprints:
    def test_primitives_and_containers_pass_through(self):
        assert fingerprint(3) == 3
        assert fingerprint([1, "a", None]) == [1, "a", None]
        assert fingerprint({"b": 2, "a": 1}) == ["mapping", [["a", 1], ["b", 2]]]

    def test_dataclass_fingerprints_by_field_values_not_repr(self):
        a = fingerprint(SquareWave(period=4e-5))
        b = fingerprint(SquareWave(period=4e-5))
        c = fingerprint(SquareWave(period=5e-5))
        assert a == b
        assert a != c
        assert "0x" not in canonical_json(a)

    def test_functions_fingerprint_by_qualified_name(self):
        assert fingerprint(build_rc_filter) == fingerprint(build_rc_filter)
        assert "0x" not in canonical_json(fingerprint(build_rc_filter))

    def test_partial_recurses_into_func_and_arguments(self):
        one = fingerprint(functools.partial(build_rc_filter, 1))
        two = fingerprint(functools.partial(build_rc_filter, 2))
        assert one != two

    def test_distinct_lambdas_key_apart_via_source_digest(self):
        first = fingerprint(lambda t: t)
        second = fingerprint(lambda t: 2 * t)
        assert first != second

    def test_closures_over_different_values_key_apart(self):
        # Factory-made callables share source and qualname; only the
        # captured cell distinguishes them — it must be part of the key.
        def make_wave(amplitude):
            return lambda t: amplitude

        assert fingerprint(make_wave(1.0)) != fingerprint(make_wave(2.0))
        assert fingerprint(make_wave(1.0)) == fingerprint(make_wave(1.0))

    def test_default_arguments_are_part_of_the_key(self):
        def with_default(t, gain=1.0):
            return gain * t

        one = fingerprint(with_default)
        with_default.__defaults__ = (2.0,)
        assert fingerprint(with_default) != one

    def test_bound_methods_carry_instance_state(self):
        class Bench:
            def __init__(self, order):
                self.order = order

            def build(self):
                return self.order

        assert fingerprint(Bench(1).build) != fingerprint(Bench(2).build)

    def test_recursive_closures_terminate(self):
        def recursive():
            def inner(n):
                return inner(n - 1) if n else 0

            return inner

        assert fingerprint(recursive()) == fingerprint(recursive())

    def test_digest_is_stable_and_order_insensitive(self):
        assert digest_key({"a": 1, "b": 2}) == digest_key({"b": 2, "a": 1})
        assert digest_key({"a": 1}) != digest_key({"a": 2})

    def test_large_arrays_fingerprint_by_content_not_repr(self):
        # numpy's repr truncates ('...') and rounds — repr-based keys would
        # collide for arrays differing only in a hidden element.
        base = np.arange(2000.0)
        tweaked = base.copy()
        tweaked[1200] = -999.0
        assert fingerprint(base) != fingerprint(tweaked)
        assert fingerprint(base) == fingerprint(base.copy())
        assert fingerprint(np.float64(1.5)) == 1.5


class TestRunStore:
    def test_commit_load_round_trip_is_exact(self, tmp_path):
        store = RunStore(tmp_path / "campaign")
        key = store.key({"x": 1.1e-9})
        store.commit(key, {"rows": [0.1, 2.5e-300, -1.0]}, inputs={"x": 1.1e-9})
        assert store.contains(key)
        assert store.load(key) == {"rows": [0.1, 2.5e-300, -1.0]}
        assert store.keys() == [key]
        assert len(store) == 1

    def test_numpy_payloads_are_converted_exactly(self, tmp_path):
        store = RunStore(tmp_path)
        key = store.key({"n": 1})
        row = np.linspace(0.0, 1.0, 7)
        store.commit(key, {"row": row, "count": np.int64(3)})
        loaded = store.load(key)
        assert np.asarray(loaded["row"]).tolist() == row.tolist()
        assert loaded["count"] == 3

    def test_missing_key_loads_none(self, tmp_path):
        assert RunStore(tmp_path).load("0" * 64) is None

    def test_malformed_record_error_names_the_file(self, tmp_path):
        store = RunStore(tmp_path)
        key = store.key({"n": 1})
        store.commit(key, {"ok": True})
        path = store.path_for(key)
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match=str(path)):
            store.load(key)

    def test_key_mismatch_is_detected(self, tmp_path):
        store = RunStore(tmp_path)
        key_a, key_b = store.key({"n": 1}), store.key({"n": 2})
        store.commit(key_a, {"n": 1})
        os.replace(store.path_for(key_a), store.path_for(key_b))
        with pytest.raises(StoreError, match="digest mismatch"):
            store.load(key_b)

    def test_format_marker_guards_future_versions(self, tmp_path):
        store = RunStore(tmp_path)
        store.commit(store.key({"n": 1}), {"n": 1})
        marker = tmp_path / RunStore.MARKER
        marker.write_text(json.dumps({"format": 99}), encoding="utf-8")
        with pytest.raises(StoreError, match="format-99"):
            RunStore(tmp_path)

    def test_tmp_orphans_are_invisible(self, tmp_path):
        store = RunStore(tmp_path)
        store.commit(store.key({"n": 1}), {"n": 1})
        orphan = store.runs_directory / f".orphan.json{TMP_SUFFIX}"
        orphan.write_text("torn", encoding="utf-8")
        assert len(store) == 1

    def test_as_run_store_coerces_paths(self, tmp_path):
        store = as_run_store(tmp_path)
        assert isinstance(store, RunStore)
        assert as_run_store(store) is store
        assert as_run_store(None) is None


class TestSweepStoreResume:
    def test_run_commits_one_record_per_scenario(self, tmp_path):
        spec = mc_spec()
        result = rc_runner(store=tmp_path).run(spec, SHORT)
        assert result.executed.all()
        assert result.executed_count == len(spec)
        assert len(RunStore(tmp_path)) == len(spec)

    def test_resume_loads_everything_bit_identically(self, tmp_path):
        spec = mc_spec()
        baseline = rc_runner(store=tmp_path).run(spec, SHORT)
        resumed = rc_runner(store=tmp_path, resume=True).run(spec, SHORT)
        assert resumed.executed_count == 0
        assert np.array_equal(
            baseline.ensemble("V(out)"), resumed.ensemble("V(out)")
        )
        assert resumed.structure_groups == baseline.structure_groups

    def test_partial_store_resumes_only_the_missing_scenarios(self, tmp_path):
        spec = mc_spec()
        scenarios = spec.expand()
        uninterrupted = rc_runner().run(spec, SHORT)
        # Simulate an interrupted sweep: only the first half was committed.
        rc_runner(store=tmp_path).run(scenarios[: len(scenarios) // 2], SHORT)
        committed = len(RunStore(tmp_path))
        resumed = rc_runner(store=tmp_path, resume=True).run(spec, SHORT)
        assert resumed.executed_count == len(scenarios) - committed
        assert not resumed.executed[: committed].any()
        assert resumed.executed[committed:].all()
        assert np.array_equal(
            uninterrupted.ensemble("V(out)"), resumed.ensemble("V(out)")
        )

    def test_multiprocess_workers_load_from_the_store(self, tmp_path):
        spec = mc_spec(samples=8)
        scenarios = spec.expand()
        uninterrupted = rc_runner().run(spec, SHORT)
        rc_runner(store=tmp_path).run(scenarios[:3], SHORT)
        resumed = rc_runner(store=tmp_path, resume=True, workers=2).run(spec, SHORT)
        assert resumed.executed_count == len(scenarios) - 3
        assert np.array_equal(
            uninterrupted.ensemble("V(out)"), resumed.ensemble("V(out)")
        )

    def test_fully_resumed_multi_output_order_is_preserved(self, tmp_path):
        # The JSON record stores outputs key-sorted; the model's column
        # order must round-trip explicitly or a fully-loaded run would
        # assemble its ensemble (and CSV) in a different order.
        def runner(**kwargs):
            return SweepRunner(
                build_rc_filter,
                ["out", "I(r1)"],
                stimuli=WAVE,
                timestep=TIMESTEP,
                **kwargs,
            )

        spec = mc_spec(samples=2)
        fresh = runner(store=tmp_path).run(spec, SHORT)
        resumed = runner(store=tmp_path, resume=True).run(spec, SHORT)
        assert resumed.executed_count == 0
        assert resumed.output_names() == fresh.output_names()
        assert resumed.to_csv() == fresh.to_csv()

    def test_scalar_backend_shares_the_same_store_protocol(self, tmp_path):
        spec = mc_spec(samples=3)
        first = rc_runner(backend="python", store=tmp_path).run(spec, SHORT)
        resumed = rc_runner(backend="python", store=tmp_path, resume=True).run(
            spec, SHORT
        )
        assert resumed.executed_count == 0
        assert np.array_equal(
            first.ensemble("V(out)"), resumed.ensemble("V(out)")
        )

    def test_store_key_covers_the_execution_grid(self, tmp_path):
        # A different duration must not hit the same records.
        spec = mc_spec(samples=2)
        rc_runner(store=tmp_path).run(spec, SHORT)
        result = rc_runner(store=tmp_path, resume=True).run(spec, 2 * SHORT)
        assert result.executed_count == 2
        assert len(RunStore(tmp_path)) == 4

    def test_store_key_covers_stimuli(self, tmp_path):
        spec = mc_spec(samples=2)
        rc_runner(store=tmp_path).run(spec, SHORT)
        other = SweepRunner(
            build_rc_filter,
            "out",
            stimuli={"vin": SquareWave(period=2e-3)},
            timestep=TIMESTEP,
            store=tmp_path,
            resume=True,
        ).run(spec, SHORT)
        assert other.executed_count == 2

    def test_numpy_typed_params_key_cleanly(self, tmp_path):
        # Axes built from numpy arrays yield np.float32/np.int64 param
        # values; the store key must canonicalize them, not crash on them.
        from repro.sweep import GridSpec

        spec = GridSpec(
            axes={"resistance": np.array([4e3, 5e3], dtype=np.float32)},
            base={"order": np.int64(1), "capacitance": 25e-9},
        )
        first = rc_runner(store=tmp_path).run(spec, SHORT)
        resumed = rc_runner(store=tmp_path, resume=True).run(spec, SHORT)
        assert resumed.executed_count == 0
        assert np.array_equal(
            first.ensemble("V(out)"), resumed.ensemble("V(out)")
        )

    def test_resume_without_store_is_rejected(self):
        with pytest.raises(SweepError, match="resume"):
            rc_runner(resume=True)

    def test_corrupt_record_fails_loud_not_silent_rerun(self, tmp_path):
        spec = mc_spec(samples=2)
        rc_runner(store=tmp_path).run(spec, SHORT)
        store = RunStore(tmp_path)
        victim = store.path_for(store.keys()[0])
        victim.write_text("{torn", encoding="utf-8")
        with pytest.raises(StoreError, match=str(victim)):
            rc_runner(store=tmp_path, resume=True).run(spec, SHORT)


class TestPickleRouting:
    """The submission-path pickle probe vs genuine worker errors."""

    def test_unpicklable_payload_falls_back_to_serial(self):
        import warnings

        spec = mc_spec(samples=4)
        serial = rc_runner().run(spec, SHORT)
        lambda_stim = {"vin": lambda t: SquareWave(period=1e-3)(t)}
        runner = SweepRunner(
            build_rc_filter, "out", stimuli=lambda_stim, timestep=TIMESTEP, workers=2
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = runner.run(spec, SHORT)
        assert any("not picklable" in str(w.message) for w in caught)
        assert result.workers == 1
        assert np.array_equal(serial.ensemble("V(out)"), result.ensemble("V(out)"))

    def test_worker_error_mentioning_pickle_still_propagates(self):
        # The historical bug: substring-matching "pickle" in the error text
        # misrouted genuine worker errors into a silent serial retry.
        import warnings

        runner = SweepRunner(
            poisoned_factory, "out", stimuli=WAVE, timestep=TIMESTEP, workers=2
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(RuntimeError, match="destiny"):
                runner.run(mc_spec(samples=4), SHORT)
        assert not caught
