"""Tests for the code-generation backends (Step 4 of the methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import abstract_circuit
from repro.core.codegen import (
    GENERATORS,
    CppGenerator,
    PythonGenerator,
    SystemCDeGenerator,
    SystemCTdfGenerator,
    compile_model,
    generate_all,
    get_generator,
    mangle,
)
from repro.circuits import build_opamp, build_rc_filter
from repro.errors import CodeGenerationError
from repro.sim import SquareWave

DT = 50e-9


@pytest.fixture(scope="module")
def rc_model():
    return abstract_circuit(build_rc_filter(1), "out", DT)


@pytest.fixture(scope="module")
def oa_model():
    return abstract_circuit(build_opamp(), "out", DT)


class TestMangling:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("V(out)", "v_out"),
            ("I(R1)", "i_r1"),
            ("V(a,b)", "v_a_b"),
            ("$abstime", "abstime"),
            ("vin", "vin"),
        ],
    )
    def test_quantity_names(self, name, expected):
        assert mangle(name) == expected

    def test_leading_digit_gets_prefix(self):
        assert mangle("2in")[0].isalpha()

    def test_empty_name_rejected(self):
        with pytest.raises(CodeGenerationError):
            mangle("")


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(GENERATORS) == {
            "cpp",
            "python",
            "numpy",
            "systemc_de",
            "systemc_tdf",
            "native",
        }

    def test_get_generator(self):
        assert isinstance(get_generator("cpp"), CppGenerator)
        with pytest.raises(CodeGenerationError):
            get_generator("fortran")

    def test_generate_all_produces_every_backend(self, rc_model):
        artefacts = generate_all(rc_model)
        assert set(artefacts) == set(GENERATORS)
        for generated in artefacts.values():
            assert generated.line_count() > 10
            assert generated.model_name == rc_model.name


class TestPythonBackend:
    def test_compiled_model_matches_interpreter(self, oa_model):
        compiled_class = compile_model(oa_model)
        instance = compiled_class()
        stimulus = SquareWave(period=20e-6)
        state = oa_model.create_state()
        time = 0.0
        for _ in range(500):
            time += DT
            value = stimulus(time)
            interpreted = oa_model.step({"vin": value}, state, time)[oa_model.outputs[0]]
            generated = instance.step(value, time)
            assert generated == pytest.approx(interpreted, rel=1e-12, abs=1e-15)

    def test_class_metadata(self, rc_model):
        compiled_class = compile_model(rc_model)
        assert compiled_class.INPUTS == ("vin",)
        assert compiled_class.OUTPUTS == ("V(out)",)
        assert compiled_class.TIMESTEP == pytest.approx(DT)

    def test_reset_restores_initial_state(self, rc_model):
        instance = compile_model(rc_model)()
        for _ in range(10):
            instance.step(1.0)
        before_reset = instance.step(1.0)
        instance.reset()
        after_reset = instance.step(1.0)
        assert after_reset < before_reset

    def test_source_is_documented(self, rc_model):
        generated = PythonGenerator().generate(rc_model)
        assert '"""' in generated.source
        assert "def step(self, vin" in generated.source


class TestCppBackend:
    def test_structure(self, rc_model):
        source = CppGenerator().generate(rc_model).source
        assert "#include <cmath>" in source
        assert "class Rc1Cpp" in source
        assert "double step(double vin" in source
        assert "prev_v_out" in source
        assert f"kTimestep = {DT!r}" in source

    def test_multi_output_signature(self):
        model = abstract_circuit(build_rc_filter(2), ["out", "n1"], DT)
        source = CppGenerator().generate(model).source
        assert "void step(" in source
        assert "outputs[2]" in source


class TestSystemCBackends:
    def test_de_module_structure(self, rc_model):
        source = SystemCDeGenerator().generate(rc_model).source
        assert "SC_MODULE(Rc1ScDe)" in source
        assert "sc_core::sc_in<double> vin;" in source
        assert "SC_METHOD(process);" in source
        assert "m_tick.notify(" in source

    def test_tdf_module_structure(self, rc_model):
        source = SystemCTdfGenerator().generate(rc_model).source
        assert "SCA_TDF_MODULE(Rc1ScaTdf)" in source
        assert "sca_tdf::sca_in<double> vin;" in source
        assert "set_timestep(" in source
        assert "void processing()" in source

    def test_inputs_read_through_ports(self, rc_model):
        source = SystemCDeGenerator().generate(rc_model).source
        assert "vin.read()" in source


class TestGeneratedNumericalEquivalence:
    def test_all_backends_share_the_same_equations(self, rc_model):
        """The arithmetic text emitted by each backend must contain the same
        coefficients (they all render the same signal-flow model)."""
        artefacts = generate_all(rc_model)
        python_source = artefacts["python"].source
        coefficient = [
            token
            for token in python_source.replace("*", " ").split()
            if token.startswith("0.000399")
        ][0]
        for name in ("cpp", "systemc_de", "systemc_tdf"):
            assert coefficient in artefacts[name].source

    def test_generated_model_long_run_is_stable(self, rc_model):
        instance = compile_model(rc_model)()
        values = [instance.step(1.0) for _ in range(20000)]
        assert values[-1] == pytest.approx(1.0, rel=1e-3)
        assert np.all(np.isfinite(values))
