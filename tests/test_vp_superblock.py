"""Tests for the ISS superblock compiler: exactness, invalidation, counters.

The superblock tier fuses hot basic-block runs into specialized Python
callables.  Like the block executor beneath it, it must be a pure speedup:
bit-identical architectural traces against the one-instruction-at-a-time
interpreter, including across self-modifying code, peripheral-window
accesses and scheduled fault injections that land mid-superblock.
"""

from __future__ import annotations

import pytest

from repro.obs.tracer import TRACER, disable_tracing, enable_tracing
from repro.vp import Memory, MipsCpu, SmartSystemPlatform, assemble
from repro.vp.mips.isa import register_number

#: A hot loop with the firmware instruction mix (ALU, shifts, RAM word and
#: byte traffic, a call and a backward branch) — long enough to clear the
#: superblock heat threshold many times over.
HOT_LOOP = """
        li    $t0, 0
        li    $t1, 0x3000
        li    $t3, 0            # loop forever (counter wraps)
loop:   addiu $t0, $t0, 3
        andi  $t2, $t0, 0x1FF
        sll   $t4, $t2, 3
        subu  $t5, $t4, $t2
        sw    $t5, 0($t1)
        lw    $t6, 0($t1)
        sb    $t6, 8($t1)
        lbu   $t7, 8($t1)
        slt   $s1, $t5, $t6
        xor   $s3, $t6, $t2
        srl   $s5, $t6, 2
        blez  $t2, skip
        jal   leaf
skip:   bne   $t0, $t3, loop
        j     loop
leaf:   ori   $v0, $t2, 0x10
        jr    $ra
"""

#: The loop body runs hot, then the code patches one of its own
#: instructions (``patch``) and re-enters it: a stale superblock would keep
#: adding 1 where the patched code adds 5.  The phases are long enough that
#: the loop clears the burst-entry heat threshold and compiles in phase one.
SELF_PATCHING = """
        li    $s0, 0
        li    $s1, 3000
        li    $s3, 0              # phase: 0 = original, 1 = patched
loop:   addiu $s0, $s0, 1
patch:  addiu $s2, $s2, 1
        bne   $s0, $s1, loop
        bne   $s3, $zero, halt
        li    $s3, 1
        li    $s0, 0
        la    $t0, patch
        li    $t1, 0x26520005     # addiu $s2, $s2, 5
        sw    $t1, 0($t0)
        j     loop
halt:   beq   $zero, $zero, halt
"""

#: Instructions needed to retire both SELF_PATCHING phases plus the patch
#: prologue (the remainder idles in the halt spin, which both engines share).
SELF_PATCHING_TOTAL = 19000
SELF_PATCHING_S2 = 3000 * 1 + 3000 * 5


def architectural_state(cpu: MipsCpu) -> tuple:
    return (
        cpu.pc,
        tuple(cpu.registers[:32]),
        cpu.hi,
        cpu.lo,
        cpu.instruction_count,
        cpu.load_count,
        cpu.store_count,
        bytes(cpu.memory._data),
    )


def fresh_cpu(source: str, superblocks: bool = True) -> MipsCpu:
    program = assemble(source)
    memory = Memory(size=64 * 1024)
    memory.load_image(program.to_bytes())
    return MipsCpu(memory, superblocks=superblocks)


def run_instructions(cpu: MipsCpu, total: int, chunk: int) -> None:
    done = 0
    while done < total:
        executed = cpu.run_block(min(chunk, total - done))
        if executed < 1:
            break
        done += executed


class TestSuperblockEquivalence:
    @pytest.mark.parametrize("chunk", [3, 17, 64, 256, 1024, 4096])
    def test_chunked_execution_matches_single_stepping(self, chunk):
        total = 6000
        reference = fresh_cpu(HOT_LOOP, superblocks=False)
        for _ in range(total):
            reference.step()
        accelerated = fresh_cpu(HOT_LOOP)
        run_instructions(accelerated, total, chunk)
        assert architectural_state(accelerated) == architectural_state(reference)

    def test_superblocks_engage_on_the_hot_loop(self):
        cpu = fresh_cpu(HOT_LOOP)
        run_instructions(cpu, 6000, 1024)
        stats = cpu.superblock_stats()
        assert stats["superblock_compiles"] > 0
        assert stats["superblock_hits"] > 0

    def test_superblocks_off_never_compiles(self):
        cpu = fresh_cpu(HOT_LOOP, superblocks=False)
        run_instructions(cpu, 6000, 1024)
        stats = cpu.superblock_stats()
        assert stats["superblock_compiles"] == 0
        assert stats["superblock_hits"] == 0

    def test_counters_match_the_interpreter(self):
        reference = fresh_cpu(HOT_LOOP, superblocks=False)
        for _ in range(5000):
            reference.step()
        accelerated = fresh_cpu(HOT_LOOP)
        run_instructions(accelerated, 5000, 512)
        assert accelerated.instruction_count == reference.instruction_count
        assert accelerated.load_count == reference.load_count
        assert accelerated.store_count == reference.store_count

    def test_reset_clears_counters_but_keeps_compiled_blocks(self):
        # Like the decode cache, compiled superblocks mirror *memory* (which
        # reset does not touch), so they survive; the counters start over.
        cpu = fresh_cpu(HOT_LOOP)
        run_instructions(cpu, 6000, 1024)
        assert cpu.superblock_stats()["superblock_compiles"] > 0
        cpu.reset()
        stats = cpu.superblock_stats()
        assert stats["superblocks"] > 0
        assert stats["superblock_compiles"] == 0
        assert stats["superblock_hits"] == 0
        # Execution after reset is still exact (and reuses the warm blocks).
        reference = fresh_cpu(HOT_LOOP, superblocks=False)
        for _ in range(3000):
            reference.step()
        run_instructions(cpu, 3000, 1024)
        assert architectural_state(cpu) == architectural_state(reference)
        assert cpu.superblock_stats()["superblock_hits"] > 0


@pytest.fixture(scope="module")
def self_patching_reference():
    reference = fresh_cpu(SELF_PATCHING, superblocks=False)
    for _ in range(SELF_PATCHING_TOTAL):
        reference.step()
    return architectural_state(reference), reference.read_register(
        register_number("$s2")
    )


class TestSelfModifyingCode:
    def test_patched_loop_invalidates_the_superblock(self, self_patching_reference):
        reference_state, s2 = self_patching_reference
        accelerated = fresh_cpu(SELF_PATCHING)
        # 256-cycle bursts: enough burst entries inside phase one for the
        # three-instruction loop to clear the heat threshold and compile
        # *before* the patch lands on it.
        run_instructions(accelerated, SELF_PATCHING_TOTAL, 256)
        assert architectural_state(accelerated) == reference_state
        stats = accelerated.superblock_stats()
        assert stats["superblock_compiles"] > 0
        assert stats["superblock_invalidations"] > 0
        # The patched second phase actually executed: 3000 * 1 + 3000 * 5.
        assert s2 == SELF_PATCHING_S2

    @pytest.mark.parametrize("chunk", [7, 64, 256])
    def test_patch_is_chunk_size_invariant(self, chunk, self_patching_reference):
        reference_state, _ = self_patching_reference
        accelerated = fresh_cpu(SELF_PATCHING)
        run_instructions(accelerated, SELF_PATCHING_TOTAL, chunk)
        assert architectural_state(accelerated) == reference_state


def _monitor_platform(**kwargs) -> SmartSystemPlatform:
    from repro.circuits import build_rc_filter
    from repro.core import abstract_circuit
    from repro.sim import SquareWave

    model = abstract_circuit(build_rc_filter(1), "out", 50e-9)
    platform = SmartSystemPlatform(**kwargs)
    platform.attach_analog_python(model, {"vin": SquareWave(period=40e-6)})
    return platform


class TestPlatformEquivalence:
    def test_fingerprints_identical_across_execution_tiers(self):
        fingerprints = {}
        for label, kwargs in {
            "tick": {"cpu_block_cycles": 1, "cpu_superblocks": False},
            "block": {"cpu_block_cycles": 256, "cpu_superblocks": False},
            "superblock": {"cpu_block_cycles": 256, "cpu_superblocks": True},
            "superblock-long": {"cpu_block_cycles": 1024, "cpu_superblocks": True},
        }.items():
            platform = _monitor_platform(**kwargs)
            result = platform.run(100e-6)
            fingerprints[label] = result.fingerprint()
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_mid_superblock_fault_injection_is_tick_exact(self):
        # A RAM mutation scheduled at an off-grid instant must land on the
        # same instruction boundary whether the CPU runs per-tick, block
        # stepped, or through compiled superblocks.
        fingerprints = {}
        for label, kwargs in {
            "tick": {"cpu_block_cycles": 1, "cpu_superblocks": False},
            "block": {"cpu_block_cycles": 4096, "cpu_superblocks": False},
            "superblock": {"cpu_block_cycles": 4096, "cpu_superblocks": True},
        }.items():
            platform = _monitor_platform(**kwargs)
            platform.schedule_injection(
                13.37e-6,
                lambda p=platform: p.memory.poke(4, (0).to_bytes(4, "little")),
            )
            result = platform.run(50e-6)
            fingerprints[label] = result.fingerprint()
        assert len(set(fingerprints.values())) == 1, fingerprints


class TestTelemetry:
    def setup_method(self):
        TRACER.reset()

    def teardown_method(self):
        TRACER.reset()

    def test_traced_platform_run_surfaces_superblock_counters(self):
        from repro.perf.suite import FIRMWARE_STYLE_LOOP

        enable_tracing()
        try:
            mark = TRACER.mark()
            platform = _monitor_platform(
                firmware=FIRMWARE_STYLE_LOOP,
                analog_timestep=10e-6,
                cpu_block_cycles=1024,
            )
            platform.run(5e-3)
            payload = TRACER.collect(mark)
        finally:
            disable_tracing()
        counters = payload["counters"]
        assert counters.get("iss.superblock.compiles", 0) > 0
        assert counters.get("iss.superblock.hits", 0) > 0
        # No self-modifying code in this firmware (zero-delta counters may
        # be elided from the collected payload entirely).
        assert counters.get("iss.superblock.invalidations", 0.0) == 0.0
        # Event tuples: (phase, name, category, start, duration, args).
        spans = [
            event for event in payload["events"] if event[1] == "platform.run"
        ]
        assert spans, payload["events"]
        args = spans[-1][5]
        assert args["superblock_compiles"] > 0
        assert args["superblock_hits"] > 0
