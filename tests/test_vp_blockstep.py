"""Tests for the predecoded, block-stepped ISS: equivalence and invalidation.

The block executor must be a pure speedup: for any chunking of the
instruction stream it has to produce exactly the architectural trace of the
one-instruction-at-a-time interpreter, including across self-modifying code,
firmware reloads and peripheral-window accesses.
"""

from __future__ import annotations

import pytest

from repro.vp import Memory, MipsCpu, SmartSystemPlatform, assemble
from repro.vp.mips.isa import register_number, to_signed_32

#: A program exercising every hot path: ALU, shifts, signed compares, RAM
#: loads/stores (word and byte), taken/untaken branches, jumps and call/ret.
MIXED_PROGRAM = """
        li    $t0, 0
        li    $t1, 0x3000
        li    $t3, 0            # loop forever (counter wraps)
loop:   addiu $t0, $t0, 3
        andi  $t2, $t0, 0x1FF
        sll   $t4, $t2, 3
        subu  $t5, $t4, $t2
        sw    $t5, 0($t1)
        lw    $t6, 0($t1)
        sb    $t6, 8($t1)
        lbu   $t7, 8($t1)
        lb    $s0, 8($t1)
        slt   $s1, $t5, $t6
        sltiu $s2, $t6, 0x8000
        xor   $s3, $t6, $t2
        nor   $s4, $t6, $t2
        srl   $s5, $t6, 2
        sra   $s6, $t6, 2
        mult  $t0, $t6
        mflo  $s7
        blez  $t2, skip
        jal   leaf
skip:   bne   $t0, $t3, loop
        j     loop
leaf:   ori   $v0, $t2, 0x10
        jr    $ra
"""


def architectural_state(cpu: MipsCpu) -> tuple:
    return (
        cpu.pc,
        tuple(cpu.registers[:32]),
        cpu.hi,
        cpu.lo,
        cpu.instruction_count,
        cpu.load_count,
        cpu.store_count,
        bytes(cpu.memory._data),
    )


def fresh_cpu(source: str) -> MipsCpu:
    program = assemble(source)
    memory = Memory(size=64 * 1024)
    memory.load_image(program.to_bytes())
    return MipsCpu(memory)


class TestBlockEquivalence:
    @pytest.mark.parametrize("chunk", [1, 2, 3, 7, 17, 64, 1000])
    def test_block_chunking_matches_single_stepping(self, chunk):
        total = 3000
        reference = fresh_cpu(MIXED_PROGRAM)
        blocked = fresh_cpu(MIXED_PROGRAM)
        done = 0
        while done < total:
            budget = min(chunk, total - done)
            executed = blocked.run_block(budget)
            assert 0 < executed <= budget
            for _ in range(executed):
                reference.step()
            done += executed
            assert architectural_state(reference) == architectural_state(blocked)

    def test_run_block_returns_zero_when_halted(self):
        cpu = fresh_cpu(MIXED_PROGRAM)
        cpu.halted = True
        assert cpu.run_block(100) == 0
        assert cpu.instruction_count == 0

    def test_step_is_run_block_of_one(self):
        cpu = fresh_cpu(MIXED_PROGRAM)
        cpu.step()
        assert cpu.instruction_count == 1


class TestDecodeCacheInvalidation:
    def test_self_modifying_code_re_decodes(self):
        # The program overwrites the instruction at `patch` (addiu $t2,$zero,99)
        # with `addiu $t2, $zero, 7` *before* executing it; a stale decode
        # cache would execute the original 99.
        source = """
            la    $t0, patch
            li    $t1, 0x240A0007     # addiu $t2, $zero, 7
            sw    $t1, 0($t0)
        patch:  addiu $t2, $zero, 99
            halt: beq $zero, $zero, halt
        """
        for runner in ("step", "block"):
            cpu = fresh_cpu(source)
            if runner == "step":
                for _ in range(8):
                    cpu.step()
            else:
                cpu.run_block(8)
            assert cpu.read_register(register_number("$t2")) == 7, runner

    def test_self_modifying_code_after_block_warmup(self):
        # Same patch, but the target instruction has already been executed
        # (and therefore decode-cached) once before being overwritten.
        source = """
            li    $s0, 0
        again:
            la    $t0, patch
            li    $t1, 0x240A0007     # addiu $t2, $zero, 7
            beq   $s0, $zero, run_it  # first pass: execute the original
            sw    $t1, 0($t0)         # second pass: patch it
        run_it:
            addiu $s0, $s0, 1
        patch:  addiu $t2, $zero, 99
            li    $t3, 2
            bne   $s0, $t3, again
            halt: beq $zero, $zero, halt
        """
        step_cpu = fresh_cpu(source)
        for _ in range(40):
            step_cpu.step()
        block_cpu = fresh_cpu(source)
        done = 0
        while done < 40:
            done += block_cpu.run_block(40 - done)
        assert architectural_state(step_cpu) == architectural_state(block_cpu)
        assert step_cpu.read_register(register_number("$t2")) == 7

    def test_load_image_reload_and_reset_re_decode(self):
        program_a = assemble("li $v0, 11\nhalt: beq $zero, $zero, halt\n")
        program_b = assemble("li $v0, 22\nhalt: beq $zero, $zero, halt\n")
        memory = Memory(size=64 * 1024)
        memory.load_image(program_a.to_bytes())
        cpu = MipsCpu(memory)
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 11
        # Reload different firmware over the same addresses and reset: the
        # decoded entries for program A must not survive.
        memory.load_image(program_b.to_bytes())
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 22

    def test_external_word_write_invalidates(self):
        cpu = fresh_cpu("li $v0, 5\nhalt: beq $zero, $zero, halt\n")
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 5
        # Patch the first instruction from the outside (ori $v0, $zero, 9).
        # `li` expanded to lui+ori, so the surviving second word ORs in 5:
        # a stale decode would still produce 5, the re-decode yields 9|5.
        cpu.memory.write_word(0, 0x34020009)
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 13

    def test_external_byte_write_into_code_invalidates(self):
        # Sub-word external write: patch only the immediate byte of the
        # surviving `ori $v0, $zero, 5` (li expands to lui+ori).  The
        # watcher's word-aligned span must drop the covering decoded word.
        cpu = fresh_cpu("li $v0, 5\nhalt: beq $zero, $zero, halt\n")
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 5
        cpu.memory.write_byte(4, 9)
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 9

    def test_scheduled_injection_self_modification_is_tick_exact(self):
        # Fault-injected self-modification through the platform's injection
        # API: per-tick and block-stepped runs must retire the same
        # instruction stream around the mutation.
        from repro.circuits import build_rc_filter
        from repro.core import abstract_circuit
        from repro.sim import SquareWave

        model = abstract_circuit(build_rc_filter(1), "out", 50e-9)
        states = []
        for block in (1, 64, 4096):
            platform = SmartSystemPlatform(cpu_block_cycles=block)
            platform.attach_analog_python(model, {"vin": SquareWave(period=40e-6)})
            # Overwrite the firmware's threshold register load with a nop at
            # an off-grid instant (not a multiple of any block size).
            platform.schedule_injection(
                13.37e-6, lambda p=platform: p.memory.poke(4, (0).to_bytes(4, "little"))
            )
            platform.run(50e-6)
            states.append(
                (
                    platform.cpu.instruction_count,
                    platform.cpu.pc,
                    tuple(platform.cpu.registers[:32]),
                    bytes(platform.memory._data),
                )
            )
        assert states[0] == states[1] == states[2]

    def test_clear_invalidates_whole_cache(self):
        cpu = fresh_cpu("li $v0, 5\nhalt: beq $zero, $zero, halt\n")
        cpu.run_block(4)
        cpu.memory.clear()
        cpu.reset()
        cpu.run_block(3)  # all nops now (zeroed memory)
        assert cpu.read_register(register_number("$v0")) == 0
        assert cpu.pc == 12


class TestPeripheralYield:
    def make_bus_cpu(self, source: str):
        reads: list[int] = []
        writes: list[tuple[int, int]] = []

        def bus_read(address: int) -> int:
            reads.append(address)
            return 0x123

        def bus_write(address: int, value: int) -> None:
            writes.append((address, value))

        program = assemble(source)
        memory = Memory(size=64 * 1024)
        memory.load_image(program.to_bytes())
        cpu = MipsCpu(memory, bus_read=bus_read, bus_write=bus_write)
        return cpu, reads, writes

    def test_block_yields_before_mid_block_peripheral_access(self):
        source = """
            lui   $t0, 0x1000
            addiu $t1, $zero, 1
            lw    $t2, 0($t0)        # peripheral load (instruction index 2)
            addiu $t3, $zero, 2
            sw    $t3, 4($t0)        # peripheral store (instruction index 4)
            halt: beq $zero, $zero, halt
        """
        cpu, reads, writes = self.make_bus_cpu(source)
        # The first burst must stop *before* the peripheral load...
        executed = cpu.run_block(100)
        assert executed == 2
        assert reads == [] and writes == []
        # ...which then executes as the first instruction of the next burst.
        executed = cpu.run_block(100)
        assert executed == 2
        assert reads == [0x1000_0000]
        assert writes == []
        executed = cpu.run_block(100)
        assert executed >= 1
        assert writes == [(0x1000_0004, 2)]
        assert cpu.read_register(register_number("$t2")) == 0x123

    def test_bus_callback_halting_the_cpu_stops_the_block(self):
        # A peripheral whose write handler halts the CPU (a power/halt
        # control register) must stop the burst immediately, exactly like
        # per-tick stepping would.
        source = """
            lui   $t0, 0x1000
            addiu $t1, $zero, 1
            sw    $t1, 0($t0)        # the halt register
            addiu $t2, $zero, 99     # must never execute
            halt: beq $zero, $zero, halt
        """
        program = assemble(source)
        memory = Memory(size=64 * 1024)
        memory.load_image(program.to_bytes())
        cpu = MipsCpu(memory, bus_write=lambda address, value: setattr(cpu, "halted", True))
        assert cpu.run_block(100) == 2          # lui + addiu, yield at the store
        assert cpu.run_block(100) == 1          # the halting store itself
        assert cpu.halted
        assert cpu.run_block(100) == 0
        assert cpu.read_register(register_number("$t2")) == 0

    def test_peripheral_window_wins_over_overlapping_ram(self):
        # Exotic config: the peripheral base *inside* the RAM address range.
        # Bus precedence must match the classic _load_word/_store_word paths:
        # at or above peripheral_base the access goes to the bus, never RAM.
        source = """
            li    $t0, 0x8000
            lw    $t1, 0($t0)        # peripheral read, NOT a RAM read
            halt: beq $zero, $zero, halt
        """
        program = assemble(source)
        memory = Memory(size=64 * 1024)
        memory.load_image(program.to_bytes())
        memory.write_word(0x8000, 0xAAAA)  # RAM shadow that must stay hidden
        reads: list[int] = []

        def bus_read(address: int) -> int:
            reads.append(address)
            return 0x5555

        cpu = MipsCpu(memory, bus_read=bus_read, peripheral_base=0x8000)
        done = 0
        while done < 4:
            done += cpu.run_block(4 - done)
        assert reads == [0x8000]
        assert cpu.read_register(register_number("$t1")) == 0x5555

    def test_peripheral_access_allowed_as_first_instruction(self):
        source = """
            lui   $t0, 0x1000
            lw    $t2, 0($t0)
            halt: beq $zero, $zero, halt
        """
        cpu, reads, _ = self.make_bus_cpu(source)
        assert cpu.run_block(1) == 1    # lui
        assert cpu.run_block(1) == 1    # the peripheral load itself
        assert reads == [0x1000_0000]


class TestPlatformBlockScheduling:
    @pytest.mark.parametrize("block", [1, 7, 256, 10_000])
    def test_instruction_count_is_block_size_invariant(self, block):
        from repro.circuits import build_rc_filter
        from repro.core import abstract_circuit
        from repro.sim import SquareWave

        model = abstract_circuit(build_rc_filter(1), "out", 50e-9)
        platform = SmartSystemPlatform(cpu_block_cycles=block)
        platform.attach_analog_python(model, {"vin": SquareWave(period=40e-6)})
        result = platform.run(100e-6)
        # 100 us at 20 MHz: exactly 2000 CPU cycles, one instruction each.
        assert result.instructions == 2000

    def test_signed_helpers_still_exported(self):
        # Regression guard: the ISA helpers remain the public signed-view API.
        assert to_signed_32(0xFFFFFFFF) == -1
