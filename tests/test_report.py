"""Tests of the dashboard generator (``repro.report``).

The layer's guarantees: every chart primitive HTML-escapes the dynamic
text it embeds (span names, fault names, netlist names — ``<``, ``&`` and
quotes included), the rendered page is fully self-contained (no external
reference of any kind, machine-checked), benchmark history appends one
line per commit with atomic replace-on-republish semantics, trend series
carry regression markers from :func:`~repro.perf.baseline.compare_records`,
and the ``repro-report --smoke`` acceptance path — a 16-run traced fault
campaign plus the committed ``BENCH_*.json`` snapshots — produces one HTML
file holding an envelope plot, a coverage matrix, a span timeline and a
multi-point trend line.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.telemetry import TelemetryReport
from repro.perf.baseline import BenchmarkRecord, PerfError
from repro.report import (
    Dashboard,
    Section,
    append_history,
    bench_section,
    collect_ids,
    coverage_matrix_table,
    envelope_chart,
    fault_section,
    fuzz_section,
    history_path,
    load_history,
    load_history_file,
    merge_latest,
    self_contained_problems,
    telemetry_section,
    timeline_chart,
    trend_chart,
    trend_series,
    verify_dashboard,
)
from repro.report.svg import (
    data_table,
    decimate,
    esc,
    kv_table,
    nice_ticks,
    series_class,
    stat_tile,
    warning_banner,
)

#: A name exercising every character class the escapers must neutralize.
NASTY = '<script>&"evil"&\'x\'</script>'


def record(
    name: str = "bench",
    commit: "str | None" = "aaaabbbbcccc",
    smoke: bool = True,
    **metrics: float,
) -> BenchmarkRecord:
    metrics = metrics or {"steps_per_second": 100.0}
    return BenchmarkRecord(
        name=name,
        metrics=dict(metrics),
        maximize=tuple(metrics),
        meta={"git_commit": commit, "git_dirty": False, "smoke": smoke},
    )


def telemetry(events=(), dropped: int = 0, counters=None) -> TelemetryReport:
    return TelemetryReport(
        engine="test-engine",
        scenarios=4,
        executed=4,
        loaded=0,
        wall=2.0,
        workers=1,
        latencies=np.asarray([0.1, 0.2, 0.3, 0.4]),
        counters=dict(counters or {}),
        events=list(events),
        dropped=dropped,
    )


def span(name: str, ts: float, dur: float, pid: int = 0, args=None) -> dict:
    return {
        "ph": "X", "name": name, "cat": "t", "ts": ts, "dur": dur,
        "args": args, "pid": pid,
    }


class TestSvgPrimitives:
    def test_nice_ticks_cover_the_domain_with_clean_steps(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] == 0.0
        assert ticks[-1] == 10.0
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_series_slots_fold_past_eight_never_cycle(self):
        assert series_class(0) == "s1"
        assert series_class(7) == "s8"
        assert series_class(8) == "s-other"
        assert series_class(100) == "s-other"

    def test_decimation_is_conservative_for_envelopes(self):
        values = list(range(1000))
        values[500] = 10_000  # a single excursion must survive pooling
        assert max(decimate(values, 50, "max")) == 10_000
        assert min(decimate([-v for v in values], 50, "min")) == -10_000
        assert len(decimate(values, 50, "mean")) == 50
        assert decimate([1.0, 2.0], 50, "max") == [1.0, 2.0]

    def test_envelope_chart_band_and_center(self):
        x = list(range(100))
        chart = envelope_chart(
            x, [0.0] * 100, [2.0] * 100, [1.0] * 100, title="env",
        )
        assert "<svg" in chart and "polygon" in chart and "polyline" in chart
        assert 'class="band s1-fill"' in chart
        assert "nan" not in chart.lower()

    def test_envelope_chart_empty_inputs_degrade_to_a_note(self):
        assert "no samples" in envelope_chart([], [], [], [], title="env")
        assert "no samples" in envelope_chart([1], [], [], [], title="env")

    def test_trend_chart_marks_regressions_as_critical(self):
        chart = trend_chart(
            ["aaaa", "bbbb"], [100.0, 50.0], title="m",
            regressed={1: "lost 50%"},
        )
        assert 'class="marker st-critical"' in chart
        assert "REGRESSION: lost 50%" in chart
        # non-regressed point keeps the series marker
        assert 'class="marker s1-fill-solid"' in chart

    def test_single_point_trend_has_no_line(self):
        chart = trend_chart(["aaaa"], [1.0], title="m")
        assert "polyline" not in chart
        assert "circle" in chart

    def test_timeline_lanes_per_pid_and_fold_past_eight_names(self):
        spans = [span(f"name{i}", float(i), 1.0, pid=i % 2) for i in range(12)]
        chart = timeline_chart(spans)
        assert chart.count("pid 0") == 1 and chart.count("pid 1") == 1
        assert "s-other-fill" in chart  # 12 names > 8 slots: folded, not cycled
        assert "4 more" in chart

    def test_timeline_truncation_is_loud(self):
        spans = [span("s", float(i), 1.0) for i in range(1600)]
        chart = timeline_chart(spans)
        assert "1500 longest of 1600" in chart
        assert chart.count("<rect") == 1500

    def test_coverage_matrix_counts_stay_text_color_only_washes(self):
        matrix = {"drift": {"silent": 2, "crash": 1}}
        table = coverage_matrix_table(matrix, ["silent", "crash"])
        assert "st-critical-wash" in table and "st-neutral-wash" in table
        assert "--cell-alpha" in table
        # glyph + label, never color alone
        assert "✗" in table and "silent" in table


class TestHtmlEscaping:
    """Every emitter must neutralize ``<``, ``&`` and quotes in dynamic text."""

    def assert_escaped(self, markup: str):
        assert "<script>" not in markup
        assert '&"' not in markup
        assert "&amp;" in markup and "&lt;" in markup and "&quot;" in markup

    def test_esc_handles_all_quote_kinds(self):
        escaped = esc(NASTY)
        assert "<" not in escaped.replace("&lt;", "")
        assert "&quot;" in escaped and "&#x27;" in escaped

    def test_tables_tiles_and_banner(self):
        self.assert_escaped(stat_tile(NASTY, NASTY, NASTY))
        self.assert_escaped(kv_table([(NASTY, NASTY)], caption=NASTY))
        self.assert_escaped(data_table([NASTY], [[NASTY]], caption=NASTY))
        self.assert_escaped(warning_banner(NASTY))

    def test_chart_titles_and_labels(self):
        self.assert_escaped(
            envelope_chart([0, 1], [0, 0], [1, 1], [0.5, 0.5], title=NASTY,
                           x_label=NASTY, center_label=NASTY, band_label=NASTY)
        )
        self.assert_escaped(trend_chart([NASTY], [1.0], title=NASTY))

    def test_span_names_in_timeline(self):
        self.assert_escaped(timeline_chart([span(NASTY, 0.0, 1.0)]))

    def test_fault_kind_names_in_matrix(self):
        self.assert_escaped(
            coverage_matrix_table({NASTY: {"silent": 1}}, ["silent"])
        )

    def test_section_titles_and_page_chrome(self):
        page = Dashboard(title=NASTY, subtitle=NASTY).add(
            Section("s", NASTY, "<p>ok</p>")
        ).render()
        self.assert_escaped(page)

    def test_netlist_names_in_fuzz_section(self):
        class Report:
            seed, checked, worst_error = 0, 1, 0.0
            failures = [(NASTY, NASTY)]
            reproducers = [NASTY]

        self.assert_escaped(fuzz_section(Report()).body)

    def test_telemetry_span_names(self):
        report = telemetry(events=[span(NASTY, 0.0, 1.0)])
        self.assert_escaped(telemetry_section(report).body)


class TestSelfContainment:
    def test_clean_page_has_no_problems(self):
        page = Dashboard().add(Section("a", "A", "<p>hi</p>")).render()
        assert self_contained_problems(page) == []
        assert verify_dashboard(page, ("a",)) == []

    @pytest.mark.parametrize(
        "poison",
        [
            '<a href="https://example.com">x</a>',
            '<script src="cdn.js"></script>',
            '<link rel="stylesheet" href="style.css">',
            '<img src="chart.png">',
            '<iframe src="page.html"></iframe>',
            "<style>@import 'other.css';</style>",
            "<style>body{background:url(texture.png)}</style>",
        ],
    )
    def test_every_external_reference_kind_is_caught(self, poison):
        page = Dashboard().add(Section("a", "A", poison)).render()
        assert self_contained_problems(page)
        assert verify_dashboard(page)

    def test_missing_anchor_is_a_violation(self):
        page = Dashboard().add(Section("a", "A", "<p>hi</p>")).render()
        assert any(
            "missing section anchor #b" in problem
            for problem in verify_dashboard(page, ("a", "b"))
        )

    def test_collect_ids_sees_section_anchors(self):
        page = Dashboard().add(Section("first", "F", "")).add(
            Section("second", "S", "")
        ).render()
        assert {"first", "second"} <= collect_ids(page)


class TestHistory:
    def test_append_creates_one_line_per_commit(self, tmp_path):
        append_history(record(commit="a" * 12), tmp_path)
        append_history(record(commit="b" * 12), tmp_path)
        lines = history_path(tmp_path, "bench").read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["meta"]["git_commit"] for line in lines] == [
            "a" * 12, "b" * 12,
        ]

    def test_republish_same_commit_replaces_not_duplicates(self, tmp_path):
        append_history(record(steps_per_second=100.0), tmp_path)
        append_history(record(steps_per_second=120.0), tmp_path)
        records = load_history_file(history_path(tmp_path, "bench"))
        assert len(records) == 1
        assert records[0].metrics["steps_per_second"] == 120.0

    def test_no_git_identity_always_appends(self, tmp_path):
        append_history(record(commit=None), tmp_path)
        append_history(record(commit=None), tmp_path)
        assert len(load_history_file(history_path(tmp_path, "bench"))) == 2

    def test_load_history_maps_name_to_records(self, tmp_path):
        append_history(record(name="iss"), tmp_path)
        append_history(record(name="de_kernel"), tmp_path)
        history = load_history(tmp_path)
        assert set(history) == {"iss", "de_kernel"}
        assert load_history(tmp_path / "missing") == {}

    def test_malformed_line_names_file_and_line(self, tmp_path):
        path = history_path(tmp_path, "bench")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"name": "bench", "metrics": {"m": 1.0}}\n{"broken": 1}\n')
        with pytest.raises(PerfError, match=r"bench\.jsonl:2"):
            load_history_file(path)

    def test_trend_series_marks_regressions(self):
        records = [
            record(commit="a" * 12, steps_per_second=100.0),
            record(commit="b" * 12, steps_per_second=30.0),  # lost 70%
            record(commit="c" * 12, steps_per_second=31.0),
        ]
        (trend,) = trend_series("bench", records, tolerance=0.30)
        assert trend.metric == "steps_per_second"
        assert [point.label for point in trend.points] == [
            "aaaaaaaa", "bbbbbbbb", "cccccccc",
        ]
        assert trend.points[0].regression is None
        assert trend.points[1].regression is not None
        assert trend.points[2].regression is None

    def test_trend_series_skips_cross_workload_comparison(self):
        records = [
            record(commit="a" * 12, smoke=True, steps_per_second=1000.0),
            record(commit="b" * 12, smoke=False, steps_per_second=10.0),
        ]
        (trend,) = trend_series("bench", records)
        assert all(point.regression is None for point in trend.points)

    def test_merge_latest_replaces_same_commit_else_appends(self):
        history = {"bench": [record(commit="a" * 12, steps_per_second=1.0),
                             record(commit="b" * 12, steps_per_second=2.0)]}
        merged = merge_latest(
            history, {"bench": record(commit="b" * 12, steps_per_second=3.0)}
        )
        assert [r.metrics["steps_per_second"] for r in merged["bench"]] == [1.0, 3.0]
        merged = merge_latest(
            history, {"bench": record(commit="c" * 12, steps_per_second=4.0)}
        )
        assert len(merged["bench"]) == 3
        # history dict is not mutated
        assert len(history["bench"]) == 2

    def test_bench_section_renders_multi_point_trend(self):
        series = {"iss": [record(name="iss", commit="a" * 12),
                          record(name="iss", commit="b" * 12)]}
        section = bench_section(series)
        assert section.slug == "bench"
        assert 'id="bench-iss"' in section.body
        assert "polyline" in section.body  # >= 2 points -> an actual line


class TestTelemetrySection:
    def test_truncated_report_warns_loudly(self):
        section = telemetry_section(telemetry(dropped=7))
        assert "TRUNCATED" in section.body
        assert "7 event(s)" in section.body

    def test_complete_report_has_no_warning(self):
        assert "TRUNCATED" not in telemetry_section(telemetry()).body

    def test_counters_and_spans_render(self):
        report = telemetry(
            events=[span("simulate", 0.0, 1.0), span("simulate", 1.0, 2.0)],
            counters={"store.hits": 3.0},
        )
        body = telemetry_section(report).body
        assert "store.hits" in body
        assert "simulate" in body
        assert "<svg" in body


class TestSmokeAcceptance:
    """The acceptance path: one invocation, every visualization present."""

    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        from repro.report.cli import main

        out = tmp_path_factory.mktemp("report") / "dashboard.html"
        code = main(["--smoke", "--out", str(out)])
        return code, out.read_text(encoding="utf-8")

    def test_exit_zero_and_verified(self, smoke):
        code, page = smoke
        assert code == 0
        assert verify_dashboard(page, ("faults", "telemetry", "bench")) == []

    def test_sixteen_run_campaign_rendered(self, smoke):
        _, page = smoke
        assert "16 runs" in page

    def test_envelope_coverage_timeline_and_trend_all_present(self, smoke):
        _, page = smoke
        assert "ADC stream envelope" in page
        assert 'class="matrix"' in page  # coverage matrix
        assert "Span timeline" in page
        # the committed history gives >= 2 points, so trend polylines exist
        assert 'class="chart trend"' in page
        assert page.count('class="line s1"') >= 2

    def test_page_is_one_self_contained_file(self, smoke):
        _, page = smoke
        assert self_contained_problems(page) == []
        assert "<style>" in page and "prefers-color-scheme" in page


class TestFaultSectionUnit:
    def test_fault_section_from_smoke_campaign(self):
        from repro.report.cli import run_smoke_campaign

        result = run_smoke_campaign()
        section = fault_section(result)
        assert section.slug == "faults"
        assert "coverage" in section.body.lower() or "Coverage" in section.body
        assert "<svg" in section.body  # the envelope plot
        assert result.n_runs == 16
