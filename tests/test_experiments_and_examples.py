"""Tests for the experiment harness and smoke tests for the examples."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentRow,
    ExperimentTable,
    abstraction_processing_times,
    measure_order,
    prepare_benchmarks,
    scaled_duration,
    simulated_time_scale,
)
from repro.experiments.table1 import run_component as run_table1_component
from repro.experiments.table2 import run_component as run_table2_component
from repro.experiments.table3 import build_platform, run_component as run_table3_component

SHORT = 40e-6  # very short simulated time: structure checks, not timing quality


@pytest.fixture(scope="module")
def prepared_rc1():
    return prepare_benchmarks(["RC1"])[0]


class TestCommon:
    def test_prepare_benchmarks_defaults_to_paper_set(self):
        names = [prepared.name for prepared in prepare_benchmarks()]
        assert names == ["2IN", "RC1", "RC20", "OA"]

    def test_scaled_duration_keeps_minimum_steps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIME_SCALE", "1e-9")
        assert scaled_duration(100e-3, minimum_steps=1000) == pytest.approx(1000 * 50e-9)

    def test_scaled_duration_snaps_to_the_timestep_grid(self, monkeypatch):
        """Regression: an arbitrary scale factor must still produce a duration
        the fixed-step runners accept as an integer step count."""
        from repro.sim import resolve_steps

        monkeypatch.setenv("REPRO_SIM_TIME_SCALE", "0.1234567")
        duration = scaled_duration(100e-3)
        resolve_steps(duration, 50e-9)  # must not raise

    def test_time_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIME_SCALE", "0.5")
        assert simulated_time_scale() == 0.5
        monkeypatch.setenv("REPRO_SIM_TIME_SCALE", "-1")
        with pytest.raises(ValueError):
            simulated_time_scale()

    def test_table_formatting(self):
        table = ExperimentTable("demo")
        table.add(ExperimentRow("RC1", "C++", "algo", 0.5, error=1e-6, speedup=10.0))
        text = table.to_text()
        assert "RC1" in text and "C++" in text and "10.00x" in text
        assert table.as_dicts()[0]["speedup"] == 10.0


class TestTable1:
    def test_rows_structure_and_ordering(self, prepared_rc1):
        rows = run_table1_component(prepared_rc1, SHORT)
        targets = [row.target for row in rows]
        assert targets == ["Verilog-AMS", "SC-AMS/ELN", "SC-AMS/TDF", "SC-DE", "C++"]
        reference = rows[0]
        assert reference.error == 0.0 and reference.speedup == 1.0
        for row in rows[1:]:
            assert row.error is not None and row.error < 5e-2
            assert row.speedup is not None and row.speedup > 1.0
        # The generated plain-code model is the fastest target, as in the paper.
        assert min(rows[1:], key=lambda row: row.simulation_time).target == "C++"

    def test_reference_can_be_skipped(self, prepared_rc1):
        rows = run_table1_component(prepared_rc1, SHORT, include_reference=False)
        assert [row.target for row in rows] == ["SC-AMS/ELN", "SC-AMS/TDF", "SC-DE", "C++"]
        assert all(row.error is None for row in rows)


class TestTable2:
    def test_speedups_relative_to_eln(self, prepared_rc1):
        rows = run_table2_component(prepared_rc1, SHORT)
        assert rows[0].target == "SC-AMS/ELN" and rows[0].speedup == 1.0
        cpp = [row for row in rows if row.target == "C++"][0]
        assert cpp.speedup is not None and cpp.speedup > 1.0

    def test_processing_times_report(self):
        times = abstraction_processing_times(["RC1"])
        assert "RC1" in times
        entry = times["RC1"]
        assert entry["total"] > 0.0
        assert entry["nodes"] == 3.0
        assert entry["branches"] == 3.0


class TestTable3:
    def test_every_style_produces_a_platform(self, prepared_rc1):
        for style in ("python", "de", "tdf", "eln", "cosim"):
            platform = build_platform(prepared_rc1, style)
            assert platform.analog_style is not None
        with pytest.raises(ValueError):
            build_platform(prepared_rc1, "fpga")

    def test_component_rows(self, prepared_rc1):
        styles = (("C++", "algo", "python"), ("SC-DE", "algo", "de"))
        rows, results = run_table3_component(prepared_rc1, SHORT, styles=styles)
        assert [row.target for row in rows] == ["C++", "SC-DE"]
        assert rows[0].speedup == 1.0  # first style is the baseline
        assert results["python"].instructions == results["de"].instructions

    def test_sweep_component_opens_the_design_space(self, prepared_rc1):
        from repro.experiments.table3 import sweep_component
        from repro.sweep import GridSpec

        result = sweep_component(
            prepared_rc1,
            SHORT,
            styles=("python",),
            parameters=GridSpec(axes={"resistance": [4e3, 6e3]}),
        )
        assert result.n_scenarios == 2
        resistances = {s.params["resistance"] for s in result.scenarios}
        assert resistances == {4e3, 6e3}


class TestAbstractionCostStudy:
    def test_measure_order_reports_sizes(self):
        sample = measure_order(2)
        assert sample.nodes == 4
        assert sample.branches == 5
        assert sample.total_time > 0.0
        assert set(sample.timings) == {"acquisition", "enrichment", "assemble", "solve"}

    def test_format_sweep(self):
        from repro.experiments import format_sweep, run_sweep

        text = format_sweep(run_sweep(orders=[1, 2]))
        assert "order" in text and "total" in text


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestExamples:
    """The examples must at least import and expose a main() entry point."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "smart_system_demo.py",
            "design_space_exploration.py",
            "codegen_tour.py",
            "sweep_tour.py",
            "platform_sweep_tour.py",
            "resume_tour.py",
            "vams_zoo_tour.py",
        ],
    )
    def test_example_defines_main(self, script):
        namespace = runpy.run_path(str(EXAMPLES / script), run_name="not_main")
        assert callable(namespace.get("main"))

    def test_codegen_tour_runs_end_to_end(self, capsys):
        namespace = runpy.run_path(str(EXAMPLES / "codegen_tour.py"), run_name="not_main")
        namespace["main"]()
        output = capsys.readouterr().out
        assert "SCA_TDF_MODULE" in output
        assert "Generated C++" in output

    def test_reproduce_tables_cli_help(self):
        from repro.experiments.report import main

        with pytest.raises(SystemExit):
            main(["--help"])
