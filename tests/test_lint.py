"""Tests of the three-layer static-analysis pass (:mod:`repro.lint`).

Layer 1 (netlist semantics) must report seeded defects with *exact*
positions while the committed corpus, every paper benchmark and the
generated zoo stay error-free; layer 2 (codegen artifacts) mirrors the
SignalFlowModel contract and checks emitted python/C sources; layer 3
(determinism self-lint) keeps ``src/repro`` clean against an empty
baseline.  The emitters round-trip and escape hostile names, the strict
gates surface as :class:`LintError`/``lint-rejected``, and the zoo's
``plant_defect`` hook makes the linter's recall fuzz-testable.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from textwrap import dedent

import numpy as np
import pytest

from repro.circuits import paper_benchmarks, rc_benchmark
from repro.core import AbstractionFlow
from repro.core.codegen.native_backend import NativeGenerator
from repro.core.codegen.numpy_backend import NumpyGenerator
from repro.core.signalflow import Assignment, SignalFlowModel
from repro.errors import ReproError
from repro.expr import Access, BinaryOp, Constant, Variable
from repro.fault import (
    VERDICT_LINT,
    FaultCampaignRunner,
    FaultCampaignSpec,
    ResistorShortFault,
)
from repro.lint import (
    Diagnostic,
    LintError,
    LintReport,
    from_json,
    lint_artifact,
    lint_c_source,
    lint_circuit,
    lint_model,
    lint_netlist,
    lint_python_file,
    lint_python_source,
    lint_repo,
    lint_source,
    load_baseline,
    to_json,
    to_markdown,
    to_text,
    write_baseline,
)
from repro.lint.cli import main as lint_main
from repro.network import VCVS, Circuit, Resistor, VoltageSource
from repro.sim import SquareWave
from repro.vams import parse_source
from repro.vams.ast import POTENTIAL
from repro.vams.classify import CONSERVATIVE, SIGNAL_FLOW, classify_module
from repro.zoo.cli import run_recall_campaign
from repro.zoo.generate import (
    BREAKABLE_RULES,
    generate_netlist,
    plant_defect,
    render,
)
from repro.zoo.oracle import LINT, OracleConfig, check_source

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"
CORPUS = Path(__file__).resolve().parent / "corpus"

HEADER = '`include "disciplines.vams"\n'


def single(report: LintReport, rule: str) -> Diagnostic:
    """The one diagnostic of ``rule`` in ``report`` (asserts exactly one)."""
    found = report.by_rule(rule)
    assert len(found) == 1, f"expected one {rule}, got {list(report)}"
    return found[0]


def times_two(variable: str = "u"):
    return BinaryOp("*", Constant(2.0), Variable(variable))


# ---------------------------------------------------------------------------
# Layer 1: seeded defects with exact positions
# ---------------------------------------------------------------------------
class TestNetlistRulesPositions:
    def test_floating_node_points_at_the_declaration(self):
        source = HEADER + dedent(
            """\
            module floater(vin, out);
              input vin; output out;
              electrical vin, out, dangle, gnd;
              ground gnd;
              analog begin
                V(out) <+ 2 * V(vin);
                I(out, dangle) <+ V(out, dangle) / 3300;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source, file="floater.va"), "floating-node")
        assert "dangle" in diagnostic.message
        assert diagnostic.file == "floater.va"
        # line 4 is the electrical declaration; column 24 is 'dangle' itself
        assert (diagnostic.line, diagnostic.column) == (4, 24)

    def test_vsource_loop_positioned_at_the_offending_contribution(self):
        source = HEADER + dedent(
            """\
            module vloop(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                V(out) <+ 1.5;
                V(out) <+ 2.5;
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source), "vsource-loop")
        assert diagnostic.severity == "error"
        # the loop closes at the *second* potential drive of 'out' (line 8)
        assert (diagnostic.line, diagnostic.column) == (8, 5)

    def test_isource_cutset_flags_the_all_current_node(self):
        source = HEADER + dedent(
            """\
            module cutset(vin, out);
              input vin; output out;
              electrical vin, out, mid, gnd;
              ground gnd;
              analog begin
                I(vin, mid) <+ 1e-3;
                I(mid, gnd) <+ 2e-3;
                V(out) <+ V(mid);
                I(out, gnd) <+ V(out, gnd) / 1000;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source), "isource-cutset")
        assert "mid" in diagnostic.message
        assert (diagnostic.line, diagnostic.column) == (4, 24)

    def test_nonphysical_negative_resistor(self):
        source = HEADER + dedent(
            """\
            module negr(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                V(out, gnd) <+ -50 * I(out, gnd);
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source), "nonphysical-value")
        assert diagnostic.severity == "error"
        assert (diagnostic.line, diagnostic.column) == (7, 5)

    def test_suspicious_magnitude_is_a_warning_not_an_error(self):
        source = HEADER + dedent(
            """\
            module huge(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                V(out, gnd) <+ 1e12 * I(out, gnd);
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        report = lint_source(source)
        assert report.ok  # warnings do not fail a lint run
        diagnostic = single(report, "suspicious-magnitude")
        assert diagnostic.severity == "warning"
        assert (diagnostic.line, diagnostic.column) == (7, 5)

    def test_zero_value_short_found_before_simplify_folds_it(self):
        source = HEADER + dedent(
            """\
            module zeroshort(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                V(out, gnd) <+ 0 * I(out, gnd);
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source), "zero-value")
        assert (diagnostic.line, diagnostic.column) == (7, 5)

    def test_zero_divisor_is_a_zero_value_error_too(self):
        source = HEADER + dedent(
            """\
            module zerodiv(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                I(out, gnd) <+ V(out, gnd) / 0;
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source), "zero-value")
        assert diagnostic.line == 7
        assert "division by zero" in diagnostic.message

    def test_dead_arm_on_literal_condition(self):
        source = HEADER + dedent(
            """\
            module deadarm(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                if (1 > 2)
                  V(out) <+ 2 * V(vin);
                else
                  V(out) <+ V(vin);
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        diagnostic = single(lint_source(source), "dead-arm")
        assert diagnostic.severity == "warning"
        assert (diagnostic.line, diagnostic.column) == (7, 5)
        assert "never executes" in diagnostic.message

    def test_parameter_conditions_are_not_dead(self):
        source = HEADER + dedent(
            """\
            module alive(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              parameter real gain = 2.0;
              analog begin
                if (gain >= 1.0)
                  V(out) <+ gain * V(vin);
                else
                  V(out) <+ V(vin);
                I(vin, out) <+ V(vin, out) / 1000;
              end
            endmodule
            """
        )
        assert not lint_source(source).by_rule("dead-arm")

    def test_unused_parameter_and_net(self):
        source = HEADER + dedent(
            """\
            module unused(vin, out);
              input vin; output out;
              electrical vin, out, spare, gnd;
              ground gnd;
              parameter real ghost = 5.0;
              analog begin
                V(out) <+ 2 * V(vin);
              end
            endmodule
            """
        )
        report = lint_source(source)
        parameter = single(report, "unused-parameter")
        assert "ghost" in parameter.message
        assert (parameter.line, parameter.column) == (6, 18)
        net = single(report, "unused-net")
        assert "spare" in net.message
        assert (net.line, net.column) == (4, 24)

    def test_parameter_used_only_by_another_default_is_not_unused(self):
        source = HEADER + dedent(
            """\
            module chained(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              parameter real base = 1000.0;
              parameter real r = 2 * base;
              analog begin
                I(vin, out) <+ V(vin, out) / r;
                I(out, gnd) <+ V(out, gnd) / r;
              end
            endmodule
            """
        )
        assert not lint_source(source).by_rule("unused-parameter")

    def test_parse_error_becomes_a_positioned_diagnostic(self):
        report = lint_source(HEADER + "module broken(;\nendmodule\n")
        diagnostic = single(report, "parse-error")
        assert diagnostic.severity == "error"
        assert (diagnostic.line, diagnostic.column) == (2, 15)

    def test_mixed_description_advisory_is_info(self):
        source = HEADER + dedent(
            """\
            module mixedmod(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                I(vin, out) <+ V(vin, out) / 1000;
                I(out, gnd) <+ V(out, gnd) / 2000;
                V(out) <+ 2 * V(vin);
              end
            endmodule
            """
        )
        report = lint_source(source)
        assert report.ok
        advisory = single(report, "mixed-description")
        assert advisory.severity == "info"
        # anchored at the signal-flow statement that makes the module mixed
        assert advisory.line == 9


# ---------------------------------------------------------------------------
# Layer 1: programmatic circuits and the clean committed surfaces
# ---------------------------------------------------------------------------
class TestCircuitAndCleanSurfaces:
    def test_lint_circuit_flags_mutated_nonphysical_resistor(self):
        # Fault models mutate via setattr, bypassing __post_init__ — the
        # linter must catch what construction-time validation cannot.
        circuit = rc_benchmark(1).circuit()
        resistor = circuit.branch("r1").component
        assert isinstance(resistor, Resistor)
        resistor.resistance = -1.0
        report = lint_circuit(circuit)
        assert not report.ok
        assert "r1" in single(report, "nonphysical-value").message

    def test_lint_circuit_clean_on_benchmarks(self):
        for benchmark in paper_benchmarks():
            assert lint_circuit(benchmark.circuit()).ok, benchmark.name

    def test_controlled_source_sense_nets_are_not_floating(self):
        circuit = Circuit("probe")
        circuit.add(VoltageSource(1.0), "vin", "gnd", name="vs")
        circuit.add(Resistor(1e3), "vin", "out", name="r1")
        circuit.add(Resistor(1e3), "out", "gnd", name="r2")
        circuit.add(VCVS(2.0, "out", "gnd"), "amp_out", "gnd", name="amp")
        circuit.add(Resistor(1e3), "amp_out", "gnd", name="rl")
        assert lint_circuit(circuit).ok

    def test_committed_corpora_and_benchmarks_have_zero_errors(self):
        report = LintReport()
        for path in sorted(CORPUS.glob("*.va")):
            report.extend(lint_source(path.read_text(), file=str(path)))
        for path in sorted((SRC_REPRO / "zoo" / "corpus").glob("*.va")):
            report.extend(lint_source(path.read_text(), file=str(path)))
        for benchmark in paper_benchmarks():
            report.extend(lint_source(benchmark.vams_source, file=benchmark.name))
        assert report.ok, to_text(report)

    def test_fifty_seed7_zoo_netlists_lint_clean(self):
        report = LintReport()
        for index in range(50):
            report.extend(lint_netlist(generate_netlist(7, index)))
        assert report.ok, to_text(report)


# ---------------------------------------------------------------------------
# Layer 2: IR, generated sources, artifacts
# ---------------------------------------------------------------------------
class TestArtifactRules:
    def model(self, **overrides) -> SignalFlowModel:
        fields = dict(
            name="m",
            inputs=["u"],
            outputs=["y"],
            assignments=[Assignment("y", times_two())],
            state_variables=[],
            initial_state={},
            timestep=1e-6,
        )
        fields.update(overrides)
        return SignalFlowModel(**fields)

    def test_clean_model_passes(self):
        assert lint_model(self.model()).ok

    def test_undefined_reference(self):
        model = self.model(assignments=[Assignment("y", times_two("ghost"))])
        assert "ghost" in single(lint_model(model), "ir-undefined-reference").message

    def test_duplicate_target(self):
        model = self.model(
            assignments=[
                Assignment("y", Variable("u")),
                Assignment("y", times_two()),
            ]
        )
        assert lint_model(model).by_rule("ir-duplicate-target")

    def test_output_never_computed(self):
        model = self.model(outputs=["y", "z"])
        assert "z" in single(lint_model(model), "ir-output-never-computed").message

    def test_nonfinite_constant_and_initial_state(self):
        model = self.model(
            assignments=[
                Assignment("y", BinaryOp("*", Constant(float("inf")), Variable("u")))
            ],
            state_variables=["y"],
            initial_state={"y": float("nan")},
        )
        assert len(lint_model(model).by_rule("ir-nonfinite-constant")) == 2

    def test_nonpositive_timestep(self):
        assert lint_model(self.model(timestep=0.0)).by_rule("ir-nonpositive-timestep")

    def test_abstracted_benchmark_models_lint_clean(self):
        for benchmark in paper_benchmarks():
            flow = AbstractionFlow(1e-6)
            model = flow.abstract(
                benchmark.circuit(), [benchmark.output], name=benchmark.name
            ).model
            assert lint_model(model).ok, benchmark.name

    def test_python_syntax_error_positioned(self):
        diagnostic = single(
            lint_python_source("def broken(:\n    pass\n"), "py-syntax-error"
        )
        assert diagnostic.line == 1

    def test_python_nonfinite_literals(self):
        report = lint_python_source("x = 1e999\ny = float('nan')\n")
        assert len(report.by_rule("py-nonfinite-literal")) == 2

    def test_state_write_before_read(self):
        code = dedent(
            """\
            class Kernel:
                def __init__(self):
                    self._prev_v = 0.0

                def step(self, u):
                    self._prev_v = u
                    return self._prev_v
            """
        )
        diagnostic = single(lint_python_source(code), "py-state-write-before-read")
        assert diagnostic.line == 6

    def test_state_read_then_write_is_fine(self):
        code = dedent(
            """\
            class Kernel:
                def __init__(self):
                    self._prev_v = 0.0

                def step(self, u):
                    value = self._prev_v + u
                    self._prev_v = value
                    return value
            """
        )
        assert lint_python_source(code).ok

    def test_reset_may_seed_state_like_init(self):
        code = dedent(
            """\
            class Kernel:
                def reset(self):
                    self._prev_v = 0.0
            """
        )
        assert not lint_python_source(code).by_rule("py-state-write-before-read")

    def test_emitted_numpy_batch_lints_clean(self):
        flow = AbstractionFlow(1e-6)
        model = flow.abstract(rc_benchmark(1).circuit(), ["out"], name="rc").model
        artifact = NumpyGenerator().generate_batch([model])
        source_report = lint_python_source(artifact.code.source)
        assert source_report.ok, to_text(source_report)
        assert lint_artifact(artifact).ok

    def test_emitted_c_source_lints_clean(self):
        flow = AbstractionFlow(1e-6)
        model = flow.abstract(rc_benchmark(1).circuit(), ["out"], name="rc").model
        report = lint_c_source(NativeGenerator().generate(model).source)
        assert report.ok, to_text(report)

    def test_c_undefined_identifier_and_nonfinite(self):
        code = dedent(
            """\
            void step(const double *params, double *state) {
                state[0] = mystery_call(params[0]);
                state[1] = INFINITY;
            }
            """
        )
        report = lint_c_source(code)
        assert any(
            "mystery_call" in d.message
            for d in report.by_rule("c-undefined-identifier")
        )
        assert report.by_rule("c-nonfinite-literal")

    def test_artifact_shape_mismatch(self):
        class FakeArtifact:
            code = "x = 1\n"
            parameters = np.zeros((2, 3))
            initial_state = np.zeros((1, 4))  # wrong scenario count
            n_scenarios = 3

        assert lint_artifact(FakeArtifact()).by_rule("artifact-shape-mismatch")

    def test_artifact_nonfinite_data(self):
        class FakeArtifact:
            code = "x = 1\n"
            parameters = np.array([[1.0, float("nan")]])
            initial_state = np.zeros((1, 2))
            n_scenarios = 2

        assert lint_artifact(FakeArtifact()).by_rule("artifact-nonfinite-data")


# ---------------------------------------------------------------------------
# Layer 3: the determinism self-lint
# ---------------------------------------------------------------------------
class TestSelfCheck:
    def lint_text(self, tmp_path, relative: str, text: str) -> LintReport:
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return lint_python_file(path, root=tmp_path)

    def test_bare_except_flagged_anywhere(self, tmp_path):
        report = self.lint_text(
            tmp_path, "anywhere.py", "try:\n    pass\nexcept:\n    pass\n"
        )
        assert single(report, "bare-except").line == 3

    def test_unseeded_default_rng(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "engine.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert single(report, "unseeded-rng").line == 2

    def test_seeded_default_rng_ok(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "engine.py",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
        )
        assert not report.by_rule("unseeded-rng")

    def test_global_random_and_numpy_global_state(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "noise.py",
            "import random\nimport numpy as np\n"
            "a = random.random()\nb = np.random.rand(3)\n",
        )
        assert len(report.by_rule("unseeded-rng")) == 2

    def test_seeds_module_is_exempt(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "sweep/seeds.py",
            "import numpy as np\nroot = np.random.default_rng()\n",
        )
        assert not report.by_rule("unseeded-rng")

    def test_wall_clock_only_matters_in_store(self, tmp_path):
        source = "import time\nstamp = time.time()\n"
        assert self.lint_text(tmp_path, "store/keys.py", source).by_rule(
            "wall-clock-in-key-path"
        )
        assert not self.lint_text(tmp_path, "obs/trace.py", source).by_rule(
            "wall-clock-in-key-path"
        )

    def test_nonatomic_write_in_store_except_atomic_module(self, tmp_path):
        source = "from pathlib import Path\nPath('x').write_text('data')\n"
        assert self.lint_text(tmp_path, "store/index.py", source).by_rule(
            "nonatomic-write"
        )
        assert not self.lint_text(tmp_path, "store/atomic.py", source).by_rule(
            "nonatomic-write"
        )

    def test_dict_order_digest(self, tmp_path):
        bad = "import json\ntext = json.dumps({'b': 1, 'a': 2})\n"
        good = "import json\ntext = json.dumps({'b': 1}, sort_keys=True)\n"
        assert self.lint_text(tmp_path, "store/keys.py", bad).by_rule(
            "dict-order-digest"
        )
        assert not self.lint_text(tmp_path, "store/keys.py", good).by_rule(
            "dict-order-digest"
        )

    def test_src_repro_is_clean_with_an_empty_baseline(self):
        report = lint_repo(SRC_REPRO)
        assert len(report) == 0, to_text(report)


# ---------------------------------------------------------------------------
# Diagnostics, emitters, baseline
# ---------------------------------------------------------------------------
class TestDiagnosticsAndEmitters:
    def hostile_report(self) -> LintReport:
        report = LintReport()
        report.add(
            "floating-node",
            "error",
            "node 'a|b' has a `weird` <name>\nwith a newline",
            file="evil|file.va",
            line=3,
            column=7,
            hint="pipe | hint",
        )
        report.add(
            "dead-arm", "warning", "plain message", file="ok.va", line=1, column=1
        )
        report.add("mixed-description", "info", "advisory", file="ok.va")
        return report

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("rule", "fatal", "message")

    def test_report_ordering_and_aggregation(self):
        report = self.hostile_report()
        assert [d.file for d in report] == ["evil|file.va", "ok.va", "ok.va"]
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert report.rules() == ["dead-arm", "floating-node", "mixed-description"]
        assert report.matrix()["floating-node"] == {"error": 1}
        assert not report.ok
        assert len(report.errors()) == 1

    def test_json_round_trip_is_lossless(self):
        report = self.hostile_report()
        recovered = from_json(to_json(report))
        assert sorted(d.sort_key() for d in recovered) == sorted(
            d.sort_key() for d in report
        )
        payload = json.loads(to_json(report))
        assert payload["version"] == 1
        assert payload["summary"]["error"] == 1

    def test_from_json_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            from_json(json.dumps({"version": 99, "diagnostics": []}))

    def test_markdown_escapes_hostile_names(self):
        markdown = to_markdown(self.hostile_report())
        assert "evil\\|file.va" in markdown
        assert "&lt;name&gt;" in markdown
        assert "\\`weird\\`" in markdown
        # the newline must not break the table row
        rows = [line for line in markdown.splitlines() if line.startswith("|")]
        assert len(rows) == 2 + 3  # header + separator + one row per finding

    def test_text_format(self):
        text = to_text(self.hostile_report())
        assert "evil|file.va:3:7: error[floating-node]" in text
        assert "(hint: pipe | hint)" in text

    def test_baseline_round_trip_and_suppression(self, tmp_path):
        report = self.hostile_report()
        path = tmp_path / "baseline.json"
        write_baseline(path, report)
        keys = load_baseline(path)
        assert len(keys) == 3
        assert len(report.suppress(keys)) == 0
        assert load_baseline(None) == frozenset()
        assert load_baseline(tmp_path / "missing.json") == frozenset()

    def test_baseline_keys_survive_line_renumbering(self, tmp_path):
        # The suppression key is position-independent: an unrelated edit
        # that shifts line numbers must not resurrect baselined findings.
        report = self.hostile_report()
        path = tmp_path / "baseline.json"
        write_baseline(path, report)
        moved = LintReport()
        for diagnostic in report:
            moved.add(
                diagnostic.rule,
                diagnostic.severity,
                diagnostic.message,
                file=diagnostic.file,
                line=diagnostic.line + 40,
                column=diagnostic.column + 2,
                hint=diagnostic.hint,
            )
        assert len(moved.suppress(load_baseline(path))) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_lint_error_carries_the_report(self):
        report = self.hostile_report()
        error = LintError(report)
        assert isinstance(error, ReproError)
        assert error.report is report
        assert "floating-node" in str(error)


# ---------------------------------------------------------------------------
# Satellite 1: structural flow detection in classify
# ---------------------------------------------------------------------------
class TestReferencesFlowRegression:
    def classify_body(self, body: str) -> str:
        source = HEADER + dedent(
            f"""\
            module m(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
            {body}
              end
            endmodule
            """
        )
        return classify_module(parse_source(source)[0]).category

    def test_spaced_access_function_still_flow(self):
        # 'I (vin, out)' lexes as identifier + parenthesis: a textual
        # 'starts with I(' test missed it; the Access-node walk does not.
        assert self.classify_body("    V(out) <+ 1000 * I (vin, out);") == CONSERVATIVE

    def test_flow_access_inside_nested_expression(self):
        body = "    V(out) <+ 2 * (500 * I(vin, out) + 0);"
        assert self.classify_body(body) == CONSERVATIVE

    def test_identifier_resembling_access_is_not_flow(self):
        source = HEADER + dedent(
            """\
            module m(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              parameter real Ibias = 2.0;
              analog begin
                V(out) <+ Ibias * V(vin);
              end
            endmodule
            """
        )
        assert classify_module(parse_source(source)[0]).category == SIGNAL_FLOW

    def test_access_nodes_survive_parsing(self):
        source = HEADER + dedent(
            """\
            module m(vin, out);
              input vin; output out;
              electrical vin, out, gnd;
              ground gnd;
              analog begin
                V(out) <+ 2 * V(vin);
              end
            endmodule
            """
        )
        contribution = parse_source(source)[0].contributions()[0]
        accesses = [
            node
            for node in contribution.expression.walk()
            if isinstance(node, Access)
        ]
        assert accesses and accesses[0].kind == POTENTIAL


# ---------------------------------------------------------------------------
# Satellite 2: plant_defect and the recall campaign
# ---------------------------------------------------------------------------
class TestPlantDefect:
    def test_every_breakable_rule_is_recalled(self):
        for rule in BREAKABLE_RULES:
            base = generate_netlist(7, 0)
            broken = plant_defect(base, rule)
            assert broken.name.endswith("_broken_" + rule.replace("-", "_"))
            assert len(broken.components) == len(base.components) + 1
            report = lint_netlist(broken)
            assert rule in report.rules(), (rule, to_text(report))

    def test_base_netlist_is_untouched(self):
        base = generate_netlist(7, 1)
        plant_defect(base, "zero-value")
        assert lint_netlist(base).ok

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown breakable rule"):
            plant_defect(generate_netlist(7, 0), "no-such-rule")

    def test_broken_netlists_still_render_and_parse(self):
        for rule in BREAKABLE_RULES:
            source = render(plant_defect(generate_netlist(7, 2), rule))
            assert parse_source(source)

    def test_recall_campaign_all_rules(self):
        report = run_recall_campaign(7, 3, BREAKABLE_RULES)
        assert report.ok, report.failures
        assert report.checked == 3 * (1 + len(BREAKABLE_RULES))

    def test_recall_campaign_cli(self, capsys):
        from repro.zoo.cli import main as fuzz_main

        assert fuzz_main(["--break", "all", "--count", "3", "--seed", "7"]) == 0
        assert "recalled every planted defect" in capsys.readouterr().out
        assert fuzz_main(["--break", "bogus", "--count", "1"]) == 2


# ---------------------------------------------------------------------------
# Oracle integration: lint as a pre-execution stage
# ---------------------------------------------------------------------------
class TestOracleLintStage:
    def test_planted_defect_stops_at_the_lint_stage(self):
        source = render(plant_defect(generate_netlist(7, 0), "vsource-loop"))
        verdict = check_source(source, OracleConfig(duration=2e-5))
        assert not verdict.ok
        assert verdict.stage == LINT
        assert "vsource-loop" in verdict.detail

    def test_clean_generated_netlists_pass_the_lint_stage(self):
        # No lint-fatal/runtime-clean disagreement: every netlist the
        # engines can run must also get past the lint stage.
        for index in range(5):
            verdict = check_source(
                render(generate_netlist(7, index)), OracleConfig(duration=2e-5)
            )
            assert verdict.stage != LINT, verdict.detail
            assert verdict.ok, verdict.summary()


# ---------------------------------------------------------------------------
# Strict gates: sweep and fault campaigns
# ---------------------------------------------------------------------------
class TestStrictGates:
    def test_sweep_lint_gate_passes_clean_models(self):
        from repro.sweep import SweepRunner
        from repro.sweep.spec import GridSpec

        runner = SweepRunner(
            rc_benchmark(1).build,
            "out",
            {"vin": lambda t: 1.0},
            timestep=1e-6,
            lint=True,
        )
        result = runner.run(GridSpec(axes={"resistance": [1e3, 2e3]}), 2e-5)
        assert "V(out)" in result.outputs

    def test_sweep_lint_gate_raises_on_bad_model(self, monkeypatch):
        import repro.sweep.runner as runner_module
        from repro.sweep import SweepRunner
        from repro.sweep.spec import GridSpec

        original = runner_module._abstract_scenario

        def sabotage(config, scenario):
            model = original(config, scenario)
            model.outputs.append("phantom")  # never computed -> lint error
            return model

        monkeypatch.setattr(runner_module, "_abstract_scenario", sabotage)
        runner = SweepRunner(
            rc_benchmark(1).build,
            "out",
            {"vin": lambda t: 1.0},
            timestep=1e-6,
            lint=True,
        )
        with pytest.raises(LintError, match="never computed"):
            runner.run(GridSpec(axes={"resistance": [1e3]}), 2e-5)

    def test_fault_campaign_lint_rejects_nonphysical_mutant(self):
        spec = FaultCampaignSpec(
            faults=[
                ResistorShortFault("r1", resistance=-5.0),  # lint-fatal
                ResistorShortFault("r2", resistance=1e-2),  # legitimate
            ],
            seed=1,
        )
        bench = rc_benchmark(2)
        runner = FaultCampaignRunner(
            bench.build,
            bench.output,
            {"vin": SquareWave(period=4e-5)},
            lint=True,
            progress=False,
        )
        result = runner.run(spec, 4e-5)
        by_name = {
            entry.run.fault.name: entry
            for entry in result.verdicts()
            if entry.run.fault is not None
        }
        assert by_name["short:r1"].verdict == VERDICT_LINT
        assert "nonphysical-value" in by_name["short:r1"].detail
        assert by_name["short:r2"].verdict != VERDICT_LINT

    def test_without_the_gate_the_mutant_is_not_lint_rejected(self):
        spec = FaultCampaignSpec(
            faults=[ResistorShortFault("r1", resistance=-5.0)], seed=1
        )
        bench = rc_benchmark(1)
        runner = FaultCampaignRunner(
            bench.build,
            bench.output,
            {"vin": SquareWave(period=4e-5)},
            progress=False,
        )
        result = runner.run(spec, 4e-5)
        assert all(entry.verdict != VERDICT_LINT for entry in result.verdicts())


# ---------------------------------------------------------------------------
# CLI and dashboard
# ---------------------------------------------------------------------------
class TestCliAndDashboard:
    def seeded_file(self, tmp_path) -> Path:
        path = tmp_path / "negr.va"
        path.write_text(
            HEADER
            + dedent(
                """\
                module negr(vin, out);
                  input vin; output out;
                  electrical vin, out, gnd;
                  ground gnd;
                  analog begin
                    V(out, gnd) <+ -50 * I(out, gnd);
                    I(vin, out) <+ V(vin, out) / 1000;
                  end
                endmodule
                """
            )
        )
        return path

    def test_exit_codes(self, tmp_path, capsys):
        assert lint_main([]) == 2
        assert lint_main([str(tmp_path / "missing.va")]) == 2
        assert lint_main([str(self.seeded_file(tmp_path))]) == 1
        capsys.readouterr()
        assert lint_main([str(CORPUS)]) == 0

    def test_json_output_and_formats(self, tmp_path, capsys):
        source = self.seeded_file(tmp_path)
        json_path = tmp_path / "findings.json"
        assert lint_main([str(source), "--json", str(json_path)]) == 1
        capsys.readouterr()
        recovered = from_json(json_path.read_text())
        assert recovered.by_rule("nonphysical-value")
        assert lint_main([str(source), "--format", "markdown"]) == 1
        assert "| Location |" in capsys.readouterr().out

    def test_baseline_workflow(self, tmp_path, capsys):
        source = self.seeded_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(source), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert lint_main([str(source), "--baseline", str(baseline)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().err

    def test_selfcheck_via_cli(self, capsys):
        assert lint_main(["--selfcheck", str(SRC_REPRO)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_generated_and_benchmarks_via_cli(self, capsys):
        assert lint_main(["--benchmarks", "--generated", "10", "--seed", "7"]) == 0

    def test_console_script_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint.cli", "--selfcheck", str(SRC_REPRO)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr

    def test_lint_section_renders(self, tmp_path):
        from repro.report import Dashboard, lint_section
        from repro.report.dashboard import verify_dashboard

        report = lint_source(self.seeded_file(tmp_path).read_text(), file="negr.va")
        section = lint_section(report)
        assert "nonphysical-value" in section.body
        assert "Findings by rule" in section.body
        dashboard = Dashboard(title="lint")
        dashboard.add(section)
        path = dashboard.write(tmp_path / "lint.html")
        problems = verify_dashboard(path.read_text(), ("lint",))
        assert not problems, problems

    def test_lint_section_clean_report(self):
        from repro.report import lint_section

        section = lint_section(LintReport())
        assert "clean" in section.body

    def test_report_cli_consumes_lint_json(self, tmp_path, capsys):
        from repro.report.cli import main as report_main

        source = self.seeded_file(tmp_path)
        json_path = tmp_path / "findings.json"
        lint_main([str(source), "--json", str(json_path)])
        capsys.readouterr()
        out_path = tmp_path / "dash.html"
        assert (
            report_main(["--lint", str(json_path), "--check", "--out", str(out_path)])
            == 0
        )
        assert "dashboard verified" in capsys.readouterr().out
