"""Tests for linear-form extraction, equation solving and system solving."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import NonLinearExpressionError, UnsolvableEquationError
from repro.expr import (
    BinaryOp,
    Call,
    Constant,
    Derivative,
    Previous,
    Variable,
    affine_decompose,
    constant_value,
    evaluate,
    linear_form,
    solve_affine_system,
    solve_for,
    solve_linear_system,
)


class TestLinearForm:
    def test_simple_affine(self):
        x = Variable("x")
        expr = 3.0 * x + Constant(2.0)
        form = linear_form(expr, {"x"})
        assert constant_value(form.coefficient("x")) == 3.0
        assert constant_value(form.remainder) == 2.0

    def test_coefficient_of_absent_variable_is_zero(self):
        form = linear_form(Constant(4.0), {"x"})
        assert constant_value(form.coefficient("x")) == 0.0
        assert not form.depends_on("x")

    def test_division_by_constant(self):
        x = Variable("x")
        form = linear_form(x / 5.0, {"x"})
        assert constant_value(form.coefficient("x")) == pytest.approx(0.2)

    def test_other_variables_go_to_remainder(self):
        x, u = Variable("x"), Variable("u")
        form = linear_form(2.0 * x + u, {"x"})
        assert "u" in form.remainder.variables()

    def test_product_of_unknowns_is_nonlinear(self):
        x, y = Variable("x"), Variable("y")
        with pytest.raises(NonLinearExpressionError):
            linear_form(x * y, {"x", "y"})

    def test_unknown_in_denominator_is_nonlinear(self):
        x = Variable("x")
        with pytest.raises(NonLinearExpressionError):
            linear_form(Constant(1.0) / x, {"x"})

    def test_unknown_inside_function_is_nonlinear(self):
        x = Variable("x")
        with pytest.raises(NonLinearExpressionError):
            linear_form(Call("sin", (x,)), {"x"})

    def test_unknown_under_ddt_is_nonlinear(self):
        x = Variable("x")
        with pytest.raises(NonLinearExpressionError):
            linear_form(Derivative(x), {"x"})


class TestSolveFor:
    def test_isolates_variable(self):
        # 2*x + 3 = 11  ->  x = 4
        solution = solve_for(2.0 * Variable("x") + 3.0, Constant(11.0), "x")
        assert constant_value(solution) == pytest.approx(4.0)

    def test_solution_keeps_other_symbols(self):
        # V = R * I  solved for I  ->  I = V / R with V symbolic
        solution = solve_for(Variable("V"), 5000.0 * Variable("I"), "I")
        assert evaluate(solution, {"V": 10.0}) == pytest.approx(10.0 / 5000.0)

    def test_missing_variable_raises(self):
        with pytest.raises(UnsolvableEquationError):
            solve_for(Variable("a"), Constant(1.0), "x")

    def test_cancelled_variable_raises(self):
        # x - x = 1 cannot be solved for x.
        with pytest.raises(UnsolvableEquationError):
            solve_for(Variable("x") - Variable("x"), Constant(1.0), "x")


class TestAffineDecompose:
    def test_classifies_atoms(self):
        expr = 2.0 * Variable("x") + 3.0 * Previous("s") + Variable("u") + Constant(1.0)
        decomposition = affine_decompose(expr, {"x"})
        assert decomposition.unknown_coefficients == {"x": 2.0}
        assert decomposition.atom_coefficients[("prev", "s")] == 3.0
        assert decomposition.atom_coefficients[("var", "u")] == 1.0
        assert decomposition.constant == 1.0

    def test_scaling_through_division(self):
        expr = BinaryOp("/", Variable("x"), Constant(4.0))
        decomposition = affine_decompose(expr, {"x"})
        assert decomposition.unknown_coefficients["x"] == pytest.approx(0.25)

    def test_nonlinear_raises(self):
        with pytest.raises(NonLinearExpressionError):
            affine_decompose(Variable("x") * Variable("u"), {"x", "u"})


class TestSolveSystems:
    def test_two_by_two_affine_system(self):
        # x = 0.5*y + u ;  y = 0.5*x + 1
        equations = {
            "x": 0.5 * Variable("y") + Variable("u"),
            "y": 0.5 * Variable("x") + Constant(1.0),
        }
        solution = solve_affine_system(equations, ["x", "y"])
        # Closed form: x = (0.5 + u)/0.75, y = (1 + 0.5*u)/0.75
        x_value = evaluate(solution["x"], {"u": 2.0})
        y_value = evaluate(solution["y"], {"u": 2.0})
        assert x_value == pytest.approx((0.5 + 2.0) / 0.75)
        assert y_value == pytest.approx((1.0 + 0.5 * 2.0) / 0.75)

    def test_affine_and_symbolic_solvers_agree(self):
        equations = {
            "a": 0.25 * Variable("b") + 2.0 * Variable("u") + Previous("a"),
            "b": -0.5 * Variable("a") + Constant(3.0),
        }
        affine = solve_affine_system(equations, ["a", "b"])
        symbolic = solve_linear_system(equations, ["a", "b"])
        bindings = {"u": 0.7}
        previous = {"a": -1.2}
        for name in ("a", "b"):
            assert evaluate(affine[name], bindings, previous=previous) == pytest.approx(
                evaluate(symbolic[name], bindings, previous=previous), rel=1e-9
            )

    def test_singular_system_raises(self):
        equations = {"x": Variable("y"), "y": Variable("x")}
        with pytest.raises(UnsolvableEquationError):
            solve_affine_system(equations, ["x", "y"])

    def test_empty_system(self):
        assert solve_affine_system({}, []) == {}


# -- property-based: random well-conditioned systems are solved correctly ----------------
@given(
    st.lists(
        st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
    st.lists(
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        min_size=2,
        max_size=2,
    ),
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)
def test_affine_solution_satisfies_equations(coupling, constants, input_value):
    """The solved expressions must satisfy the original implicit equations."""
    x, y, u = Variable("x"), Variable("y"), Variable("u")
    equations = {
        "x": coupling[0] * x + coupling[1] * y + constants[0] * u,
        "y": coupling[2] * x + coupling[3] * y + Constant(constants[1]),
    }
    solution = solve_affine_system(equations, ["x", "y"])
    values = {
        "u": input_value,
        "x": evaluate(solution["x"], {"u": input_value}),
        "y": evaluate(solution["y"], {"u": input_value}),
    }
    for name, rhs in equations.items():
        assert values[name] == pytest.approx(evaluate(rhs, values), rel=1e-7, abs=1e-7)
