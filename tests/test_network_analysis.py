"""Tests for Kirchhoff equation generation and the MNA transient solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import SingularNetworkError, TopologyError
from repro.expr import evaluate
from repro.network import (
    Circuit,
    MnaSystem,
    VCVS,
    kirchhoff_equations,
    mesh_analysis,
    nodal_analysis,
    run_transient,
)
from repro.network.mna import BACKWARD_EULER, TRAPEZOIDAL


class TestKirchhoff:
    def test_one_kcl_per_non_ground_node(self, rc3_circuit):
        equations = nodal_analysis(rc3_circuit)
        assert len(equations) == len(rc3_circuit.node_names(include_ground=False))
        assert all(eq.kind == "kcl" for eq in equations)

    def test_kcl_balances_series_currents(self, rc1_circuit):
        equations = {eq.name: eq for eq in nodal_analysis(rc1_circuit)}
        # At the output node the resistor current equals the capacitor current.
        out_equation = equations["kcl:out"]
        residual = evaluate(out_equation.residual(), {"I(r1)": 2.0, "I(c1)": 2.0})
        assert residual == pytest.approx(0.0)

    def test_kvl_count_matches_meshes(self, rc3_circuit):
        assert len(mesh_analysis(rc3_circuit)) == 3

    def test_kvl_equations_are_tautological_over_node_potentials(self, rc1_circuit):
        for equation in mesh_analysis(rc1_circuit):
            bindings = {name: 1.234 for name in equation.variables()}
            assert evaluate(equation.residual(), bindings) == pytest.approx(0.0)

    def test_combined_helper(self, rc1_circuit):
        combined = kirchhoff_equations(rc1_circuit)
        assert len(combined) == len(nodal_analysis(rc1_circuit)) + len(mesh_analysis(rc1_circuit))
        only_kcl = kirchhoff_equations(rc1_circuit, include_mesh=False)
        assert all(eq.kind == "kcl" for eq in only_kcl)


class TestMnaStructure:
    def test_unknown_ordering(self, rc1_circuit):
        system = MnaSystem(rc1_circuit, 1e-6)
        assert system.index.unknowns[:2] == ["V(vin)", "V(out)"]
        assert "I(Vsrc_vin)" in system.index.unknowns
        assert system.index.inputs == ["vin"]

    def test_unknown_lookup_errors(self, rc1_circuit):
        system = MnaSystem(rc1_circuit, 1e-6)
        with pytest.raises(TopologyError):
            system.index.unknown("V(none)")
        with pytest.raises(TopologyError):
            system.index.input("none")

    def test_invalid_parameters(self, rc1_circuit):
        with pytest.raises(ValueError):
            MnaSystem(rc1_circuit, 0.0)
        with pytest.raises(ValueError):
            MnaSystem(rc1_circuit, 1e-6, method="simpson")

    def test_trapezoidal_promotes_capacitor_currents(self, rc1_circuit):
        backward = MnaSystem(rc1_circuit, 1e-6, method=BACKWARD_EULER)
        trapezoidal = MnaSystem(rc1_circuit, 1e-6, method=TRAPEZOIDAL)
        assert "I(c1)" not in backward.index.unknowns
        assert "I(c1)" in trapezoidal.index.unknowns

    def test_restamp_is_idempotent(self, rc1_circuit):
        system = MnaSystem(rc1_circuit, 1e-6)
        before = system.A.copy()
        system.restamp()
        assert np.allclose(system.A, before)


class TestMnaSolutions:
    def test_resistive_divider_dc(self):
        circuit = Circuit("div")
        circuit.add_voltage_source("in", "gnd", input_signal="u")
        circuit.add_resistor("in", "mid", 1e3)
        circuit.add_resistor("mid", "gnd", 3e3)
        system = MnaSystem(circuit, 1e-6)
        solution = system.dc_operating_point(system.input_vector({"u": 4.0}))
        assert solution[system.index.unknown("V(mid)")] == pytest.approx(3.0)

    @pytest.mark.parametrize("method", [BACKWARD_EULER, TRAPEZOIDAL])
    def test_rc_step_response(self, rc1_circuit, method):
        tau = 5e3 * 25e-9
        dt = tau / 200.0
        system = MnaSystem(rc1_circuit, dt, method=method)
        result = run_transient(system, {"vin": lambda t: 1.0}, 5 * tau, ["V(out)"])
        expected = 1.0 - math.exp(-result.times[-1] / tau)
        assert result.waveform("V(out)")[-1] == pytest.approx(expected, rel=2e-3)

    def test_trapezoidal_is_more_accurate_than_backward_euler(self, rc1_circuit):
        # Use a smooth ramp stimulus so the comparison is about integration
        # accuracy rather than about how a discontinuity is sampled.
        tau = 5e3 * 25e-9
        dt = tau / 20.0
        slope = 1.0 / tau
        errors = {}
        for method in (BACKWARD_EULER, TRAPEZOIDAL):
            system = MnaSystem(rc1_circuit, dt, method=method)
            result = run_transient(system, {"vin": lambda t: slope * t}, 4 * tau, ["V(out)"])
            analytic = slope * (result.times - tau * (1.0 - np.exp(-result.times / tau)))
            errors[method] = np.max(np.abs(result.waveform("V(out)") - analytic))
        assert errors[TRAPEZOIDAL] < errors[BACKWARD_EULER]

    def test_rl_circuit_steady_state_current(self):
        circuit = Circuit("rl")
        circuit.add_voltage_source("in", "gnd", input_signal="u")
        circuit.add_resistor("in", "mid", 100.0)
        circuit.add_inductor("mid", "gnd", 1e-3, name="L1")
        tau = 1e-3 / 100.0
        system = MnaSystem(circuit, tau / 100.0)
        result = run_transient(system, {"u": lambda t: 1.0}, 8 * tau, ["I(L1)"])
        assert result.waveform("I(L1)")[-1] == pytest.approx(1.0 / 100.0, rel=1e-2)

    def test_vcvs_amplifier_gain(self):
        circuit = Circuit("amp")
        circuit.add_voltage_source("in", "gnd", input_signal="u")
        circuit.add_resistor("in", "x", 1e3)
        circuit.add_resistor("x", "gnd", 1e3)
        circuit.add(VCVS(10.0, control_positive="x", control_negative="gnd"), "out", "gnd")
        circuit.add_resistor("out", "gnd", 1e3)
        system = MnaSystem(circuit, 1e-6)
        solution = system.dc_operating_point(system.input_vector({"u": 1.0}))
        assert solution[system.index.unknown("V(out)")] == pytest.approx(5.0)

    def test_current_source_into_resistor(self):
        circuit = Circuit("ir")
        circuit.add_current_source("gnd", "n", input_signal="i")
        circuit.add_resistor("n", "gnd", 2e3)
        system = MnaSystem(circuit, 1e-6)
        solution = system.dc_operating_point(system.input_vector({"i": 1e-3}))
        assert solution[system.index.unknown("V(n)")] == pytest.approx(2.0)

    def test_singular_network_raises(self):
        circuit = Circuit("bad")
        # Two ideal voltage sources in parallel with different drivers.
        circuit.add_voltage_source("a", "gnd", input_signal="u1")
        circuit.add_voltage_source("a", "gnd", input_signal="u2")
        system = MnaSystem(circuit, 1e-6)
        with pytest.raises(SingularNetworkError):
            system.step(np.zeros(system.size), system.input_vector({"u1": 1.0, "u2": 2.0}))

    def test_discrete_state_space_matches_stepping(self, rc1_circuit):
        dt = 1e-6
        system = MnaSystem(rc1_circuit, dt)
        F, G, g0 = system.discrete_state_space()
        state = np.zeros(system.size)
        inputs = system.input_vector({"vin": 1.0})
        for _ in range(50):
            state = system.step(state, inputs)
        direct = np.zeros(system.size)
        for _ in range(50):
            direct = F @ direct + G @ inputs + g0
        assert np.allclose(state, direct)

    def test_unsupported_component_rejected(self):
        from repro.network.components import Component

        class Mystery(Component):
            def dipole_equation(self, branch, ground="gnd"):
                raise NotImplementedError

        circuit = Circuit("m")
        circuit.add_voltage_source("a", "gnd", input_signal="u")
        circuit.add(Mystery(), "a", "gnd", name="X1")
        with pytest.raises(TopologyError):
            MnaSystem(circuit, 1e-6)
