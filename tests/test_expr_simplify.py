"""Unit and property-based tests for the expression simplifier."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.expr import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Previous,
    UnaryOp,
    Variable,
    constant_value,
    evaluate,
    is_constant,
    simplify,
)


class TestIdentities:
    def test_addition_with_zero(self):
        x = Variable("x")
        assert simplify(x + 0) == x
        assert simplify(0 + x) == x

    def test_multiplication_identities(self):
        x = Variable("x")
        assert simplify(x * 1) == x
        assert simplify(1 * x) == x
        assert simplify(x * 0) == Constant(0.0)
        assert simplify(x * -1) == UnaryOp("-", x)

    def test_subtraction_identities(self):
        x = Variable("x")
        assert simplify(x - 0) == x
        assert simplify(x - x) == Constant(0.0)
        assert simplify(0 - x) == UnaryOp("-", x)

    def test_division_identities(self):
        x = Variable("x")
        assert simplify(x / 1) == x
        assert simplify(0 / x) == Constant(0.0)

    def test_power_identities(self):
        x = Variable("x")
        assert simplify(x ** 1) == x
        assert simplify(x ** 0) == Constant(1.0)

    def test_double_negation_removed(self):
        x = Variable("x")
        assert simplify(UnaryOp("-", UnaryOp("-", x))) == x

    def test_negative_divided_by_negative(self):
        x = Variable("x")
        expr = BinaryOp("/", UnaryOp("-", x), Constant(-5.0))
        assert simplify(expr) == BinaryOp("/", x, Constant(5.0))

    def test_subtracting_a_negation_becomes_addition(self):
        x, y = Variable("x"), Variable("y")
        assert simplify(BinaryOp("-", x, UnaryOp("-", y))) == BinaryOp("+", x, y)


class TestConstantFolding:
    def test_arithmetic_folding(self):
        assert simplify(Constant(2) + Constant(3)) == Constant(5.0)
        assert simplify(Constant(2) * Constant(3)) == Constant(6.0)
        assert simplify(Constant(7) / Constant(2)) == Constant(3.5)

    def test_division_by_zero_not_folded(self):
        expr = BinaryOp("/", Constant(1), Constant(0))
        assert simplify(expr) == expr

    def test_function_folding(self):
        assert simplify(Call("sqrt", (Constant(16.0),))) == Constant(4.0)
        assert simplify(Call("max", (Constant(1.0), Constant(3.0)))) == Constant(3.0)

    def test_comparison_folding(self):
        assert simplify(BinaryOp("<", Constant(1), Constant(2))) == Constant(1.0)

    def test_conditional_with_constant_condition(self):
        expr = Conditional(Constant(1.0), Variable("a"), Variable("b"))
        assert simplify(expr) == Variable("a")
        expr = Conditional(Constant(0.0), Variable("a"), Variable("b"))
        assert simplify(expr) == Variable("b")

    def test_conditional_with_identical_branches(self):
        expr = Conditional(Variable("c"), Variable("a"), Variable("a"))
        assert simplify(expr) == Variable("a")

    def test_ddt_of_constant_is_zero(self):
        assert simplify(Derivative(Constant(5.0))) == Constant(0.0)


class TestHelpers:
    def test_is_constant(self):
        assert is_constant(Constant(1) + Constant(2))
        assert not is_constant(Variable("x") + Constant(2))
        assert not is_constant(Previous("x"))

    def test_constant_value(self):
        assert constant_value(Constant(2) * Constant(3)) == 6.0
        assert constant_value(Variable("x")) is None


# -- property-based: simplification preserves the numeric value --------------------------
_leaf = st.one_of(
    st.floats(min_value=-10, max_value=10, allow_nan=False).map(Constant),
    st.sampled_from([Variable("x"), Variable("y"), Previous("x")]),
)


def _combine(children):
    operator = st.sampled_from(["+", "-", "*"])
    return st.builds(lambda op, a, b: BinaryOp(op, a, b), operator, children, children)


_expression = st.recursive(_leaf, _combine, max_leaves=12)


@given(_expression)
def test_simplify_preserves_value(expr):
    bindings = {"x": 1.37, "y": -2.5}
    previous = {"x": 0.25}
    original = evaluate(expr, bindings, previous=previous)
    simplified = evaluate(simplify(expr), bindings, previous=previous)
    assert simplified == pytest.approx(original, rel=1e-9, abs=1e-9)


@given(_expression)
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    twice = simplify(once)
    assert once == twice
