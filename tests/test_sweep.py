"""Tests of the batch-simulation subsystem (``repro.sweep``).

Covers the four guarantees the subsystem makes: declarative specs expand
deterministically, the vectorized NumPy backend is numerically equivalent to
the scalar generated-code path on every benchmark circuit, compiled classes
are reused through the source-digest cache, and multiprocess chunking changes
nothing about the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_rc_filter, build_two_input, paper_benchmarks
from repro.core import AbstractionFlow
from repro.core.codegen import (
    NumpyGenerator,
    cache_info,
    clear_cache,
    structure_signature,
)
from repro.core.codegen.numpy_backend import PARAM_PREFIX
from repro.errors import CodeGenerationError
from repro.sim import SquareWave, run_python_model
from repro.sweep import (
    CompositeSpec,
    CornerSpec,
    GridSpec,
    MonteCarloSpec,
    SweepError,
    SweepRunner,
)

TIMESTEP = 50e-9
SHORT = 50e-6  # 1000 analog steps: enough to exercise the state recursion
WAVE = {"vin": SquareWave(period=1e-3)}

RC_NOMINAL = {"order": 1, "resistance": 5e3, "capacitance": 25e-9}


def rc_runner(**kwargs) -> SweepRunner:
    return SweepRunner(
        build_rc_filter, "out", stimuli=WAVE, timestep=TIMESTEP, **kwargs
    )


def mc_spec(samples: int = 8, seed: int = 7) -> MonteCarloSpec:
    return MonteCarloSpec(
        nominal=RC_NOMINAL,
        tolerances={"resistance": 0.05, "capacitance": 0.05},
        samples=samples,
        seed=seed,
    )


class TestSpecExpansion:
    def test_grid_is_the_cartesian_product(self):
        spec = GridSpec(
            axes={"resistance": [4e3, 5e3, 6e3], "capacitance": [20e-9, 25e-9]},
            base={"order": 1},
        )
        scenarios = spec.expand()
        assert len(scenarios) == 6
        assert [s.index for s in scenarios] == list(range(6))
        assert all(s.params["order"] == 1 for s in scenarios)
        # row-major: the last axis varies fastest
        assert [s.params["capacitance"] for s in scenarios[:2]] == [20e-9, 25e-9]
        assert scenarios[0].params["resistance"] == 4e3

    def test_empty_grid_yields_the_base_point(self):
        scenarios = GridSpec(axes={}, base={"order": 2}).expand()
        assert len(scenarios) == 1
        assert scenarios[0].params == {"order": 2}

    def test_corners_enumerate_every_extreme(self):
        spec = CornerSpec(
            nominal=RC_NOMINAL,
            corners={"resistance": (4.5e3, 5.5e3), "capacitance": (20e-9, 30e-9)},
        )
        scenarios = spec.expand()
        assert len(scenarios) == 5  # nominal + 2**2 corners
        assert scenarios[0].label == "nominal"
        resistances = {s.params["resistance"] for s in scenarios[1:]}
        assert resistances == {4.5e3, 5.5e3}
        without_nominal = CornerSpec(
            nominal=RC_NOMINAL,
            corners={"resistance": (4.5e3, 5.5e3)},
            include_nominal=False,
        ).expand()
        assert [s.params["resistance"] for s in without_nominal] == [4.5e3, 5.5e3]

    def test_monte_carlo_is_deterministic_per_seed(self):
        first = mc_spec(samples=16, seed=3).expand()
        second = mc_spec(samples=16, seed=3).expand()
        assert [s.params for s in first] == [s.params for s in second]
        other_seed = mc_spec(samples=16, seed=4).expand()
        assert [s.params for s in first] != [s.params for s in other_seed]

    def test_monte_carlo_respects_the_tolerance_band(self):
        scenarios = mc_spec(samples=64).expand()
        resistances = np.array([s.params["resistance"] for s in scenarios])
        assert np.all(resistances >= 5e3 * 0.95)
        assert np.all(resistances <= 5e3 * 1.05)
        assert resistances.std() > 0.0

    def test_monte_carlo_validates_its_arguments(self):
        with pytest.raises(ValueError):
            mc_spec(samples=0)
        with pytest.raises(ValueError):
            MonteCarloSpec(nominal={}, tolerances={"r": -0.1})
        with pytest.raises(ValueError):
            MonteCarloSpec(nominal={}, tolerances={}, distribution="cauchy")
        with pytest.raises(ValueError):
            MonteCarloSpec(nominal={}, tolerances={"r": 0.1})  # no nominal value

    def test_specs_compose_with_addition(self):
        grid = GridSpec(axes={"resistance": [4e3, 5e3]}, base={"order": 1})
        combined = grid + mc_spec(samples=3)
        assert isinstance(combined, CompositeSpec)
        scenarios = combined.expand()
        assert len(scenarios) == 5
        assert [s.index for s in scenarios] == list(range(5))
        assert {s.origin for s in scenarios} == {"grid", "monte-carlo"}
        triple = combined + GridSpec(axes={"order": [2]})
        assert len(triple.expand()) == 6

    def test_composite_len_is_the_sum_of_the_parts(self):
        """Invariant: len(a + b) == len(a) + len(b), however deeply nested."""
        parts = [
            GridSpec(axes={"resistance": [4e3, 5e3, 6e3]}, base={"order": 1}),
            CornerSpec(
                nominal=RC_NOMINAL,
                corners={"resistance": (4.5e3, 5.5e3)},
            ),
            mc_spec(samples=7),
        ]
        composite = parts[0] + parts[1] + parts[2]
        assert len(composite) == sum(len(part) for part in parts)
        assert len(composite) == len(composite.expand())

    def test_composite_preserves_order_labels_and_params(self):
        grid = GridSpec(axes={"resistance": [4e3, 5e3]}, base={"order": 1})
        monte_carlo = mc_spec(samples=3)
        combined = grid + monte_carlo
        scenarios = combined.expand()
        flat = grid.expand() + monte_carlo.expand()
        assert [s.label for s in scenarios] == [s.label for s in flat]
        assert [s.params for s in scenarios] == [s.params for s in flat]
        # only the indices are rewritten, contiguously
        assert [s.index for s in scenarios] == list(range(len(flat)))

    def test_composite_expansion_is_repeatable(self):
        combined = GridSpec(axes={"order": [1, 2]}) + mc_spec(samples=4)
        first = [(s.index, s.label, tuple(s.params.items())) for s in combined.expand()]
        second = [(s.index, s.label, tuple(s.params.items())) for s in combined.expand()]
        assert first == second

    def test_composite_keeps_per_spec_stimuli(self):
        quiet = {"vin": SquareWave(amplitude=0.5, period=1e-3)}
        loud = GridSpec(axes={"resistance": [4e3]}, base={"order": 1})
        soft = GridSpec(
            axes={"resistance": [5e3]}, base={"order": 1}, stimuli=quiet
        )
        scenarios = (loud + soft).expand()
        assert scenarios[0].stimuli is None  # runner default applies
        assert scenarios[1].stimuli is quiet

    def test_adding_a_non_spec_is_rejected(self):
        grid = GridSpec(axes={"order": [1]})
        with pytest.raises(TypeError):
            grid + 3
        with pytest.raises(TypeError):
            (grid + grid) + "corners"


class TestBatchEquivalence:
    @pytest.mark.parametrize(
        "bench", paper_benchmarks(), ids=lambda bench: bench.name
    )
    def test_step_batch_matches_run_python_model(self, bench):
        """The vectorized backend must reproduce the scalar path on every
        benchmark circuit to 1e-12 (the acceptance bound)."""
        flow = AbstractionFlow(TIMESTEP)
        model = flow.abstract(
            bench.circuit(), bench.output, name=bench.name.lower()
        ).model
        scalar = run_python_model(model, bench.stimuli, SHORT)

        artifact = NumpyGenerator().generate_batch([model, model, model])
        instance = artifact.instantiate()
        waveforms = [bench.stimuli[name] for name in instance.INPUTS]
        steps = int(round(SHORT / TIMESTEP))
        recorded = np.zeros((3, steps))
        for index in range(steps):
            now = (index + 1) * TIMESTEP
            recorded[:, index] = instance.step_batch(
                *[waveform(now) for waveform in waveforms], now
            )
        reference = scalar.waveform(bench.output_quantity)
        for lane in range(3):
            assert np.max(np.abs(recorded[lane] - reference)) <= 1e-12

    def test_lifted_coefficients_differ_per_lane(self):
        flow = AbstractionFlow(TIMESTEP)
        models = [
            flow.abstract(
                build_rc_filter(1, resistance=r), "out", name="rc1"
            ).model
            for r in (4e3, 5e3, 6e3)
        ]
        artifact = NumpyGenerator().generate_batch(models)
        assert artifact.parameters.shape[1] == 3
        assert artifact.code.metadata["backend"] == "numpy"
        assert PARAM_PREFIX not in artifact.code.source  # slots are renamed
        instance = artifact.instantiate()
        steps = int(round(SHORT / TIMESTEP))
        recorded = np.zeros((3, steps))
        for index in range(steps):
            now = (index + 1) * TIMESTEP
            recorded[:, index] = instance.step_batch(WAVE["vin"](now), now)
        for lane, model in enumerate(models):
            reference = run_python_model(model, WAVE, SHORT).waveform("V(out)")
            assert np.max(np.abs(recorded[lane] - reference)) <= 1e-12

    def test_variadic_min_max_fold_into_binary_numpy_calls(self):
        """np.minimum's third positional argument is ``out=``; a 3-argument
        min() must fold into nested binary calls, never corrupt an operand."""
        from repro.core.codegen import compile_model
        from repro.core.signalflow import Assignment, SignalFlowModel
        from repro.expr.ast import Call, Constant, Variable

        def clamp(low: float, high: float) -> SignalFlowModel:
            return SignalFlowModel(
                name="clamp",
                inputs=["u"],
                outputs=["y"],
                assignments=[
                    Assignment(
                        "y",
                        Call("min", [Variable("u"), Constant(low), Constant(high)]),
                    )
                ],
                timestep=1e-6,
            )

        models = [clamp(0.5, 0.8), clamp(0.4, 0.9)]
        artifact = NumpyGenerator().generate_batch(models)
        assert "np.minimum(u, np.minimum(" in artifact.code.source
        batch = artifact.instantiate().step_batch(np.array([0.7, 0.7]), 0.0)
        scalar = [compile_model(model)().step(0.7, 0.0) for model in models]
        assert batch.tolist() == scalar

    def test_structurally_different_models_are_rejected(self):
        flow = AbstractionFlow(TIMESTEP)
        rc1 = flow.abstract(build_rc_filter(1), "out", name="rc").model
        rc2 = flow.abstract(build_rc_filter(2), "out", name="rc").model
        assert structure_signature(rc1) != structure_signature(rc2)
        with pytest.raises(CodeGenerationError):
            NumpyGenerator().generate_batch([rc1, rc2])

    def test_runner_backends_agree(self):
        spec = mc_spec(samples=6)
        vectorized = rc_runner(backend="numpy").run(spec, SHORT)
        scalar = rc_runner(backend="python").run(spec, SHORT)
        assert vectorized.structure_groups == 1
        assert scalar.structure_groups == 1  # same structures, whatever the backend
        difference = np.abs(
            vectorized.ensemble("V(out)") - scalar.ensemble("V(out)")
        )
        assert np.max(difference) <= 1e-12


class TestRandomizedBackendParity:
    """Seeded random parameterizations: the vectorized ``step_batch`` must
    track the scalar generated ``step`` to 1e-12 over a long recursion, for
    parameter values far from the paper's nominal point."""

    STEPS = 1000
    TRIALS = 4
    LANES = 5

    def _assert_parity(self, models, stimuli_for):
        artifact = NumpyGenerator().generate_batch(models)
        batch = artifact.instantiate()
        scalar_traces = []
        for model in models:
            traces = run_python_model(
                model, stimuli_for(model), self.STEPS * TIMESTEP
            )
            scalar_traces.append(traces.waveform(model.outputs[0]))
        waveforms = [stimuli_for(models[0])[name] for name in batch.INPUTS]
        recorded = np.zeros((len(models), self.STEPS))
        for index in range(self.STEPS):
            now = (index + 1) * TIMESTEP
            recorded[:, index] = batch.step_batch(
                *[waveform(now) for waveform in waveforms], now
            )
        for lane, reference in enumerate(scalar_traces):
            deviation = np.max(np.abs(recorded[lane] - reference))
            assert deviation <= 1e-12, (
                f"lane {lane} ({models[lane].name}) deviates by {deviation:.3e}"
            )

    def test_random_rc_parameterizations(self):
        rng = np.random.default_rng(2016)
        flow = AbstractionFlow(TIMESTEP)
        for trial in range(self.TRIALS):
            models = []
            for lane in range(self.LANES):
                resistance = float(rng.uniform(5e2, 5e4))
                capacitance = float(rng.uniform(1e-9, 1e-7))
                circuit = build_rc_filter(
                    1, resistance=resistance, capacitance=capacitance
                )
                models.append(
                    flow.abstract(circuit, "out", name=f"rc_t{trial}").model
                )
            self._assert_parity(models, lambda model: WAVE)

    def test_random_two_input_parameterizations(self):
        rng = np.random.default_rng(77)
        flow = AbstractionFlow(TIMESTEP)
        stimuli = {
            "in1": SquareWave(period=1e-3),
            "in2": SquareWave(amplitude=0.5, period=0.7e-3, duty=0.3),
        }
        for trial in range(self.TRIALS):
            models = []
            for lane in range(self.LANES):
                params = {
                    "r1": float(rng.uniform(1e3, 20e3)),
                    "r2": float(rng.uniform(1e3, 20e3)),
                    "r3": float(rng.uniform(1e3, 20e3)),
                    "gain": float(rng.uniform(1e4, 1e6)),
                }
                circuit = build_two_input(**params)
                models.append(
                    flow.abstract(circuit, "out", name=f"two_t{trial}").model
                )
            self._assert_parity(models, lambda model: stimuli)

    def test_same_seed_reproduces_the_same_parameterizations(self):
        def draw(seed: int) -> list[float]:
            rng = np.random.default_rng(seed)
            return [float(rng.uniform(5e2, 5e4)) for _ in range(8)]

        assert draw(2016) == draw(2016)
        assert draw(2016) != draw(2017)


class TestCompileCache:
    def test_sweep_reruns_hit_the_cache(self):
        clear_cache()
        runner = rc_runner()
        spec = mc_spec(samples=4)
        runner.run(spec, SHORT)
        after_first = cache_info()
        assert after_first["misses"] >= 1
        runner.run(spec, SHORT)
        after_second = cache_info()
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]

    def test_scalar_runner_reuses_compiled_classes(self):
        clear_cache()
        flow = AbstractionFlow(TIMESTEP)
        model = flow.abstract(build_rc_filter(1), "out", name="rc1").model
        run_python_model(model, WAVE, SHORT)
        assert cache_info()["misses"] == 1
        run_python_model(model, WAVE, SHORT)
        info = cache_info()
        assert info["misses"] == 1 and info["hits"] == 1


class TestMultiprocess:
    def test_parallel_run_equals_serial_run(self):
        spec = mc_spec(samples=8)
        serial = rc_runner(workers=1).run(spec, SHORT)
        parallel = rc_runner(workers=2).run(spec, SHORT)
        assert np.array_equal(
            serial.ensemble("V(out)"), parallel.ensemble("V(out)")
        )
        assert serial.times.shape == parallel.times.shape
        # chunking must not inflate the structure count
        assert parallel.structure_groups == serial.structure_groups == 1

    def test_worker_errors_surface_instead_of_falling_back(self):
        import warnings

        bad = GridSpec(axes={"resistence": [4e3, 5e3]}, base={"order": 1})  # typo
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(TypeError):
                rc_runner(workers=2).run(bad, SHORT)
        assert not caught  # a real error is not a serial-fallback condition

    def test_worker_count_is_capped_by_scenarios(self):
        result = rc_runner(workers=8).run(mc_spec(samples=2), SHORT)
        assert result.n_scenarios == 2


class TestResults:
    @pytest.fixture(scope="class")
    def result(self):
        return rc_runner().run(mc_spec(samples=5), SHORT)

    def test_shapes_and_accessors(self, result):
        assert result.n_scenarios == 5
        assert result.ensemble("V(out)").shape == (5, result.n_steps)
        assert result.waveform("V(out)", 2).shape == (result.n_steps,)
        assert result.final_values("V(out)").shape == (5,)
        traces = result.trace_set(0)
        assert "V(out)" in traces
        assert np.allclose(traces.waveform("V(out)"), result.waveform("V(out)", 0))

    def test_envelope_orders_min_mean_max(self, result):
        band = result.envelope("V(out)")
        assert np.all(band["min"] <= band["mean"] + 1e-15)
        assert np.all(band["mean"] <= band["max"] + 1e-15)

    def test_summary_and_reports(self, result):
        stats = result.summary()["V(out)"]
        assert stats["min"] <= stats["mean"] <= stats["max"]
        markdown = result.to_markdown()
        assert "Sweep report" in markdown and "mc#0" in markdown
        csv = result.to_csv()
        assert len(csv.splitlines()) == 6  # header + 5 scenarios

    def test_reference_nrmse_is_small(self):
        result = rc_runner().run(mc_spec(samples=2), SHORT, reference=True)
        assert result.nrmse is not None
        errors = result.nrmse["V(out)"]
        assert errors.shape == (2,)
        assert np.all(errors < 5e-2)


class TestRunnerValidation:
    def test_missing_stimulus_is_reported(self):
        runner = SweepRunner(
            build_rc_filter, "out", stimuli={}, timestep=TIMESTEP
        )
        with pytest.raises(SweepError):
            runner.run(mc_spec(samples=1), SHORT)

    def test_zero_scenarios_rejected(self):
        with pytest.raises(SweepError):
            rc_runner().run([], SHORT)

    def test_bad_backend_rejected(self):
        with pytest.raises(SweepError):
            rc_runner(backend="fortran")

    def test_bad_duration_rejected(self):
        with pytest.raises(SweepError):
            rc_runner().run(mc_spec(samples=1), TIMESTEP / 100.0)
