"""Tests for the compiled-C (cffi) codegen backend and its degradation paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_opamp, build_rc_filter, paper_benchmarks
from repro.core import AbstractionFlow, abstract_circuit
from repro.core.codegen import (
    NativeGenerator,
    NumpyGenerator,
    compile_native,
    get_generator,
    native_batch_model,
    resolve_backend,
    toolchain_error,
)
from repro.core.codegen import native_backend
from repro.errors import CodegenError, CodeGenerationError
from repro.sweep import SweepError, SweepRunner
from repro.sweep.spec import Scenario

DT = 50e-9

TOOLCHAIN_MISSING = toolchain_error() is not None
needs_toolchain = pytest.mark.skipif(
    TOOLCHAIN_MISSING, reason=f"native toolchain unavailable: {toolchain_error()}"
)


@pytest.fixture(scope="module")
def rc_model():
    return abstract_circuit(build_rc_filter(2), "out", DT)


class TestSourceEmission:
    """Source generation never needs the toolchain."""

    def test_c_source_structure(self, rc_model):
        code = NativeGenerator().generate(rc_model)
        assert code.language == "C"
        assert "#include <math.h>" in code.source
        assert native_backend.NATIVE_SYMBOL in code.source
        assert code.metadata["backend"] == "native"

    def test_batch_artifact_matches_numpy_lifting(self, rc_model):
        models = [rc_model] * 4
        artifact = NativeGenerator().generate_batch(models)
        reference = NumpyGenerator().generate_batch(models)
        np.testing.assert_array_equal(artifact.parameters, reference.parameters)
        np.testing.assert_array_equal(
            artifact.initial_state, reference.initial_state
        )

    def test_compile_rejects_non_c_artifacts(self, rc_model):
        code = NumpyGenerator().generate(rc_model)
        with pytest.raises(CodeGenerationError):
            compile_native(code)


class TestGracefulDegradation:
    """Missing cffi / C compiler must fail loudly, naming the dependency."""

    def test_get_generator_raises_naming_the_dependency(self, monkeypatch):
        monkeypatch.setattr(
            native_backend,
            "_TOOLCHAIN_ERROR",
            "the 'cffi' package is not installed",
        )
        with pytest.raises(CodegenError, match="cffi"):
            get_generator("native")

    def test_instantiate_without_toolchain_raises(self, rc_model, monkeypatch):
        artifact = NativeGenerator().generate_batch([rc_model])
        monkeypatch.setattr(
            native_backend, "_TOOLCHAIN_ERROR", "no C compiler found on PATH"
        )
        with pytest.raises(CodegenError, match="C compiler"):
            artifact.instantiate()

    def test_instantiate_fallback_degrades_to_numpy(self, rc_model, monkeypatch):
        artifact = NativeGenerator().generate_batch([rc_model])
        monkeypatch.setattr(
            native_backend, "_TOOLCHAIN_ERROR", "no C compiler found on PATH"
        )
        instance = artifact.instantiate(fallback=True)
        value = instance.step_batch(np.ones(1), DT)
        assert np.all(np.isfinite(value))

    def test_resolve_backend_passthrough(self):
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("python") == "python"

    def test_resolve_backend_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(
            native_backend,
            "_TOOLCHAIN_ERROR",
            "the 'cffi' package is not installed",
        )
        monkeypatch.setattr(native_backend, "_WARNED_FALLBACK", False)
        with pytest.warns(RuntimeWarning, match="cffi"):
            assert resolve_backend("native") == "numpy"
        # The second downgrade stays silent (one warning per process).
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("native") == "numpy"

    def test_sweep_runner_names_the_missing_dependency(self, monkeypatch):
        monkeypatch.setattr(
            native_backend,
            "_TOOLCHAIN_ERROR",
            "the 'cffi' package is not installed",
        )
        with pytest.raises(SweepError, match="cffi"):
            SweepRunner(
                build_rc_filter,
                "out",
                {"vin": lambda t: 1.0},
                DT,
                backend="native",
            )


@needs_toolchain
class TestCompiledExecution:
    def test_resolve_backend_keeps_native(self):
        assert resolve_backend("native") == "native"

    def test_get_generator_returns_native(self):
        assert isinstance(get_generator("native"), NativeGenerator)

    def test_scalar_step_matches_python_backend(self):
        model = abstract_circuit(build_opamp(), "out", DT)
        from repro.core.codegen import compile_model

        interpreter = compile_model(model)()
        instance = native_batch_model([model])
        for index in range(400):
            now = (index + 1) * DT
            drive = 0.5 if (index // 100) % 2 == 0 else -0.5
            expected = interpreter.step(drive, now)
            assert instance.step(drive, now) == pytest.approx(
                expected, rel=1e-12, abs=1e-15
            )

    @pytest.mark.parametrize(
        "bench", paper_benchmarks(), ids=lambda bench: bench.name
    )
    def test_batch_matches_numpy_bitwise_adjacent(self, bench):
        """Native vs NumPy on every paper benchmark, 64 scenarios, 1000 steps."""
        model = AbstractionFlow(DT).abstract(
            bench.circuit(), bench.output, name=bench.name.lower()
        ).model
        models = [model] * 64
        native = NativeGenerator().generate_batch(models).instantiate()
        reference = NumpyGenerator().generate_batch(models).instantiate()
        drive = np.linspace(-1.0, 1.0, 64)
        worst = 0.0
        for index in range(1000):
            now = (index + 1) * DT
            ours = native.step_batch(*([drive] * len(native.INPUTS)), now)
            theirs = reference.step_batch(*([drive] * len(reference.INPUTS)), now)
            if len(native.OUTPUTS) == 1:
                ours, theirs = (ours,), (theirs,)
            for mine, ref in zip(ours, theirs):
                finite = np.isfinite(ref)
                assert np.all(np.isfinite(mine) == finite)
                if np.any(finite):
                    worst = max(
                        worst, float(np.max(np.abs(mine[finite] - ref[finite])))
                    )
        assert worst <= 1e-9, worst

    def test_reset_restores_initial_state(self, rc_model):
        instance = native_batch_model([rc_model] * 3)
        first = instance.step_batch(np.ones(3), DT)
        for _ in range(50):
            instance.step_batch(np.ones(3), DT)
        instance.reset()
        again = instance.step_batch(np.ones(3), DT)
        np.testing.assert_array_equal(first, again)

    def test_compile_cache_reuses_the_class(self, rc_model):
        artifact = NativeGenerator().generate_batch([rc_model])
        first = native_backend.compile_native(artifact.code)
        second = native_backend.compile_native(artifact.code)
        assert first is second

    def test_sweep_native_matches_numpy(self):
        from repro.sim import SquareWave

        stimuli = {"vin": SquareWave(period=20e-6)}
        scenarios = [
            Scenario(0, "a", {"stages": 1}),
            Scenario(1, "b", {"stages": 1}),
        ]

        def factory(stages=1):
            return build_rc_filter(int(stages))

        results = {}
        for backend in ("numpy", "native"):
            runner = SweepRunner(factory, "out", stimuli, DT, backend=backend)
            results[backend] = runner.run(scenarios, duration=50e-6)
        np.testing.assert_allclose(
            results["native"].outputs["V(out)"],
            results["numpy"].outputs["V(out)"],
            rtol=0.0,
            atol=1e-12,
        )

    def test_sweep_native_serial_equals_parallel(self):
        import warnings

        from repro.sim import SquareWave

        stimuli = {"vin": SquareWave(period=20e-6)}
        scenarios = [
            Scenario(
                index, f"s{index}", {"order": 1, "resistance": 4e3 + 500 * index}
            )
            for index in range(4)
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a silent serial fallback fails
            serial = SweepRunner(
                build_rc_filter, "out", stimuli, DT, backend="native", workers=1
            ).run(scenarios, duration=50e-6)
            parallel = SweepRunner(
                build_rc_filter, "out", stimuli, DT, backend="native", workers=2
            ).run(scenarios, duration=50e-6)
        np.testing.assert_array_equal(
            serial.outputs["V(out)"], parallel.outputs["V(out)"]
        )

    def test_zoo_oracle_native_engine_agrees(self):
        from repro.zoo.oracle import OracleConfig, check_source

        source = """
module rc1(vin, out);
  inout vin, out;
  electrical vin, out;
  parameter real R = 1k;
  parameter real C = 100n;
  analog begin
    I(vin, out) <+ V(vin, out) / R;
    I(out) <+ C * ddt(V(out));
  end
endmodule
"""
        config = OracleConfig(engines=("python", "numpy", "native"))
        verdict = check_source(source, config)
        assert verdict.ok, verdict.summary()
