"""Tests for the MIPS assembler and instruction-set simulator."""

from __future__ import annotations

import pytest

from repro.errors import AssemblerError, BusError, CpuFault
from repro.vp import Memory, MipsCpu, assemble
from repro.vp.mips.isa import register_number, sign_extend_16, to_signed_32


def run_program(source: str, max_steps: int = 10_000, memory_size: int = 64 * 1024) -> MipsCpu:
    """Assemble, load and run a program until it reaches a `halt:` spin loop."""
    program = assemble(source)
    memory = Memory(size=memory_size)
    memory.load_image(program.to_bytes())
    cpu = MipsCpu(memory)
    halt_address = program.symbols.get("halt")
    for _ in range(max_steps):
        cpu.step()
        if halt_address is not None and cpu.pc == halt_address and cpu.instruction_count > 1:
            break
    return cpu


class TestIsaHelpers:
    def test_register_aliases(self):
        assert register_number("$zero") == 0
        assert register_number("$t0") == 8
        assert register_number("$sp") == 29
        assert register_number("31") == 31
        with pytest.raises(KeyError):
            register_number("$nope")

    def test_sign_extension(self):
        assert sign_extend_16(0x0005) == 5
        assert sign_extend_16(0xFFFF) == -1
        assert to_signed_32(0xFFFFFFFF) == -1
        assert to_signed_32(5) == 5


class TestAssembler:
    def test_round_trip_encoding(self):
        program = assemble("addu $t0, $t1, $t2\n")
        assert program.words == [0x012A4021]

    def test_labels_and_branches(self):
        program = assemble(
            """
            start: beq $zero, $zero, target
                   nop
            target: nop
            """
        )
        # Branch offset counts words from the delay-slot position.
        assert program.words[0] & 0xFFFF == 1

    def test_li_expands_to_two_words(self):
        program = assemble("li $t0, 0x12345678\n")
        assert len(program.words) == 2

    def test_word_directive_and_symbols(self):
        program = assemble(
            """
            value: .word 0xDEADBEEF
            other: .word 1, 2, 3
            """
        )
        assert program.words == [0xDEADBEEF, 1, 2, 3]
        assert program.symbols["other"] == 4

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate $t0, $t1\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop\n")

    def test_branch_out_of_range_rejected(self):
        source = "start: nop\n" + ".space 300000\n" + "beq $zero, $zero, start\n"
        with pytest.raises(AssemblerError):
            assemble(source)

    def test_image_is_little_endian(self):
        program = assemble(".word 0x11223344\n")
        assert program.to_bytes() == bytes([0x44, 0x33, 0x22, 0x11])


class TestCpuInstructions:
    def test_arithmetic_and_logic(self):
        cpu = run_program(
            """
            li   $t0, 10
            li   $t1, 3
            addu $t2, $t0, $t1      # 13
            subu $t3, $t0, $t1      # 7
            and  $t4, $t0, $t1      # 2
            or   $t5, $t0, $t1      # 11
            xor  $t6, $t0, $t1      # 9
            slt  $t7, $t1, $t0      # 1
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t2")) == 13
        assert cpu.read_register(register_number("$t3")) == 7
        assert cpu.read_register(register_number("$t4")) == 2
        assert cpu.read_register(register_number("$t5")) == 11
        assert cpu.read_register(register_number("$t6")) == 9
        assert cpu.read_register(register_number("$t7")) == 1

    def test_shifts_and_immediates(self):
        cpu = run_program(
            """
            li    $t0, 1
            sll   $t1, $t0, 4       # 16
            addiu $t2, $zero, -1
            srl   $t3, $t2, 28      # 0xF
            sra   $t4, $t2, 16      # still -1
            andi  $t5, $t2, 0xFF    # 0xFF
            ori   $t6, $zero, 0xABC
            slti  $t7, $t0, 5       # 1
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t1")) == 16
        assert cpu.read_register(register_number("$t3")) == 0xF
        assert to_signed_32(cpu.read_register(register_number("$t4"))) == -1
        assert cpu.read_register(register_number("$t5")) == 0xFF
        assert cpu.read_register(register_number("$t6")) == 0xABC
        assert cpu.read_register(register_number("$t7")) == 1

    def test_memory_loads_and_stores(self):
        cpu = run_program(
            """
            li   $t0, 0x1000        # data area inside RAM
            li   $t1, 0x12345678
            sw   $t1, 0($t0)
            lw   $t2, 0($t0)
            sb   $t1, 8($t0)
            lbu  $t3, 8($t0)
            lb   $t4, 8($t0)
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t2")) == 0x12345678
        assert cpu.read_register(register_number("$t3")) == 0x78
        assert cpu.read_register(register_number("$t4")) == 0x78
        assert cpu.load_count >= 3
        assert cpu.store_count >= 2

    def test_loop_with_branches_and_jumps(self):
        cpu = run_program(
            """
            li    $t0, 0            # counter
            li    $t1, 5            # limit
            loop: addiu $t0, $t0, 1
            bne   $t0, $t1, loop
            jal   subroutine
            j     halt
            subroutine: addiu $t2, $zero, 99
            jr    $ra
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t0")) == 5
        assert cpu.read_register(register_number("$t2")) == 99

    def test_multiplication_and_division(self):
        cpu = run_program(
            """
            li    $t0, 7
            li    $t1, 6
            mult  $t0, $t1
            mflo  $t2               # 42
            li    $t3, 43
            divu  $t3, $t1
            mflo  $t4               # 7
            mfhi  $t5               # 1
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t2")) == 42
        assert cpu.read_register(register_number("$t4")) == 7
        assert cpu.read_register(register_number("$t5")) == 1

    def test_signed_division_truncates_toward_zero(self):
        # -7 / 2 = -3 rem -1 (truncation, not floor: floor would give -4 rem 1).
        cpu = run_program(
            """
            li    $t0, -7
            li    $t1, 2
            div   $t0, $t1
            mflo  $t2
            mfhi  $t3
            li    $t4, 7
            li    $t5, -2
            div   $t4, $t5
            mflo  $t6
            mfhi  $t7
            li    $s0, -7
            li    $s1, -2
            div   $s0, $s1
            mflo  $s2
            mfhi  $s3
            halt: beq $zero, $zero, halt
            """
        )
        assert to_signed_32(cpu.read_register(register_number("$t2"))) == -3
        assert to_signed_32(cpu.read_register(register_number("$t3"))) == -1
        assert to_signed_32(cpu.read_register(register_number("$t6"))) == -3
        assert to_signed_32(cpu.read_register(register_number("$t7"))) == 1
        assert to_signed_32(cpu.read_register(register_number("$s2"))) == 3
        assert to_signed_32(cpu.read_register(register_number("$s3"))) == -1

    def test_division_is_exact_at_int_extremes(self):
        # INT_MAX / 1 must be exact: the old float round trip returned
        # int(2147483647 / 1.0) == 2147483648.  INT_MIN / -1 overflows to
        # 0x80000000 (the wrapped two's-complement result); remainder 0.
        cpu = run_program(
            """
            li    $t0, 0x7FFFFFFF
            li    $t1, 1
            div   $t0, $t1
            mflo  $t2
            mfhi  $t3
            li    $t4, 0x80000000
            li    $t5, -1
            div   $t4, $t5
            mflo  $t6
            mfhi  $t7
            li    $s0, 5
            li    $s1, 0
            div   $s0, $s1
            mflo  $s2
            mfhi  $s3
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t2")) == 0x7FFFFFFF
        assert cpu.read_register(register_number("$t3")) == 0
        assert cpu.read_register(register_number("$t6")) == 0x80000000
        assert cpu.read_register(register_number("$t7")) == 0
        # Division by zero leaves hi/lo cleared (the documented model).
        assert cpu.read_register(register_number("$s2")) == 0
        assert cpu.read_register(register_number("$s3")) == 0

    def test_register_zero_is_immutable(self):
        cpu = run_program(
            """
            li $zero, 55
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(0) == 0

    def test_pseudo_branches(self):
        cpu = run_program(
            """
            li   $t0, 3
            li   $t1, 7
            blt  $t0, $t1, smaller
            li   $t2, 111
            j    halt
            smaller: li $t2, 222
            halt: beq $zero, $zero, halt
            """
        )
        assert cpu.read_register(register_number("$t2")) == 222

    def test_illegal_instruction_faults(self):
        memory = Memory()
        memory.write_word(0, 0xFC000000)  # opcode 0x3F is unimplemented
        cpu = MipsCpu(memory)
        with pytest.raises(CpuFault):
            cpu.step()

    def test_peripheral_access_without_bus_faults(self):
        cpu = run_program  # silence lint
        memory = Memory()
        program = assemble("lui $t0, 0x1000\nlw $t1, 0($t0)\n")
        memory.load_image(program.to_bytes())
        cpu = MipsCpu(memory)
        cpu.step()
        with pytest.raises(CpuFault):
            cpu.step()

    def test_out_of_range_memory_access(self):
        memory = Memory(size=1024)
        with pytest.raises(BusError):
            memory.read_word(4096)
        with pytest.raises(BusError):
            memory.write_byte(-1, 0)
