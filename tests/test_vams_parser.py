"""Tests for the Verilog-AMS parser and module AST."""

from __future__ import annotations

import pytest

from repro.errors import VamsParseError
from repro.expr import Call, Conditional, Constant, Derivative, Integral, Variable
from repro.vams import (
    Assignment,
    Contribution,
    IfStatement,
    classify_module,
    parse_module,
    parse_source,
)
from repro.vams.classify import CONSERVATIVE, MIXED, SIGNAL_FLOW

RC_SOURCE = """
`include "disciplines.vams"
module rc1(vin, out);
  input vin;
  output out;
  electrical vin, out, gnd;
  ground gnd;
  parameter real R = 5k;
  parameter real C = 25n;
  branch (vin, out) rb;
  branch (out, gnd) cb;
  analog begin
    V(rb) <+ R * I(rb);
    I(cb) <+ C * ddt(V(cb));
  end
endmodule
"""


class TestModuleStructure:
    def test_module_name_and_ports(self):
        module = parse_module(RC_SOURCE)
        assert module.name == "rc1"
        assert module.port_names() == ["vin", "out"]
        assert module.port("vin").direction == "input"
        assert module.port("out").direction == "output"

    def test_parameters_with_scale_factors(self):
        module = parse_module(RC_SOURCE)
        assert module.parameter_values() == pytest.approx({"R": 5e3, "C": 25e-9})

    def test_parameter_referencing_earlier_parameter(self):
        module = parse_module(
            "module m(a); inout a; electrical a; parameter real X = 2; "
            "parameter real Y = 3 * X; endmodule"
        )
        assert module.parameter_values()["Y"] == pytest.approx(6.0)

    def test_disciplines_and_ground(self):
        module = parse_module(RC_SOURCE)
        assert set(module.electrical_nets()) == {"vin", "out", "gnd"}
        assert module.grounds == {"gnd"}

    def test_branches(self):
        module = parse_module(RC_SOURCE)
        branch = module.branch_by_name("rb")
        assert (branch.positive, branch.negative) == ("vin", "out")
        assert module.branch_by_name("missing") is None

    def test_real_variable_declarations(self):
        module = parse_module(
            "module m(a); inout electrical a; real x, y; analog V(a) <+ 0; endmodule"
        )
        assert module.real_variables == ["x", "y"]

    def test_multiple_modules(self):
        source = "module a(x); inout electrical x; endmodule\nmodule b(y); inout electrical y; endmodule"
        modules = parse_source(source)
        assert [m.name for m in modules] == ["a", "b"]
        with pytest.raises(VamsParseError):
            parse_module(source)


class TestAnalogStatements:
    def test_contribution_targets(self):
        module = parse_module(RC_SOURCE)
        contributions = module.contributions()
        assert len(contributions) == 2
        assert contributions[0].target.kind == "V"
        assert contributions[1].target.kind == "I"

    def test_ddt_becomes_derivative_node(self):
        module = parse_module(RC_SOURCE)
        capacitor = module.contributions()[1]
        assert capacitor.expression.has_derivative()

    def test_idt_with_initial_condition(self):
        module = parse_module(
            "module m(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ idt(V(a), 0.5); endmodule"
        )
        expr = module.contributions()[0].expression
        assert isinstance(expr, Integral)
        assert expr.initial == Constant(0.5)

    def test_access_function_in_expression(self):
        module = parse_module(
            "module m(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 2 * V(a, b) + I(a, b); endmodule"
        )
        names = module.contributions()[0].expression.variables()
        assert "V(a,b)" in names
        assert "I(a,b)" in names

    def test_assignment_and_conditional(self):
        module = parse_module(
            """
            module m(a, b); input a; output b; electrical a, b; real x;
            analog begin
              x = 2 * V(a);
              if (x > 1) V(b) <+ x; else V(b) <+ 0;
            end
            endmodule
            """
        )
        statements = module.analog
        assert isinstance(statements[0], Assignment)
        assert isinstance(statements[1], IfStatement)
        assert isinstance(statements[1].then_branch[0], Contribution)
        assert isinstance(statements[1].else_branch[0], Contribution)

    def test_math_functions_and_system_time(self):
        module = parse_module(
            "module m(b); output b; electrical b;"
            " analog V(b) <+ exp(-$abstime) * sin(2 * 3.14 * 1k * $abstime); endmodule"
        )
        expr = module.contributions()[0].expression
        assert "$abstime" in expr.variables()

    def test_conditional_expression(self):
        module = parse_module(
            "module m(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ (V(a) > 0.5) ? 1.0 : 0.0; endmodule"
        )
        assert isinstance(module.contributions()[0].expression, Conditional)

    def test_operator_precedence(self):
        module = parse_module(
            "module m(b); output b; electrical b; analog V(b) <+ 1 + 2 * 3 ** 2; endmodule"
        )
        from repro.expr import evaluate

        assert evaluate(module.contributions()[0].expression) == pytest.approx(19.0)


class TestErrors:
    def test_missing_endmodule(self):
        with pytest.raises(VamsParseError, match="endmodule"):
            parse_module("module m(a); inout a;")

    def test_unknown_function(self):
        with pytest.raises(VamsParseError, match="unknown function"):
            parse_module("module m(b); output b; electrical b; analog V(b) <+ foo(1); endmodule")

    def test_unknown_system_function(self):
        with pytest.raises(VamsParseError):
            parse_module("module m(b); output b; electrical b; analog V(b) <+ $bogus; endmodule")

    def test_missing_contribution_operator(self):
        with pytest.raises(VamsParseError):
            parse_module("module m(b); output b; electrical b; analog V(b) 1.0; endmodule")

    def test_empty_source(self):
        with pytest.raises(VamsParseError):
            parse_module("   \n  // nothing here\n")


class TestClassification:
    def test_conservative_module(self):
        assert classify_module(parse_module(RC_SOURCE)).category == CONSERVATIVE

    def test_signal_flow_module(self):
        module = parse_module(
            "module gain(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 2.5 * V(a); endmodule"
        )
        classification = classify_module(module)
        assert classification.category == SIGNAL_FLOW
        assert classification.is_signal_flow

    def test_mixed_module(self):
        module = parse_module(
            """
            module m(a, b); input a; output b; electrical a, b, n1;
            branch (a, n1) rb;
            analog begin
              V(rb) <+ 1k * I(rb);
              V(b) <+ 3 * V(n1);
            end
            endmodule
            """
        )
        assert classify_module(module).category == MIXED
