"""The committed circuit zoo: round-trip and cross-engine agreement.

Every ``zoo/corpus/*.va`` netlist must parse, build, and agree across every
pair of engines to the 1e-9 differential contract — parametrized per netlist
and per engine pair so a regression names the exact circuit and pairing.
"""

from __future__ import annotations

import itertools
import pickle

import pytest

from repro.network import Circuit
from repro.vams import parse_module, to_circuit
from repro.zoo import OracleConfig, check_source, load_entry, zoo_entries, zoo_factory

CONFIG = OracleConfig(duration=5e-5)
ENTRIES = zoo_entries()
NAMES = [entry.name for entry in ENTRIES]
PAIRS = list(itertools.combinations(CONFIG.engines, 2))


class TestCatalog:
    def test_zoo_is_at_least_eight_netlists(self):
        assert len(ENTRIES) >= 8

    def test_entries_expose_interface_summaries(self):
        entry = load_entry("rc_ladder3")
        assert entry.inputs == ("vin",)
        assert entry.output == "out"
        assert entry.parameters == pytest.approx({"R": 4.7e3, "C": 22e-9})

    def test_unknown_entry_raises_with_known_names(self):
        with pytest.raises(KeyError, match="rc_ladder3"):
            load_entry("definitely_not_a_zoo_circuit")

    def test_factory_builds_and_overrides_parameters(self):
        factory = zoo_factory("divider")
        nominal = factory()
        assert isinstance(nominal, Circuit)
        overridden = factory(RTOP=99e3)
        assert overridden.branch("rb").component is not None
        assert nominal is not overridden

    def test_factory_rejects_unknown_parameters(self):
        from repro.vams import NetlistError

        with pytest.raises(NetlistError, match="RFOO"):
            zoo_factory("divider")(RFOO=1.0)

    def test_factory_is_picklable(self):
        factory = pickle.loads(pickle.dumps(zoo_factory("gm_stage")))
        assert isinstance(factory(), Circuit)

    @pytest.mark.parametrize("name", NAMES)
    def test_round_trip_parse_and_build(self, name):
        entry = load_entry(name)
        module = parse_module(entry.source)
        circuit = to_circuit(module)
        assert circuit.name == name
        nets = {net.lower() for net in module.electrical_nets()}
        assert entry.output in nets


class TestCrossEngineAgreement:
    @pytest.fixture(scope="class")
    def verdicts(self):
        return {
            entry.name: check_source(entry.source, CONFIG, output=entry.output)
            for entry in ENTRIES
        }

    @pytest.mark.parametrize("name", NAMES)
    def test_netlist_passes_the_oracle(self, verdicts, name):
        verdict = verdicts[name]
        assert verdict.ok, f"{name}: {verdict.summary()}"

    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize(
        "pair", PAIRS, ids=lambda pair: f"{pair[0]}-vs-{pair[1]}"
    )
    def test_pairwise_agreement(self, verdicts, name, pair):
        error = verdicts[name].errors[pair]
        assert error <= CONFIG.tolerance, (
            f"{name}: {pair[0]} and {pair[1]} disagree (NRMSE {error:.3e})"
        )
