"""Unit tests for the expression AST (construction, traversal, rendering)."""

from __future__ import annotations

import pytest

from repro.expr import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Integral,
    Previous,
    UnaryOp,
    Variable,
    rebuild,
    substitute,
    substitute_previous,
    to_string,
    transform,
)


class TestConstruction:
    def test_constant_stores_float(self):
        assert Constant(3).value == 3.0

    def test_variable_requires_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_previous_requires_name(self):
        with pytest.raises(ValueError):
            Previous("")

    def test_binary_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            BinaryOp("%", Constant(1), Constant(2))

    def test_unary_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            UnaryOp("~", Constant(1))

    def test_call_rejects_unknown_function(self):
        with pytest.raises(ValueError):
            Call("frobnicate", (Constant(1),))


class TestEqualityAndHashing:
    def test_structural_equality(self):
        left = BinaryOp("+", Variable("x"), Constant(1))
        right = BinaryOp("+", Variable("x"), Constant(1))
        assert left == right
        assert hash(left) == hash(right)

    def test_different_operator_not_equal(self):
        assert BinaryOp("+", Variable("x"), Constant(1)) != BinaryOp(
            "-", Variable("x"), Constant(1)
        )

    def test_variable_vs_previous_not_equal(self):
        assert Variable("x") != Previous("x")

    def test_usable_in_sets(self):
        expressions = {Variable("a"), Variable("a"), Variable("b")}
        assert len(expressions) == 2


class TestQueries:
    def test_variables_collects_names(self):
        expr = BinaryOp("*", Variable("V(a)"), BinaryOp("+", Variable("I(b)"), Constant(2)))
        assert expr.variables() == {"V(a)", "I(b)"}

    def test_previous_values(self):
        expr = BinaryOp("+", Previous("V(a)"), Variable("u"))
        assert expr.previous_values() == {"V(a)"}

    def test_contains_variable(self):
        expr = Call("sin", (Variable("x"),))
        assert expr.contains_variable("x")
        assert not expr.contains_variable("y")

    def test_has_derivative_flag(self):
        assert Derivative(Variable("x")).has_derivative()
        assert not Variable("x").has_derivative()
        assert BinaryOp("+", Constant(1), Derivative(Variable("x"))).has_derivative()

    def test_has_integral_flag(self):
        assert Integral(Variable("x")).has_integral()
        assert not Constant(1).has_integral()

    def test_size_and_depth(self):
        expr = BinaryOp("+", Variable("x"), BinaryOp("*", Constant(2), Variable("y")))
        assert expr.size() == 5
        assert expr.depth() == 3

    def test_walk_visits_every_node(self):
        expr = Conditional(Variable("c"), Constant(1), Constant(2))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("Constant") == 2
        assert "Conditional" in kinds


class TestOperatorOverloads:
    def test_addition_with_number(self):
        expr = Variable("x") + 1
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert expr.rhs == Constant(1)

    def test_reflected_multiplication(self):
        expr = 2.0 * Variable("x")
        assert expr.op == "*"
        assert expr.lhs == Constant(2.0)

    def test_division_and_power(self):
        assert (Variable("x") / 4).op == "/"
        assert (Variable("x") ** 2).op == "**"

    def test_negation(self):
        expr = -Variable("x")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "-"

    def test_unsupported_operand_raises(self):
        with pytest.raises(TypeError):
            Variable("x") + "text"


class TestTransformAndSubstitute:
    def test_substitute_replaces_variables(self):
        expr = BinaryOp("+", Variable("x"), Variable("y"))
        result = substitute(expr, {"x": Constant(3)})
        assert result == BinaryOp("+", Constant(3), Variable("y"))

    def test_substitute_previous(self):
        expr = BinaryOp("+", Previous("x"), Constant(1))
        result = substitute_previous(expr, {"x": Constant(7)})
        assert result == BinaryOp("+", Constant(7), Constant(1))

    def test_transform_bottom_up(self):
        expr = BinaryOp("+", Constant(1), Constant(2))

        def visit(node):
            if isinstance(node, Constant):
                return Constant(node.value * 10)
            return node

        assert transform(expr, visit) == BinaryOp("+", Constant(10), Constant(20))

    def test_rebuild_preserves_type(self):
        original = Call("min", (Constant(1), Constant(2)))
        rebuilt = rebuild(original, (Constant(3), Constant(4)))
        assert isinstance(rebuilt, Call)
        assert rebuilt.func == "min"

    def test_rebuild_integral_with_initial(self):
        original = Integral(Variable("x"), Constant(1))
        rebuilt = rebuild(original, (Variable("y"), Constant(2)))
        assert rebuilt == Integral(Variable("y"), Constant(2))


class TestRendering:
    def test_simple_infix(self):
        expr = BinaryOp("+", Variable("a"), BinaryOp("*", Variable("b"), Constant(2)))
        assert to_string(expr) == "a + b * 2"

    def test_parentheses_for_precedence(self):
        expr = BinaryOp("*", BinaryOp("+", Variable("a"), Variable("b")), Constant(2))
        assert to_string(expr) == "(a + b) * 2"

    def test_ddt_and_prev_rendering(self):
        assert to_string(Derivative(Variable("V(a)"))) == "ddt(V(a))"
        assert to_string(Previous("V(a)")) == "prev(V(a))"

    def test_conditional_rendering(self):
        expr = Conditional(BinaryOp(">", Variable("x"), Constant(0)), Constant(1), Constant(2))
        assert to_string(expr) == "(x > 0 ? 1 : 2)"
