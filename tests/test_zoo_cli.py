"""The ``repro-fuzz`` campaign driver: exit codes, reports, reproducers."""

from __future__ import annotations

from repro.zoo.cli import SMOKE_COUNT, build_parser, main, run_campaign


class TestMain:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["--count", "3", "--seed", "2", "--corpus-dir", "none"]) == 0
        out = capsys.readouterr().out
        assert "3 netlists agree across 5 engines" in out
        assert "seed 2" in out

    def test_bad_count_exits_two(self, capsys):
        assert main(["--count", "0"]) == 2
        assert "--count" in capsys.readouterr().err

    def test_smoke_floors_the_count(self):
        args = build_parser().parse_args(["--smoke", "--count", "3"])
        assert args.smoke and args.count == 3
        assert max(args.count, SMOKE_COUNT) == SMOKE_COUNT


class TestRunCampaign:
    def test_report_aggregates_checks(self):
        report = run_campaign(seed=4, count=3)
        assert report.ok
        assert report.checked == 3
        assert report.failures == [] and report.reproducers == []
        assert 0.0 < report.worst_error <= 1e-9

    def test_include_zoo_checks_the_committed_corpus(self):
        from repro.zoo import zoo_entries

        report = run_campaign(seed=4, count=1, include_zoo=True)
        assert report.ok
        assert report.checked == 1 + len(zoo_entries())
