"""Parsed Verilog-AMS circuits through the sweep and fault subsystems.

Until now only hand-built Python circuits flowed through ``SweepRunner`` and
``FaultCampaignRunner``; these tests drive both from a *parsed* zoo netlist
via the picklable catalog factories, closing the frontend → campaign gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import abstract_circuit
from repro.fault import (
    VERDICT_SILENT,
    VERDICTS,
    FaultCampaignRunner,
    FaultCampaignSpec,
    ParameterDriftFault,
    ResistorOpenFault,
)
from repro.sim import SquareWave, run_python_model
from repro.sweep import GridSpec, PlatformScenarioSpec, SweepRunner
from repro.vams import parse_module, to_circuit
from repro.vp import threshold_monitor_source
from repro.zoo import load_entry, zoo_factory

TIMESTEP = 50e-9
SHORT = 5e-5
WAVE = {"vin": SquareWave(period=4e-5)}


class TestParsedCircuitSweep:
    @pytest.fixture(scope="class")
    def result(self):
        runner = SweepRunner(
            zoo_factory("divider"), "out", stimuli=WAVE, timestep=TIMESTEP
        )
        spec = GridSpec(axes={"RTOP": [5e3, 10e3], "RBOT": [1e3, 2.2e3]})
        return runner.run(spec, SHORT)

    def test_grid_over_parsed_parameters_expands_fully(self, result):
        assert result.n_scenarios == 4
        ensemble = result.ensemble("V(out)")
        assert ensemble.shape[0] == 4
        assert np.isfinite(ensemble).all()

    def test_scenarios_actually_differ(self, result):
        ensemble = result.ensemble("V(out)")
        finals = {round(float(lane[-1]), 9) for lane in ensemble}
        assert len(finals) == 4  # every (RTOP, RBOT) corner is distinct

    def test_sweep_lane_matches_direct_override_elaboration(self, result):
        """A sweep lane is bit-identical to re-elaborating the module with
        the same parameter overrides and running the scalar engine."""
        entry = load_entry("divider")
        circuit = to_circuit(
            parse_module(entry.source), overrides={"RTOP": 5e3, "RBOT": 1e3}
        )
        model = abstract_circuit(circuit, "out", TIMESTEP)
        reference = run_python_model(model, WAVE, SHORT).waveform("V(out)")
        lanes = result.ensemble("V(out)")
        assert any(
            np.array_equal(np.asarray(lane), np.asarray(reference))
            for lane in lanes
        )

    def test_parallel_sweep_of_parsed_circuits_matches_serial(self):
        spec = GridSpec(axes={"RTOP": [5e3, 10e3]})
        serial = SweepRunner(
            zoo_factory("divider"), "out", stimuli=WAVE, timestep=TIMESTEP
        ).run(spec, SHORT)
        parallel = SweepRunner(
            zoo_factory("divider"),
            "out",
            stimuli=WAVE,
            timestep=TIMESTEP,
            workers=2,
        ).run(spec, SHORT)
        assert np.array_equal(
            serial.ensemble("V(out)"), parallel.ensemble("V(out)")
        )


class TestParsedCircuitFaultCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        spec = FaultCampaignSpec(
            faults=[
                ParameterDriftFault("rb", 1.0 + 1e-9),  # silent anchor
                ParameterDriftFault("rb", 3.0),
                ResistorOpenFault("rb"),
            ],
            activation_times=(2e-5,),
            scenarios=PlatformScenarioSpec(
                firmwares={"threshold": threshold_monitor_source(500)}
            ),
            seed=5,
        )
        runner = FaultCampaignRunner(zoo_factory("divider"), "out", WAVE)
        return runner.run(spec, 1.2e-4)

    def test_every_fault_on_the_parsed_netlist_is_classified(self, result):
        verdicts = result.verdicts()
        assert len(verdicts) == 3
        assert all(entry.verdict in VERDICTS for entry in verdicts)

    def test_epsilon_drift_is_silent_and_open_is_not(self, result):
        by_name = {
            entry.run.fault.name: entry.verdict for entry in result.verdicts()
        }
        assert by_name["drift:rbx1.000000001"] == VERDICT_SILENT
        assert by_name["open:rb"] != VERDICT_SILENT
        assert by_name["drift:rbx3.0"] != VERDICT_SILENT
