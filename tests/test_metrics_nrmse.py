"""Edge-case tests for the NRMSE metric (``repro.metrics.nrmse``).

The interesting behaviour is in the corners: the normalisation fallback
chain for constant references (span → mean magnitude → 1.0) and the
resampling that makes :func:`compare_traces` insensitive to the one-step
delta-cycle offset between engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import compare_trace_sets, compare_traces, nrmse, rmse
from repro.sim import Trace, TraceSet

DT = 50e-9


def _trace(name: str, times: np.ndarray, values: np.ndarray) -> Trace:
    trace = Trace(name)
    for time, value in zip(times, values):
        trace.append(float(time), float(value))
    return trace


class TestRmse:
    def test_plain_value(self):
        reference = np.array([0.0, 0.0, 0.0, 0.0])
        measured = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(reference, measured) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            rmse(np.zeros(3), np.zeros(4))

    def test_empty_waveforms_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            rmse(np.array([]), np.array([]))


class TestNrmseFallbackChain:
    def test_normalises_by_peak_to_peak_span(self):
        reference = np.array([0.0, 1.0, 2.0, 3.0])  # span 3
        assert nrmse(reference, reference + 0.3) == pytest.approx(0.1)

    def test_constant_reference_falls_back_to_mean_magnitude(self):
        """Stage 2: zero span, non-zero mean → normalise by |mean|."""
        reference = np.full(8, 2.0)
        measured = reference + 1.0
        assert nrmse(reference, measured) == pytest.approx(1.0 / 2.0)
        negative = np.full(8, -4.0)
        assert nrmse(negative, negative + 1.0) == pytest.approx(1.0 / 4.0)

    def test_all_zero_reference_degrades_to_plain_rmse(self):
        """Stage 3: zero span and zero mean → divide by 1 (raw RMSE)."""
        reference = np.zeros(16)
        measured = np.full(16, 0.25)
        assert nrmse(reference, measured) == pytest.approx(0.25)

    def test_identical_constant_waveforms_are_exactly_zero(self):
        reference = np.full(4, 7.5)
        assert nrmse(reference, reference.copy()) == 0.0


class TestCompareTraces:
    def test_identical_traces(self):
        times = np.arange(1, 101) * DT
        values = np.sin(2e5 * np.pi * times)
        assert compare_traces(_trace("a", times, values), _trace("b", times, values)) == 0.0

    def test_one_step_delta_offset_is_resampled_away(self):
        """Engines sampling the same waveform one timestep apart must compare
        as (nearly) equal — the motivating case for the resampling."""
        times = np.arange(1, 201) * DT
        waveform = lambda t: np.sin(2e4 * 2.0 * np.pi * t)  # noqa: E731
        reference = _trace("ref", times, waveform(times))
        offset = _trace("off", times + DT, waveform(times + DT))
        aligned = compare_traces(reference, offset)
        raw = compare_traces(reference, offset, resample=False)
        # The overlapping samples interpolate exactly; only the first
        # reference point lies before the offset trace and is clamped, so the
        # residual is a single boundary sample, an order of magnitude below
        # the raw (shift-visible) comparison.
        assert aligned < 1e-3
        assert raw > 10 * aligned

    def test_resample_false_requires_equal_sampling(self):
        times = np.arange(1, 51) * DT
        values = np.linspace(0.0, 1.0, 50)
        reference = _trace("a", times, values)
        measured = _trace("b", times, values + 0.1)
        assert compare_traces(reference, measured, resample=False) == pytest.approx(
            0.1, rel=1e-9
        )

    def test_empty_traces_rejected(self):
        times = np.arange(1, 4) * DT
        populated = _trace("a", times, np.ones(3))
        with pytest.raises(ValueError, match="empty"):
            compare_traces(populated, Trace("empty"))
        with pytest.raises(ValueError, match="empty"):
            compare_traces(Trace("empty"), populated)

    def test_trace_set_comparison_uses_common_names(self):
        times = np.arange(1, 11) * DT
        values = np.linspace(0.0, 1.0, 10)
        reference = TraceSet(
            {
                "V(out)": _trace("V(out)", times, values),
                "V(mid)": _trace("V(mid)", times, values),
            }
        )
        measured = TraceSet({"V(out)": _trace("V(out)", times, values)})
        errors = compare_trace_sets(reference, measured)
        assert set(errors) == {"V(out)"}
        assert errors["V(out)"] == 0.0
