"""Tests of the fault model library (``repro.fault.models``) and the
platform/memory hooks it builds on.

Analog faults are netlist transforms and must flow through every backend —
including the vectorized NumPy batch path — with no fault-specific code in
the simulators.  Digital faults are platform hooks and must be *exact*:
time-gated bus saboteurs strike on precise clock cycles, and scheduled
injections into CPU-visible state land on the same instruction boundary
whether the ISS runs per-tick or block-stepped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_opamp, build_rc_filter, rc_benchmark
from repro.core import abstract_circuit
from repro.errors import BusError, FaultError
from repro.fault import (
    AdcBitFlipFault,
    AdcStuckBitFault,
    FaultableCircuitFactory,
    GainDegradationFault,
    InstructionCorruptionFault,
    MemoryBitFlipFault,
    ParameterDriftFault,
    RegisterTransientFault,
    ResistorOpenFault,
    ResistorShortFault,
    UartCorruptionFault,
    analog_fault_universe,
    digital_fault_universe,
)
from repro.sim import SquareWave
from repro.sweep import Scenario, SweepRunner
from repro.vp import Memory, MipsCpu, SmartSystemPlatform, assemble
from repro.vp.mips.isa import register_number

TIMESTEP = 50e-9
WAVE = {"vin": SquareWave(period=8e-6)}


def rc1_factory():
    return rc_benchmark(1).build


class TestAnalogFaults:
    def test_drift_scales_the_component_value(self):
        circuit = build_rc_filter(1)
        nominal = circuit.branch("r1").component.resistance
        ParameterDriftFault("r1", 1.5).apply(circuit)
        assert circuit.branch("r1").component.resistance == pytest.approx(1.5 * nominal)
        ParameterDriftFault("c1", 2.0).apply(circuit)
        assert circuit.branch("c1").component.capacitance == pytest.approx(50e-9)

    def test_open_and_short_rewrite_the_resistance(self):
        circuit = build_rc_filter(1)
        ResistorOpenFault("r1").apply(circuit)
        assert circuit.branch("r1").component.resistance == 1e9
        ResistorShortFault("r1").apply(circuit)
        assert circuit.branch("r1").component.resistance == 1e-2

    def test_open_short_reject_non_resistors(self):
        circuit = build_rc_filter(1)
        with pytest.raises(FaultError, match="not a resistor"):
            ResistorOpenFault("c1").apply(circuit)

    def test_gain_degradation_hits_controlled_sources_only(self):
        circuit = build_opamp()
        nominal = circuit.branch("stage").component.gain
        GainDegradationFault("stage", 0.5).apply(circuit)
        assert circuit.branch("stage").component.gain == pytest.approx(0.5 * nominal)
        with pytest.raises(FaultError, match="no gain"):
            GainDegradationFault("rb1", 0.5).apply(build_opamp())

    def test_validation(self):
        with pytest.raises(FaultError):
            ParameterDriftFault("r1", 0.0)
        with pytest.raises(FaultError):
            AdcStuckBitFault(bit=32)
        with pytest.raises(FaultError):
            AdcStuckBitFault(bit=0, stuck_at=2)
        with pytest.raises(FaultError):
            RegisterTransientFault(register=0)
        with pytest.raises(FaultError):
            MemoryBitFlipFault(bit=8)
        with pytest.raises(FaultError):
            UartCorruptionFault(0)
        with pytest.raises(FaultError):
            InstructionCorruptionFault(address=2)

    def test_names_are_deterministic_and_distinct(self):
        universe = analog_fault_universe(build_opamp()) + digital_fault_universe()
        names = [fault.name for fault in universe]
        assert len(names) == len(set(names))
        assert ParameterDriftFault("r1", 1.5).name == "drift:r1x1.5"
        assert AdcStuckBitFault(9, 1).name == "adc-stuck1:bit9"
        # full-precision factors: near-identical drifts keep distinct names
        assert (
            ParameterDriftFault("r1", 1.0000001).name
            != ParameterDriftFault("r1", 1.0000002).name
        )

    def test_universe_covers_every_component_family(self):
        kinds = {fault.kind for fault in analog_fault_universe(build_opamp())}
        assert kinds == {"open", "short", "drift", "gain-degradation"}
        kinds = {fault.kind for fault in digital_fault_universe()}
        assert kinds == {
            "adc-stuck",
            "adc-flip",
            "register-flip",
            "memory-flip",
            "uart-corruption",
        }

    def test_faulted_model_diverges_from_nominal(self):
        """The transform must change the *abstracted* model's behaviour."""
        nominal = abstract_circuit(build_rc_filter(1), "out", TIMESTEP)
        faulted_circuit = build_rc_filter(1)
        ParameterDriftFault("r1", 2.0).apply(faulted_circuit)
        faulted = abstract_circuit(faulted_circuit, "out", TIMESTEP)
        a = nominal.run(WAVE, 4e-6).waveform("V(out)")
        b = faulted.run(WAVE, 4e-6).waveform("V(out)")
        assert not np.allclose(a, b)


class TestFaultsFlowThroughBatchBackend:
    def test_numpy_batch_equals_scalar_python_for_faulted_scenarios(self):
        """A faulted netlist is just another netlist: the vectorized batch
        backend simulates nominal and faulted variants in one structure
        group, bit-compatible with the scalar path."""
        factory = FaultableCircuitFactory(
            rc1_factory(),
            {
                "drift:r1x1.5": ParameterDriftFault("r1", 1.5),
                "open:r1": ResistorOpenFault("r1"),
            },
        )
        scenarios = [
            Scenario(index=0, label="nominal", params={}),
            Scenario(index=1, label="drift", params={"_fault": "drift:r1x1.5"}),
            Scenario(index=2, label="open", params={"_fault": "open:r1"}),
        ]
        batched = SweepRunner(
            factory, "out", WAVE, timestep=TIMESTEP, backend="numpy"
        ).run(scenarios, 4e-6)
        scalar = SweepRunner(
            factory, "out", WAVE, timestep=TIMESTEP, backend="python"
        ).run(scenarios, 4e-6)
        assert batched.structure_groups == 1  # faults batch with nominal
        np.testing.assert_allclose(
            batched.outputs["V(out)"], scalar.outputs["V(out)"], atol=1e-12
        )
        # and the faults actually did something
        matrix = batched.outputs["V(out)"]
        assert not np.allclose(matrix[0], matrix[1])
        assert not np.allclose(matrix[0], matrix[2])


class TestMemoryHardening:
    def test_peek_and_poke_do_not_touch_statistics(self):
        memory = Memory(size=1024)
        memory.poke(16, b"\xaa\xbb")
        assert memory.peek(16, 2) == b"\xaa\xbb"
        assert memory.read_count == 0 and memory.write_count == 0

    def test_poke_accepts_single_byte_values(self):
        memory = Memory(size=1024)
        memory.poke(3, 0x5A)
        assert memory.peek(3) == b"\x5a"

    def test_poke_rejects_multi_byte_ints(self):
        memory = Memory(size=1024)
        with pytest.raises(ValueError, match="one byte"):
            memory.poke(0, 0x12345678)
        with pytest.raises(ValueError, match="one byte"):
            memory.poke(0, -1)

    def test_flip_bit(self):
        memory = Memory(size=1024)
        memory.poke(8, 0b1000)
        assert memory.flip_bit(8, 0) == 0b1001
        assert memory.flip_bit(8, 3) == 0b0001
        with pytest.raises(ValueError):
            memory.flip_bit(8, 8)

    def test_bounds_are_checked(self):
        memory = Memory(size=64)
        with pytest.raises(BusError):
            memory.poke(62, b"\x00\x00\x00")
        with pytest.raises(BusError):
            memory.peek(64)

    def test_watchers_see_word_aligned_spans(self):
        events = []
        memory = Memory(size=1024)
        memory.add_write_watcher(lambda address, width: events.append((address, width)))
        memory.write_byte(5, 0xFF)
        memory.write_word(8, 0x1234)
        memory.poke(13, b"\x01\x02\x03\x04")  # bytes 13-16: covers words 12..20
        memory.flip_bit(21, 2)
        assert events == [(4, 4), (8, 4), (12, 8), (20, 4)]
        for address, width in events:
            assert address % 4 == 0 and width % 4 == 0

    def test_poke_notify_false_bypasses_watchers(self):
        events = []
        memory = Memory(size=1024)
        memory.add_write_watcher(lambda address, width: events.append((address, width)))
        memory.poke(0, b"\xff\xff\xff\xff", notify=False)
        memory.flip_bit(9, 1, notify=False)
        assert events == []

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            Memory(size=64, base=2)


class TestDecodeCacheUnderPoke:
    """The decode-cache edge cases of external sub-word writes."""

    SOURCE = "li $v0, 5\nhalt: beq $zero, $zero, halt\n"

    def fresh_cpu(self) -> MipsCpu:
        memory = Memory(size=64 * 1024)
        memory.load_image(assemble(self.SOURCE).to_bytes())
        return MipsCpu(memory)

    def test_external_byte_write_into_code_re_decodes(self):
        cpu = self.fresh_cpu()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 5
        # Rewrite only the low byte of the `ori $v0, $zero, 5` immediate
        # (li expands to lui+ori; word 1 is the ori).
        cpu.memory.write_byte(4, 9)
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 9

    def test_poke_into_code_re_decodes(self):
        cpu = self.fresh_cpu()
        cpu.run_block(4)
        cpu.memory.poke(4, 7)
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 7

    def test_poke_without_notify_leaves_stale_decode(self):
        """The explicit bypass: RAM changes but the decoded copy executes."""
        cpu = self.fresh_cpu()
        cpu.run_block(4)
        cpu.memory.poke(4, 7, notify=False)
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 5  # stale by design
        assert cpu.memory.peek(4) == b"\x07"  # RAM itself did change

    def test_load_image_over_executed_code_re_decodes(self):
        cpu = self.fresh_cpu()
        cpu.run_block(4)
        cpu.memory.load_image(assemble("li $v0, 11\nhalt: beq $zero, $zero, halt\n").to_bytes())
        cpu.reset()
        cpu.run_block(4)
        assert cpu.read_register(register_number("$v0")) == 11


def build_faulted_platform(block_cycles: int, arm) -> SmartSystemPlatform:
    """A recording RC1 platform with ``arm(platform)`` applied before run."""
    model = abstract_circuit(build_rc_filter(1, resistance=1e3), "out", TIMESTEP)
    platform = SmartSystemPlatform(
        record_analog=True, cpu_block_cycles=block_cycles
    )
    platform.attach_analog_python(model, {"vin": SquareWave(period=40e-6)})
    arm(platform)
    return platform


class TestDigitalFaultExactness:
    DURATION = 60e-6

    @pytest.mark.parametrize(
        "fault, at_time",
        [
            (RegisterTransientFault(register=17, bit=0), 23.45e-6),
            (RegisterTransientFault(register=10, bit=3), 30e-6),
            (MemoryBitFlipFault(0x0000_F000, 0), 17.77e-6),
            (AdcStuckBitFault(bit=9, stuck_at=1), 20e-6),
            (AdcBitFlipFault(bit=9), 31e-6),
            (UartCorruptionFault(0x20), 25e-6),
        ],
    )
    def test_injection_is_block_size_invariant(self, fault, at_time):
        """The defining guarantee: per-tick and block-stepped platforms see
        the injection at the same instruction boundary, so the run outcome
        (including the exact UART bytes) is bit-identical."""
        rng = np.random.default_rng(0)
        outcomes = []
        for block in (1, 7, 256, 10_000):
            platform = build_faulted_platform(
                block, lambda p: fault.arm(p, at_time, rng)
            )
            result = platform.run(self.DURATION)
            outcomes.append(
                (result.fingerprint(), tuple(platform.cpu.registers[:32]))
            )
        assert all(outcome == outcomes[0] for outcome in outcomes[1:]), fault.name

    def test_faults_perturb_the_run(self):
        """Sanity: the exactness test must not be comparing no-op runs."""
        golden = build_faulted_platform(256, lambda p: None).run(self.DURATION)
        fault = AdcStuckBitFault(bit=9, stuck_at=1)
        rng = np.random.default_rng(0)
        faulted = build_faulted_platform(
            256, lambda p: fault.arm(p, 20e-6, rng)
        ).run(self.DURATION)
        assert faulted.fingerprint() != golden.fingerprint()

    def test_self_modifying_injection_matches_per_tick(self):
        """Fault-injected code modification: corrupting an instruction word
        under the running firmware must behave identically per-tick and
        block-stepped (both crash on the same fetch)."""
        probe = build_faulted_platform(256, lambda p: None)
        probe.run(10e-6)
        loop_address = probe.cpu.pc & ~0x3  # inside the firmware poll loop
        fault = InstructionCorruptionFault(loop_address)
        outcomes = []
        for block in (1, 256):
            platform = build_faulted_platform(
                block, lambda p: fault.arm(p, 30e-6, np.random.default_rng(0))
            )
            from repro.errors import CpuFault

            with pytest.raises(CpuFault):
                platform.run(self.DURATION)
            outcomes.append(
                (
                    platform.cpu.instruction_count,
                    platform.cpu.pc,
                    tuple(platform.cpu.registers[:32]),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_adc_flip_is_one_shot(self):
        fault = AdcBitFlipFault(bit=0)
        platform = build_faulted_platform(
            256, lambda p: fault.arm(p, 0.0, np.random.default_rng(0))
        )
        saboteur = platform.bus.peripheral("adc0")
        platform.adc.push_sample(0.0)
        first = platform.bus.read(0x1000_1000)  # ADC DATA register
        second = platform.bus.read(0x1000_1000)
        assert first == 1 and second == 0
        assert saboteur.fired

    def test_random_address_memory_flip_is_seed_deterministic(self):
        fault = MemoryBitFlipFault(address=None, bit=0)
        images = []
        for _ in range(2):
            platform = build_faulted_platform(
                256, lambda p: fault.arm(p, 10e-6, np.random.default_rng(99))
            )
            platform.run(20e-6)
            images.append(bytes(platform.memory._data))
        assert images[0] == images[1]
