"""End-to-end tests of the abstraction flow, with the state-space oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    build_opamp,
    build_rc_filter,
    build_two_input,
    cutoff_frequency,
    dc_gain,
    ideal_gains,
)
from repro.core import AbstractionFlow, abstract_circuit, abstract_state_space
from repro.errors import AbstractionError
from repro.network import Circuit
from repro.sim import SquareWave

DT = 50e-9


def run_model(model, stimuli, duration):
    trace = model.run(stimuli, duration)
    return trace.waveform(model.outputs[0])


class TestAbstractionCorrectness:
    def test_rc1_step_response_matches_analytic(self):
        model = abstract_circuit(build_rc_filter(1), "out", DT)
        tau = 5e3 * 25e-9
        duration = 3 * tau
        waveform = run_model(model, {"vin": lambda t: 1.0}, duration)
        assert waveform[-1] == pytest.approx(1.0 - math.exp(-duration / tau), rel=1e-3)

    def test_two_input_summing_gains(self):
        model = abstract_circuit(build_two_input(), "out", DT)
        gain1, gain2 = ideal_gains()
        waveform = run_model(model, {"in1": lambda t: 1.0, "in2": lambda t: 0.0}, 10 * DT)
        assert waveform[-1] == pytest.approx(gain1, rel=1e-3)
        waveform = run_model(model, {"in1": lambda t: 0.0, "in2": lambda t: 1.0}, 10 * DT)
        assert waveform[-1] == pytest.approx(gain2, rel=1e-3)

    def test_opamp_dc_gain_and_lowpass(self):
        model = abstract_circuit(build_opamp(), "out", DT)
        settle = 10.0 / (2 * math.pi * cutoff_frequency())
        waveform = run_model(model, {"vin": lambda t: 1.0}, settle)
        assert waveform[-1] == pytest.approx(dc_gain(), rel=1e-2)

    def test_symbolic_and_state_space_models_agree(self):
        circuit = build_rc_filter(3)
        symbolic = abstract_circuit(circuit, "out", DT)
        numeric = abstract_state_space(circuit, ["out"], DT)
        stimuli = {"vin": SquareWave(period=20e-6)}
        duration = 60e-6
        left = run_model(symbolic, stimuli, duration)
        right = run_model(numeric, stimuli, duration)
        assert np.allclose(left, right, atol=1e-12)

    def test_output_designations_are_normalised(self):
        circuit = build_rc_filter(1)
        for designation in ("out", "V(out)", "V(out,gnd)"):
            model = abstract_circuit(circuit, designation, DT)
            assert model.outputs == ["V(out)"]

    def test_initial_state_is_honoured(self):
        flow = AbstractionFlow(DT)
        report = flow.abstract(build_rc_filter(1), "out", initial_state={"V(out)": 0.75})
        state = report.model.create_state()
        assert state["V(out)"] == 0.75


class TestFlowInterface:
    def test_report_contents(self, flow, rc1_circuit):
        report = flow.abstract(rc1_circuit, "out")
        assert set(report.timings) == {"acquisition", "enrichment", "assemble", "solve"}
        assert report.total_time > 0.0
        assert "topology" in report.summary()

    def test_process_dispatches_on_classification(self, flow):
        signal_flow_source = (
            "module gain(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 2.5 * V(a); endmodule"
        )
        report = flow.process(signal_flow_source)
        assert report.model.source.startswith("direct")
        conservative = flow.process(build_rc_filter(1), outputs="out")
        assert conservative.model.source.startswith("conservative")

    def test_process_measures_the_conversion_path(self, flow):
        signal_flow_source = (
            "module gain(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 2.5 * V(a); endmodule"
        )
        report = flow.process(signal_flow_source)
        assert set(report.timings) == {"conversion"}
        assert report.timings["conversion"] > 0.0
        assert report.total_time == report.timings["conversion"]

    def test_process_requires_outputs_for_conservative(self, flow, rc1_circuit):
        with pytest.raises(AbstractionError):
            flow.process(rc1_circuit)

    def test_invalid_timestep_rejected(self):
        with pytest.raises(ValueError):
            AbstractionFlow(0.0)

    def test_model_describe_mentions_everything(self, rc1_model):
        description = rc1_model.describe()
        assert "V(out)" in description
        assert "vin" in description


# -- property-based oracle test ------------------------------------------------------------
@st.composite
def random_rc_ladder(draw):
    """A random RC ladder with random (but well-conditioned) component values."""
    stages = draw(st.integers(min_value=1, max_value=4))
    resistances = [
        draw(st.floats(min_value=1e2, max_value=1e4)) for _ in range(stages)
    ]
    capacitances = [
        draw(st.floats(min_value=1e-9, max_value=1e-7)) for _ in range(stages)
    ]
    circuit = Circuit(f"ladder{stages}")
    circuit.add_voltage_source("vin", "gnd", input_signal="vin", name="Vsrc")
    previous = "vin"
    for index, (resistance, capacitance) in enumerate(zip(resistances, capacitances), start=1):
        node = "out" if index == stages else f"n{index}"
        circuit.add_resistor(previous, node, resistance, name=f"R{index}")
        circuit.add_capacitor(node, "gnd", capacitance, name=f"C{index}")
        previous = node
    return circuit


@settings(max_examples=15, deadline=None)
@given(random_rc_ladder())
def test_symbolic_abstraction_matches_state_space_oracle(circuit):
    """For arbitrary linear RC ladders the symbolic pipeline must agree with MNA."""
    timestep = 1e-7
    symbolic = abstract_circuit(circuit, "out", timestep)
    oracle = abstract_state_space(circuit, ["out"], timestep)
    stimuli = {"vin": SquareWave(period=40 * timestep)}
    duration = 120 * timestep
    left = symbolic.run(stimuli, duration).waveform("V(out)")
    right = oracle.run(stimuli, duration).waveform("V(out)")
    scale = max(np.max(np.abs(right)), 1e-12)
    assert np.max(np.abs(left - right)) / scale < 1e-8
