"""Tests for the analog engines: ELN, reference AMS, co-simulation, runners."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.circuits import build_rc_filter, paper_benchmarks, rc_filter_source
from repro.core import AbstractionFlow, abstract_circuit
from repro.core.codegen import NativeGenerator, NumpyGenerator, toolchain_error
from repro.errors import SimulationError
from repro.metrics import compare_traces, nrmse
from repro.sim import (
    AnalogCosimServer,
    CoSimulationBridge,
    DeSourceModule,
    ElnModel,
    Kernel,
    ReferenceAmsSimulator,
    Signal,
    SineWave,
    SquareWave,
    StepSource,
    Trace,
    TraceSet,
    resolve_steps,
    run_de_model,
    run_eln_model,
    run_python_model,
    run_reference_model,
    run_tdf_model,
)

DT = 50e-9
TAU = 5e3 * 25e-9


class TestSources:
    def test_square_wave_levels_and_duty(self):
        wave = SquareWave(amplitude=2.0, period=1e-3, duty=0.25, offset=1.0)
        assert wave(0.1e-3) == 3.0
        assert wave(0.5e-3) == 1.0
        assert wave(1.1e-3) == 3.0

    def test_square_wave_validation(self):
        with pytest.raises(ValueError):
            SquareWave(period=0.0)
        with pytest.raises(ValueError):
            SquareWave(duty=1.5)

    def test_sine_and_step(self):
        sine = SineWave(amplitude=2.0, frequency=1e3)
        assert sine(0.25e-3) == pytest.approx(2.0)
        step = StepSource(initial=0.0, final=5.0, step_time=1.0)
        assert step(0.5) == 0.0
        assert step(1.5) == 5.0

    def test_piecewise_linear(self):
        from repro.sim import PiecewiseLinear

        ramp = PiecewiseLinear([(0.0, 0.0), (1.0, 10.0)])
        assert ramp(0.5) == pytest.approx(5.0)
        assert ramp(-1.0) == 0.0
        assert ramp(2.0) == 10.0


class TestTrace:
    def test_append_and_arrays(self):
        trace = Trace("x")
        trace.append(1.0, 10.0)
        trace.append(2.0, 20.0)
        assert len(trace) == 2
        assert trace.final_value() == 20.0
        assert np.allclose(trace.resample(np.array([1.5])), [15.0])

    def test_trace_set(self):
        traces = TraceSet()
        traces.add("a").append(0.0, 1.0)
        assert "a" in traces
        assert traces.names() == ["a"]
        assert traces.waveform("a")[0] == 1.0

    def test_nrmse_metric(self):
        reference = np.array([0.0, 1.0, 2.0, 3.0])
        assert nrmse(reference, reference) == 0.0
        shifted = reference + 0.3
        assert nrmse(reference, shifted) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            nrmse(reference, reference[:2])


class TestElnModel:
    def test_rc_charge_matches_analytic(self, rc1_circuit):
        model = ElnModel(rc1_circuit, DT)
        duration = 3 * TAU
        traces = model.run({"vin": lambda t: 1.0}, duration, ["V(out)"])
        expected = 1.0 - math.exp(-duration / TAU)
        assert traces["V(out)"].final_value() == pytest.approx(expected, rel=1e-3)

    def test_set_input_and_value(self, rc1_circuit):
        model = ElnModel(rc1_circuit, DT)
        model.set_input("vin", 1.0)
        model.step()
        assert model.value("V(vin)") == pytest.approx(1.0, rel=1e-6)
        assert model.node_voltage("gnd") == 0.0
        with pytest.raises(SimulationError):
            model.set_input("nope", 1.0)

    def test_reset(self, rc1_circuit):
        model = ElnModel(rc1_circuit, DT)
        model.run({"vin": lambda t: 1.0}, 100 * DT, ["V(out)"])
        model.reset()
        assert model.time == 0.0
        assert model.value("V(out)") == 0.0


class TestReferenceSimulator:
    def test_built_from_vams_source(self):
        simulator = ReferenceAmsSimulator(rc_filter_source(1), DT)
        assert simulator.inputs == ["vin"]
        assert "V(out)" in simulator.quantities()

    def test_accuracy_close_to_analytic(self, rc1_circuit):
        simulator = ReferenceAmsSimulator(rc1_circuit, DT, oversampling=2)
        duration = 2 * TAU
        traces = simulator.run({"vin": lambda t: 1.0}, duration, ["V(out)"])
        expected = 1.0 - math.exp(-duration / TAU)
        assert traces["V(out)"].final_value() == pytest.approx(expected, rel=5e-4)

    def test_solver_effort_accounting(self, rc1_circuit):
        simulator = ReferenceAmsSimulator(
            rc1_circuit, DT, oversampling=3, solver_iterations=2
        )
        simulator.step({"vin": 1.0})
        assert simulator.step_count == 1
        assert simulator.solve_count == 6

    def test_parameter_validation(self, rc1_circuit):
        with pytest.raises(ValueError):
            ReferenceAmsSimulator(rc1_circuit, DT, oversampling=0)
        with pytest.raises(ValueError):
            ReferenceAmsSimulator(rc1_circuit, DT, solver_iterations=0)


#: The four fixed-timestep engines that must agree to numerical precision:
#: they all advance the *same* abstracted signal-flow recursion, so any
#: disagreement beyond time-quantisation noise is an integration-layer bug.
#: The compiled-C engine joins the matrix wherever cffi and a C compiler
#: exist (the CI native-smoke job guarantees at least one such environment).
NATIVE_AVAILABLE = toolchain_error() is None
MATRIX_ENGINES = ("python", "numpy-batch", "de", "tdf") + (
    ("native",) if NATIVE_AVAILABLE else ()
)
MATRIX_DURATION = 100e-6
#: Pairwise agreement bound.  Smooth (sine) stimuli make the comparison
#: independent of where a square-wave edge lands on the femtosecond event
#: grid, so the engines agree to ~1e-15 in practice; 1e-9 leaves margin for
#: slower accumulation on longer runs without masking real defects.
MATRIX_AGREEMENT = 1e-9


def _matrix_stimuli(model) -> dict:
    """Smooth multi-tone stimuli: one sine per input, distinct frequencies."""
    return {
        name: SineWave(amplitude=1.0, frequency=10e3 * (index + 1))
        for index, name in enumerate(model.inputs)
    }


def _run_numpy_batch(model, stimuli, duration) -> TraceSet:
    """Run a batch-of-one through the vectorized backend, as a TraceSet."""
    return _run_batch(NumpyGenerator().generate_batch([model]), stimuli, duration)


def _run_native_batch(model, stimuli, duration) -> TraceSet:
    """Run a batch-of-one through the compiled-C backend, as a TraceSet."""
    return _run_batch(NativeGenerator().generate_batch([model]), stimuli, duration)


def _run_batch(artifact, stimuli, duration) -> TraceSet:
    instance = artifact.instantiate()
    waveforms = [stimuli[name] for name in instance.INPUTS]
    steps = resolve_steps(duration, float(instance.TIMESTEP))
    traces = TraceSet({name: Trace(name) for name in instance.OUTPUTS})
    single = len(instance.OUTPUTS) == 1
    for index in range(steps):
        now = (index + 1) * float(instance.TIMESTEP)
        result = instance.step_batch(*[w(now) for w in waveforms], now)
        values = (result,) if single else tuple(result)
        for name, value in zip(instance.OUTPUTS, values):
            traces[name].append(now, float(np.ravel(value)[0]))
    return traces


class TestCrossEngineMatrix:
    """Every benchmark circuit × every fixed-timestep engine, pairwise.

    This is the repo's equivalence contract: the generated scalar model
    (``python``), the vectorized batch backend (``numpy-batch``), the
    discrete-event integration (``de``) and the TDF cluster (``tdf``) must
    produce the same output waveform for each of the paper's four benchmark
    circuits, to within :data:`MATRIX_AGREEMENT`.
    """

    @pytest.fixture(scope="class")
    def engine_traces(self):
        """(benchmark name, engine) → output trace, computed once per class."""
        traces: dict[tuple[str, str], Trace] = {}
        for bench in paper_benchmarks():
            model = AbstractionFlow(DT).abstract(
                bench.circuit(), bench.output, name=bench.name.lower()
            ).model
            stimuli = _matrix_stimuli(model)
            output = bench.output_quantity
            runs = {
                "python": run_python_model(model, stimuli, MATRIX_DURATION),
                "numpy-batch": _run_numpy_batch(model, stimuli, MATRIX_DURATION),
                "de": run_de_model(model, stimuli, MATRIX_DURATION),
                "tdf": run_tdf_model(model, stimuli, MATRIX_DURATION),
            }
            if NATIVE_AVAILABLE:
                runs["native"] = _run_native_batch(model, stimuli, MATRIX_DURATION)
            for engine, run in runs.items():
                traces[(bench.name, engine)] = run[output]
        return traces

    @pytest.mark.parametrize(
        "component", [bench.name for bench in paper_benchmarks()]
    )
    @pytest.mark.parametrize(
        "pair",
        list(itertools.combinations(MATRIX_ENGINES, 2)),
        ids=lambda pair: f"{pair[0]}-vs-{pair[1]}",
    )
    def test_pairwise_agreement(self, engine_traces, component, pair):
        first, second = pair
        error = compare_traces(
            engine_traces[(component, first)], engine_traces[(component, second)]
        )
        assert error <= MATRIX_AGREEMENT, (
            f"{component}: {first} and {second} disagree (NRMSE {error:.3e})"
        )

    @pytest.mark.parametrize(
        "component", [bench.name for bench in paper_benchmarks()]
    )
    def test_trace_lengths_match(self, engine_traces, component):
        lengths = {
            engine: len(engine_traces[(component, engine)])
            for engine in MATRIX_ENGINES
        }
        assert len(set(lengths.values())) == 1, lengths


class TestGoldenBaselineAnchor:
    """The matrix checks the engines against each other; these anchor the
    abstracted recursion (and the ELN solver) to the reference AMS engine."""

    @pytest.fixture(scope="class")
    def setup(self):
        circuit = build_rc_filter(1)
        model = abstract_circuit(circuit, "out", DT)
        stimuli = {"vin": SquareWave(period=40e-6)}
        duration = 100e-6
        reference = run_reference_model(circuit, stimuli, duration, DT, ["V(out)"])
        return circuit, model, stimuli, duration, reference

    def test_python_runner_accuracy(self, setup):
        circuit, model, stimuli, duration, reference = setup
        traces = run_python_model(model, stimuli, duration)
        assert compare_traces(reference["V(out)"], traces["V(out)"]) < 1e-3

    def test_eln_runner_accuracy(self, setup):
        circuit, model, stimuli, duration, reference = setup
        eln_traces = run_eln_model(circuit, stimuli, duration, DT, ["V(out)"])
        assert compare_traces(reference["V(out)"], eln_traces["V(out)"]) < 1e-3


class TestStepResolution:
    """Fixed-step runners must reject non-multiple durations, not round them."""

    def test_exact_multiples_resolve(self):
        assert resolve_steps(100e-6, DT) == 2000
        # durations built as n * dt carry float error a few ulps wide
        assert resolve_steps(1999 * DT, DT) == 1999

    def test_fractional_duration_raises(self):
        with pytest.raises(SimulationError, match="integer multiple"):
            resolve_steps(2.5 * DT, DT)

    def test_long_runs_still_catch_fractional_steps(self):
        """Regression: the tolerance must not scale up to where a half-step
        drop passes on paper-size runs (2e6-2e8 steps)."""
        for steps in (2_000_000, 200_000_000):
            assert resolve_steps(steps * DT, DT) == steps
            with pytest.raises(SimulationError, match="integer multiple"):
                resolve_steps((steps + 0.4) * DT, DT)

    def test_sub_timestep_duration_raises(self):
        with pytest.raises(SimulationError, match="shorter than one timestep"):
            resolve_steps(DT / 100.0, DT)
        with pytest.raises(SimulationError):
            resolve_steps(0.0, DT)

    def test_invalid_timestep_raises(self):
        with pytest.raises(SimulationError):
            resolve_steps(1e-6, 0.0)

    def test_run_python_model_rejects_fractional_duration(self, rc1_model):
        """Regression: ``int(round(duration / dt))`` used to silently simulate
        2 steps for duration = 2.5 * dt, dropping simulated time."""
        stimuli = {"vin": SquareWave(period=40e-6)}
        with pytest.raises(SimulationError, match="integer multiple"):
            run_python_model(rc1_model, stimuli, 2.5 * DT)
        # the exact multiple still runs and yields exactly n samples
        traces = run_python_model(rc1_model, stimuli, 100 * DT)
        assert len(traces["V(out)"]) == 100

    def test_every_runner_validates_the_duration(self, rc1_model, rc1_circuit):
        """All fixed-step runner entry points agree on rejecting fractional
        durations (they are compared as equivalent by the engine matrix)."""
        stimuli = {"vin": SquareWave(period=40e-6)}
        fractional = 2.5 * DT
        with pytest.raises(SimulationError):
            run_de_model(rc1_model, stimuli, fractional)
        with pytest.raises(SimulationError):
            run_tdf_model(rc1_model, stimuli, fractional)
        with pytest.raises(SimulationError):
            run_eln_model(rc1_circuit, stimuli, fractional, DT, ["V(out)"])
        with pytest.raises(SimulationError):
            run_reference_model(rc1_circuit, stimuli, fractional, DT, ["V(out)"])


class TestCoSimulation:
    def test_server_marshalling_roundtrip(self, rc1_circuit):
        simulator = ReferenceAmsSimulator(rc1_circuit, DT)
        server = AnalogCosimServer(simulator, ["V(out)"])
        request = server.pack_request({"vin": 1.0})
        response = server.transact(request)
        observed = server.unpack_response(response)
        assert set(observed) == {"V(out)"}
        assert server.transaction_count == 1

    def test_bridge_matches_direct_reference_run(self, rc1_circuit):
        duration = 50e-6
        stimulus = SquareWave(period=20e-6)
        direct = run_reference_model(
            build_rc_filter(1), {"vin": stimulus}, duration, DT, ["V(out)"]
        )

        kernel = Kernel()
        simulator = ReferenceAmsSimulator(rc1_circuit, DT)
        server = AnalogCosimServer(simulator, ["V(out)"])
        source = DeSourceModule(kernel, "src", stimulus, DT)
        output_signal = Signal(kernel, 0.0, "out")
        CoSimulationBridge(
            kernel,
            "bridge",
            server,
            {"vin": source.out},
            {"V(out)": output_signal},
            DT,
        )
        kernel.run(duration)
        # After the run the analog engine has advanced through the same steps.
        assert simulator.step_count == direct["V(out)"].values.size
        # Edge samples may land one step apart between the two runs, so allow
        # the corresponding small waveform deviation.
        assert output_signal.read() == pytest.approx(
            direct["V(out)"].final_value(), rel=1e-2
        )
