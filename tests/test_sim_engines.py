"""Tests for the analog engines: ELN, reference AMS, co-simulation, runners."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import build_rc_filter, rc_filter_source
from repro.core import abstract_circuit
from repro.errors import SimulationError
from repro.metrics import compare_traces, nrmse
from repro.sim import (
    AnalogCosimServer,
    CoSimulationBridge,
    DeSourceModule,
    ElnModel,
    Kernel,
    ReferenceAmsSimulator,
    Signal,
    SineWave,
    SquareWave,
    StepSource,
    Trace,
    TraceSet,
    run_de_model,
    run_eln_model,
    run_python_model,
    run_reference_model,
    run_tdf_model,
)

DT = 50e-9
TAU = 5e3 * 25e-9


class TestSources:
    def test_square_wave_levels_and_duty(self):
        wave = SquareWave(amplitude=2.0, period=1e-3, duty=0.25, offset=1.0)
        assert wave(0.1e-3) == 3.0
        assert wave(0.5e-3) == 1.0
        assert wave(1.1e-3) == 3.0

    def test_square_wave_validation(self):
        with pytest.raises(ValueError):
            SquareWave(period=0.0)
        with pytest.raises(ValueError):
            SquareWave(duty=1.5)

    def test_sine_and_step(self):
        sine = SineWave(amplitude=2.0, frequency=1e3)
        assert sine(0.25e-3) == pytest.approx(2.0)
        step = StepSource(initial=0.0, final=5.0, step_time=1.0)
        assert step(0.5) == 0.0
        assert step(1.5) == 5.0

    def test_piecewise_linear(self):
        from repro.sim import PiecewiseLinear

        ramp = PiecewiseLinear([(0.0, 0.0), (1.0, 10.0)])
        assert ramp(0.5) == pytest.approx(5.0)
        assert ramp(-1.0) == 0.0
        assert ramp(2.0) == 10.0


class TestTrace:
    def test_append_and_arrays(self):
        trace = Trace("x")
        trace.append(1.0, 10.0)
        trace.append(2.0, 20.0)
        assert len(trace) == 2
        assert trace.final_value() == 20.0
        assert np.allclose(trace.resample(np.array([1.5])), [15.0])

    def test_trace_set(self):
        traces = TraceSet()
        traces.add("a").append(0.0, 1.0)
        assert "a" in traces
        assert traces.names() == ["a"]
        assert traces.waveform("a")[0] == 1.0

    def test_nrmse_metric(self):
        reference = np.array([0.0, 1.0, 2.0, 3.0])
        assert nrmse(reference, reference) == 0.0
        shifted = reference + 0.3
        assert nrmse(reference, shifted) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            nrmse(reference, reference[:2])


class TestElnModel:
    def test_rc_charge_matches_analytic(self, rc1_circuit):
        model = ElnModel(rc1_circuit, DT)
        duration = 3 * TAU
        traces = model.run({"vin": lambda t: 1.0}, duration, ["V(out)"])
        expected = 1.0 - math.exp(-duration / TAU)
        assert traces["V(out)"].final_value() == pytest.approx(expected, rel=1e-3)

    def test_set_input_and_value(self, rc1_circuit):
        model = ElnModel(rc1_circuit, DT)
        model.set_input("vin", 1.0)
        model.step()
        assert model.value("V(vin)") == pytest.approx(1.0, rel=1e-6)
        assert model.node_voltage("gnd") == 0.0
        with pytest.raises(SimulationError):
            model.set_input("nope", 1.0)

    def test_reset(self, rc1_circuit):
        model = ElnModel(rc1_circuit, DT)
        model.run({"vin": lambda t: 1.0}, 100 * DT, ["V(out)"])
        model.reset()
        assert model.time == 0.0
        assert model.value("V(out)") == 0.0


class TestReferenceSimulator:
    def test_built_from_vams_source(self):
        simulator = ReferenceAmsSimulator(rc_filter_source(1), DT)
        assert simulator.inputs == ["vin"]
        assert "V(out)" in simulator.quantities()

    def test_accuracy_close_to_analytic(self, rc1_circuit):
        simulator = ReferenceAmsSimulator(rc1_circuit, DT, oversampling=2)
        duration = 2 * TAU
        traces = simulator.run({"vin": lambda t: 1.0}, duration, ["V(out)"])
        expected = 1.0 - math.exp(-duration / TAU)
        assert traces["V(out)"].final_value() == pytest.approx(expected, rel=5e-4)

    def test_solver_effort_accounting(self, rc1_circuit):
        simulator = ReferenceAmsSimulator(
            rc1_circuit, DT, oversampling=3, solver_iterations=2
        )
        simulator.step({"vin": 1.0})
        assert simulator.step_count == 1
        assert simulator.solve_count == 6

    def test_parameter_validation(self, rc1_circuit):
        with pytest.raises(ValueError):
            ReferenceAmsSimulator(rc1_circuit, DT, oversampling=0)
        with pytest.raises(ValueError):
            ReferenceAmsSimulator(rc1_circuit, DT, solver_iterations=0)


class TestRunnerEquivalence:
    """All integration styles of Table I must produce the same waveform."""

    @pytest.fixture(scope="class")
    def setup(self):
        circuit = build_rc_filter(1)
        model = abstract_circuit(circuit, "out", DT)
        stimuli = {"vin": SquareWave(period=40e-6)}
        duration = 100e-6
        reference = run_reference_model(circuit, stimuli, duration, DT, ["V(out)"])
        return circuit, model, stimuli, duration, reference

    def test_python_runner_accuracy(self, setup):
        circuit, model, stimuli, duration, reference = setup
        traces = run_python_model(model, stimuli, duration)
        assert compare_traces(reference["V(out)"], traces["V(out)"]) < 1e-3

    def test_de_runner_matches_python(self, setup):
        # The kernels may disagree by one sample on where the square-wave edge
        # falls (floating-point time at the discontinuity), so the comparison
        # is a waveform error bound rather than bitwise equality.
        circuit, model, stimuli, duration, reference = setup
        python_traces = run_python_model(model, stimuli, duration)
        de_traces = run_de_model(model, stimuli, duration)
        assert compare_traces(python_traces["V(out)"], de_traces["V(out)"]) < 2e-3

    def test_tdf_runner_matches_python(self, setup):
        circuit, model, stimuli, duration, reference = setup
        python_traces = run_python_model(model, stimuli, duration)
        tdf_traces = run_tdf_model(model, stimuli, duration)
        assert compare_traces(python_traces["V(out)"], tdf_traces["V(out)"]) < 2e-3

    def test_eln_runner_accuracy(self, setup):
        circuit, model, stimuli, duration, reference = setup
        eln_traces = run_eln_model(circuit, stimuli, duration, DT, ["V(out)"])
        assert compare_traces(reference["V(out)"], eln_traces["V(out)"]) < 1e-3


class TestCoSimulation:
    def test_server_marshalling_roundtrip(self, rc1_circuit):
        simulator = ReferenceAmsSimulator(rc1_circuit, DT)
        server = AnalogCosimServer(simulator, ["V(out)"])
        request = server.pack_request({"vin": 1.0})
        response = server.transact(request)
        observed = server.unpack_response(response)
        assert set(observed) == {"V(out)"}
        assert server.transaction_count == 1

    def test_bridge_matches_direct_reference_run(self, rc1_circuit):
        duration = 50e-6
        stimulus = SquareWave(period=20e-6)
        direct = run_reference_model(
            build_rc_filter(1), {"vin": stimulus}, duration, DT, ["V(out)"]
        )

        kernel = Kernel()
        simulator = ReferenceAmsSimulator(rc1_circuit, DT)
        server = AnalogCosimServer(simulator, ["V(out)"])
        source = DeSourceModule(kernel, "src", stimulus, DT)
        output_signal = Signal(kernel, 0.0, "out")
        CoSimulationBridge(
            kernel,
            "bridge",
            server,
            {"vin": source.out},
            {"V(out)": output_signal},
            DT,
        )
        kernel.run(duration)
        # After the run the analog engine has advanced through the same steps.
        assert simulator.step_count == direct["V(out)"].values.size
        # Edge samples may land one step apart between the two runs, so allow
        # the corresponding small waveform deviation.
        assert output_signal.read() == pytest.approx(
            direct["V(out)"].final_value(), rel=1e-2
        )
