"""Tests of the shared seed-derivation helper (``repro.sweep.seeds``)."""

from __future__ import annotations

import pytest

from repro.sweep import derive_seed, spawn_seeds


class TestSpawnSeeds:
    def test_deterministic_across_calls(self):
        assert spawn_seeds(7, 16) == spawn_seeds(7, 16)

    def test_prefix_stable(self):
        """Growing the sweep must not reshuffle existing scenario seeds."""
        assert spawn_seeds(7, 32)[:16] == spawn_seeds(7, 16)

    def test_roots_are_independent(self):
        """The failure mode of the old ``root + index`` arithmetic: adjacent
        roots shared almost all of their seeds."""
        a, b = spawn_seeds(100, 64), spawn_seeds(101, 64)
        assert not set(a) & set(b)

    def test_children_are_distinct(self):
        seeds = spawn_seeds(0, 256)
        assert len(set(seeds)) == 256

    def test_seeds_are_uint32(self):
        assert all(0 <= seed < 2**32 for seed in spawn_seeds(3, 64))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
        assert spawn_seeds(0, 0) == []


class TestDeriveSeed:
    def test_matches_spawn_position(self):
        """``derive_seed(root, i)`` addresses spawn child ``i`` directly."""
        seeds = spawn_seeds(42, 8)
        assert [derive_seed(42, index) for index in range(8)] == seeds

    def test_nested_keys_differ_from_flat_ones(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 1)
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)
