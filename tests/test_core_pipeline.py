"""Tests for the abstraction pipeline steps (acquisition, enrichment, assemble)."""

from __future__ import annotations

import pytest

from repro.circuits import build_rc_filter, rc_filter_source
from repro.core import (
    Assembler,
    EquationTable,
    acquire,
    enrich,
    is_unknown,
    normalise_output,
)
from repro.errors import AbstractionError, AcquisitionError, AssembleError
from repro.expr import Constant, Equation, Variable


class TestAcquisition:
    def test_from_circuit(self, rc1_circuit):
        result = acquire(rc1_circuit)
        assert result.node_count == 3
        assert result.branch_count == 3
        assert len(result.dipole_equations) == 3
        assert result.inputs == ["vin"]

    def test_from_source_text(self):
        result = acquire(rc_filter_source(2))
        assert result.branch_count == 5
        assert result.circuit.name == "rc2"

    def test_table_indexed_by_defined_variable(self, rc1_circuit):
        result = acquire(rc1_circuit)
        # Dipole equations have composite left-hand sides, so nothing is
        # indexed yet; indexing happens for the solved forms added later.
        assert len(result.table) == 3

    def test_signal_flow_module_rejected(self):
        source = (
            "module g(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 2 * V(a); endmodule"
        )
        with pytest.raises(AcquisitionError):
            acquire(source)

    def test_invalid_input_type_rejected(self):
        with pytest.raises(AcquisitionError):
            acquire(12345)

    def test_invalid_topology_rejected(self):
        from repro.network import Circuit

        with pytest.raises(AcquisitionError):
            acquire(Circuit("empty"))


class TestEquationTable:
    def test_candidates_and_disable(self):
        table = EquationTable()
        equation = Equation(Variable("x"), Constant(1.0), name="eq1", origin="class_a")
        table.insert(equation)
        assert len(table.candidates("x")) == 1
        table.disable_origin("class_a")
        assert table.candidates("x") == []
        assert table.candidates("x", enabled_only=False)
        table.enable_origin("class_a")
        assert len(table.candidates("x")) == 1

    def test_reset_disabled(self):
        table = EquationTable()
        table.insert(Equation(Variable("x"), Constant(1.0), origin="a"))
        table.disable_origin("a")
        table.reset_disabled()
        assert not table.is_origin_disabled("a")

    def test_origins_and_iteration(self):
        table = EquationTable()
        table.extend(
            [
                Equation(Variable("x"), Constant(1.0), origin="a"),
                Equation(Variable("y"), Constant(2.0), origin="b"),
            ]
        )
        assert table.origins() == {"a", "b"}
        assert len(list(table)) == 2
        assert set(table.defined_variables()) == {"x", "y"}


class TestEnrichment:
    def test_statistics(self, rc1_circuit, timestep):
        enrichment = enrich(acquire(rc1_circuit), timestep)
        stats = enrichment.statistics()
        assert stats["kcl"] == 2
        assert stats["kvl"] == 1
        assert stats["solved"] > 0
        assert "V(out)" in enrichment.unknowns
        assert enrichment.inputs == ["vin"]

    def test_discretisation_removes_ddt(self, rc1_circuit, timestep):
        enrichment = enrich(acquire(rc1_circuit), timestep)
        assert all(not entry.equation.has_derivative() for entry in enrichment.table)

    def test_without_mesh_analysis(self, rc1_circuit, timestep):
        enrichment = enrich(acquire(rc1_circuit), timestep, include_mesh=False)
        assert enrichment.kvl_equations == []

    def test_solved_forms_are_indexed(self, rc1_circuit, timestep):
        enrichment = enrich(acquire(rc1_circuit), timestep)
        assert enrichment.table.candidates("V(out)")
        assert enrichment.table.candidates("I(r1)")

    def test_is_unknown_helper(self):
        assert is_unknown("V(a)")
        assert is_unknown("I(b)")
        assert not is_unknown("vin")
        assert not is_unknown("__idt_0")


class TestAssemble:
    def test_normalise_output(self):
        assert normalise_output("out") == "V(out)"
        assert normalise_output("V(out)") == "V(out)"
        assert normalise_output("V(out,gnd)") == "V(out)"
        assert normalise_output("V(a, b)") == "V(a,b)"
        assert normalise_output("I(R1)") == "I(R1)"

    def test_cone_of_influence_excludes_source_current(self, rc1_circuit, timestep):
        enrichment = enrich(acquire(rc1_circuit), timestep)
        assembled = Assembler(enrichment).assemble(["V(out)"])
        assert "V(out)" in assembled.resolutions
        # The voltage-source current does not influence the output.
        assert "I(Vsrc_vin)" in assembled.dropped_unknowns

    def test_dangling_subcircuit_is_dropped(self, timestep):
        circuit = build_rc_filter(1)
        # Add an extra RC branch hanging off the input that cannot affect the
        # output once the input source fixes the node potential.
        circuit.add_resistor("vin", "aux", 1e3, name="Raux")
        circuit.add_capacitor("aux", "gnd", 1e-9, name="Caux")
        enrichment = enrich(acquire(circuit), timestep)
        assembled = Assembler(enrichment).assemble(["V(out)"])
        assert "V(aux)" not in assembled.resolutions
        assert "V(aux)" in assembled.dropped_unknowns

    def test_each_origin_used_once(self, rc3_circuit, timestep):
        enrichment = enrich(acquire(rc3_circuit), timestep)
        assembled = Assembler(enrichment).assemble(["V(out)"])
        assert len(assembled.used_origins) == assembled.cone_size

    def test_unknown_output_fails(self, rc1_circuit, timestep):
        enrichment = enrich(acquire(rc1_circuit), timestep)
        with pytest.raises(AssembleError):
            Assembler(enrichment).assemble(["V(no_such_node)"])

    def test_multiple_outputs(self, rc3_circuit, timestep):
        enrichment = enrich(acquire(rc3_circuit), timestep)
        assembled = Assembler(enrichment).assemble(["V(out)", "V(n1)"])
        assert {"V(out)", "V(n1)"} <= set(assembled.resolutions)
