"""Tests of the platform sweep layer (``repro.sweep.platform``).

The layer's guarantees: specs expand deterministically over all four axes
(analog point × style × firmware × stimulus), every scenario runs through a
real :class:`SmartSystemPlatform`, the software-visible outcome of a scenario
is independent of the integration style *and* of where it executed (serial
loop versus multiprocessing worker), and the aggregation renders
Table-III-style summaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_rc_filter
from repro.errors import PlatformError
from repro.sim import SquareWave
from repro.sweep import (
    GridSpec,
    PlatformScenarioSpec,
    PlatformSweepRunner,
    SweepError,
)
from repro.vp import (
    ANALOG_STYLES,
    SmartSystemPlatform,
    averaging_monitor_source,
    threshold_monitor_source,
)

TIMESTEP = 50e-9
SHORT = 20e-6  # 400 analog steps per platform: structure checks, not timing
WAVE = {"vin": SquareWave(period=8e-6)}

RC_GRID = GridSpec(axes={"resistance": [4e3, 6e3]}, base={"order": 1})


def runner(**kwargs) -> PlatformSweepRunner:
    kwargs.setdefault("timestep", TIMESTEP)
    return PlatformSweepRunner(build_rc_filter, "out", WAVE, **kwargs)


class TestPlatformScenarioSpec:
    def test_expansion_covers_all_axes_row_major(self):
        spec = PlatformScenarioSpec(
            parameters=RC_GRID,
            styles=("python", "de"),
            firmwares={"a": None, "b": None},
            stimuli=("default",),
        )
        scenarios = spec.expand()
        assert len(spec) == len(scenarios) == 2 * 2 * 2
        assert [s.index for s in scenarios] == list(range(8))
        # style is the innermost axis: adjacent scenarios share the analog key
        assert scenarios[0].style == "python" and scenarios[1].style == "de"
        assert scenarios[0].analog_key() == scenarios[1].analog_key()
        assert scenarios[0].analog_key() != scenarios[2].analog_key()
        # firmware varies before the analog point does
        assert [s.firmware for s in scenarios[:4]] == ["a", "a", "b", "b"]
        assert {s.params["resistance"] for s in scenarios} == {4e3, 6e3}

    def test_default_axes_are_singletons(self):
        spec = PlatformScenarioSpec()
        scenarios = spec.expand()
        assert len(scenarios) == 1
        only = scenarios[0]
        assert only.params == {} and only.style == "python"
        assert only.firmware == "default" and only.stimulus == "default"

    def test_per_scenario_seeds_are_deterministic(self):
        from repro.sweep import spawn_seeds

        spec = PlatformScenarioSpec(parameters=RC_GRID, styles=("python",), seed=100)
        seeds = [s.seed for s in spec.expand()]
        # Derived through the shared seeds helper (SeedSequence spawning),
        # and stable across expansions.
        assert seeds == spawn_seeds(100, 2)
        assert len(set(seeds)) == 2
        assert [s.seed for s in spec.expand()] == seeds
        assert [s.seed for s in PlatformScenarioSpec(
            parameters=RC_GRID, styles=("python",), seed=101
        ).expand()] != seeds

    def test_styles_of_one_analog_point_share_the_seed(self):
        """Regression: the seed is an *analog* property — if styles got
        different seeds, seed-aware stimulus families would break the
        cross-style equivalence guarantee."""
        spec = PlatformScenarioSpec(
            parameters=RC_GRID, styles=("python", "de", "tdf"), seed=7
        )
        from repro.sweep import spawn_seeds

        by_key: dict[tuple, set] = {}
        for scenario in spec.expand():
            by_key.setdefault(scenario.analog_key(), set()).add(scenario.seed)
        assert all(len(seeds) == 1 for seeds in by_key.values())
        assert sorted(seeds.pop() for seeds in by_key.values()) == sorted(
            spawn_seeds(7, 2)
        )

    def test_validation(self):
        with pytest.raises(SweepError):
            PlatformScenarioSpec(styles=())
        with pytest.raises(SweepError):
            PlatformScenarioSpec(styles=("fpga",))
        with pytest.raises(SweepError):
            PlatformScenarioSpec(styles=("python", "python"))
        with pytest.raises(SweepError):
            PlatformScenarioSpec(firmwares={})
        with pytest.raises(SweepError):
            PlatformScenarioSpec(stimuli=())

    def test_parameter_specs_with_their_own_stimuli_are_rejected(self):
        """Per-point stimulus mappings would bypass the family mechanism, so
        expansion refuses them instead of silently dropping them."""
        spec = PlatformScenarioSpec(
            parameters=GridSpec(
                axes={"resistance": [4e3]}, base={"order": 1}, stimuli=WAVE
            )
        )
        with pytest.raises(SweepError, match="stimulus families"):
            spec.expand()

    def test_describe_mentions_every_axis(self):
        scenario = PlatformScenarioSpec(parameters=RC_GRID).expand()[0]
        text = scenario.describe()
        assert "python" in text and "fw=default" in text and "resistance" in text


class TestPlatformSweepRunner:
    @pytest.fixture(scope="class")
    def result(self):
        spec = PlatformScenarioSpec(
            parameters=RC_GRID,
            styles=("python", "de", "tdf"),
            firmwares={
                "threshold": threshold_monitor_source(100),
                "averaging": averaging_monitor_source(),
            },
        )
        return runner().run(spec, SHORT)

    def test_shapes_and_metrics(self, result):
        assert result.n_scenarios == 2 * 3 * 2
        assert result.styles() == ["python", "de", "tdf"]
        assert result.elapsed.shape == (result.n_scenarios,)
        assert np.all(result.instructions() > 0)
        assert np.all(result.analog_samples() == 400)

    def test_styles_agree_on_software_behaviour(self, result):
        """The defining invariant: the integration style must not change what
        the software observes (same instructions, UART bytes, crossings)."""
        outcomes: dict[tuple, set] = {}
        for scenario, result_ in zip(result.scenarios, result.results):
            key = scenario.analog_key()
            fingerprint = result_.fingerprint()[:-1]  # drop the style tag
            outcomes.setdefault(key, set()).add(fingerprint)
        assert all(len(variants) == 1 for variants in outcomes.values()), outcomes

    def test_cross_style_nrmse_is_small(self, result):
        errors = result.scenario_nrmse()
        assert errors is not None
        assert not np.any(np.isnan(errors))
        assert np.all(errors < 1e-6)  # same abstracted model in every style

    def test_summary_and_reports(self, result):
        summary = result.summary_by_style()
        assert set(summary) == {"python", "de", "tdf"}
        assert result.baseline_style == "python"
        assert summary["python"]["speedup"] == pytest.approx(1.0)
        assert summary["de"]["scenarios"] == 4
        markdown = result.to_markdown()
        assert "Table III layout" in markdown and "| de |" in markdown
        csv = result.to_csv()
        assert len(csv.splitlines()) == 1 + result.n_scenarios

    def test_cosim_is_the_baseline_when_present(self):
        spec = PlatformScenarioSpec(
            parameters=GridSpec(axes={}, base={"order": 1}),
            styles=("cosim", "python"),
        )
        result = runner().run(spec, SHORT)
        assert result.baseline_style == "cosim"
        summary = result.summary_by_style()
        # Headline claim: the abstracted integration beats co-simulation.
        assert summary["python"]["speedup"] > 1.0

    def test_parallel_run_equals_serial_run(self):
        spec = PlatformScenarioSpec(parameters=RC_GRID, styles=("python", "de"))
        serial = runner(workers=1).run(spec, SHORT)
        parallel = runner(workers=2).run(spec, SHORT)
        assert serial.fingerprints() == parallel.fingerprints()
        assert parallel.workers == 2
        for a, b in zip(serial.results, parallel.results):
            assert a.analog_trace == b.analog_trace

    def test_seeded_stimulus_families_reach_the_workers(self):
        def jittered(seed: int):
            rng = np.random.default_rng(seed)
            period = 8e-6 * (1.0 + 0.1 * rng.uniform(-1.0, 1.0))
            return {"vin": SquareWave(period=period)}

        spec = PlatformScenarioSpec(
            parameters=GridSpec(axes={}, base={"order": 1}),
            styles=("python",),
            stimuli=("jittered",),
            seed=5,
        )
        stimuli = {"jittered": jittered}
        first = PlatformSweepRunner(
            build_rc_filter, "out", stimuli, timestep=TIMESTEP, families=True
        ).run(spec, SHORT)
        again = PlatformSweepRunner(
            build_rc_filter, "out", stimuli, timestep=TIMESTEP, families=True
        ).run(spec, SHORT)
        assert first.fingerprints() == again.fingerprints()

    def test_unknown_stimulus_family_is_reported(self):
        spec = PlatformScenarioSpec(styles=("python",), stimuli=("nope",))
        with pytest.raises(SweepError, match="nope"):
            runner().run(spec, SHORT)

    def test_fractional_duration_rejected(self):
        spec = PlatformScenarioSpec(styles=("python",))
        with pytest.raises(SweepError):
            runner().run(spec, 2.5 * TIMESTEP)

    def test_zero_scenarios_rejected(self):
        with pytest.raises(SweepError):
            runner().run([], SHORT)

    def test_scenario_list_with_custom_firmware_needs_sources(self):
        """Regression: a filtered scenario list must not silently run custom
        firmware variants on the platform default firmware."""
        spec = PlatformScenarioSpec(
            parameters=RC_GRID,
            styles=("python",),
            firmwares={"avg": averaging_monitor_source()},
        )
        scenarios = spec.expand()[:1]
        with pytest.raises(SweepError, match="avg"):
            runner().run(scenarios, SHORT)
        # supplying the sources makes the list equivalent to the spec run
        from_list = runner().run(
            scenarios, SHORT, firmwares=spec.firmware_table()
        )
        from_spec = runner().run(spec, SHORT)
        assert from_list.fingerprints() == from_spec.fingerprints()[:1]

    def test_premade_models_skip_the_abstraction(self, rc1_model):
        """Seeding the memo with a pre-abstracted model must reproduce the
        abstract-inside-the-worker results exactly."""
        spec = PlatformScenarioSpec(
            parameters=GridSpec(
                axes={}, base={"order": 1, "resistance": 5e3, "capacitance": 25e-9}
            ),
            styles=("python", "de"),
        )
        plain = runner().run(spec, SHORT)
        seeded = PlatformSweepRunner(
            build_rc_filter,
            "out",
            WAVE,
            timestep=TIMESTEP,
            premade_models=[
                ({"order": 1, "resistance": 5e3, "capacitance": 25e-9}, rc1_model)
            ],
        ).run(spec, SHORT)
        assert plain.fingerprints() == seeded.fingerprints()

    def test_premade_models_make_the_factory_optional(self, rc1_model):
        """With every abstracted model seeded, the circuit factory is never
        called — sweeps can run from models alone."""

        def exploding_factory(**params):
            raise AssertionError("the factory must not be called")

        spec = PlatformScenarioSpec(styles=("python", "de"))
        result = PlatformSweepRunner(
            exploding_factory,
            "out",
            WAVE,
            timestep=TIMESTEP,
            premade_models=[({}, rc1_model)],
        ).run(spec, SHORT)
        assert result.n_scenarios == 2

    def test_unknown_firmware_name_is_reported(self):
        spec = PlatformScenarioSpec(parameters=RC_GRID, styles=("python",))
        with pytest.raises(SweepError, match="unknown firmware"):
            runner().run(spec, SHORT, firmwares={"other": None})

    def test_validation_of_constructor_arguments(self):
        with pytest.raises(ValueError):
            runner(workers=0)
        with pytest.raises(ValueError):
            runner(timestep=0.0)
        with pytest.raises(SweepError):
            PlatformSweepRunner(build_rc_filter, "out", {})


class TestAttachAnalogDispatcher:
    def test_styles_constant_matches_dispatcher(self, rc1_model):
        for style in ANALOG_STYLES:
            platform = SmartSystemPlatform()
            if style in ("python", "de", "tdf"):
                platform.attach_analog(style, WAVE, model=rc1_model)
            else:
                platform.attach_analog(
                    style, WAVE, circuit=build_rc_filter(1), output="V(out)"
                )
            assert platform.analog_style is not None

    def test_missing_operands_are_rejected(self, rc1_model):
        with pytest.raises(PlatformError):
            SmartSystemPlatform().attach_analog("python", WAVE)
        with pytest.raises(PlatformError):
            SmartSystemPlatform().attach_analog("eln", WAVE, circuit=build_rc_filter(1))
        with pytest.raises(PlatformError):
            SmartSystemPlatform().attach_analog("fpga", WAVE, model=rc1_model)

    def test_recording_captures_the_adc_stream(self, rc1_model):
        platform = SmartSystemPlatform(record_analog=True)
        platform.attach_analog("python", WAVE, model=rc1_model)
        result = platform.run(SHORT)
        assert result.analog_trace is not None
        assert len(result.analog_trace) == result.analog_samples
        unrecorded = SmartSystemPlatform()
        unrecorded.attach_analog("python", WAVE, model=rc1_model)
        assert unrecorded.run(SHORT).analog_trace is None
