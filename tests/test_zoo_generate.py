"""Tests of the circuit-zoo netlist generator.

The generator's contract: every emitted netlist is valid (parses, builds,
abstracts), the derivation is bit-deterministic per ``(seed, index)``, the
rendered sources collectively exercise the whole supported Verilog-AMS
subset, and the shrinking mutations preserve structural invariants.
"""

from __future__ import annotations

import pytest

from repro.core import AbstractionFlow
from repro.vams import parse_module, to_circuit
from repro.zoo import GeneratorConfig, generate_cases, generate_netlist, render
from repro.zoo.generate import drop_component, plainify_component, round_component

SAMPLE = 40  # cases per sweep-style assertion below


class TestDeterminism:
    def test_same_seed_and_index_render_identically(self):
        for index in (0, 3, 17):
            first = generate_netlist(2016, index)
            again = generate_netlist(2016, index)
            assert first == again
            assert render(first) == render(again)

    def test_distinct_indices_differ(self):
        sources = {render(generate_netlist(0, index)) for index in range(12)}
        assert len(sources) == 12

    def test_distinct_seeds_differ(self):
        assert render(generate_netlist(0, 0)) != render(generate_netlist(1, 0))

    def test_generate_cases_matches_per_index_generation(self):
        cases = list(generate_cases(5, 6))
        assert cases == [generate_netlist(5, index) for index in range(6)]


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_every_case_parses_builds_and_abstracts(self, seed):
        for netlist in generate_cases(seed, 15):
            module = parse_module(render(netlist))
            circuit = to_circuit(module)
            model = AbstractionFlow(50e-9).abstract(
                circuit, netlist.output, name=netlist.name
            ).model
            assert set(netlist.inputs) <= set(model.inputs)

    def test_case_names_carry_provenance(self):
        netlist = generate_netlist(3, 9)
        assert netlist.name == "zoo_s3_c9"
        assert (netlist.seed, netlist.index) == (3, 9)

    def test_parameter_defaults_round_trip_through_the_parser(self):
        for netlist in generate_cases(0, SAMPLE):
            declared = netlist.parameters()
            parsed = parse_module(render(netlist)).parameter_values()
            for name, value in declared.items():
                assert parsed[name] == pytest.approx(value, rel=1e-6)


class TestSubsetCoverage:
    """One campaign's worth of netlists must exercise every rendered feature."""

    @pytest.fixture(scope="class")
    def sources(self):
        return [render(netlist) for netlist in generate_cases(0, SAMPLE)]

    @pytest.mark.parametrize(
        "needle",
        [
            "ddt(",          # derivative contributions
            "idt(",          # integral contributions
            "parameter real",
            "branch (",      # named branches
            "if (",          # conditional gain arms
            " ? ",           # ternary gain spelling
            "//",            # line comments
            "/*",            # block comments
            "endmodule",
        ],
        ids=lambda needle: needle.strip(" (/?"),
    )
    def test_feature_appears_in_campaign(self, sources, needle):
        assert any(needle in source for source in sources)

    def test_si_suffixed_literals_appear(self, sources):
        import re

        pattern = re.compile(r"\d[kMmunp]\b")
        assert any(pattern.search(source) for source in sources)

    def test_implicit_ground_accesses_appear(self, sources):
        import re

        pattern = re.compile(r"[VI]\(\w+\) <\+")
        assert any(pattern.search(source) for source in sources)


class TestMutations:
    def test_drop_component_removes_exactly_one(self):
        netlist = generate_netlist(0, 3)
        shrunk = drop_component(netlist, 0)
        assert len(shrunk) == len(netlist) - 1
        assert shrunk.components == netlist.components[1:]

    def test_plainify_folds_sugar_away(self):
        netlist = generate_netlist(0, 3)
        for position in range(len(netlist.components)):
            plain = plainify_component(netlist, position)
            if plain is None:
                continue
            component = plain.components[position]
            assert component.param is None
            assert component.style in ("potential", "ddt", "plain", "dc")
            assert component.si is False
            source = render(plain)
            assert parse_module(source).name == netlist.name

    def test_round_component_keeps_one_significant_digit(self):
        netlist = generate_netlist(0, 0)
        for position in range(len(netlist.components)):
            rounded = round_component(netlist, position)
            if rounded is None:
                continue
            value = rounded.components[position].value
            digits = f"{abs(value):e}".split("e")[0].rstrip("0").rstrip(".")
            assert len(digits.replace(".", "")) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_internal_nodes=0)
        with pytest.raises(ValueError):
            GeneratorConfig(max_extras=-1)
