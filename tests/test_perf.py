"""Tests for the ``repro.perf`` baseline/regression subsystem."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BaselineStore,
    BenchmarkRecord,
    Regression,
    best_of,
    compare_records,
)
from repro.perf.baseline import PerfError


def record(name="iss", rate=100.0, cost=2.0) -> BenchmarkRecord:
    return BenchmarkRecord(
        name=name,
        metrics={"rate": rate, "seconds": cost},
        maximize=("rate",),
        meta={"smoke": True},
    )


class TestBenchmarkRecord:
    def test_json_round_trip(self):
        original = record()
        restored = BenchmarkRecord.from_json(original.to_json())
        assert restored == original

    def test_malformed_json_rejected(self):
        with pytest.raises(PerfError):
            BenchmarkRecord.from_json("{}")
        with pytest.raises(PerfError):
            BenchmarkRecord.from_json(json.dumps({"name": "x", "metrics": "no"}))

    def test_unknown_maximize_metric_rejected(self):
        with pytest.raises(PerfError):
            BenchmarkRecord(name="x", metrics={"a": 1.0}, maximize=("b",))

    def test_environment_meta_has_provenance(self):
        meta = BenchmarkRecord.environment_meta()
        assert {"python", "implementation", "machine", "recorded_unix_time"} <= set(meta)


class TestCompareRecords:
    def test_no_regression_within_tolerance(self):
        assert compare_records(record(), record(rate=80.0, cost=2.5)) == []

    def test_rate_drop_is_flagged(self):
        regressions = compare_records(record(), record(rate=50.0))
        assert [r.metric for r in regressions] == ["rate"]
        assert regressions[0].retained == pytest.approx(0.5)
        assert "50% retained" in regressions[0].describe()

    def test_cost_increase_is_flagged(self):
        regressions = compare_records(record(), record(cost=4.0))
        assert [r.metric for r in regressions] == ["seconds"]
        assert regressions[0].retained == pytest.approx(0.5)

    def test_new_and_removed_metrics_ignored(self):
        baseline = record()
        current = BenchmarkRecord(
            name="iss", metrics={"rate": 100.0, "fresh": 1.0}, maximize=("rate",)
        )
        assert compare_records(baseline, current) == []

    def test_mismatched_names_rejected(self):
        with pytest.raises(PerfError):
            compare_records(record("a"), record("b"))

    def test_bad_tolerance_rejected(self):
        with pytest.raises(PerfError, match="tolerance"):
            compare_records(record(), record(), tolerance=1.0)


class TestBaselineStore:
    def test_save_load_round_trip(self, tmp_path):
        store = BaselineStore(tmp_path)
        path = store.save(record())
        assert path.name == "BENCH_iss.json"
        assert store.load("iss") == record()
        assert store.load("missing") is None

    def test_load_all_and_compare(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save(record("iss"))
        store.save(record("kernel", rate=10.0))
        assert set(store.load_all()) == {"iss", "kernel"}
        regressions, missing = store.compare(
            [record("iss", rate=10.0), record("new")]
        )
        assert missing == ["new"]
        assert [r.benchmark for r in regressions] == ["iss"]
        assert all(isinstance(r, Regression) for r in regressions)

    def test_empty_directory(self, tmp_path):
        store = BaselineStore(tmp_path / "never_created")
        assert store.load_all() == {}

    def test_smoke_and_full_baselines_are_not_comparable(self, tmp_path):
        # A full-size run against a smoke baseline (or vice versa) must not
        # produce spurious regressions — it is reported as missing instead.
        store = BaselineStore(tmp_path)
        store.save(record("iss"))  # meta.smoke = True
        full = BenchmarkRecord(
            name="iss", metrics={"rate": 10.0}, maximize=("rate",),
            meta={"smoke": False},
        )
        regressions, missing = store.compare([full])
        assert regressions == []
        assert missing == ["iss"]


class TestTimingHelpers:
    def test_best_of_returns_positive_minimum(self):
        calls = []
        elapsed = best_of(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert elapsed >= 0.0

    def test_best_of_rejects_zero_repeats(self):
        # A bare min()-of-empty ValueError would tell the caller nothing;
        # the guard must speak the perf layer's language.
        with pytest.raises(PerfError, match="repeats"):
            best_of(lambda: None, repeats=0)


class TestRecordCli:
    def test_record_then_compare(self, tmp_path, monkeypatch, capsys):
        # Run the actual CLI (the repro-bench entry point) against a tiny
        # suite stub so the test is fast and deterministic: one benchmark
        # whose rate halves on the re-run.
        from repro.perf import cli

        rates = iter([100.0, 40.0])

        def fake_suite(smoke=False):
            return [record(rate=next(rates))]

        monkeypatch.setattr(cli, "run_suite", fake_suite)
        out_dir = str(tmp_path / "baselines")
        assert cli.main(["--smoke", "--out", out_dir]) == 0
        assert (tmp_path / "baselines" / "BENCH_iss.json").exists()
        assert (
            cli.main(["--smoke", "--out", out_dir, "--compare", "--strict"]) == 1
        )
        captured = capsys.readouterr().out
        assert "REGRESSION" in captured

    def test_store_checkpoints_and_resume_skips_completed_benchmarks(
        self, tmp_path, monkeypatch, capsys
    ):
        # The --store/--resume path: a benchmark stub that counts its calls
        # must run once, be committed, and be *loaded* (not re-run) on a
        # resumed invocation — with the record surviving the JSON round-trip.
        from repro.perf import cli

        calls = []

        def bench_iss(smoke=False):
            calls.append(smoke)
            return record(rate=123.0)

        monkeypatch.setattr(cli, "SUITE", (bench_iss,))
        out_dir = str(tmp_path / "baselines")
        store_dir = str(tmp_path / "suite-store")
        assert cli.main(["--smoke", "--out", out_dir, "--store", store_dir]) == 0
        assert calls == [True]
        assert (
            cli.main(
                ["--smoke", "--out", out_dir, "--store", store_dir, "--resume"]
            )
            == 0
        )
        assert calls == [True]  # loaded, not re-executed
        captured = capsys.readouterr().out
        assert "0 benchmark(s) executed, 1 loaded" in captured
        # The loaded record round-tripped: the baseline written on the
        # resumed invocation equals the original.
        loaded = BaselineStore(out_dir).load("iss")
        assert loaded == record(rate=123.0)

    def test_store_key_is_host_specific(self):
        from repro.perf.cli import _bench_store_inputs

        inputs = _bench_store_inputs("iss", smoke=True)
        import platform as platform_module

        assert inputs["host"] == platform_module.node()
        assert inputs["benchmark"] == "iss"
        assert inputs["smoke"] is True

    def test_resume_without_store_is_a_usage_error(self):
        from repro.perf import cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--smoke", "--resume"])
        assert excinfo.value.code == 2

    def test_record_wrapper_script_delegates_to_the_cli(self):
        # benchmarks/record.py stays the in-repo wrapper: it must load and
        # re-export the packaged CLI's main.
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "record_cli",
            pathlib.Path(__file__).parent.parent / "benchmarks" / "record.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        from repro.perf.cli import main

        assert module.main is main
        assert module.DEFAULT_BASELINE_DIR.endswith("baselines")

    def test_perf_suite_smoke_runs(self):
        # The real suite at smoke size: records exist, metrics are positive,
        # and the tentpole's measured block speedup is present.
        from repro.perf.suite import bench_de_kernel

        result = bench_de_kernel(smoke=True)
        assert result.name == "de_kernel"
        assert result.metrics["events_per_second"] > 0
        assert result.meta["smoke"] is True
