"""Tests for the discrete-event and TDF simulation kernels."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Clock, Kernel, Module, PeriodicTicker, Signal, TdfCluster, TdfModule
from repro.sim.de import Event


class TestDeKernel:
    def test_timed_events_execute_in_order(self):
        kernel = Kernel()
        log: list[tuple[float, str]] = []
        kernel.schedule(3e-9, lambda: log.append((kernel.now, "c")))
        kernel.schedule(1e-9, lambda: log.append((kernel.now, "a")))
        kernel.schedule(2e-9, lambda: log.append((kernel.now, "b")))
        kernel.run()
        assert [entry[1] for entry in log] == ["a", "b", "c"]
        assert log[0][0] == pytest.approx(1e-9)

    def test_run_duration_bounds_time(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(5e-6, lambda: fired.append(True))
        kernel.run(1e-6)
        assert not fired
        assert kernel.now == pytest.approx(1e-6)
        kernel.run(10e-6)
        assert fired

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Kernel().schedule(-1.0, lambda: None)

    def test_end_time_exposed_during_bounded_run(self):
        # Batch processes (the VP's CPU block driver) clamp their burst size
        # to the run horizon; it must be visible inside events and cleared
        # again once the run returns.
        kernel = Kernel()
        seen = []
        kernel.schedule(1e-6, lambda: seen.append(kernel.end_time))
        assert kernel.end_time is None
        kernel.run(5e-6)
        assert seen == [pytest.approx(5e-6)]
        assert kernel.end_time is None

    def test_stop_terminates_run(self):
        kernel = Kernel()
        executed = []
        kernel.schedule(1e-9, kernel.stop)
        kernel.schedule(2e-9, lambda: executed.append(True))
        kernel.run()
        assert not executed

    def test_signal_update_is_delta_delayed(self):
        kernel = Kernel()
        signal = Signal(kernel, 0)
        observed = []

        def writer():
            signal.write(42)
            observed.append(("during", signal.read()))

        kernel.schedule(1e-9, writer)
        kernel.schedule(2e-9, lambda: observed.append(("later", signal.read())))
        kernel.run()
        assert observed == [("during", 0), ("later", 42)]

    def test_signal_changed_event_wakes_method(self):
        kernel = Kernel()
        signal = Signal(kernel, 0)
        wakeups = []
        signal.changed.add_static_method(lambda: wakeups.append(signal.read()))
        kernel.schedule(1e-9, lambda: signal.write(7))
        kernel.schedule(2e-9, lambda: signal.write(7))  # same value: no event
        kernel.schedule(3e-9, lambda: signal.write(9))
        kernel.run()
        assert wakeups == [7, 9]

    def test_thread_process_waits(self):
        kernel = Kernel()
        log = []

        def process():
            log.append(kernel.now)
            yield 5e-9
            log.append(kernel.now)
            yield 5e-9
            log.append(kernel.now)

        kernel.spawn_thread(process())
        kernel.run()
        assert log == pytest.approx([0.0, 5e-9, 10e-9])

    def test_thread_waits_on_event(self):
        kernel = Kernel()
        event = Event(kernel, "go")
        log = []

        def waiter():
            yield event
            log.append(kernel.now)

        kernel.spawn_thread(waiter())
        kernel.schedule(4e-9, event.notify)
        kernel.run()
        assert log == pytest.approx([4e-9])

    def test_clock_toggles_and_counts(self):
        kernel = Kernel()
        clock = Clock(kernel, "clk", period=10e-9)
        kernel.run(95e-9)
        assert clock.cycle_count == 10
        with pytest.raises(ValueError):
            Clock(kernel, "bad", period=0.0)

    def test_periodic_ticker_period_and_count(self):
        kernel = Kernel()
        times = []
        PeriodicTicker(kernel, "tick", 10e-9, lambda now: times.append(now))
        kernel.run(100e-9)
        assert len(times) == 10
        assert times[0] == pytest.approx(10e-9)

    def test_kernel_survives_a_raising_process(self):
        """Regression: an exception escaping a process must not alias the
        recycled delta-cycle lists — the kernel stays usable afterwards."""
        kernel = Kernel()

        def boom():
            raise RuntimeError("process failure")

        kernel.schedule(1e-9, boom)
        with pytest.raises(RuntimeError):
            kernel.run()
        assert kernel._runnable is not kernel._runnable_spare
        # the kernel still schedules and runs correctly after the failure
        fired = []
        kernel.schedule(1e-9, lambda: fired.append(kernel.now))
        signal = Signal(kernel, 0)
        signal.changed.add_static_method(lambda: fired.append(signal.read()))
        kernel.schedule(2e-9, lambda: signal.write(5))
        kernel.run()
        assert len(fired) == 2 and fired[1] == 5

    def test_module_helpers(self):
        kernel = Kernel()
        module = Module(kernel, "m")
        signal = module.signal(1, "s")
        assert signal.read() == 1
        assert module.now == 0.0


class _Doubler(TdfModule):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.inp = self.in_port("in")
        self.out = self.out_port("out")

    def processing(self) -> None:
        self.out.write(2.0 * self.inp.read())


class _Ramp(TdfModule):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.out = self.out_port("out")
        self.value = 0.0

    def set_attributes(self) -> None:
        self.set_timestep(1e-6)

    def processing(self) -> None:
        self.value += 1.0
        self.out.write(self.value)


class _Collector(TdfModule):
    def __init__(self, name: str, rate: int = 1) -> None:
        super().__init__(name)
        self.inp = self.in_port("in", rate=rate)
        self.samples: list[float] = []

    def processing(self) -> None:
        for _ in range(self.inp.rate):
            self.samples.append(self.inp.read())


class TestTdfKernel:
    def test_pipeline_executes_in_producer_order(self):
        cluster = TdfCluster()
        ramp = cluster.add(_Ramp("ramp"))
        doubler = cluster.add(_Doubler("double"))
        sink = cluster.add(_Collector("sink"))
        cluster.connect(ramp.out, doubler.inp)
        cluster.connect(doubler.out, sink.inp)
        cluster.run(5e-6)
        assert sink.samples == [2.0, 4.0, 6.0, 8.0, 10.0]
        assert ramp.activation_count == 5

    def test_multirate_consumer(self):
        cluster = TdfCluster()
        ramp = cluster.add(_Ramp("ramp"))
        sink = cluster.add(_Collector("sink", rate=2))
        cluster.connect(ramp.out, sink.inp)
        schedule = cluster.schedule()
        fired = [module.name for module, _ in schedule]
        assert fired.count("ramp") == 2
        assert fired.count("sink") == 1
        cluster.run(4e-6)
        assert sink.samples == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]

    def test_feedback_without_delay_is_rejected(self):
        cluster = TdfCluster()
        first = cluster.add(_Doubler("a"))
        second = cluster.add(_Doubler("b"))
        cluster.connect(first.out, second.inp)
        cluster.connect(second.out, first.inp)
        cluster.timestep = 1e-6
        with pytest.raises(SchedulingError):
            cluster.schedule()

    def test_feedback_with_delay_schedules(self):
        cluster = TdfCluster()
        first = cluster.add(_Doubler("a"))
        second = cluster.add(_Doubler("b"))
        cluster.connect(first.out, second.inp)
        cluster.connect(second.out, first.inp, delay_samples=1)
        cluster.timestep = 1e-6
        assert len(cluster.schedule()) == 2

    def test_missing_timestep_is_rejected(self):
        cluster = TdfCluster()
        cluster.add(_Doubler("a"))
        with pytest.raises(SchedulingError):
            cluster.schedule()

    def test_port_underflow_raises(self):
        module = _Doubler("d")
        cluster = TdfCluster()
        cluster.add(module)
        signal = cluster.signal()
        module.inp.bind(signal)
        module.out.bind(cluster.signal())
        with pytest.raises(SimulationError):
            module.inp.read()

    def test_two_writers_on_one_signal_rejected(self):
        cluster = TdfCluster()
        first = cluster.add(_Ramp("a"))
        second = cluster.add(_Ramp("b"))
        signal = cluster.signal()
        first.out.bind(signal)
        with pytest.raises(SimulationError):
            second.out.bind(signal)

    def test_invalid_rate_rejected(self):
        module = _Doubler("d")
        with pytest.raises(ValueError):
            module.in_port("x", rate=0)
