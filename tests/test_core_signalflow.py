"""Tests for signal-flow models and the direct Verilog-AMS conversion path."""

from __future__ import annotations

import math

import pytest

from repro.core import SignalFlowModel, convert_signal_flow
from repro.core.signalflow import Assignment
from repro.errors import AbstractionError
from repro.expr import BinaryOp, Conditional, Constant, Previous, Variable
from repro.vams import parse_module

DT = 1e-6


def integrator_model() -> SignalFlowModel:
    """y accumulates u: y = prev(y) + dt * u."""
    assignment = Assignment(
        "y", BinaryOp("+", Previous("y"), BinaryOp("*", Constant(DT), Variable("u")))
    )
    return SignalFlowModel(
        name="integrator",
        inputs=["u"],
        outputs=["y"],
        assignments=[assignment],
        state_variables=["y"],
        timestep=DT,
    )


class TestSignalFlowModel:
    def test_step_updates_state(self):
        model = integrator_model()
        state = model.create_state()
        env = model.step({"u": 2.0}, state)
        assert env["y"] == pytest.approx(2.0 * DT)
        assert state["y"] == pytest.approx(2.0 * DT)
        model.step({"u": 2.0}, state)
        assert state["y"] == pytest.approx(4.0 * DT)

    def test_initial_state(self):
        model = integrator_model()
        model.initial_state = {"y": 1.0}
        state = model.create_state()
        assert state["y"] == 1.0

    def test_run_produces_trace(self):
        model = integrator_model()
        trace = model.run({"u": lambda t: 1.0}, 100 * DT)
        assert len(trace.times) == 100
        assert trace.waveform("y")[-1] == pytest.approx(100 * DT)

    def test_validate_detects_unknown_reference(self):
        model = SignalFlowModel(
            name="broken",
            inputs=[],
            outputs=["y"],
            assignments=[Assignment("y", Variable("ghost"))],
            timestep=DT,
        )
        with pytest.raises(AbstractionError, match="ghost"):
            model.validate()

    def test_validate_detects_uncomputed_state(self):
        model = SignalFlowModel(
            name="broken",
            inputs=["u"],
            outputs=["y"],
            assignments=[Assignment("y", Previous("z"))],
            state_variables=["z"],
            timestep=DT,
        )
        with pytest.raises(AbstractionError, match="never computed"):
            model.validate()

    def test_validate_detects_missing_output(self):
        model = SignalFlowModel(
            name="broken",
            inputs=["u"],
            outputs=["missing"],
            assignments=[Assignment("y", Variable("u"))],
            timestep=DT,
        )
        with pytest.raises(AbstractionError, match="missing"):
            model.validate()

    def test_output_values_helper(self):
        model = integrator_model()
        env = model.step({"u": 1.0}, model.create_state())
        assert model.output_values(env) == {"y": pytest.approx(DT)}


class TestDirectConversion:
    def test_gain_stage(self):
        module = parse_module(
            "module gain(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 2.5 * V(a); endmodule"
        )
        model = convert_signal_flow(module, DT)
        assert model.inputs == ["a"]
        assert model.outputs == ["V(b)"]
        env = model.step({"a": 2.0}, model.create_state())
        assert env["V(b)"] == pytest.approx(5.0)

    def test_statement_order_is_preserved(self):
        module = parse_module(
            """
            module chain(a, b); input a; output b; electrical a, b; real x, y;
            analog begin
              x = 2 * V(a);
              y = x + 1;
              V(b) <+ y * 3;
            end
            endmodule
            """
        )
        model = convert_signal_flow(module, DT)
        assert [a.target for a in model.assignments] == ["x", "y", "V(b)"]
        env = model.step({"a": 1.0}, model.create_state())
        assert env["V(b)"] == pytest.approx(9.0)

    def test_parameters_are_substituted(self):
        module = parse_module(
            "module g(a, b); input a; output b; electrical a, b; parameter real K = 4;"
            " analog V(b) <+ K * V(a); endmodule"
        )
        model = convert_signal_flow(module, DT)
        env = model.step({"a": 1.5}, model.create_state())
        assert env["V(b)"] == pytest.approx(6.0)

    def test_ddt_creates_state(self):
        module = parse_module(
            "module d(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ 1u * ddt(V(a)); endmodule"
        )
        model = convert_signal_flow(module, DT)
        assert model.state_variables == ["a"]
        state = model.create_state()
        model.step({"a": 0.0}, state)
        env = model.step({"a": 1.0}, state)
        assert env["V(b)"] == pytest.approx(1e-6 * 1.0 / DT)

    def test_idt_accumulates(self):
        module = parse_module(
            "module i(a, b); input a; output b; electrical a, b;"
            " analog V(b) <+ idt(V(a)); endmodule"
        )
        model = convert_signal_flow(module, DT)
        state = model.create_state()
        for _ in range(10):
            env = model.step({"a": 1.0}, state)
        assert env["V(b)"] == pytest.approx(10 * DT)

    def test_conditional_statement(self):
        module = parse_module(
            """
            module clip(a, b); input a; output b; electrical a, b;
            analog begin
              if (V(a) > 1.0) V(b) <+ 1.0; else V(b) <+ V(a);
            end
            endmodule
            """
        )
        model = convert_signal_flow(module, DT)
        assert isinstance(model.assignments[0].expression, Conditional)
        state = model.create_state()
        assert model.step({"a": 0.3}, state)["V(b)"] == pytest.approx(0.3)
        assert model.step({"a": 2.0}, state)["V(b)"] == pytest.approx(1.0)

    def test_sinusoidal_source_uses_abstime(self):
        module = parse_module(
            "module osc(b); output b; electrical b;"
            " analog V(b) <+ sin(6.2831853 * 1k * $abstime); endmodule"
        )
        model = convert_signal_flow(module, DT)
        env = model.step({}, model.create_state(), time=0.25e-3)
        assert env["V(b)"] == pytest.approx(math.sin(2 * math.pi * 0.25), rel=1e-3)

    def test_conservative_module_rejected(self, rc1_circuit):
        from repro.circuits import rc_filter_source

        module = parse_module(rc_filter_source(1))
        with pytest.raises(AbstractionError):
            convert_signal_flow(module, DT)
