"""Tests for netlist extraction from parsed Verilog-AMS modules."""

from __future__ import annotations

import pytest

from repro.circuits import opamp_source, rc_filter_source, two_input_source
from repro.network.components import (
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.vams import NetlistError, extract_dipole_equations, find_ground, parse_module, to_circuit


def component_types(circuit) -> dict[str, type]:
    return {name: type(branch.component) for name, branch in circuit.branches.items()}


class TestComponentRecognition:
    def test_rc_filter(self):
        circuit = to_circuit(parse_module(rc_filter_source(2)))
        types = component_types(circuit)
        assert types["r1"] is Resistor
        assert types["c1"] is Capacitor
        assert types["Vsrc_vin"] is VoltageSource
        assert circuit.branch("r1").component.resistance == pytest.approx(5e3)
        assert circuit.branch("c1").component.capacitance == pytest.approx(25e-9)

    def test_two_input_recognises_vcvs(self):
        circuit = to_circuit(parse_module(two_input_source()))
        types = component_types(circuit)
        assert types["amp"] is VCVS
        amp = circuit.branch("amp").component
        assert amp.gain == pytest.approx(-1e5)
        assert amp.control_positive == "sum"

    def test_opamp_topology(self):
        circuit = to_circuit(parse_module(opamp_source()))
        types = component_types(circuit)
        assert types["cb1"] is Capacitor
        assert types["stage"] is VCVS
        assert types["rbout"] is Resistor
        assert set(circuit.node_names()) >= {"vin", "inn", "oa", "out", "gnd"}

    def test_inductor_recognition(self):
        module = parse_module(
            """
            module rl(vin, out); input vin; output out; electrical vin, out, gnd; ground gnd;
            branch (vin, out) lb; branch (out, gnd) rb;
            analog begin
              V(lb) <+ 1m * ddt(I(lb));
              V(rb) <+ 50 * I(rb);
            end
            endmodule
            """
        )
        circuit = to_circuit(module)
        assert isinstance(circuit.branch("lb").component, Inductor)
        assert circuit.branch("lb").component.inductance == pytest.approx(1e-3)

    def test_conductance_style_resistor(self):
        module = parse_module(
            """
            module g(vin, out); input vin; output out; electrical vin, out, gnd; ground gnd;
            branch (vin, out) rb; branch (out, gnd) rg;
            analog begin
              I(rb) <+ V(rb) / 2k;
              V(rg) <+ 1k * I(rg);
            end
            endmodule
            """
        )
        resistor = to_circuit(module).branch("rb").component
        assert isinstance(resistor, Resistor)
        assert resistor.resistance == pytest.approx(2e3)

    def test_constant_sources(self):
        module = parse_module(
            """
            module src(out); output out; electrical out, n1, gnd; ground gnd;
            branch (n1, gnd) vb; branch (out, gnd) ib; branch (n1, out) rb;
            analog begin
              V(vb) <+ 3.3;
              I(ib) <+ 1m;
              V(rb) <+ 100 * I(rb);
            end
            endmodule
            """
        )
        circuit = to_circuit(module)
        assert isinstance(circuit.branch("vb").component, VoltageSource)
        assert circuit.branch("vb").component.dc_value == pytest.approx(3.3)
        assert isinstance(circuit.branch("ib").component, CurrentSource)

    def test_vccs_recognition(self):
        module = parse_module(
            """
            module gm(vin, out); input vin; output out; electrical vin, out, gnd; ground gnd;
            branch (out, gnd) ob; branch (out, gnd) rb;
            analog begin
              I(ob) <+ 2m * V(vin, gnd);
              V(rb) <+ 1k * I(rb);
            end
            endmodule
            """
        )
        circuit = to_circuit(module)
        assert isinstance(circuit.branch("ob").component, VCCS)
        assert circuit.branch("ob").component.transconductance == pytest.approx(2e-3)


class TestStructure:
    def test_input_ports_become_sources(self):
        circuit = to_circuit(parse_module(rc_filter_source(1)))
        assert "Vsrc_vin" in circuit.branches
        assert circuit.input_names() == ["vin"]

    def test_drive_inputs_can_be_disabled(self):
        module = parse_module(rc_filter_source(1))
        circuit = to_circuit(module, drive_inputs=False)
        assert "Vsrc_vin" not in circuit.branches

    def test_ground_detection(self):
        assert find_ground(parse_module(rc_filter_source(1))) == "gnd"
        module = parse_module(
            "module m(a); inout a; electrical a, vss; analog V(a, vss) <+ 1.0; endmodule"
        )
        assert find_ground(module) == "vss"

    def test_extract_dipole_equations(self):
        module = parse_module(rc_filter_source(1))
        equations = extract_dipole_equations(module)
        rendered = [str(equation) for equation in equations]
        assert any("5000" in text and "I(r1)" in text for text in rendered)
        assert any("ddt" in text for text in rendered)

    def test_signal_flow_module_rejected(self):
        module = parse_module(
            "module g(a, b); input a; output b; electrical a, b; analog V(b) <+ 2 * V(a); endmodule"
        )
        with pytest.raises(NetlistError):
            to_circuit(module)

    def test_unrecognised_contribution_raises(self):
        module = parse_module(
            """
            module weird(vin, out); input vin; output out; electrical vin, out, gnd; ground gnd;
            branch (vin, out) b1; branch (out, gnd) b2;
            analog begin
              V(b1) <+ I(b1) * I(b1);
              V(b2) <+ 1k * I(b2);
            end
            endmodule
            """
        )
        with pytest.raises(NetlistError):
            to_circuit(module)
