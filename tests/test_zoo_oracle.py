"""Tests of the differential oracle and the greedy shrinker.

The oracle must pass every healthy generated netlist, catch an injected
engine defect as an agreement failure, and the shrinker must minimise the
failing case below five components — the committed reproducer under
``tests/corpus/`` is regenerated here and compared byte-for-byte (modulo the
header, whose NRMSE digits may wiggle in the last places across BLAS builds).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim import Trace, TraceSet
from repro.zoo import (
    OracleConfig,
    check_netlist,
    check_source,
    generate_netlist,
    shrink,
    write_reproducer,
)
from repro.zoo.oracle import AGREEMENT, ENGINE, ENGINE_RUNNERS, FRONTEND

#: Short oracle profile for tests: 400 analog steps per engine.
FAST = OracleConfig(duration=2e-5)

CORPUS = Path(__file__).parent / "corpus"


def _skewed_mna(model, circuit, stimuli, config):
    """A subtly broken engine: the MNA waveform scaled by (1 + 1e-6)."""
    traces = ENGINE_RUNNERS["mna"](model, circuit, stimuli, config)
    quantity = model.outputs[0]
    skewed = Trace(quantity)
    for time, value in zip(traces[quantity].times, traces[quantity].values):
        skewed.append(float(time), float(value) * (1.0 + 1e-6))
    return TraceSet({quantity: skewed})


def _crashing_engine(model, circuit, stimuli, config):
    raise ValueError("injected engine crash")


class TestOracleVerdicts:
    def test_healthy_netlist_passes(self):
        verdict = check_netlist(generate_netlist(0, 0), FAST)
        assert verdict.ok and bool(verdict)
        assert verdict.worst_error <= FAST.tolerance
        assert len(verdict.errors) == 10  # C(5, 2) engine pairs
        assert "ok" in verdict.summary()

    def test_frontend_failure_is_reported_with_stage(self):
        verdict = check_source("module broken(", FAST)
        assert not verdict.ok
        assert verdict.stage == FRONTEND
        assert "VamsParseError" in verdict.detail

    def test_injected_disagreement_is_caught(self):
        verdict = check_netlist(
            generate_netlist(0, 3), FAST, engine_overrides={"mna": _skewed_mna}
        )
        assert not verdict.ok
        assert verdict.stage == AGREEMENT
        assert verdict.worst_pair is not None and "mna" in verdict.worst_pair
        assert verdict.worst_error > FAST.tolerance
        assert "disagree" in verdict.summary()

    def test_crashing_engine_is_an_engine_failure(self):
        verdict = check_netlist(
            generate_netlist(0, 0), FAST, engine_overrides={"de": _crashing_engine}
        )
        assert not verdict.ok
        assert verdict.stage == ENGINE
        assert "'de'" in verdict.detail and "injected" in verdict.detail

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OracleConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            OracleConfig(engines=("python",))
        with pytest.raises(ValueError):
            OracleConfig(engines=("python", "spice"))
        with pytest.raises(ValueError):
            OracleConfig(duration=-1.0)


class TestShrinker:
    @pytest.fixture(scope="class")
    def shrunk(self):
        netlist = generate_netlist(0, 3)
        assert len(netlist) > 5  # the shrink has real work to do
        return shrink(netlist, FAST, engine_overrides={"mna": _skewed_mna})

    def test_minimal_reproducer_has_at_most_five_components(self, shrunk):
        minimal, verdict = shrunk
        assert len(minimal) <= 5
        assert not verdict.ok and verdict.stage == AGREEMENT

    def test_minimal_netlist_still_reproduces_the_defect(self, shrunk):
        minimal, _ = shrunk
        replay = check_netlist(minimal, FAST, engine_overrides={"mna": _skewed_mna})
        assert not replay.ok
        healthy = check_netlist(minimal, FAST)
        assert healthy.ok  # the defect is in the engine, not the netlist

    def test_reproducer_matches_the_committed_corpus_file(self, shrunk, tmp_path):
        minimal, verdict = shrunk
        written = write_reproducer(minimal, verdict, tmp_path)
        committed = CORPUS / written.name

        def body(path: Path) -> str:
            lines = path.read_text(encoding="utf-8").splitlines()
            return "\n".join(line for line in lines if not line.startswith("//"))

        assert committed.exists(), (
            f"regenerate with: cp {written} {committed}"
        )
        assert body(written) == body(committed)

    def test_header_carries_provenance(self, shrunk, tmp_path):
        minimal, verdict = shrunk
        written = write_reproducer(minimal, verdict, tmp_path)
        header = written.read_text(encoding="utf-8")
        assert "seed=0 index=3" in header
        assert verdict.worst_pair is not None
        assert "disagree" in header

    def test_committed_reproducer_passes_healthy_engines(self):
        for path in sorted(CORPUS.glob("*.va")):
            verdict = check_source(path.read_text(encoding="utf-8"), FAST)
            assert verdict.ok, f"{path.name}: {verdict.summary()}"

    def test_shrinking_a_passing_netlist_is_refused(self):
        with pytest.raises(ValueError):
            shrink(generate_netlist(0, 0), FAST)
