"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuits import benchmark_by_name, build_opamp, build_rc_filter, build_two_input
from repro.core import AbstractionFlow
from repro.network import Circuit

#: Timestep used by most tests (the paper's 50 ns).
TEST_TIMESTEP = 50e-9


@pytest.fixture
def timestep() -> float:
    return TEST_TIMESTEP


@pytest.fixture
def rc1_circuit() -> Circuit:
    """A first-order RC filter with the paper's parameters."""
    return build_rc_filter(1)


@pytest.fixture
def rc3_circuit() -> Circuit:
    """A third-order RC filter (small but with interacting stages)."""
    return build_rc_filter(3)


@pytest.fixture
def two_input_circuit() -> Circuit:
    """The 2IN summing amplifier."""
    return build_two_input()


@pytest.fixture
def opamp_circuit() -> Circuit:
    """The OA active filter."""
    return build_opamp()


@pytest.fixture
def flow() -> AbstractionFlow:
    """An abstraction flow configured with the paper's timestep."""
    return AbstractionFlow(TEST_TIMESTEP)


@pytest.fixture
def rc1_model(flow, rc1_circuit):
    """The abstracted signal-flow model of RC1."""
    return flow.abstract(rc1_circuit, "out", name="rc1").model


@pytest.fixture
def rc1_benchmark():
    return benchmark_by_name("RC1")


@pytest.fixture
def oa_benchmark():
    return benchmark_by_name("OA")
