"""Tests for symbolic differentiation, discretisation and equations."""

from __future__ import annotations

import pytest

from repro.errors import NonLinearExpressionError, UnsolvableEquationError
from repro.expr import (
    BACKWARD_EULER,
    TRAPEZOIDAL,
    BinaryOp,
    Call,
    Constant,
    Derivative,
    Discretizer,
    Equation,
    Integral,
    Previous,
    Variable,
    constant_value,
    differentiate,
    discretize,
    evaluate,
    is_linear_in,
    previous_of,
    simplify,
)
from repro.expr.equation import DIPOLE, KCL


class TestDifferentiate:
    def test_polynomial(self):
        x = Variable("x")
        derivative = differentiate(3.0 * x * x + 2.0 * x + 1.0, "x")
        assert evaluate(derivative, {"x": 2.0}) == pytest.approx(14.0)

    def test_constant_derivative_is_zero(self):
        assert differentiate(Constant(5.0), "x") == Constant(0.0)
        assert differentiate(Variable("y"), "x") == Constant(0.0)
        assert differentiate(Previous("x"), "x") == Constant(0.0)

    def test_quotient_rule(self):
        x = Variable("x")
        derivative = differentiate(Constant(1.0) / x, "x")
        assert evaluate(derivative, {"x": 2.0}) == pytest.approx(-0.25)

    def test_chain_rule_through_functions(self):
        x = Variable("x")
        derivative = differentiate(Call("exp", (2.0 * x,)), "x")
        assert evaluate(derivative, {"x": 0.0}) == pytest.approx(2.0)
        derivative = differentiate(Call("sin", (x,)), "x")
        assert evaluate(derivative, {"x": 0.0}) == pytest.approx(1.0)

    def test_variable_exponent_rejected(self):
        x = Variable("x")
        with pytest.raises(NonLinearExpressionError):
            differentiate(BinaryOp("**", Constant(2.0), x), "x")

    def test_ddt_of_dependent_operand_rejected(self):
        with pytest.raises(NonLinearExpressionError):
            differentiate(Derivative(Variable("x")), "x")

    def test_is_linear_in(self):
        x, y = Variable("x"), Variable("y")
        assert is_linear_in(2.0 * x + y, {"x", "y"})
        assert not is_linear_in(x * y, {"x", "y"})
        assert not is_linear_in(Call("exp", (x,)), {"x"})


class TestDiscretize:
    def test_ddt_backward_euler(self):
        dt = 1e-6
        result = discretize(Derivative(Variable("x")), dt)
        value = evaluate(result.expression, {"x": 2.0}, previous={"x": 1.0})
        assert value == pytest.approx((2.0 - 1.0) / dt)
        assert not result.integrator_updates

    def test_ddt_of_expression_delays_every_variable(self):
        dt = 0.5
        expr = Derivative(Variable("a") - Variable("b"))
        result = discretize(expr, dt)
        value = evaluate(
            result.expression, {"a": 3.0, "b": 1.0}, previous={"a": 2.0, "b": 1.0}
        )
        assert value == pytest.approx(((3.0 - 1.0) - (2.0 - 1.0)) / dt)

    def test_idt_introduces_accumulator(self):
        result = discretize(Integral(Variable("x")), 1e-3)
        assert len(result.integrator_updates) == 1
        name, update = next(iter(result.integrator_updates.items()))
        assert name.startswith("__idt")
        assert name in result.expression.variables()
        # The accumulator update is prev(acc) + dt * x.
        value = evaluate(update, {"x": 2.0}, previous={name: 1.0})
        assert value == pytest.approx(1.0 + 1e-3 * 2.0)

    def test_idt_with_initial_condition(self):
        result = discretize(Integral(Variable("x"), Constant(5.0)), 1e-3)
        value = evaluate(
            result.expression,
            {"x": 0.0, "__idt_0": 0.0},
            previous={"__idt_0": 0.0},
        )
        assert value == pytest.approx(5.0)

    def test_unique_accumulator_names(self):
        discretizer = Discretizer(1e-3)
        first = discretizer.discretize(Integral(Variable("x")))
        second = discretizer.discretize(Integral(Variable("y")))
        assert set(first.integrator_updates) != set(second.integrator_updates)

    def test_trapezoidal_integral_uses_average(self):
        result = discretize(Integral(Variable("x")), 1.0, method=TRAPEZOIDAL)
        update = next(iter(result.integrator_updates.values()))
        value = evaluate(update, {"x": 2.0}, previous={"x": 0.0, "__idt_0": 0.0})
        assert value == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Discretizer(0.0)
        with pytest.raises(ValueError):
            Discretizer(1e-6, method="rk4")

    def test_previous_of(self):
        expr = Variable("a") + 2.0 * Variable("b")
        delayed = previous_of(expr)
        assert delayed.previous_values() == {"a", "b"}
        assert delayed.variables() == set()


class TestEquation:
    def test_defined_variable(self):
        equation = Equation(Variable("x"), Constant(1.0))
        assert equation.defined_variable() == "x"
        implicit = Equation(Variable("x") + Variable("y"), Constant(0.0), kind=KCL)
        assert implicit.defined_variable() is None

    def test_residual(self):
        equation = Equation(Variable("x"), Constant(3.0))
        assert evaluate(equation.residual(), {"x": 3.0}) == 0.0

    def test_solved_for_preserves_origin(self):
        equation = Equation(
            Variable("V"), 5000.0 * Variable("I"), kind=DIPOLE, name="dipole:R1"
        )
        solved = equation.solved_for("I")
        assert solved.origin == "dipole:R1"
        assert solved.defined_variable() == "I"
        assert evaluate(solved.rhs, {"V": 5.0}) == pytest.approx(0.001)

    def test_solved_for_unknown_term_raises(self):
        equation = Equation(Variable("x"), Constant(1.0))
        with pytest.raises(UnsolvableEquationError):
            equation.solved_for("zz")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Equation(Variable("x"), Constant(0.0), kind="bogus")

    def test_has_derivative_and_simplified(self):
        equation = Equation(Variable("i"), Constant(2.0) * Derivative(Variable("v")))
        assert equation.has_derivative()
        simplified = Equation(Variable("x"), Constant(1.0) * Variable("y")).simplified()
        assert simplified.rhs == Variable("y")
