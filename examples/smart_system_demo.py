#!/usr/bin/env python3
"""Smart-system demo: firmware observing an analog sensor front-end.

This is the scenario of the paper's Figure 1: a MIPS CPU runs a threshold
monitor that polls the ADC bridge, while the analog subsystem (the OA active
filter driven by a square wave) is simulated by the automatically generated
model.  The same platform is then re-run with the analog part co-simulated by
the reference Verilog-AMS engine, to show what the abstraction methodology
buys at the system level.

Run with:  python examples/smart_system_demo.py
"""

from __future__ import annotations

import time

from repro import AbstractionFlow
from repro.circuits import benchmark_by_name
from repro.sim import SquareWave
from repro.vp import SmartSystemPlatform, threshold_monitor_source

TIMESTEP = 50e-9
SIMULATED_TIME = 0.4e-3  # 0.4 ms of virtual time
CPU_CLOCK_HZ = 20e6


def run_platform(style: str, model, benchmark, firmware: str) -> None:
    platform = SmartSystemPlatform(
        cpu_clock_hz=CPU_CLOCK_HZ, analog_timestep=TIMESTEP, firmware=firmware
    )
    stimuli = benchmark.stimuli
    if style == "generated":
        platform.attach_analog_python(model, stimuli)
    else:
        platform.attach_analog_cosim(benchmark.circuit(), stimuli, benchmark.output_quantity)

    start = time.perf_counter()
    result = platform.run(SIMULATED_TIME)
    elapsed = time.perf_counter() - start

    print(f"--- analog integration: {style} ({result.analog_style}) ---")
    print(f"  wall-clock time     : {elapsed:.2f} s")
    print(f"  instructions        : {result.instructions}")
    print(f"  bus transactions    : {result.bus_transactions}")
    print(f"  analog samples      : {result.analog_samples}")
    print(f"  threshold crossings : {result.crossings_reported}")
    print(f"  UART output         : {result.uart_output!r}")
    print()


def main() -> None:
    # The analog device: the RC1 sensor front-end driven by a fast square
    # wave, so the firmware sees several threshold crossings.
    benchmark = benchmark_by_name("RC1")
    benchmark.stimuli["vin"] = SquareWave(amplitude=1.0, period=0.2e-3)
    model = AbstractionFlow(TIMESTEP).abstract(benchmark.circuit(), benchmark.output).model

    # Firmware: report crossings of a 300 mV threshold over the UART.
    firmware = threshold_monitor_source(threshold_millivolts=300)

    print("Smart-system virtual platform (MIPS + APB + UART + analog front-end)")
    print(f"simulated time: {SIMULATED_TIME * 1e3:.1f} ms, CPU at {CPU_CLOCK_HZ / 1e6:.0f} MHz\n")

    run_platform("generated", model, benchmark, firmware)
    run_platform("co-simulation", model, benchmark, firmware)

    print("Both runs execute the same firmware and observe the same crossings;")
    print("the abstracted analog model just gets there much faster.")


if __name__ == "__main__":
    main()
