#!/usr/bin/env python3
"""A 4-stop tour of the circuit zoo: corpus → oracle → fuzzing → shrinking.

Stop 1 — the **committed zoo**: every ``repro/zoo/corpus/*.va`` netlist is a
hand-written Verilog-AMS module (RC ladders, dividers, conditional-gain
stages...) exposed as a picklable circuit factory, so the whole corpus is
directly consumable by sweeps and fault campaigns.
Stop 2 — the **differential oracle**: one call pushes a netlist through
parse → build → abstract and runs the result on all five engines (python,
numpy batch, DE, TDF, and backward-Euler MNA on the unabstracted circuit),
asserting every pairwise NRMSE stays within 1e-9.
Stop 3 — **property-based fuzzing**: a seeded generator emits random-but-
valid conservative networks over the supported Verilog-AMS subset; every
case is reproducible from its ``(seed, index)`` pair alone.
Stop 4 — the **shrinker**: when an engine is (deliberately, here) broken,
the greedy minimiser strips the failing netlist down to a handful of
components and renders a self-documenting reproducer — the file you would
commit under ``tests/corpus/``.

Run with:  python examples/vams_zoo_tour.py
"""

from repro.sim import Trace, TraceSet
from repro.sweep import GridSpec, SweepRunner
from repro.sim import SquareWave
from repro.zoo import (
    OracleConfig,
    check_netlist,
    check_source,
    generate_netlist,
    render,
    shrink,
    write_reproducer,
    zoo_entries,
    zoo_factory,
)
from repro.zoo.oracle import ENGINE_RUNNERS


def stop_1_the_committed_zoo() -> None:
    print("=" * 72)
    print("Stop 1: the committed circuit zoo")
    print("=" * 72)
    for entry in zoo_entries():
        parameters = ", ".join(
            f"{name}={value:g}" for name, value in entry.parameters.items()
        )
        print(f"  {entry.name:18s} inputs={','.join(entry.inputs):10s} {parameters}")
    print("\nEvery entry is a picklable factory; a 2x2 grid sweep over the")
    print("divider's parsed `parameter real`s:")
    runner = SweepRunner(
        zoo_factory("divider"),
        "out",
        stimuli={"vin": SquareWave(period=4e-5)},
        timestep=50e-9,
    )
    result = runner.run(GridSpec(axes={"RTOP": [5e3, 10e3], "RBOT": [1e3, 2.2e3]}), 5e-5)
    for scenario, final in zip(result.scenarios, result.ensemble("V(out)")[:, -1]):
        print(f"  {scenario.label:30s} V(out) -> {final:+.4f}")


def stop_2_the_differential_oracle() -> None:
    print()
    print("=" * 72)
    print("Stop 2: the five-engine differential oracle")
    print("=" * 72)
    config = OracleConfig(duration=5e-5)
    for entry in zoo_entries()[:3]:
        verdict = check_source(entry.source, config, output=entry.output)
        print(f"  {entry.name:18s} {verdict.summary()}")


def stop_3_property_based_fuzzing() -> None:
    print()
    print("=" * 72)
    print("Stop 3: seeded netlist generation (repro-fuzz --seed 0)")
    print("=" * 72)
    netlist = generate_netlist(0, 3)
    print(f"case (seed=0, index=3): {len(netlist)} components, "
          f"{len(netlist.parameters())} parameters\n")
    print(render(netlist))
    verdict = check_netlist(netlist, OracleConfig(duration=2e-5))
    print(f"oracle: {verdict.summary()}")


def stop_4_the_shrinker() -> None:
    print()
    print("=" * 72)
    print("Stop 4: breaking an engine on purpose, then shrinking")
    print("=" * 72)

    def skewed_mna(model, circuit, stimuli, config):
        traces = ENGINE_RUNNERS["mna"](model, circuit, stimuli, config)
        quantity = model.outputs[0]
        skewed = Trace(quantity)
        for time, value in zip(traces[quantity].times, traces[quantity].values):
            skewed.append(float(time), float(value) * (1.0 + 1e-6))
        return TraceSet({quantity: skewed})

    config = OracleConfig(duration=2e-5)
    overrides = {"mna": skewed_mna}
    netlist = generate_netlist(0, 3)
    verdict = check_netlist(netlist, config, engine_overrides=overrides)
    print(f"with a skewed MNA engine: {verdict.summary()}")
    minimal, final = shrink(netlist, config, engine_overrides=overrides)
    print(f"shrunk {len(netlist)} -> {len(minimal)} components, still failing:")
    print(f"  {final.summary()}")
    path = write_reproducer(minimal, final, "/tmp/zoo_tour_corpus")
    print(f"reproducer written to {path} — promote it by copying into tests/corpus/")


def main() -> None:
    stop_1_the_committed_zoo()
    stop_2_the_differential_oracle()
    stop_3_property_based_fuzzing()
    stop_4_the_shrinker()


if __name__ == "__main__":
    main()
