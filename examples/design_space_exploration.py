#!/usr/bin/env python3
"""Design-space exploration: how the integration style scales with circuit size.

Sweeps the RC-ladder order and, for each size, measures the simulation time of
the conservative ELN model against the automatically abstracted model in each
target (TDF, DE, plain code).  This is the engineering question behind the
paper's Table II: when is it worth abstracting, and how does the advantage
evolve as the analog block grows?

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro.circuits import build_rc_filter
from repro.core import AbstractionFlow
from repro.sim import SquareWave, run_de_model, run_eln_model, run_python_model, run_tdf_model

TIMESTEP = 50e-9
SIMULATED_TIME = 0.5e-3
ORDERS = (1, 2, 4, 8, 16)


def measure(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def main() -> None:
    stimuli = {"vin": SquareWave(period=1e-3)}
    flow = AbstractionFlow(TIMESTEP)

    header = (
        f"{'order':>5s} {'abstraction (ms)':>17s} {'ELN (s)':>9s} {'TDF (s)':>9s} "
        f"{'DE (s)':>9s} {'code (s)':>9s} {'code vs ELN':>12s}"
    )
    print("RC-ladder design-space exploration "
          f"(dt = {TIMESTEP * 1e9:.0f} ns, {SIMULATED_TIME * 1e3:.1f} ms simulated)")
    print(header)
    print("-" * len(header))

    for order in ORDERS:
        circuit = build_rc_filter(order)
        start = time.perf_counter()
        report = flow.abstract(circuit, "out", name=f"rc{order}")
        abstraction_ms = (time.perf_counter() - start) * 1e3
        model = report.model

        eln_time = measure(
            lambda: run_eln_model(build_rc_filter(order), stimuli, SIMULATED_TIME, TIMESTEP, ["V(out)"])
        )
        tdf_time = measure(lambda: run_tdf_model(model, stimuli, SIMULATED_TIME))
        de_time = measure(lambda: run_de_model(model, stimuli, SIMULATED_TIME))
        code_time = measure(lambda: run_python_model(model, stimuli, SIMULATED_TIME))

        print(
            f"{order:5d} {abstraction_ms:17.1f} {eln_time:9.3f} {tdf_time:9.3f} "
            f"{de_time:9.3f} {code_time:9.3f} {eln_time / code_time:11.1f}x"
        )

    print()
    print("The abstraction pays for itself after a fraction of a millisecond of")
    print("simulated time on the small front-ends; for the larger ladders the")
    print("advantage narrows because the conservative solver amortises its cost")
    print("over vectorised linear algebra while the flat generated code grows")
    print("with the square of the retained state.")


if __name__ == "__main__":
    main()
