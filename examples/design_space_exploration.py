#!/usr/bin/env python3
"""Design-space exploration on the batch engine (``repro.sweep``).

The original version of this example hand-rolled a 5-point sweep: rebuild
the circuit, re-abstract, run one engine at a time.  The sweep subsystem
makes the same exploration declarative — a spec expands into scenarios, the
runner abstracts each one, groups structurally identical models, and
advances every group through the vectorized NumPy backend in bulk.

Two questions are answered below:

1. **Architecture sweep** — how does the RC-ladder order trade accuracy for
   simulation cost?  A grid over the order (each order is its own structure
   group) plus a resistance corner at every size.
2. **Tolerance sweep** — what does ±5 % R/C manufacturing scatter do to the
   response, and how much faster is the vectorized batch than running the
   same scenarios one by one?

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro.circuits import build_rc_filter
from repro.sim import SquareWave
from repro.sweep import GridSpec, MonteCarloSpec, SweepRunner

TIMESTEP = 50e-9
SIMULATED_TIME = 0.2e-3
ORDERS = (1, 2, 4, 8, 16)
MC_SAMPLES = 128

STIMULI = {"vin": SquareWave(period=1e-3)}


def architecture_sweep() -> None:
    """Grid over the ladder order × a resistance corner at each size."""
    spec = GridSpec(
        axes={"order": list(ORDERS), "resistance": [4.5e3, 5e3, 5.5e3]},
        base={"capacitance": 25e-9},
    )
    runner = SweepRunner(
        build_rc_filter, "out", stimuli=STIMULI, timestep=TIMESTEP
    )
    result = runner.run(spec, SIMULATED_TIME)

    print(f"Architecture sweep: {result.n_scenarios} scenarios, "
          f"{result.structure_groups} structure groups, "
          f"{result.timings['simulate']:.3f} s simulate "
          f"(+{result.timings['abstract']:.3f} s abstraction)")
    header = f"{'order':>5s} {'R (kΩ)':>8s} {'final V(out)':>13s}"
    print(header)
    print("-" * len(header))
    finals = result.final_values("V(out)")
    for scenario, final in zip(result.scenarios, finals):
        print(f"{scenario.params['order']:5d} "
              f"{scenario.params['resistance'] / 1e3:8.1f} {final:13.6f}")


def tolerance_sweep() -> None:
    """±5 % R/C Monte-Carlo: ensemble statistics and batch-vs-serial timing."""
    spec = MonteCarloSpec(
        nominal={"order": 2, "resistance": 5e3, "capacitance": 25e-9},
        tolerances={"resistance": 0.05, "capacitance": 0.05},
        samples=MC_SAMPLES,
        seed=2016,
    )
    vectorized = SweepRunner(
        build_rc_filter, "out", stimuli=STIMULI, timestep=TIMESTEP, backend="numpy"
    )
    scalar = SweepRunner(
        build_rc_filter, "out", stimuli=STIMULI, timestep=TIMESTEP, backend="python"
    )

    start = time.perf_counter()
    batch = vectorized.run(spec, SIMULATED_TIME)
    batch_time = time.perf_counter() - start
    start = time.perf_counter()
    serial = scalar.run(spec, SIMULATED_TIME)
    serial_time = time.perf_counter() - start

    stats = batch.summary()["V(out)"]
    band = batch.envelope("V(out)")
    print()
    print(f"Tolerance sweep: {MC_SAMPLES} Monte-Carlo scenarios "
          f"(±5% R, ±5% C, seed 2016)")
    print(f"  final V(out): mean {stats['mean']:.4f} V, σ {stats['std']:.4f} V, "
          f"range [{stats['min']:.4f}, {stats['max']:.4f}] V")
    print(f"  worst-case band at t_end: "
          f"{band['max'][-1] - band['min'][-1]:.4f} V wide")
    agree = abs(batch.ensemble("V(out)") - serial.ensemble("V(out)")).max()
    print(f"  vectorized batch: {batch_time:.3f} s   serial scalar: {serial_time:.3f} s "
          f"({serial_time / batch_time:.1f}x)   max deviation {agree:.2e}")


def main() -> None:
    print("RC-ladder design-space exploration "
          f"(dt = {TIMESTEP * 1e9:.0f} ns, {SIMULATED_TIME * 1e3:.1f} ms simulated)")
    print()
    architecture_sweep()
    tolerance_sweep()
    print()
    print("The batch engine changes the economics of exploration: the cost of")
    print("an extra scenario inside a structure group is one more lane in the")
    print("coefficient arrays, not one more Python simulation loop.")


if __name__ == "__main__":
    main()
