#!/usr/bin/env python3
"""A 3-stop tour of platform sweeps: spec → sweep → Table-III-style report.

Stop 1 — a **PlatformScenarioSpec** composes four axes declaratively:
analog parameter corners (any ``repro.sweep`` spec), analog integration
style, firmware variant, and stimulus family.
Stop 2 — one ``PlatformSweepRunner.run`` call drives every scenario through
a complete smart-system virtual platform (MIPS firmware + APB + UART + ADC
on the discrete-event kernel, with the chosen analog subsystem attached);
``workers=N`` fans the scenarios across processes with outcomes identical
to the serial loop.
Stop 3 — the result aggregates per-style wall time, speed-up versus the
baseline style (co-simulation when swept, otherwise the first style — here
``python``, so the heavier integrations show speed-ups below 1x),
instruction counts and cross-style NRMSE of the ADC stream into a markdown
**report** shaped like the paper's Table III.

Run with:  python examples/platform_sweep_tour.py
"""

from repro.circuits import build_rc_filter
from repro.sim import SquareWave
from repro.sweep import CornerSpec, PlatformScenarioSpec, PlatformSweepRunner
from repro.vp import averaging_monitor_source, threshold_monitor_source


def main() -> None:
    spec = PlatformScenarioSpec(                       # stop 1: the design space
        parameters=CornerSpec(
            nominal={"order": 1, "resistance": 5e3, "capacitance": 25e-9},
            corners={"resistance": (4.5e3, 5.5e3)},
        ),
        styles=("python", "de", "eln"),
        firmwares={
            "threshold": threshold_monitor_source(100),
            "averaging": averaging_monitor_source(),
        },
    )
    runner = PlatformSweepRunner(                      # stop 2: the sweep
        build_rc_filter,
        "out",
        {"vin": SquareWave(period=40e-6)},
        timestep=50e-9,
        workers=1,           # >1 fans platforms across processes, same results
    )
    result = runner.run(spec, duration=50e-6)
    print(result.to_markdown())                        # stop 3: the report


if __name__ == "__main__":
    main()
