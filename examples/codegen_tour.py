#!/usr/bin/env python3
"""Code-generation tour: from the Verilog-AMS active filter to every backend.

Reproduces qualitatively the paper's Figures 2, 6 and 7: the Verilog-AMS
description of the operational-amplifier active filter (Figure 2/8), the
signal-flow relations extracted for the output of interest (the "final tree"
of Figure 6 after the linear solution of Figure 7.a), and the generated C++
code (Figure 7.b), plus the SystemC-DE and SystemC-AMS/TDF variants.

Run with:  python examples/codegen_tour.py
"""

from __future__ import annotations

from repro import AbstractionFlow, parse_module
from repro.circuits import opamp_source
from repro.core.codegen import generate_all
from repro.vams import to_circuit

TIMESTEP = 50e-9


def main() -> None:
    source = opamp_source()
    print("=" * 78)
    print("Verilog-AMS input (paper Figure 2 / Figure 8.b)")
    print("=" * 78)
    print(source)

    module = parse_module(source)
    circuit = to_circuit(module)
    report = AbstractionFlow(TIMESTEP).abstract(circuit, "out", name="active_filter")

    print("=" * 78)
    print("Abstraction (paper Figure 4 flow, Figures 5/6 intermediate structures)")
    print("=" * 78)
    print(report.summary())
    print()
    print("Signal-flow relations extracted for V(out) (Figure 7.a after the solve):")
    for assignment in report.model.assignments:
        print(f"  {assignment}")
    print()

    artefacts = generate_all(report.model)
    for backend in ("cpp", "systemc_de", "systemc_tdf", "python"):
        generated = artefacts[backend]
        print("=" * 78)
        print(f"Generated {generated.language} ({generated.entity_name})")
        print("=" * 78)
        print(generated.source)
        print()


if __name__ == "__main__":
    main()
