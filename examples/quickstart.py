#!/usr/bin/env python3
"""Quickstart: abstract a Verilog-AMS RC filter and generate C++/SystemC code.

This walks the full flow of the paper on the simplest benchmark (RC1):

1. parse the Verilog-AMS conservative description;
2. run the abstraction methodology (acquisition, enrichment, assemble, solve)
   for the output of interest;
3. generate the C++, SystemC-DE, SystemC-AMS/TDF and executable Python models;
4. simulate the generated model against the reference AMS engine and report
   the NRMSE and the speed-up.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import AbstractionFlow, parse_module
from repro.circuits import rc_filter_source
from repro.core.codegen import generate_all
from repro.metrics import compare_traces
from repro.sim import SquareWave, run_python_model, run_reference_model
from repro.vams import to_circuit

TIMESTEP = 50e-9  # the paper's 50 ns timestep
SIMULATED_TIME = 2e-3  # 2 ms (scaled down from the paper's 100 ms)


def main() -> None:
    # 1. Parse the Verilog-AMS description.
    source = rc_filter_source(order=1)
    print("Verilog-AMS input:")
    print(source)
    module = parse_module(source)
    circuit = to_circuit(module)

    # 2. Abstract the conservative description for the output of interest.
    flow = AbstractionFlow(TIMESTEP)
    report = flow.abstract(circuit, "out", name="rc1")
    print(report.summary())
    print()
    print(report.model.describe())
    print()

    # 3. Generate every backend.
    artefacts = generate_all(report.model)
    for name, generated in artefacts.items():
        print(f"--- generated {generated.language} ({generated.line_count()} lines) ---")
    print()
    print(artefacts["cpp"].source)

    # 4. Compare the generated model against the reference AMS engine.
    stimuli = {"vin": SquareWave(amplitude=1.0, period=1e-3)}
    start = time.perf_counter()
    reference = run_reference_model(circuit, stimuli, SIMULATED_TIME, TIMESTEP, ["V(out)"])
    reference_time = time.perf_counter() - start

    start = time.perf_counter()
    generated = run_python_model(report.model, stimuli, SIMULATED_TIME)
    generated_time = time.perf_counter() - start

    error = compare_traces(reference["V(out)"], generated["V(out)"])
    print(f"reference (Verilog-AMS engine): {reference_time:8.3f} s")
    print(f"generated model               : {generated_time:8.3f} s")
    print(f"speed-up                      : {reference_time / generated_time:8.1f} x")
    print(f"NRMSE                         : {error:.3e}")


if __name__ == "__main__":
    main()
