#!/usr/bin/env python3
"""Regenerate the paper's result tables from the command line.

This is a thin wrapper over :mod:`repro.experiments.report` (also installed as
the ``repro-tables`` console script).  Examples::

    python examples/reproduce_tables.py --table 1
    python examples/reproduce_tables.py --table 3 --components RC1 OA
    REPRO_SIM_TIME_SCALE=1 python examples/reproduce_tables.py --table all

The default simulated-time scale (1/50 of the paper's durations) keeps the
full regeneration in the minutes range on a laptop; the reported speed-ups
and NRMSE values are what EXPERIMENTS.md records against the paper.
"""

from __future__ import annotations

import sys

from repro.experiments.report import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
