#!/usr/bin/env python3
"""A 4-stop tour of fault campaigns: universe → spec → campaign → verdicts.

Stop 1 — a **fault universe** mixes the two fault families: analog faults
are netlist transforms (a drifted resistor, an open feedback path) applied
*before* abstraction, so the faulty behaviour flows through every code
generation backend; digital faults are platform hooks (a stuck ADC bit, a
RAM upset, corrupted code) armed on the assembled virtual platform.
Stop 2 — a **FaultCampaignSpec** crosses the universe with activation times
and platform scenarios, always prepending one golden (fault-free) run.
Stop 3 — one ``FaultCampaignRunner.run`` call executes every experiment
through the platform-sweep multiprocessing fan-out, with crash capture: a
fault that takes the CPU down is an *outcome*, not an error.
Stop 4 — every fault gets a verdict — silent, trace-divergent,
firmware-detected, or crash — rolled up into coverage matrices and a
dictionary-style collapse of observationally equivalent faults.

Run with:  python examples/fault_campaign_tour.py
"""

from repro.circuits import rc_benchmark
from repro.fault import (
    AdcStuckBitFault,
    FaultCampaignRunner,
    FaultCampaignSpec,
    MemoryBitFlipFault,
    ParameterDriftFault,
    RegisterTransientFault,
    UartCorruptionFault,
    analog_fault_universe,
)
from repro.sim import SquareWave
from repro.sweep import PlatformScenarioSpec
from repro.vp import threshold_monitor_source


def main() -> None:
    bench = rc_benchmark(1)
    faults = [                                         # stop 1: the universe
        ParameterDriftFault("r1", 1.0 + 1e-9),  # negligible drift: silent
        *analog_fault_universe(bench.circuit()),  # open/short/drift per branch
        AdcStuckBitFault(bit=9, stuck_at=1),  # +512 mV on every sample read
        AdcStuckBitFault(bit=0, stuck_at=0),  # LSB stuck low
        RegisterTransientFault(register=17, bit=4),  # upset in $s1 (counter)
        MemoryBitFlipFault(bit=2),  # upset in the RAM crossing counter
        UartCorruptionFault(0x20),  # serial link flips the case bit
    ]
    spec = FaultCampaignSpec(                          # stop 2: the campaign
        faults=faults,
        activation_times=(60e-6,),
        scenarios=PlatformScenarioSpec(
            firmwares={"threshold": threshold_monitor_source(500)},
        ),
    )
    runner = FaultCampaignRunner(                      # stop 3: the execution
        bench.build,
        "out",
        {"vin": SquareWave(period=40e-6)},
        workers=1,           # >1 fans runs across processes, same verdicts
    )
    result = runner.run(spec, duration=1.2e-4)
    print(result.to_markdown())                        # stop 4: the verdicts


if __name__ == "__main__":
    main()
