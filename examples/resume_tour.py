#!/usr/bin/env python3
"""A 4-stop tour of durable campaigns: store → crash → resume → audit.

Stop 1 — a **RunStore** attached to a fault campaign commits every
completed run to disk the moment it finishes: one atomic JSON file per
run, filed under a SHA-256 digest of the run's *full inputs* (circuit
factory, parameters, integration style, firmware source, stimulus, seed,
fault spec).
Stop 2 — the campaign is **interrupted mid-flight** (``interrupt_after``
simulates the kill signal the real world provides for free); the store
keeps exactly the committed prefix.
Stop 3 — re-running the same spec with ``resume=True`` **loads** the
committed runs and executes only the remainder — and the verdicts,
coverage and reports come out bit-identical to a never-interrupted
campaign.
Stop 4 — the store is **auditable**: every record carries the pre-digest
input payload it was computed from.

Run with:  python examples/resume_tour.py
"""

import json
import tempfile

from repro.circuits import rc_benchmark
from repro.errors import CampaignInterrupted
from repro.fault import (
    AdcStuckBitFault,
    FaultCampaignRunner,
    FaultCampaignSpec,
    MemoryBitFlipFault,
    ParameterDriftFault,
    UartCorruptionFault,
)
from repro.sim import SquareWave
from repro.store import RunStore
from repro.sweep import PlatformScenarioSpec
from repro.vp import threshold_monitor_source

DURATION = 1.2e-4


def build_campaign() -> FaultCampaignSpec:
    return FaultCampaignSpec(
        faults=[
            ParameterDriftFault("r1", 2.0),
            AdcStuckBitFault(bit=9, stuck_at=1),
            MemoryBitFlipFault(bit=0),
            UartCorruptionFault(0x20),
        ],
        activation_times=(60e-6,),
        scenarios=PlatformScenarioSpec(
            firmwares={"threshold": threshold_monitor_source(500)}
        ),
    )


def runner(bench, **kwargs) -> FaultCampaignRunner:
    return FaultCampaignRunner(
        bench.build,
        bench.output,
        {name: SquareWave(period=4e-5) for name in bench.stimuli},
        **kwargs,
    )


def main() -> None:
    bench = rc_benchmark(1)
    spec = build_campaign()
    store_dir = tempfile.mkdtemp(prefix="repro-campaign-")

    # Stop 1+2: a durable campaign, killed after two committed runs.
    print(f"== campaign of {len(spec)} runs, store at {store_dir}")
    try:
        runner(bench, store=store_dir, interrupt_after=2).run(spec, DURATION)
        raise AssertionError("the interrupt budget should have fired")
    except CampaignInterrupted as interrupt:
        print(f"boom: {interrupt}")
    store = RunStore(store_dir)
    print(f"store survived with {len(store)}/{len(spec)} runs committed\n")

    # Stop 3: resume — only the missing runs execute.
    resumed = runner(bench, store=store_dir, resume=True).run(spec, DURATION)
    loaded = resumed.n_runs - resumed.executed_count
    print(f"== resumed: {resumed.executed_count} executed, {loaded} loaded")
    print(f"fault coverage: {resumed.coverage_text()} non-silent")

    # The proof: a fresh, never-interrupted campaign agrees bit for bit.
    pristine = runner(bench).run(spec, DURATION)
    assert resumed.fingerprints() == pristine.fingerprints()
    assert resumed.to_csv() == pristine.to_csv()
    print("resumed campaign is bit-identical to an uninterrupted one\n")

    # Stop 4: audit one record — the inputs that produced it ride along.
    key = store.keys()[0]
    payload = json.loads(store.path_for(key).read_text())
    print(f"== record {key[:16]}… was computed from:")
    print(json.dumps(payload["inputs"], indent=2, sort_keys=True)[:400], "…")


if __name__ == "__main__":
    main()
