#!/usr/bin/env python3
"""A 3-stop tour of ``repro.sweep``: grid → Monte-Carlo → report.

Stop 1 — a **grid** enumerates every R×C combination declaratively.
Stop 2 — a **Monte-Carlo** spec scatters ±5 % tolerance around the nominal
point with a seeded RNG (same seed, same scenarios, every time); adding the
two specs concatenates them into one mixed sweep.
Stop 3 — one ``SweepRunner.run`` call abstracts all scenarios, simulates
them as a single vectorized batch, and the result renders itself as a
markdown **report** with ensemble statistics.

Run with:  python examples/sweep_tour.py
"""

from repro.circuits import build_rc_filter
from repro.sim import SquareWave
from repro.sweep import GridSpec, MonteCarloSpec, SweepRunner


def main() -> None:
    grid = GridSpec(                                   # stop 1: systematic coverage
        axes={"resistance": [4e3, 5e3, 6e3], "capacitance": [20e-9, 25e-9]},
        base={"order": 1},
    )
    monte_carlo = MonteCarloSpec(                      # stop 2: statistical coverage
        nominal={"order": 1, "resistance": 5e3, "capacitance": 25e-9},
        tolerances={"resistance": 0.05, "capacitance": 0.05},
        samples=32,
        seed=42,
    )
    runner = SweepRunner(
        build_rc_filter,
        "out",
        stimuli={"vin": SquareWave(period=1e-3)},
        timestep=50e-9,
    )
    result = runner.run(grid + monte_carlo, duration=0.1e-3)
    print(result.to_markdown())                        # stop 3: the report


if __name__ == "__main__":
    main()
