"""repro — mixed-signal components in virtual platforms, reproduced in Python.

This library reproduces *"Integration of mixed-signal components into virtual
platforms for holistic simulation of smart systems"* (Fraccaroli, Lora, Vinco,
Quaglia, Fummi — DATE 2016): the automatic conversion of Verilog-AMS analog
models into discrete-event code and the automatic abstraction of conservative
(electrical network) descriptions into signal-flow models restricted to the
outputs of interest, together with every substrate the evaluation needs
(Verilog-AMS frontend, DE/TDF/ELN simulation kernels, a reference AMS engine,
a MIPS-based virtual platform and the benchmark circuits), a batch
engine (:mod:`repro.sweep`) that simulates whole parameter sweeps through a
vectorized NumPy backend, and a fault-injection subsystem
(:mod:`repro.fault`) that runs golden-referenced robustness campaigns across
the analog, digital and firmware layers at once.

Quick start::

    from repro import AbstractionFlow
    from repro.circuits import rc_benchmark

    bench = rc_benchmark(1)
    report = AbstractionFlow(timestep=50e-9).abstract(bench.circuit(), "out")
    print(report.model.describe())

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the paper-versus-measured results.
"""

from .core.flow import AbstractionFlow, AbstractionReport, abstract_circuit
from .core.signalflow import SignalFlowModel, convert_signal_flow
from .core.statespace import abstract_state_space
from .errors import ReproError
from .fault import FaultCampaignResult, FaultCampaignRunner, FaultCampaignSpec
from .network.circuit import Circuit
from .sweep import (
    CornerSpec,
    GridSpec,
    MonteCarloSpec,
    SweepResult,
    SweepRunner,
    SweepSpec,
)
from .vams.parser import parse_module, parse_source

__version__ = "1.5.0"

__all__ = [
    "AbstractionFlow",
    "AbstractionReport",
    "Circuit",
    "CornerSpec",
    "FaultCampaignResult",
    "FaultCampaignRunner",
    "FaultCampaignSpec",
    "GridSpec",
    "MonteCarloSpec",
    "ReproError",
    "SignalFlowModel",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "__version__",
    "abstract_circuit",
    "abstract_state_space",
    "convert_signal_flow",
    "parse_module",
    "parse_source",
]
