"""Benchmark circuits of the paper's evaluation (RCn, 2IN, OA)."""

from .library import (
    BenchmarkCircuit,
    benchmark_by_name,
    opamp_benchmark,
    paper_benchmarks,
    rc_benchmark,
    two_input_benchmark,
)
from .opamp import build_opamp, cutoff_frequency, dc_gain, opamp_source
from .rc_filter import build_rc_filter, rc_filter_source, rc_time_constant
from .two_input import build_two_input, ideal_gains, two_input_source

__all__ = [
    "BenchmarkCircuit",
    "benchmark_by_name",
    "build_opamp",
    "build_rc_filter",
    "build_two_input",
    "cutoff_frequency",
    "dc_gain",
    "ideal_gains",
    "opamp_benchmark",
    "opamp_source",
    "paper_benchmarks",
    "rc_benchmark",
    "rc_filter_source",
    "rc_time_constant",
    "two_input_benchmark",
    "two_input_source",
]
