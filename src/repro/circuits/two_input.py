"""The 2IN benchmark: a two-input summing amplifier (paper Figure 8.a).

The circuit sums two input voltages through R1 = 3 kΩ and R2 = 14 kΩ into the
virtual-ground node of an inverting amplifier whose feedback resistor is
R3 = 10 kΩ.  The amplifier itself is an ideal high-gain voltage-controlled
voltage source, so the circuit is a purely resistive conservative network:

    V(out) ≈ -(R3/R1) * V(in1) - (R3/R2) * V(in2)
"""

from __future__ import annotations

from ..network.circuit import Circuit
from ..network.components import VCVS

#: Paper parameter values (Section V.A).
DEFAULT_R1 = 3e3
DEFAULT_R2 = 14e3
DEFAULT_R3 = 10e3
#: Open-loop gain of the ideal amplifier stage.
DEFAULT_GAIN = 1e5


def two_input_source(
    r1: float = DEFAULT_R1,
    r2: float = DEFAULT_R2,
    r3: float = DEFAULT_R3,
    gain: float = DEFAULT_GAIN,
) -> str:
    """Return the Verilog-AMS description of the two-input summing amplifier."""
    return f"""`include "disciplines.vams"

// Two-input summing amplifier (paper Figure 8.a, the 2IN benchmark).
module two_input(in1, in2, out);
  input in1, in2;
  output out;
  electrical in1, in2, out, sum, gnd;
  ground gnd;
  parameter real R1 = {r1:g};
  parameter real R2 = {r2:g};
  parameter real R3 = {r3:g};
  parameter real A = {gain:g};
  branch (in1, sum) rb1;
  branch (in2, sum) rb2;
  branch (sum, out) rb3;
  branch (out, gnd) amp;
  analog begin
    V(rb1) <+ R1 * I(rb1);
    V(rb2) <+ R2 * I(rb2);
    V(rb3) <+ R3 * I(rb3);
    V(amp) <+ -A * V(sum, gnd);
  end
endmodule
"""


def build_two_input(
    r1: float = DEFAULT_R1,
    r2: float = DEFAULT_R2,
    r3: float = DEFAULT_R3,
    gain: float = DEFAULT_GAIN,
) -> Circuit:
    """Build the 2IN netlist programmatically."""
    circuit = Circuit("two_input")
    circuit.add_voltage_source("in1", "gnd", input_signal="in1", name="Vsrc_in1")
    circuit.add_voltage_source("in2", "gnd", input_signal="in2", name="Vsrc_in2")
    circuit.add_resistor("in1", "sum", r1, name="rb1")
    circuit.add_resistor("in2", "sum", r2, name="rb2")
    circuit.add_resistor("sum", "out", r3, name="rb3")
    circuit.add(
        VCVS(-gain, control_positive="sum", control_negative="gnd"),
        "out",
        "gnd",
        name="amp",
    )
    return circuit


def ideal_gains(
    r1: float = DEFAULT_R1,
    r2: float = DEFAULT_R2,
    r3: float = DEFAULT_R3,
) -> tuple[float, float]:
    """Return the ideal (infinite-gain) DC gains from (in1, in2) to the output."""
    return (-r3 / r1, -r3 / r2)
