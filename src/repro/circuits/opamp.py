"""The OA benchmark: an operational-amplifier active filter (paper Figure 8.b).

The operational amplifier is the classic three-element macromodel — input
resistance ``Rin``, voltage-controlled gain stage and output resistance
``Rout`` — wired as an inverting first-order active low-pass filter: the
input resistor ``R1`` feeds the virtual-ground node and the feedback network
is ``R2`` in parallel with ``C1``.  With the paper's values (R1 = 400 Ω,
R2 = 1.6 kΩ, C1 = 40 nF, Rin = 1 MΩ, Rout = 20 Ω) the DC gain is −R2/R1 = −4
and the cut-off frequency is ``1/(2π·R2·C1)`` ≈ 2.5 kHz.
"""

from __future__ import annotations

import math

from ..network.circuit import Circuit
from ..network.components import VCVS

#: Paper parameter values (Section V.A).
DEFAULT_R1 = 400.0
DEFAULT_R2 = 1.6e3
DEFAULT_C1 = 40e-9
DEFAULT_RIN = 1e6
DEFAULT_ROUT = 20.0
#: Open-loop gain of the amplifier stage.
DEFAULT_GAIN = 1e5


def opamp_source(
    r1: float = DEFAULT_R1,
    r2: float = DEFAULT_R2,
    c1: float = DEFAULT_C1,
    rin: float = DEFAULT_RIN,
    rout: float = DEFAULT_ROUT,
    gain: float = DEFAULT_GAIN,
) -> str:
    """Return the Verilog-AMS description of the active filter (Figure 2/8.b)."""
    return f"""`include "disciplines.vams"

// Operational-amplifier active filter (paper Figures 2 and 8.b, the OA benchmark).
module opamp_filter(vin, out);
  input vin;
  output out;
  electrical vin, out, inn, oa, gnd;
  ground gnd;
  parameter real R1 = {r1:g};
  parameter real R2 = {r2:g};
  parameter real C1 = {c1:g};
  parameter real Rin = {rin:g};
  parameter real Rout = {rout:g};
  parameter real A = {gain:g};
  branch (vin, inn) rb1;
  branch (out, inn) rb2;
  branch (out, inn) cb1;
  branch (inn, gnd) rbin;
  branch (oa, gnd) stage;
  branch (oa, out) rbout;
  analog begin
    V(rb1) <+ R1 * I(rb1);
    V(rb2) <+ R2 * I(rb2);
    I(cb1) <+ C1 * ddt(V(cb1));
    V(rbin) <+ Rin * I(rbin);
    V(stage) <+ -A * V(inn, gnd);
    V(rbout) <+ Rout * I(rbout);
  end
endmodule
"""


def build_opamp(
    r1: float = DEFAULT_R1,
    r2: float = DEFAULT_R2,
    c1: float = DEFAULT_C1,
    rin: float = DEFAULT_RIN,
    rout: float = DEFAULT_ROUT,
    gain: float = DEFAULT_GAIN,
) -> Circuit:
    """Build the OA netlist programmatically."""
    circuit = Circuit("opamp_filter")
    circuit.add_voltage_source("vin", "gnd", input_signal="vin", name="Vsrc_vin")
    circuit.add_resistor("vin", "inn", r1, name="rb1")
    circuit.add_resistor("out", "inn", r2, name="rb2")
    circuit.add_capacitor("out", "inn", c1, name="cb1")
    circuit.add_resistor("inn", "gnd", rin, name="rbin")
    circuit.add(
        VCVS(-gain, control_positive="inn", control_negative="gnd"),
        "oa",
        "gnd",
        name="stage",
    )
    circuit.add_resistor("oa", "out", rout, name="rbout")
    return circuit


def dc_gain(r1: float = DEFAULT_R1, r2: float = DEFAULT_R2) -> float:
    """Ideal low-frequency gain of the inverting active filter."""
    return -r2 / r1


def cutoff_frequency(r2: float = DEFAULT_R2, c1: float = DEFAULT_C1) -> float:
    """-3 dB cut-off frequency of the filter in hertz."""
    return 1.0 / (2.0 * math.pi * r2 * c1)
