"""The RCn benchmark: a general n-order RC low-pass filter.

The paper builds RCn "by cascading n RC stages" with R = 5 kΩ and C = 25 nF
(Section V.A); RC1 and RC20 are the instances used in Tables I-III.  The
circuit is provided both as generated Verilog-AMS source (exercising the
frontend) and as a programmatic netlist.
"""

from __future__ import annotations

from ..network.circuit import Circuit

#: Paper parameter values.
DEFAULT_RESISTANCE = 5e3
DEFAULT_CAPACITANCE = 25e-9


def rc_filter_source(
    order: int,
    resistance: float = DEFAULT_RESISTANCE,
    capacitance: float = DEFAULT_CAPACITANCE,
) -> str:
    """Return the Verilog-AMS description of an ``order``-stage RC filter."""
    if order < 1:
        raise ValueError("the filter order must be at least 1")
    nodes = ["vin"] + [f"n{i}" for i in range(1, order + 1)]
    internal = ", ".join(nodes[1:-1]) if order > 1 else ""
    lines = [
        "`include \"disciplines.vams\"",
        "",
        f"// {order}-order RC low-pass filter (paper Section V.A, RCn benchmark).",
        f"module rc{order}(vin, out);",
        "  input vin;",
        "  output out;",
        "  electrical vin, out, gnd;",
        "  ground gnd;",
        f"  parameter real R = {resistance:g};",
        f"  parameter real C = {capacitance:g};",
    ]
    if internal:
        lines.append(f"  electrical {internal};")
    for index in range(1, order + 1):
        previous = nodes[index - 1]
        current = "out" if index == order else nodes[index]
        lines.append(f"  branch ({previous}, {current}) r{index};")
        lines.append(f"  branch ({current}, gnd) c{index};")
    lines.append("  analog begin")
    for index in range(1, order + 1):
        lines.append(f"    V(r{index}) <+ R * I(r{index});")
        lines.append(f"    I(c{index}) <+ C * ddt(V(c{index}));")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def build_rc_filter(
    order: int,
    resistance: float = DEFAULT_RESISTANCE,
    capacitance: float = DEFAULT_CAPACITANCE,
) -> Circuit:
    """Build the RCn netlist programmatically (equivalent to parsing the source)."""
    if order < 1:
        raise ValueError("the filter order must be at least 1")
    circuit = Circuit(f"rc{order}")
    circuit.add_voltage_source("vin", "gnd", input_signal="vin", name="Vsrc_vin")
    previous = "vin"
    for index in range(1, order + 1):
        node = "out" if index == order else f"n{index}"
        circuit.add_resistor(previous, node, resistance, name=f"r{index}")
        circuit.add_capacitor(node, "gnd", capacitance, name=f"c{index}")
        previous = node
    return circuit


def rc_time_constant(
    order: int,
    resistance: float = DEFAULT_RESISTANCE,
    capacitance: float = DEFAULT_CAPACITANCE,
) -> float:
    """A rough dominant time constant of the cascade (useful for test tolerances)."""
    return order * resistance * capacitance
