"""The benchmark suite: the four circuits of the paper's evaluation.

Each :class:`BenchmarkCircuit` bundles everything the experiments need: the
Verilog-AMS source, the programmatic netlist, the output of interest, and the
stimuli used to drive the inputs (the paper's square-wave generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from ..network.circuit import Circuit, canonical_quantity
from ..sim.sources import SquareWave
from .opamp import build_opamp, opamp_source
from .rc_filter import build_rc_filter, rc_filter_source
from .two_input import build_two_input, two_input_source


@dataclass
class BenchmarkCircuit:
    """One benchmark component of the paper's evaluation (Section V.A)."""

    name: str
    description: str
    vams_source: str
    build: Callable[[], Circuit]
    output: str
    stimuli: dict[str, Callable[[float], float]] = field(default_factory=dict)

    def circuit(self) -> Circuit:
        """Build a fresh netlist instance."""
        return self.build()

    @property
    def output_quantity(self) -> str:
        """Canonical name of the observed output quantity."""
        return canonical_quantity(self.output)


def _square(amplitude: float = 1.0, period: float = 1e-3, duty: float = 0.5) -> SquareWave:
    return SquareWave(amplitude=amplitude, period=period, duty=duty)


def two_input_benchmark() -> BenchmarkCircuit:
    """The 2IN summing amplifier driven by two square waves."""
    return BenchmarkCircuit(
        name="2IN",
        description="two-input summing amplifier (Figure 8.a)",
        vams_source=two_input_source(),
        build=build_two_input,
        output="out",
        stimuli={
            "in1": _square(amplitude=1.0, period=1e-3, duty=0.5),
            "in2": _square(amplitude=0.5, period=1e-3, duty=0.3),
        },
    )


def rc_benchmark(order: int) -> BenchmarkCircuit:
    """The RCn cascade filter driven by the paper's square wave."""
    return BenchmarkCircuit(
        name=f"RC{order}",
        description=f"{order}-order RC low-pass filter",
        vams_source=rc_filter_source(order),
        # partial (not a lambda): picklable for multiprocess platform sweeps,
        # and still accepts resistance/capacitance overrides for sweeps.
        build=partial(build_rc_filter, order),
        output="out",
        stimuli={"vin": _square()},
    )


def opamp_benchmark() -> BenchmarkCircuit:
    """The OA operational-amplifier active filter driven by the square wave."""
    return BenchmarkCircuit(
        name="OA",
        description="operational-amplifier active filter (Figure 8.b)",
        vams_source=opamp_source(),
        build=build_opamp,
        output="out",
        stimuli={"vin": _square()},
    )


def paper_benchmarks() -> list[BenchmarkCircuit]:
    """The four components of Tables I-III, in the paper's row order."""
    return [
        two_input_benchmark(),
        rc_benchmark(1),
        rc_benchmark(20),
        opamp_benchmark(),
    ]


def benchmark_by_name(name: str) -> BenchmarkCircuit:
    """Look a benchmark up by its table name (``"2IN"``, ``"RC1"``, ``"RC20"``, ``"OA"``).

    ``RC<n>`` is accepted for any positive ``n``.
    """
    upper = name.upper()
    if upper == "2IN":
        return two_input_benchmark()
    if upper == "OA":
        return opamp_benchmark()
    if upper.startswith("RC"):
        order = int(upper[2:])
        return rc_benchmark(order)
    raise KeyError(f"unknown benchmark circuit {name!r}")
