"""Step 3b — Solution of the linear equation(s) (paper Section IV.C, Figure 7).

The tree produced by the assemble step still contains un-delayed occurrences
of the selected unknowns on the right-hand sides ("occurrences of the left
value on the right side of the equation").  Interpreting the ``=`` sign as an
assignment would introduce a spurious one-step delay, so these occurrences
must be removed by solving the relations symbolically — the paper quotes an
O(|N|³) cost for this, i.e. Gaussian elimination, which is what
:func:`repro.expr.linear.solve_linear_system` performs.

After the solve, every selected quantity is expressed explicitly in terms of
inputs and previous-step values only, and the result is packaged as a
:class:`~repro.core.signalflow.SignalFlowModel`.
"""

from __future__ import annotations

from ..errors import AbstractionError, NonLinearExpressionError
from ..expr.linear import solve_affine_system, solve_linear_system
from ..expr.simplify import simplify
from .assemble import AssembledModel
from .enrichment import EnrichmentResult
from .signalflow import Assignment, SignalFlowModel


def to_signal_flow(
    assembled: AssembledModel,
    enrichment: EnrichmentResult,
    name: str,
    timestep: float,
    inputs: list[str] | None = None,
    initial_state: dict[str, float] | None = None,
) -> SignalFlowModel:
    """Solve the assembled relations and build the signal-flow model.

    Parameters
    ----------
    assembled:
        Result of :class:`repro.core.assemble.Assembler`.
    enrichment:
        The enrichment result the assembly was computed from.
    name:
        Name given to the generated model.
    timestep:
        The fixed timestep the model is generated for (must match the
        discretisation used during enrichment).
    inputs:
        Stimulus names; defaults to the ones recorded during acquisition.
    initial_state:
        Optional initial values ``X0`` for the state variables.
    """
    unknowns = list(assembled.order)
    if not unknowns:
        raise AbstractionError("the assembled model is empty")

    try:
        # Fast path: every coefficient is numeric (parameters known at
        # abstraction time), so the elimination is done with numbers and the
        # generated expressions stay compact.
        solved = solve_affine_system(assembled.resolutions, unknowns)
    except NonLinearExpressionError:
        # Symbolic parameters: fall back to expression-valued Gaussian
        # elimination (slower and bulkier, but general).
        try:
            solved = solve_linear_system(assembled.resolutions, unknowns)
        except Exception as exc:
            raise AbstractionError(
                f"could not solve the assembled linear system for {name!r}: {exc}"
            ) from exc
    except Exception as exc:
        raise AbstractionError(
            f"could not solve the assembled linear system for {name!r}: {exc}"
        ) from exc

    assignments = [Assignment(target, simplify(solved[target])) for target in unknowns]

    states: set[str] = set()
    for assignment in assignments:
        states |= assignment.expression.previous_values()

    # Only keep assignments that contribute to the outputs or to a state
    # update; everything else was needed during elimination but is dead code
    # in the generated model.
    needed = set(assembled.outputs) | states
    kept = [a for a in assignments if a.target in needed]

    model = SignalFlowModel(
        name=name,
        inputs=list(inputs if inputs is not None else enrichment.inputs),
        outputs=list(assembled.outputs),
        assignments=kept,
        state_variables=sorted(states),
        initial_state=dict(initial_state or {}),
        timestep=timestep,
        source="conservative abstraction (acquisition/enrichment/assemble/solve)",
    )
    model.validate()
    return model
