"""Signal-flow models: the output of the abstraction methodology.

A :class:`SignalFlowModel` is the executable, discrete-time form the paper
maps conservative descriptions onto: an ordered list of assignments computing
the quantities of interest from the inputs ``U`` and from state variables
(previous-step values ``X`` and integral accumulators), with no energy
conservation left to solve at run time.  It is the single intermediate
representation consumed by every code generator (C++, SystemC-DE,
SystemC-AMS/TDF and the executable Python backend).

The module also implements the *direct conversion* path of the paper's
Section III.A: Verilog-AMS descriptions that are already signal flow are
translated statement by statement, preserving their original order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..errors import AbstractionError
from ..expr.ast import Conditional, Constant, Expr, Variable, substitute
from ..expr.discretize import Discretizer
from ..expr.evaluate import evaluate
from ..expr.simplify import simplify
from ..vams.ast import (
    INPUT,
    OUTPUT,
    Assignment as VamsAssignment,
    Block,
    Contribution,
    IfStatement,
    VamsModule,
)
from ..vams.classify import classify_module

#: Name bound to the absolute simulation time in generated models.
TIME_VARIABLE = "$abstime"


@dataclass
class Assignment:
    """One assignment ``target := expression`` of a signal-flow model."""

    target: str
    expression: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expression}"


@dataclass
class SignalFlowModel:
    """A discrete-time signal-flow model executed at a fixed timestep.

    Attributes
    ----------
    name:
        Model identifier, used to name generated classes/modules.
    inputs:
        External stimulus names, in declaration order.
    outputs:
        Names of the quantities of interest (e.g. ``"V(out)"``).
    assignments:
        Ordered assignments evaluated once per timestep.
    state_variables:
        Names whose previous-step value (``prev(name)``) is referenced; their
        freshly computed value is latched at the end of every step.
    initial_state:
        Initial values ``X0`` of the state variables (missing entries are 0).
    timestep:
        The fixed execution timestep the model was generated for.
    source:
        Free-form description of how the model was obtained (for reports).
    """

    name: str
    inputs: list[str]
    outputs: list[str]
    assignments: list[Assignment]
    state_variables: list[str] = field(default_factory=list)
    initial_state: dict[str, float] = field(default_factory=dict)
    timestep: float = 1e-6
    source: str = "abstraction"

    # -- structural queries ------------------------------------------------------------
    def assignment_targets(self) -> list[str]:
        """Targets in evaluation order."""
        return [assignment.target for assignment in self.assignments]

    def referenced_states(self) -> set[str]:
        """Every name referenced through a ``prev(...)`` node."""
        states: set[str] = set()
        for assignment in self.assignments:
            states |= assignment.expression.previous_values()
        return states

    def validate(self) -> None:
        """Check internal consistency of the model.

        Raises
        ------
        AbstractionError
            If an assignment references a name that is neither an input, the
            time variable, a state nor an earlier assignment target, or if a
            state variable is never computed.
        """
        known: set[str] = set(self.inputs) | {TIME_VARIABLE}
        targets = set(self.assignment_targets())
        for assignment in self.assignments:
            for name in assignment.expression.variables():
                if name in known or name in targets:
                    continue
                raise AbstractionError(
                    f"assignment {assignment.target!r} references the unknown "
                    f"quantity {name!r}"
                )
            known.add(assignment.target)
        for state in self.referenced_states():
            if state not in targets and state not in self.inputs:
                raise AbstractionError(
                    f"state variable {state!r} is referenced but never computed"
                )
        for output in self.outputs:
            if output not in targets and output not in self.inputs:
                raise AbstractionError(f"output {output!r} is never computed")

    # -- execution ------------------------------------------------------------------------
    def create_state(self) -> dict[str, float]:
        """Return a fresh state dictionary initialised to ``X0``."""
        state = {name: 0.0 for name in self.state_variables}
        for name, value in self.initial_state.items():
            state[name] = float(value)
        return state

    def step(
        self,
        inputs: Mapping[str, float],
        state: dict[str, float],
        time: float = 0.0,
    ) -> dict[str, float]:
        """Evaluate one timestep (interpreted).

        The returned dictionary holds every computed quantity; ``state`` is
        updated in place with the new previous-step values.  Code generated by
        :mod:`repro.core.codegen` performs exactly this computation without
        the interpretation overhead.
        """
        env: dict[str, float] = dict(inputs)
        env[TIME_VARIABLE] = time
        for assignment in self.assignments:
            env[assignment.target] = evaluate(
                assignment.expression, env, previous=state
            )
        for name in self.state_variables:
            if name in env:
                state[name] = env[name]
        return env

    def output_values(self, env: Mapping[str, float]) -> dict[str, float]:
        """Extract the output quantities from a step environment."""
        return {name: env[name] for name in self.outputs}

    def run(
        self,
        stimuli: Mapping[str, Callable[[float], float]],
        duration: float,
        record: list[str] | None = None,
    ) -> "SignalFlowTrace":
        """Run the model standalone (interpreted) and record waveforms."""
        record = record or list(self.outputs)
        steps = int(round(duration / self.timestep))
        times = np.arange(1, steps + 1) * self.timestep
        traces = {name: np.zeros(steps) for name in record}
        state = self.create_state()
        for index, time in enumerate(times):
            inputs = {name: stimuli[name](time) for name in self.inputs}
            env = self.step(inputs, state, time)
            for name in record:
                traces[name][index] = env[name]
        return SignalFlowTrace(times, traces)

    # -- reporting -------------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary of the model (used by examples and reports)."""
        lines = [
            f"signal-flow model {self.name!r}",
            f"  inputs : {', '.join(self.inputs) or '(none)'}",
            f"  outputs: {', '.join(self.outputs)}",
            f"  states : {', '.join(self.state_variables) or '(none)'}",
            f"  dt     : {self.timestep:g} s",
            "  assignments:",
        ]
        lines.extend(f"    {assignment}" for assignment in self.assignments)
        return "\n".join(lines)


@dataclass
class SignalFlowTrace:
    """Waveforms recorded by :meth:`SignalFlowModel.run`."""

    times: np.ndarray
    values: dict[str, np.ndarray]

    def waveform(self, name: str) -> np.ndarray:
        """Return the samples recorded for ``name``."""
        return self.values[name]


# ---------------------------------------------------------------------------------
# Direct conversion of signal-flow Verilog-AMS descriptions (paper Section III.A)
# ---------------------------------------------------------------------------------
def _canonical_target(contribution: Contribution, ground: str) -> str:
    access = contribution.target
    if access.negative is None or access.negative == ground:
        return f"{access.kind}({access.positive})"
    return f"{access.kind}({access.positive},{access.negative})"


def _normalise_port_accesses(expression: Expr, module: VamsModule, ground: str) -> Expr:
    """Rewrite ``V(port)`` accesses of input ports into plain input variables."""
    mapping: dict[str, Expr] = {}
    for port in module.ports:
        if port.direction == INPUT:
            mapping[f"V({port.name})"] = Variable(port.name)
            mapping[f"V({port.name},{ground})"] = Variable(port.name)
    for name, value in module.parameter_values().items():
        mapping[name] = Constant(value)
    return substitute(expression, mapping)


def convert_signal_flow(
    module: VamsModule,
    timestep: float,
    method: str = "backward_euler",
) -> SignalFlowModel:
    """Convert a signal-flow Verilog-AMS module into a :class:`SignalFlowModel`.

    The conversion preserves the original statement order (paper Section
    III.C: "writing the translated equations in the same order as their
    original counterparts appear").  ``if``/``else`` statements whose branches
    assign the same targets are converted into conditional expressions.
    """
    classification = classify_module(module)
    if classification.is_conservative and not classification.is_signal_flow:
        raise AbstractionError(
            f"module {module.name!r} is a conservative description; run the "
            "abstraction methodology instead of the direct conversion"
        )
    ground = "gnd"
    discretizer = Discretizer(timestep, method)
    assignments: list[Assignment] = []

    def convert_statement(statement) -> list[Assignment]:
        if isinstance(statement, Contribution):
            target = _canonical_target(statement, ground)
            expression = _normalise_port_accesses(statement.expression, module, ground)
            result = discretizer.discretize(expression)
            converted = [
                Assignment(name, update) for name, update in result.integrator_updates.items()
            ]
            converted.append(Assignment(target, simplify(result.expression)))
            return converted
        if isinstance(statement, VamsAssignment):
            expression = _normalise_port_accesses(statement.expression, module, ground)
            result = discretizer.discretize(expression)
            converted = [
                Assignment(name, update) for name, update in result.integrator_updates.items()
            ]
            converted.append(Assignment(statement.name, simplify(result.expression)))
            return converted
        if isinstance(statement, Block):
            converted = []
            for inner in statement.statements:
                converted.extend(convert_statement(inner))
            return converted
        if isinstance(statement, IfStatement):
            return _convert_conditional(statement)
        raise AbstractionError(
            f"unsupported analog statement {type(statement).__name__} in "
            "signal-flow conversion"
        )

    def _convert_conditional(statement: IfStatement) -> list[Assignment]:
        condition = _normalise_port_accesses(statement.condition, module, ground)
        then_assignments = []
        for inner in statement.then_branch:
            then_assignments.extend(convert_statement(inner))
        else_assignments = []
        for inner in statement.else_branch:
            else_assignments.extend(convert_statement(inner))
        then_map = {a.target: a.expression for a in then_assignments}
        else_map = {a.target: a.expression for a in else_assignments}
        converted: list[Assignment] = []
        for target in dict.fromkeys(list(then_map) + list(else_map)):
            then_expr = then_map.get(target, Variable(target))
            else_expr = else_map.get(target, Variable(target))
            converted.append(
                Assignment(target, simplify(Conditional(condition, then_expr, else_expr)))
            )
        return converted

    for statement in module.analog:
        assignments.extend(convert_statement(statement))

    inputs = [port.name for port in module.ports if port.direction == INPUT]
    outputs = [
        f"V({port.name})"
        for port in module.ports
        if port.direction == OUTPUT and any(a.target == f"V({port.name})" for a in assignments)
    ]
    if not outputs:
        outputs = [assignments[-1].target] if assignments else []

    states: set[str] = set()
    for assignment in assignments:
        states |= assignment.expression.previous_values()

    model = SignalFlowModel(
        name=module.name,
        inputs=inputs,
        outputs=outputs,
        assignments=assignments,
        state_variables=sorted(states),
        timestep=timestep,
        source="direct signal-flow conversion",
    )
    model.validate()
    return model
