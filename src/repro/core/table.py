"""The equation multimap ("hash table") shared by the abstraction steps.

Step 1 of the methodology stores the dipole equations "in an optimized data
structure, i.e. a Multimap, with average-case insertion time O(1)"; step 2
enriches it with Kirchhoff equations and with every equation re-solved for
every term, chaining derived equations to their origin so that an entire
equivalence class of linearly dependent relations can be disabled at once
(paper Figure 5).  :class:`EquationTable` is that structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..expr.equation import Equation


@dataclass
class TableEntry:
    """One equation stored in the table, with its enable flag.

    ``origin`` identifies the equivalence class: every equation derived by
    re-solving the same source relation shares the origin of that relation,
    so using any member of the class "consumes" the underlying physical
    constraint and the whole class must be disabled (``element.disable()`` in
    Algorithm 2 of the paper).
    """

    equation: Equation
    enabled: bool = True

    @property
    def origin(self) -> str:
        return self.equation.origin or self.equation.name

    @property
    def defined_variable(self) -> str | None:
        return self.equation.defined_variable()


class EquationTable:
    """Multimap from defined variable name to candidate defining equations."""

    def __init__(self) -> None:
        self._by_variable: dict[str, list[TableEntry]] = {}
        self._all: list[TableEntry] = []
        self._disabled_origins: set[str] = set()

    # -- insertion -----------------------------------------------------------------
    def insert(self, equation: Equation) -> TableEntry:
        """Insert an equation; it is indexed by its defined variable, if any."""
        entry = TableEntry(equation)
        self._all.append(entry)
        variable = equation.defined_variable()
        if variable is not None:
            self._by_variable.setdefault(variable, []).append(entry)
        return entry

    def extend(self, equations: list[Equation]) -> None:
        """Insert several equations."""
        for equation in equations:
            self.insert(equation)

    # -- lookup --------------------------------------------------------------------
    def candidates(self, variable: str, enabled_only: bool = True) -> list[TableEntry]:
        """Return the equations that define ``variable`` (optionally only enabled ones)."""
        entries = self._by_variable.get(variable, [])
        if not enabled_only:
            return list(entries)
        return [
            entry
            for entry in entries
            if entry.enabled and entry.origin not in self._disabled_origins
        ]

    def defined_variables(self) -> list[str]:
        """Every variable for which at least one defining equation exists."""
        return list(self._by_variable)

    def equations(self) -> list[Equation]:
        """Every stored equation, in insertion order."""
        return [entry.equation for entry in self._all]

    def origins(self) -> set[str]:
        """The set of equivalence-class identifiers present in the table."""
        return {entry.origin for entry in self._all}

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._all)

    # -- equivalence classes -----------------------------------------------------------
    def disable_origin(self, origin: str) -> None:
        """Disable the whole equivalence class derived from ``origin``."""
        self._disabled_origins.add(origin)

    def enable_origin(self, origin: str) -> None:
        """Re-enable a previously disabled equivalence class (used by backtracking)."""
        self._disabled_origins.discard(origin)

    def is_origin_disabled(self, origin: str) -> bool:
        """Return whether the equivalence class ``origin`` is currently disabled."""
        return origin in self._disabled_origins

    def disabled_origins(self) -> set[str]:
        """Return a copy of the currently disabled classes."""
        return set(self._disabled_origins)

    def reset_disabled(self) -> None:
        """Re-enable every equivalence class."""
        self._disabled_origins.clear()
