"""Vectorized NumPy code generation: one model instance, many scenarios.

The paper's argument is economic — abstracted signal-flow models are cheap
enough that you can afford to simulate them *in bulk*.  This backend turns
that argument into an execution strategy: given a batch of **structurally
identical** signal-flow models (same topology, same assignment structure,
different coefficient values — the shape produced by a parameter sweep, a
corner enumeration or a tolerance Monte-Carlo), it emits a single class whose
``step_batch`` method advances *every* scenario per call, operating on
shape-``(n_scenarios,)`` NumPy arrays.

Coefficients that differ between scenarios are *lifted* out of the expression
trees into parameter arrays (rows of a ``(n_parameters, n_scenarios)``
matrix); coefficients shared by every scenario stay baked into the source as
literals.  Because the parameter values travel through the constructor rather
than the source text, the generated source for a sweep depends only on the
model *structure* — so the compile cache (:mod:`repro.core.codegen.cache`)
hits for every re-run, every Monte-Carlo redraw and every chunk of a
multiprocess sweep.

The backend is also registered as ``"numpy"`` in the generator registry; in
that single-model role it simply generates a batch of one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...errors import CodeGenerationError
from ...expr.ast import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Expr,
    Previous,
    UnaryOp,
    Variable,
)
from ..signalflow import TIME_VARIABLE, SignalFlowModel
from .base import CodeGenerator, ExpressionRenderer, GeneratedCode, class_name, mangle
from .cache import compile_cached

#: Reserved variable-name prefix marking a lifted per-scenario parameter.
PARAM_PREFIX = "__sweep_p"


# ---------------------------------------------------------------------------
# Structural identity
# ---------------------------------------------------------------------------
def _skeleton(expr: Expr) -> tuple:
    """A structural key of ``expr`` that ignores the values of constants."""
    if isinstance(expr, Constant):
        return ("const",)
    if isinstance(expr, Variable):
        return ("var", expr.name)
    if isinstance(expr, Previous):
        return ("prev", expr.name)
    if isinstance(expr, BinaryOp):
        return ("bin", expr.op, _skeleton(expr.lhs), _skeleton(expr.rhs))
    if isinstance(expr, UnaryOp):
        return ("un", expr.op, _skeleton(expr.operand))
    if isinstance(expr, Call):
        return ("call", expr.func) + tuple(_skeleton(arg) for arg in expr.args)
    if isinstance(expr, Conditional):
        return (
            "cond",
            _skeleton(expr.condition),
            _skeleton(expr.then),
            _skeleton(expr.otherwise),
        )
    raise CodeGenerationError(f"cannot take the skeleton of {type(expr).__name__}")


def structure_signature(model: SignalFlowModel) -> tuple:
    """Hashable key identifying the batchable structure of ``model``.

    Two models with equal signatures differ at most in constant values and in
    initial-state values, which is exactly what :func:`generate_batch` lifts
    into per-scenario arrays.
    """
    return (
        tuple(model.inputs),
        tuple(model.outputs),
        tuple(model.state_variables),
        float(model.timestep),
        tuple(
            (assignment.target, _skeleton(assignment.expression))
            for assignment in model.assignments
        ),
    )


# ---------------------------------------------------------------------------
# Constant lifting
# ---------------------------------------------------------------------------
class _ParameterLifter:
    """Collects per-scenario constant vectors, deduplicating identical ones."""

    def __init__(self) -> None:
        self.columns: list[tuple[float, ...]] = []
        self._slots: dict[tuple[float, ...], int] = {}

    def lift(self, values: tuple[float, ...]) -> Expr:
        index = self._slots.get(values)
        if index is None:
            index = len(self.columns)
            self.columns.append(values)
            self._slots[values] = index
        return Variable(f"{PARAM_PREFIX}{index}")


def _merge(exprs: Sequence[Expr], lifter: _ParameterLifter) -> Expr:
    """Merge structurally identical trees into one template expression.

    Constants equal across every scenario stay literal; differing constants
    become lifted parameter references.
    """
    first = exprs[0]
    if isinstance(first, Constant):
        values = tuple(expr.value for expr in exprs)  # type: ignore[union-attr]
        if all(value == values[0] for value in values):
            return first
        return lifter.lift(values)
    if isinstance(first, (Variable, Previous)):
        return first
    if isinstance(first, BinaryOp):
        return BinaryOp(
            first.op,
            _merge([expr.lhs for expr in exprs], lifter),  # type: ignore[attr-defined]
            _merge([expr.rhs for expr in exprs], lifter),  # type: ignore[attr-defined]
        )
    if isinstance(first, UnaryOp):
        return UnaryOp(first.op, _merge([expr.operand for expr in exprs], lifter))  # type: ignore[attr-defined]
    if isinstance(first, Call):
        return Call(
            first.func,
            [
                _merge([expr.args[i] for expr in exprs], lifter)  # type: ignore[attr-defined]
                for i in range(len(first.args))
            ],
        )
    if isinstance(first, Conditional):
        return Conditional(
            _merge([expr.condition for expr in exprs], lifter),  # type: ignore[attr-defined]
            _merge([expr.then for expr in exprs], lifter),  # type: ignore[attr-defined]
            _merge([expr.otherwise for expr in exprs], lifter),  # type: ignore[attr-defined]
        )
    raise CodeGenerationError(f"cannot merge node of type {type(first).__name__}")


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
@dataclass
class BatchArtifact:
    """A generated batch model plus the per-scenario data it executes with."""

    code: GeneratedCode
    #: Lifted coefficients, shape ``(n_parameters, n_scenarios)``.
    parameters: np.ndarray
    #: Initial state values, shape ``(n_states, n_scenarios)``.
    initial_state: np.ndarray
    n_scenarios: int

    def instantiate(self, cache: bool = True):
        """Compile (through the cache by default) and build a live instance."""
        cls = compile_batch(self.code, cache=cache)
        return cls(self.parameters, self.initial_state, self.n_scenarios)


class NumpyGenerator(CodeGenerator):
    """Generate a vectorized NumPy class advancing many scenarios per step."""

    name = "numpy"
    language = "NumPy"

    def generate(self, model: SignalFlowModel) -> GeneratedCode:
        """Single-model entry point of the registry: a batch of one."""
        return self.generate_batch([model]).code

    def generate_batch(self, models: Sequence[SignalFlowModel]) -> BatchArtifact:
        """Emit one ``step_batch`` class covering every model in ``models``."""
        if not models:
            raise CodeGenerationError("cannot generate a batch of zero models")
        first = models[0]
        self.check_model(first)
        signature = structure_signature(first)
        for model in models[1:]:
            if structure_signature(model) != signature:
                raise CodeGenerationError(
                    f"model {model.name!r} is not structurally identical to "
                    f"{first.name!r}; split the sweep into structure groups"
                )

        lifter = _ParameterLifter()
        templates = [
            _merge([model.assignments[i].expression for model in models], lifter)
            for i in range(len(first.assignments))
        ]
        initial = np.array(
            [
                [float(model.initial_state.get(state, 0.0)) for model in models]
                for state in first.state_variables
            ],
            dtype=float,
        ).reshape(len(first.state_variables), len(models))

        entity = class_name(first.name, "Batch")
        renderer = ExpressionRenderer(
            "numpy",
            variable_formatter=self._variable_formatter(first),
            previous_formatter=lambda name: f"self._prev_{mangle(name)}",
        )

        input_names = [mangle(name) for name in first.inputs]
        output_targets = [mangle(name) for name in first.outputs]
        used_parameters = sorted(
            {
                int(name[len(PARAM_PREFIX):])
                for template in templates
                for name in template.variables()
                if name.startswith(PARAM_PREFIX)
            }
        )

        lines: list[str] = []
        lines.append('"""Generated by repro.core.codegen.numpy_backend — do not edit."""')
        lines.append("")
        lines.append("import numpy as np")
        lines.append("")
        lines.append("")
        lines.append(f"class {entity}:")
        lines.append(
            f'    """Vectorized signal-flow model {first.name!r} ({first.source}): '
            'one instance advances every scenario of a sweep per step."""'
        )
        lines.append("")
        lines.append(f"    INPUTS = {tuple(first.inputs)!r}")
        lines.append(f"    OUTPUTS = {tuple(first.outputs)!r}")
        lines.append(f"    STATES = {tuple(first.state_variables)!r}")
        lines.append(f"    TIMESTEP = {first.timestep!r}")
        lines.append(f"    N_PARAMETERS = {len(lifter.columns)}")
        lines.append("")
        lines.append("    def __init__(self, parameters, initial_state, n_scenarios):")
        lines.append("        self.n_scenarios = int(n_scenarios)")
        lines.append("        self._parameters = np.asarray(parameters, dtype=float)")
        lines.append("        self._initial = np.asarray(initial_state, dtype=float)")
        lines.append("        self.reset()")
        lines.append("")
        lines.append("    def reset(self):")
        lines.append('        """Restore the initial state X0 for every scenario."""')
        if first.state_variables:
            for index, state in enumerate(first.state_variables):
                lines.append(
                    f"        self._prev_{mangle(state)} = "
                    f"np.array(self._initial[{index}], dtype=float)"
                )
        else:
            lines.append("        pass")
        lines.append("")
        arguments = ", ".join(input_names) if input_names else ""
        time_name = self.time_name()
        signature_text = (
            f"self, {arguments}, {time_name}=0.0" if arguments else f"self, {time_name}=0.0"
        )
        lines.append(f"    def step_batch({signature_text}):")
        lines.append(
            '        """Advance every scenario by one timestep; inputs broadcast '
            'against shape (n_scenarios,) arrays."""'
        )
        for index in used_parameters:
            lines.append(f"        _p{index} = self._parameters[{index}]")
        for assignment, template in zip(first.assignments, templates):
            target = mangle(assignment.target)
            lines.append(f"        {target} = {renderer.render(template)}")
        for state in first.state_variables:
            lines.append(f"        self._prev_{mangle(state)} = {mangle(state)}")
        if len(output_targets) == 1:
            lines.append(f"        return {output_targets[0]}")
        else:
            lines.append(f"        return ({', '.join(output_targets)},)")
        lines.append("")
        source = "\n".join(lines)

        code = GeneratedCode(
            language=self.language,
            model_name=first.name,
            entity_name=entity,
            source=source,
            model=first,
            metadata={
                "backend": self.name,
                "n_parameters": str(len(lifter.columns)),
                "n_scenarios": str(len(models)),
            },
        )
        parameters = np.array(lifter.columns, dtype=float).reshape(
            len(lifter.columns), len(models)
        )
        return BatchArtifact(
            code=code,
            parameters=parameters,
            initial_state=initial,
            n_scenarios=len(models),
        )

    @staticmethod
    def _variable_formatter(model: SignalFlowModel):
        inputs = set(model.inputs)
        targets = {assignment.target for assignment in model.assignments}

        def formatter(name: str) -> str:
            if name.startswith(PARAM_PREFIX):
                return f"_p{int(name[len(PARAM_PREFIX):])}"
            if name == TIME_VARIABLE:
                return mangle(TIME_VARIABLE)
            if name in inputs or name in targets:
                return mangle(name)
            raise CodeGenerationError(
                f"expression references {name!r}, which is neither an input "
                "nor a computed quantity"
            )

        return formatter


def compile_batch(code: GeneratedCode, cache: bool = True) -> type:
    """Compile a NumPy batch artefact into its class, using the shared cache."""
    if code.language != "NumPy":
        raise CodeGenerationError(
            f"can only compile NumPy artefacts, not {code.language!r}"
        )
    if cache:
        return compile_cached(code, _exec_compile)
    return _exec_compile(code)


def _exec_compile(code: GeneratedCode) -> type:
    namespace: dict[str, object] = {}
    exec(compile(code.source, f"<generated:{code.model_name}:numpy>", "exec"), namespace)
    cls = namespace.get(code.entity_name)
    if not isinstance(cls, type):
        raise CodeGenerationError(
            f"generated source did not define the class {code.entity_name!r}"
        )
    return cls


def batch_model(models: Sequence[SignalFlowModel], cache: bool = True):
    """Convenience: generate, compile and instantiate a batch in one call."""
    return NumpyGenerator().generate_batch(models).instantiate(cache=cache)
