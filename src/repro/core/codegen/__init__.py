"""Code generators for signal-flow models (paper Section IV.D).

Available backends, selected by name through :func:`get_generator`:

============  ====================  ==========================================
name          target language        role in the paper's evaluation
============  ====================  ==========================================
``cpp``        plain C++             fastest integration target (Table I-III)
``python``     executable Python     the runnable equivalent of the C++ target
``numpy``      vectorized NumPy      batch execution of whole sweeps at once
``systemc_de`` SystemC (DE)          discrete-event integration, no AMS layer
``systemc_tdf`` SystemC-AMS/TDF      signal-flow model inside the AMS framework
``native``     compiled C (cffi)     native-speed batch execution of sweeps
============  ====================  ==========================================
"""

from ...errors import CodegenError, CodeGenerationError
from .base import CodeGenerator, ExpressionRenderer, GeneratedCode, class_name, mangle
from .cache import cache_info, clear_cache, compile_cached, source_digest
from .cpp import CppGenerator
from .native_backend import (
    NativeArtifact,
    NativeGenerator,
    compile_native,
    native_batch_model,
    resolve_backend,
    toolchain_error,
)
from .numpy_backend import (
    BatchArtifact,
    NumpyGenerator,
    batch_model,
    compile_batch,
    structure_signature,
)
from .python_backend import (
    PythonGenerator,
    compile_generated,
    compile_model,
    compile_model_cached,
)
from .systemc_de import SystemCDeGenerator
from .systemc_tdf import SystemCTdfGenerator

#: Registry of available backends.
GENERATORS: dict[str, type[CodeGenerator]] = {
    CppGenerator.name: CppGenerator,
    PythonGenerator.name: PythonGenerator,
    NumpyGenerator.name: NumpyGenerator,
    SystemCDeGenerator.name: SystemCDeGenerator,
    SystemCTdfGenerator.name: SystemCTdfGenerator,
    NativeGenerator.name: NativeGenerator,
}


def get_generator(name: str) -> CodeGenerator:
    """Instantiate the backend called ``name``.

    Raises
    ------
    CodeGenerationError
        When no backend with that name exists.
    CodegenError
        When the backend exists but cannot execute on this machine (for
        ``"native"``: no cffi or no C compiler), naming the missing
        dependency.
    """
    try:
        generator = GENERATORS[name]()
    except KeyError as exc:
        raise CodeGenerationError(
            f"unknown code generator {name!r}; available: {sorted(GENERATORS)}"
        ) from exc
    generator.ensure_available()
    return generator


def generate_all(model) -> dict[str, GeneratedCode]:
    """Run every backend on ``model`` and return the artefacts keyed by backend name.

    Source emission is toolchain-free, so this bypasses the availability
    check that :func:`get_generator` performs (the ``native`` backend emits
    its C source even on machines without cffi or a C compiler).
    """
    return {name: cls().generate(model) for name, cls in GENERATORS.items()}


__all__ = [
    "BatchArtifact",
    "CodeGenerator",
    "CppGenerator",
    "ExpressionRenderer",
    "GENERATORS",
    "GeneratedCode",
    "NativeArtifact",
    "NativeGenerator",
    "NumpyGenerator",
    "PythonGenerator",
    "SystemCDeGenerator",
    "SystemCTdfGenerator",
    "batch_model",
    "compile_native",
    "native_batch_model",
    "resolve_backend",
    "toolchain_error",
    "cache_info",
    "class_name",
    "clear_cache",
    "compile_batch",
    "compile_cached",
    "compile_generated",
    "compile_model",
    "compile_model_cached",
    "generate_all",
    "get_generator",
    "mangle",
    "source_digest",
    "structure_signature",
]
