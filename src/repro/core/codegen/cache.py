"""Compiled-class cache shared by every executable backend.

``exec``-compiling a generated model is cheap once, but the runners used to
pay it on *every* run — and a sweep multiplies runs by scenarios.  Classes are
cached by the SHA-256 digest of their generated source, so any two requests
producing byte-identical source (re-running a benchmark, every redraw of a
Monte-Carlo sweep, every chunk of a multiprocess sweep within one worker)
share a single compiled class.  State lives on instances, never on the class,
so sharing is safe.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable

from ...obs.tracer import TRACER
from .base import GeneratedCode

_LOCK = threading.Lock()
_CACHE: "OrderedDict[str, type]" = OrderedDict()
_HITS = 0
_MISSES = 0
#: Least-recently-used entries are evicted beyond this size; a scalar-backend
#: sweep bakes per-scenario coefficients into each source, so without a bound
#: the cache would grow by one class per scenario with no reuse to show for it.
MAX_ENTRIES = 512


def source_digest(source: str) -> str:
    """SHA-256 digest of a generated source text (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def compile_cached(
    generated: GeneratedCode,
    compiler: Callable[[GeneratedCode], type],
) -> type:
    """Return the compiled class for ``generated``, compiling at most once.

    ``compiler`` runs only on a miss; its result is stored under the digest of
    ``generated.source`` (prefixed by the target language, so artefacts of
    different backends can never collide).
    """
    global _HITS, _MISSES
    key = f"{generated.language}:{source_digest(generated.source)}"
    with _LOCK:
        cls = _CACHE.get(key)
        if cls is not None:
            _HITS += 1
            _CACHE.move_to_end(key)
            TRACER.add("codegen.cache_hits")
            return cls
    start = time.perf_counter()
    compiled = compiler(generated)
    if TRACER.enabled:
        TRACER.complete(
            "codegen.compile", start, time.perf_counter() - start, "codegen",
            language=generated.language,
        )
    with _LOCK:
        existing = _CACHE.get(key)
        if existing is not None:
            _HITS += 1
            _CACHE.move_to_end(key)
            TRACER.add("codegen.cache_hits")
            return existing
        _MISSES += 1
        _CACHE[key] = compiled
        while len(_CACHE) > MAX_ENTRIES:
            _CACHE.popitem(last=False)
        TRACER.add("codegen.compiles")
    return compiled


def cache_info() -> dict[str, int]:
    """Hit/miss counters and current size (for tests and reports)."""
    with _LOCK:
        return {"hits": _HITS, "misses": _MISSES, "size": len(_CACHE)}


def clear_cache() -> None:
    """Drop every cached class and reset the counters."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
