"""Shared machinery for the code generators (paper Section IV.D).

Every backend walks the same :class:`~repro.core.signalflow.SignalFlowModel`
and emits a self-contained model in its target language.  This module hosts
the pieces they share: identifier mangling (``V(n1)`` → ``v_n1``), rendering
of expression trees as Python or C++ source, and the
:class:`GeneratedCode` container returned to callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...errors import CodeGenerationError
from ...expr.ast import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Expr,
    Integral,
    Previous,
    UnaryOp,
    Variable,
)
from ..signalflow import TIME_VARIABLE, SignalFlowModel


def mangle(name: str) -> str:
    """Turn a quantity name into a valid C/Python identifier.

    ``V(n1)`` becomes ``v_n1``, ``I(R2)`` becomes ``i_r2``, ``V(a,b)`` becomes
    ``v_a_b``, ``$abstime`` becomes ``abstime`` and ``__idt_0`` stays as is.
    """
    text = name.strip()
    if text.startswith("$"):
        text = text[1:]
    translated = []
    for char in text:
        if char.isalnum() or char == "_":
            translated.append(char)
        elif char in "(),.-":
            translated.append("_")
        else:
            translated.append("_")
    identifier = "".join(translated).strip("_")
    identifier = identifier.replace("__", "_") if not name.startswith("__") else identifier
    if not identifier:
        raise CodeGenerationError(f"cannot mangle the empty name {name!r}")
    if identifier[0].isdigit():
        identifier = "q_" + identifier
    return identifier.lower()


def class_name(name: str, suffix: str) -> str:
    """Build a CamelCase class name from a model name and a backend suffix."""
    parts = [part for part in mangle(name).split("_") if part]
    return "".join(part.capitalize() for part in parts) + suffix


@dataclass
class GeneratedCode:
    """Source code emitted by one backend for one signal-flow model."""

    language: str
    model_name: str
    entity_name: str
    source: str
    model: SignalFlowModel
    metadata: dict[str, str] = field(default_factory=dict)

    def line_count(self) -> int:
        """Number of source lines generated."""
        return len(self.source.splitlines())


class ExpressionRenderer:
    """Renders expression trees into target-language source text."""

    #: Function-name translation tables per target language.
    PYTHON_FUNCTIONS = {
        "ln": "math.log",
        "log": "math.log10",
        "exp": "math.exp",
        "limexp": "math.exp",
        "sin": "math.sin",
        "cos": "math.cos",
        "tan": "math.tan",
        "asin": "math.asin",
        "acos": "math.acos",
        "atan": "math.atan",
        "atan2": "math.atan2",
        "sinh": "math.sinh",
        "cosh": "math.cosh",
        "tanh": "math.tanh",
        "sqrt": "math.sqrt",
        "abs": "abs",
        "min": "min",
        "max": "max",
        "pow": "pow",
        "floor": "math.floor",
        "ceil": "math.ceil",
    }
    NUMPY_FUNCTIONS = {
        "ln": "np.log",
        "log": "np.log10",
        "exp": "np.exp",
        "limexp": "np.exp",
        "sin": "np.sin",
        "cos": "np.cos",
        "tan": "np.tan",
        "asin": "np.arcsin",
        "acos": "np.arccos",
        "atan": "np.arctan",
        "atan2": "np.arctan2",
        "sinh": "np.sinh",
        "cosh": "np.cosh",
        "tanh": "np.tanh",
        "sqrt": "np.sqrt",
        "abs": "np.abs",
        "min": "np.minimum",
        "max": "np.maximum",
        "pow": "np.power",
        "floor": "np.floor",
        "ceil": "np.ceil",
    }
    C99_FUNCTIONS = {
        "ln": "log",
        "log": "log10",
        "exp": "exp",
        "limexp": "exp",
        "sin": "sin",
        "cos": "cos",
        "tan": "tan",
        "asin": "asin",
        "acos": "acos",
        "atan": "atan",
        "atan2": "atan2",
        "sinh": "sinh",
        "cosh": "cosh",
        "tanh": "tanh",
        "sqrt": "sqrt",
        "abs": "fabs",
        "min": "fmin",
        "max": "fmax",
        "pow": "pow",
        "floor": "floor",
        "ceil": "ceil",
    }
    C_FUNCTIONS = {
        "ln": "std::log",
        "log": "std::log10",
        "exp": "std::exp",
        "limexp": "std::exp",
        "sin": "std::sin",
        "cos": "std::cos",
        "tan": "std::tan",
        "asin": "std::asin",
        "acos": "std::acos",
        "atan": "std::atan",
        "atan2": "std::atan2",
        "sinh": "std::sinh",
        "cosh": "std::cosh",
        "tanh": "std::tanh",
        "sqrt": "std::sqrt",
        "abs": "std::fabs",
        "min": "std::min",
        "max": "std::max",
        "pow": "std::pow",
        "floor": "std::floor",
        "ceil": "std::ceil",
    }

    def __init__(
        self,
        language: str,
        variable_formatter: Callable[[str], str],
        previous_formatter: Callable[[str], str],
    ) -> None:
        if language not in ("python", "numpy", "c++", "c"):
            raise CodeGenerationError(f"unsupported rendering language {language!r}")
        self.language = language
        self.variable_formatter = variable_formatter
        self.previous_formatter = previous_formatter
        if language == "python":
            self._functions = self.PYTHON_FUNCTIONS
        elif language == "numpy":
            self._functions = self.NUMPY_FUNCTIONS
        elif language == "c":
            self._functions = self.C99_FUNCTIONS
        else:
            self._functions = self.C_FUNCTIONS

    # -- rendering --------------------------------------------------------------------
    def render(self, expr: Expr) -> str:
        """Render ``expr`` as an expression string in the target language."""
        return self._visit(expr, parent_precedence=0)

    def _visit(self, node: Expr, parent_precedence: int) -> str:
        if isinstance(node, Constant):
            return self._render_constant(node.value)
        if isinstance(node, Variable):
            return self.variable_formatter(node.name)
        if isinstance(node, Previous):
            return self.previous_formatter(node.name)
        if isinstance(node, UnaryOp):
            if node.op == "!" and self.language == "numpy":
                return f"np.logical_not({self._visit(node.operand, 0)})"
            operand = self._visit(node.operand, 8)
            operator = "not " if (node.op == "!" and self.language == "python") else node.op
            text = f"{operator}{operand}"
            return f"({text})" if parent_precedence >= 8 else text
        if isinstance(node, BinaryOp):
            return self._render_binary(node, parent_precedence)
        if isinstance(node, Call):
            function = self._functions.get(node.func)
            if function is None:
                raise CodeGenerationError(f"cannot translate function {node.func!r}")
            rendered = [self._visit(argument, 0) for argument in node.args]
            # np.minimum/np.maximum are strictly binary (the third positional
            # argument is ``out=``!) and so are C99 fmin/fmax; fold variadic
            # min/max into nested calls.
            if self.language in ("numpy", "c") and node.func in ("min", "max") and len(rendered) > 2:
                folded = rendered[-1]
                for argument in reversed(rendered[:-1]):
                    folded = f"{function}({argument}, {folded})"
                return folded
            return f"{function}({', '.join(rendered)})"
        if isinstance(node, Conditional):
            condition = self._visit(node.condition, 0)
            then_value = self._visit(node.then, 0)
            else_value = self._visit(node.otherwise, 0)
            if self.language == "python":
                return f"({then_value} if {condition} else {else_value})"
            if self.language == "numpy":
                return f"np.where({condition}, {then_value}, {else_value})"
            return f"({condition} ? {then_value} : {else_value})"
        if isinstance(node, (Derivative, Integral)):
            raise CodeGenerationError(
                "ddt/idt operators must be discretised before code generation"
            )
        raise CodeGenerationError(f"cannot render node of type {type(node).__name__}")

    def _render_constant(self, value: float) -> str:
        if value == int(value) and abs(value) < 1e16:
            return f"{value:.1f}"
        return repr(value)

    _PRECEDENCE = {
        "||": 1,
        "&&": 2,
        "==": 3,
        "!=": 3,
        "<": 4,
        "<=": 4,
        ">": 4,
        ">=": 4,
        "+": 5,
        "-": 5,
        "*": 6,
        "/": 6,
        "**": 7,
    }

    def _render_binary(self, node: BinaryOp, parent_precedence: int) -> str:
        operator = node.op
        if operator == "**":
            base = self._visit(node.lhs, 0)
            exponent = self._visit(node.rhs, 0)
            if self.language in ("python", "numpy"):
                return f"({base}) ** ({exponent})"
            return f"{self._functions['pow']}({base}, {exponent})"
        if operator in ("&&", "||") and self.language == "numpy":
            function = "np.logical_and" if operator == "&&" else "np.logical_or"
            return f"{function}({self._visit(node.lhs, 0)}, {self._visit(node.rhs, 0)})"
        if operator in ("&&", "||") and self.language == "python":
            operator = "and" if operator == "&&" else "or"
        precedence = self._PRECEDENCE[node.op]
        lhs = self._visit(node.lhs, precedence)
        rhs = self._visit(node.rhs, precedence + 1)
        text = f"{lhs} {operator} {rhs}"
        if precedence < parent_precedence:
            return f"({text})"
        return text


class CodeGenerator:
    """Base class of every backend."""

    #: Short name used to select the backend (``"cpp"``, ``"python"``...).
    name = "base"
    #: Human-readable target language (matches the paper's Table I rows).
    language = ""

    def generate(self, model: SignalFlowModel) -> GeneratedCode:
        """Emit code for ``model``."""
        raise NotImplementedError

    def ensure_available(self) -> None:
        """Raise :class:`~repro.errors.CodegenError` when the backend cannot
        *execute* on this machine (e.g. a missing toolchain).

        Source emission itself never requires the toolchain, so the default
        is a no-op; :func:`repro.core.codegen.get_generator` calls this so
        callers asking for an executable backend fail early with the reason.
        """

    # -- shared helpers ---------------------------------------------------------------
    @staticmethod
    def check_model(model: SignalFlowModel) -> None:
        """Validate the model before emitting anything."""
        if not model.assignments:
            raise CodeGenerationError(f"model {model.name!r} has no assignments")
        model.validate()

    @staticmethod
    def ordered_names(model: SignalFlowModel) -> dict[str, list[str]]:
        """Return the mangled name groups used by most backends."""
        return {
            "inputs": [mangle(name) for name in model.inputs],
            "outputs": [mangle(name) for name in model.outputs],
            "states": [mangle(name) for name in model.state_variables],
            "targets": [mangle(assignment.target) for assignment in model.assignments],
        }

    @staticmethod
    def time_name() -> str:
        """Mangled name of the absolute-time input."""
        return mangle(TIME_VARIABLE)
