"""Native (compiled C) code generation: the paper's speed argument, literally.

The NumPy batch backend already amortizes the Python interpreter across
scenarios; this backend removes the interpreter from the per-step hot loop
altogether.  It emits C99 for a batch ``step_batch`` kernel — same constant
lifting, same ``(n_parameters, n_scenarios)`` parameter matrix and structural
compile-cache behaviour as :mod:`repro.core.codegen.numpy_backend` — compiles
it with the system C compiler, and loads the shared object through cffi's
ABI mode (``ffi.dlopen``), so no setuptools build step is involved.

Source emission is toolchain-free: :meth:`NativeGenerator.generate` works on
any machine (the artefact is just C text).  Only *instantiation* needs cffi
and a C compiler; when either is missing,

* :func:`repro.core.codegen.get_generator` ``("native")`` raises
  :class:`~repro.errors.CodegenError` naming the missing dependency,
* :meth:`NativeArtifact.instantiate` with ``fallback=True`` degrades to the
  structurally identical NumPy batch class (the artefact carries the NumPy
  source for exactly this purpose), and
* :func:`resolve_backend` lets CLIs downgrade ``"native"`` to ``"numpy"``
  with a single warning.

Because both backends lift constants with the same deterministic pass, the
native and NumPy artefacts of one sweep share parameter/initial-state arrays
bit for bit; only the kernel differs (C arithmetic instead of ufuncs), so
results agree to floating-point rounding (ulps, far inside the 1e-9 gate of
the cross-engine matrix).
"""

from __future__ import annotations

import atexit
import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...errors import CodeGenerationError, CodegenError
from ...obs.tracer import TRACER
from ..signalflow import TIME_VARIABLE, SignalFlowModel
from .base import CodeGenerator, ExpressionRenderer, GeneratedCode, class_name, mangle
from .cache import compile_cached, source_digest
from .numpy_backend import (
    PARAM_PREFIX,
    NumpyGenerator,
    _merge,
    _ParameterLifter,
    compile_batch,
)

#: Exported symbol of every generated shared object.  Each artefact lives in
#: its own ``dlopen`` handle (RTLD_LOCAL), so the name never collides.
NATIVE_SYMBOL = "repro_native_step_batch"

#: C prototype of the generated kernel (also the ``ffi.cdef`` text).
NATIVE_PROTOTYPE = (
    f"void {NATIVE_SYMBOL}(int n, const double *params, double *state, "
    "const double *inputs, double abstime, double *outputs);"
)


# ---------------------------------------------------------------------------
# Toolchain probing
# ---------------------------------------------------------------------------
_TOOLCHAIN_ERROR: "str | None | bool" = False  # False = not probed yet


def _find_cc() -> "str | None":
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def toolchain_error(refresh: bool = False) -> "str | None":
    """``None`` when the native tier can compile here, else the reason it can't."""
    global _TOOLCHAIN_ERROR
    if _TOOLCHAIN_ERROR is False or refresh:
        try:
            import cffi  # noqa: F401
        except ImportError:
            _TOOLCHAIN_ERROR = "the 'cffi' package is not installed"
        else:
            if _find_cc() is None:
                _TOOLCHAIN_ERROR = (
                    "no C compiler found on PATH (tried $CC, cc, gcc, clang)"
                )
            else:
                _TOOLCHAIN_ERROR = None
    return _TOOLCHAIN_ERROR


def ensure_toolchain() -> None:
    """Raise :class:`CodegenError` naming the missing dependency, if any."""
    reason = toolchain_error()
    if reason is not None:
        raise CodegenError(
            f"the 'native' codegen backend is unavailable: {reason}; "
            "use the 'numpy' backend or install the missing dependency"
        )


_WARNED_FALLBACK = False


def resolve_backend(requested: str, fallback: str = "numpy") -> str:
    """Degrade ``"native"`` to ``fallback`` when the toolchain is missing.

    Used by the sweep/fuzz CLIs: any other backend name passes through
    untouched, and the downgrade warns exactly once per process.
    """
    global _WARNED_FALLBACK
    if requested != "native":
        return requested
    reason = toolchain_error()
    if reason is None:
        return "native"
    if not _WARNED_FALLBACK:
        _WARNED_FALLBACK = True
        import warnings

        warnings.warn(
            f"native codegen backend unavailable ({reason}); "
            f"falling back to the {fallback!r} backend",
            RuntimeWarning,
            stacklevel=2,
        )
    return fallback


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
@dataclass
class NativeArtifact:
    """A generated C batch kernel plus the per-scenario data it executes with.

    ``parameters``/``initial_state`` are bit-identical to the NumPy backend's
    for the same models (same lifting pass); ``fallback_code`` is the NumPy
    source for the same structure, kept so instantiation can degrade without
    re-walking the models.
    """

    code: GeneratedCode
    parameters: np.ndarray
    initial_state: np.ndarray
    n_scenarios: int
    fallback_code: GeneratedCode

    def instantiate(self, cache: bool = True, fallback: bool = False):
        """Compile (through the shared cache) and build a live batch instance.

        Raises :class:`CodegenError` when the toolchain is missing, unless
        ``fallback=True``, in which case the structurally identical NumPy
        batch class is instantiated instead (build-free, pure Python).
        """
        if toolchain_error() is None:
            cls = compile_native(self.code, cache=cache)
        elif fallback:
            cls = compile_batch(self.fallback_code, cache=cache)
        else:
            ensure_toolchain()
            raise AssertionError("unreachable")
        return cls(self.parameters, self.initial_state, self.n_scenarios)


class NativeGenerator(CodeGenerator):
    """Generate a compiled-C batch kernel advancing many scenarios per step."""

    name = "native"
    language = "C"

    def ensure_available(self) -> None:
        ensure_toolchain()

    def generate(self, model: SignalFlowModel) -> GeneratedCode:
        """Single-model entry point of the registry: a batch of one."""
        return self.generate_batch([model]).code

    def generate_batch(self, models: Sequence[SignalFlowModel]) -> NativeArtifact:
        """Emit one C ``step_batch`` kernel covering every model in ``models``."""
        numpy_artifact = NumpyGenerator().generate_batch(models)
        first = models[0]

        # Re-run the (deterministic) lifting pass to obtain the merged
        # templates; the columns come out in the same order as the NumPy
        # artefact's, so its parameter matrix is reused verbatim.
        lifter = _ParameterLifter()
        templates = [
            _merge([model.assignments[i].expression for model in models], lifter)
            for i in range(len(first.assignments))
        ]
        if len(lifter.columns) != numpy_artifact.parameters.shape[0]:
            raise CodeGenerationError(
                "internal error: native and numpy parameter lifting diverged"
            )

        source, entity = self._render_source(first, templates, len(lifter.columns))
        code = GeneratedCode(
            language=self.language,
            model_name=first.name,
            entity_name=entity,
            source=source,
            model=first,
            metadata={
                "backend": self.name,
                "symbol": NATIVE_SYMBOL,
                "n_parameters": str(len(lifter.columns)),
                "n_scenarios": str(len(models)),
            },
        )
        return NativeArtifact(
            code=code,
            parameters=numpy_artifact.parameters,
            initial_state=numpy_artifact.initial_state,
            n_scenarios=len(models),
            fallback_code=numpy_artifact.code,
        )

    # -- rendering --------------------------------------------------------------------
    def _render_source(self, first, templates, n_parameters):
        entity = class_name(first.name, "Native")
        states = list(first.state_variables)
        state_index = {name: i for i, name in enumerate(states)}
        inputs = list(first.inputs)
        input_index = {name: i for i, name in enumerate(inputs)}
        input_names = set(inputs)
        targets = {assignment.target for assignment in first.assignments}

        def variable(name: str) -> str:
            if name.startswith(PARAM_PREFIX):
                return f"_p{int(name[len(PARAM_PREFIX):])}"
            if name == TIME_VARIABLE:
                return "abstime"
            if name in input_names or name in targets:
                return f"_v_{mangle(name)}"
            raise CodeGenerationError(
                f"expression references {name!r}, which is neither an input "
                "nor a computed quantity"
            )

        renderer = ExpressionRenderer(
            "c",
            variable_formatter=variable,
            previous_formatter=lambda name: f"_s{state_index[name]}",
        )

        used_parameters = sorted(
            {
                int(name[len(PARAM_PREFIX):])
                for template in templates
                for name in template.variables()
                if name.startswith(PARAM_PREFIX)
            }
        )

        lines: list[str] = []
        lines.append("/* Generated by repro.core.codegen.native_backend — do not edit. */")
        lines.append(f"/* model: {first.name} ({first.source}) */")
        lines.append("#include <math.h>")
        lines.append("")
        lines.append(f"void {NATIVE_SYMBOL}(int n, const double *params, double *state,")
        lines.append("                             const double *inputs, double abstime,")
        lines.append("                             double *outputs)")
        lines.append("{")
        lines.append("    int i;")
        lines.append("    (void)params; (void)state; (void)inputs; (void)abstime;")
        lines.append("    for (i = 0; i < n; ++i) {")
        for index in used_parameters:
            lines.append(f"        const double _p{index} = params[{index} * n + i];")
        for name in inputs:
            lines.append(
                f"        const double _v_{mangle(name)} = "
                f"inputs[{input_index[name]} * n + i];"
            )
        for name in states:
            lines.append(
                f"        const double _s{state_index[name]} = "
                f"state[{state_index[name]} * n + i];"
            )
        declared: set[str] = set()
        for assignment, template in zip(first.assignments, templates):
            target = f"_v_{mangle(assignment.target)}"
            keyword = "" if target in declared else "double "
            declared.add(target)
            lines.append(f"        {keyword}{target} = {renderer.render(template)};")
        for name in states:
            lines.append(
                f"        state[{state_index[name]} * n + i] = _v_{mangle(name)};"
            )
        for position, name in enumerate(first.outputs):
            lines.append(f"        outputs[{position} * n + i] = _v_{mangle(name)};")
        lines.append("    }")
        lines.append("}")
        lines.append("")
        return "\n".join(lines), entity


# ---------------------------------------------------------------------------
# Compilation (cc -shared + cffi dlopen)
# ---------------------------------------------------------------------------
_BUILD_DIR: "str | None" = None


def _build_dir() -> str:
    global _BUILD_DIR
    if _BUILD_DIR is None:
        _BUILD_DIR = tempfile.mkdtemp(prefix="repro-native-")
        atexit.register(shutil.rmtree, _BUILD_DIR, True)
    return _BUILD_DIR


class _NativeBatchBase:
    """Python face of a compiled kernel; mirrors the NumPy batch contract."""

    INPUTS: tuple = ()
    OUTPUTS: tuple = ()
    STATES: tuple = ()
    TIMESTEP: float = 0.0
    N_PARAMETERS: int = 0
    _FFI = None
    _KERNEL = None

    def __init__(self, parameters, initial_state, n_scenarios):
        self.n_scenarios = int(n_scenarios)
        n = self.n_scenarios
        self._parameters = np.ascontiguousarray(
            np.asarray(parameters, dtype=float).reshape(self.N_PARAMETERS, n)
        )
        self._initial = np.asarray(initial_state, dtype=float).reshape(
            len(self.STATES), n
        )
        self._state = np.zeros((len(self.STATES), n), dtype=float)
        self._inputs = np.zeros((len(self.INPUTS), n), dtype=float)
        self._outputs = np.zeros((len(self.OUTPUTS), n), dtype=float)
        ffi = self._FFI
        self._c_params = ffi.cast("double *", self._parameters.ctypes.data)
        self._c_state = ffi.cast("double *", self._state.ctypes.data)
        self._c_inputs = ffi.cast("double *", self._inputs.ctypes.data)
        self._c_outputs = ffi.cast("double *", self._outputs.ctypes.data)
        self.reset()

    def reset(self):
        """Restore the initial state X0 for every scenario."""
        if len(self.STATES):
            self._state[:] = self._initial

    def _resolve_arguments(self, values, abstime):
        expected = len(self.INPUTS)
        # Callers (matching the generated Python/NumPy classes) may pass the
        # absolute time as a trailing positional argument.
        if len(values) == expected + 1:
            abstime = values[-1]
            values = values[:expected]
        elif len(values) != expected:
            raise TypeError(
                f"step_batch() expects {expected} input(s) {self.INPUTS!r}, "
                f"got {len(values)}"
            )
        return values, float(abstime)

    def step_batch(self, *values, abstime=0.0):
        """Advance every scenario by one timestep (inputs broadcast to (n,))."""
        values, abstime = self._resolve_arguments(values, abstime)
        buffer = self._inputs
        for index, value in enumerate(values):
            buffer[index] = value
        self._KERNEL(
            self.n_scenarios,
            self._c_params,
            self._c_state,
            self._c_inputs,
            abstime,
            self._c_outputs,
        )
        outputs = self._outputs
        if len(self.OUTPUTS) == 1:
            return outputs[0].copy()
        return tuple(row.copy() for row in outputs)

    def step(self, *values, abstime=0.0):
        """Scalar convenience for single-scenario instances."""
        if self.n_scenarios != 1:
            raise TypeError("step() is only available on single-scenario instances")
        result = self.step_batch(*values, abstime=abstime)
        if len(self.OUTPUTS) == 1:
            return float(result[0])
        return tuple(float(row[0]) for row in result)


def _cc_compile(code: GeneratedCode) -> type:
    """Compile C source to a shared object, dlopen it, and wrap it in a class."""
    import cffi

    start = time.perf_counter()
    compiler = _find_cc()
    if compiler is None:  # pragma: no cover - guarded by ensure_toolchain
        raise CodegenError("no C compiler found on PATH")
    digest = source_digest(code.source)[:16]
    directory = _build_dir()
    c_path = os.path.join(directory, f"{digest}.c")
    so_path = os.path.join(directory, f"{digest}.so")
    with open(c_path, "w", encoding="utf-8") as handle:
        handle.write(code.source)
    command = [compiler, "-O2", "-fPIC", "-shared", "-o", so_path, c_path, "-lm"]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise CodegenError(
            f"C compilation failed ({' '.join(command)}):\n{result.stderr.strip()}"
        )
    ffi = cffi.FFI()
    ffi.cdef(NATIVE_PROTOTYPE)
    library = ffi.dlopen(so_path)
    kernel = getattr(library, NATIVE_SYMBOL)
    model = code.model
    namespace = {
        "INPUTS": tuple(model.inputs),
        "OUTPUTS": tuple(model.outputs),
        "STATES": tuple(model.state_variables),
        "TIMESTEP": float(model.timestep),
        "N_PARAMETERS": int(code.metadata.get("n_parameters", "0")),
        "_FFI": ffi,
        "_KERNEL": kernel,
        "_LIBRARY": library,  # keep the dlopen handle alive with the class
        "__doc__": f"Compiled native batch kernel for model {model.name!r}.",
    }
    cls = type(code.entity_name, (_NativeBatchBase,), namespace)
    if TRACER.enabled:
        TRACER.complete(
            "codegen.native.compile",
            start,
            time.perf_counter() - start,
            "codegen",
            entity=code.entity_name,
            compiler=compiler,
        )
    TRACER.add("codegen.native.compiles")
    return cls


def compile_native(code: GeneratedCode, cache: bool = True) -> type:
    """Compile a native artefact into its wrapper class, using the shared cache."""
    if code.language != "C":
        raise CodeGenerationError(
            f"can only compile C artefacts, not {code.language!r}"
        )
    ensure_toolchain()
    if cache:
        return compile_cached(code, _cc_compile)
    return _cc_compile(code)


def native_batch_model(
    models: Sequence[SignalFlowModel], cache: bool = True, fallback: bool = False
):
    """Convenience: generate, compile and instantiate a native batch in one call."""
    return NativeGenerator().generate_batch(models).instantiate(
        cache=cache, fallback=fallback
    )
