"""Numeric state-space abstraction (cross-check for the symbolic pipeline).

This module derives the same discrete-time input/state/output relations as the
symbolic pipeline, but numerically: the circuit is assembled into its MNA form
(:mod:`repro.network.mna`), the one-step update matrices are computed by a
single matrix inversion, and the rows needed by the outputs of interest are
unrolled into scalar assignments.  The result is a
:class:`~repro.core.signalflow.SignalFlowModel` that must agree (to numerical
precision) with the model produced by acquisition → enrichment → assemble →
solve; property-based tests use this as an oracle.

It is also a useful generator in its own right when the symbolic path is not
required (the paper compares against Model Order Reduction in Section III.C;
this is the "no reduction, exact state space" variant of that discussion).
"""

from __future__ import annotations

import numpy as np

from ..errors import AbstractionError
from ..expr.ast import BinaryOp, Constant, Expr, Previous, Variable
from ..expr.simplify import simplify
from ..network.circuit import Circuit
from ..network.mna import MnaSystem
from .assemble import normalise_output
from .signalflow import Assignment, SignalFlowModel

#: Coefficients with magnitude below this threshold are treated as zero when
#: unrolling matrix rows into scalar expressions.
COEFFICIENT_TOLERANCE = 1e-18


def _linear_combination(
    coefficients: np.ndarray,
    names: list[str],
    make_term,
) -> Expr | None:
    terms: list[Expr] = []
    for coefficient, name in zip(coefficients, names):
        if abs(coefficient) <= COEFFICIENT_TOLERANCE:
            continue
        terms.append(BinaryOp("*", Constant(float(coefficient)), make_term(name)))
    if not terms:
        return None
    expression = terms[0]
    for term in terms[1:]:
        expression = BinaryOp("+", expression, term)
    return expression


def abstract_state_space(
    circuit: Circuit,
    outputs: list[str],
    timestep: float,
    method: str = "backward_euler",
    name: str | None = None,
) -> SignalFlowModel:
    """Build a signal-flow model for ``outputs`` from the discretised MNA system.

    Parameters
    ----------
    circuit:
        The conservative description.
    outputs:
        Output designations (``"out"``, ``"V(out)"``, ``"I(branch)"``...).
    timestep:
        Fixed execution timestep.
    method:
        Companion-model integration scheme.
    name:
        Model name (defaults to ``"<circuit>_ss"``).
    """
    system = MnaSystem(circuit, timestep, method=method)
    F, G, g0 = system.discrete_state_space()
    unknowns = list(system.index.unknowns)
    inputs = list(system.index.inputs)
    normalised_outputs = [normalise_output(output, circuit.ground) for output in outputs]

    missing = [output for output in normalised_outputs if output not in unknowns]
    if missing:
        raise AbstractionError(
            f"outputs {missing} are not quantities of circuit {circuit.name!r}; "
            f"available quantities: {unknowns}"
        )

    # Cone of influence: a row is needed if it is an output or if a needed row
    # depends on its previous value through F.
    needed: set[int] = {unknowns.index(output) for output in normalised_outputs}
    changed = True
    while changed:
        changed = False
        for row in list(needed):
            for column in range(len(unknowns)):
                if abs(F[row, column]) > COEFFICIENT_TOLERANCE and column not in needed:
                    needed.add(column)
                    changed = True

    assignments: list[Assignment] = []
    states: set[str] = set()
    for row in sorted(needed):
        target = unknowns[row]
        state_part = _linear_combination(
            F[row, :], unknowns, lambda state_name: Previous(state_name)
        )
        input_part = _linear_combination(
            G[row, :], inputs, lambda input_name: Variable(input_name)
        )
        expression: Expr = Constant(float(g0[row])) if abs(g0[row]) > COEFFICIENT_TOLERANCE else Constant(0.0)
        if state_part is not None:
            expression = BinaryOp("+", expression, state_part)
        if input_part is not None:
            expression = BinaryOp("+", expression, input_part)
        expression = simplify(expression)
        states |= expression.previous_values()
        assignments.append(Assignment(target, expression))

    model = SignalFlowModel(
        name=name or f"{circuit.name}_ss",
        inputs=inputs,
        outputs=normalised_outputs,
        assignments=assignments,
        state_variables=sorted(states),
        timestep=timestep,
        source="numeric state-space abstraction (MNA)",
    )
    model.validate()
    return model
