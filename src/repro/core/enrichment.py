"""Step 2 — Enrichment (paper Section IV.B, Algorithm 1).

Starting from the dipole equations and the topology graph produced by the
acquisition step, enrichment:

1. applies nodal analysis (Kirchhoff current law at every node) and mesh
   analysis (Kirchhoff voltage law around every fundamental loop), adding the
   implicit energy-conservation equations to the table;
2. discretises every ``ddt``/``idt`` operator against the target timestep, so
   that the remaining pipeline works on purely algebraic relations between
   instantaneous quantities, previous-step values and inputs;
3. re-solves every equation for every unknown term it contains, inserting the
   solved forms into the multimap and linking them to their origin so they
   form one equivalence class of linearly dependent relations.

The paper quotes a worst-case cost of O(|N|²) + O(|N|³) for the two Kirchhoff
analyses and O(|B|²) for the solving loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EnrichmentError
from ..expr.ast import Variable
from ..expr.discretize import Discretizer
from ..expr.equation import DERIVED, Equation
from ..expr.linear import solve_for
from ..errors import UnsolvableEquationError
from ..network.kirchhoff import mesh_analysis, nodal_analysis
from .acquisition import AcquisitionResult
from .table import EquationTable


def is_unknown(name: str) -> bool:
    """Whether ``name`` denotes a network unknown (node potential or branch flow)."""
    return name.startswith("V(") or name.startswith("I(")


@dataclass
class EnrichmentResult:
    """Output of the enrichment step."""

    table: EquationTable
    kcl_equations: list[Equation]
    kvl_equations: list[Equation]
    integrator_updates: dict[str, "Equation"] = field(default_factory=dict)
    discretizer: Discretizer | None = None
    unknowns: list[str] = field(default_factory=list)
    inputs: list[str] = field(default_factory=list)
    solved_count: int = 0

    def statistics(self) -> dict[str, int]:
        """Counts used by the abstraction-cost experiment."""
        return {
            "equations": len(self.table),
            "kcl": len(self.kcl_equations),
            "kvl": len(self.kvl_equations),
            "solved": self.solved_count,
            "unknowns": len(self.unknowns),
        }


def enrich(
    acquisition: AcquisitionResult,
    timestep: float,
    method: str = "backward_euler",
    include_mesh: bool = True,
) -> EnrichmentResult:
    """Run the enrichment step.

    Parameters
    ----------
    acquisition:
        The result of :func:`repro.core.acquisition.acquire`.
    timestep:
        The fixed timestep the generated model will be executed at; it is
        needed to discretise the analog operators.
    method:
        Discretisation scheme (``"backward_euler"`` or ``"trapezoidal"``).
    include_mesh:
        Whether to also run the mesh analysis (KVL); nodal analysis alone is
        sufficient, the KVL forms simply give the assemble step additional
        candidate definitions, as in the paper.
    """
    circuit = acquisition.circuit
    discretizer = Discretizer(timestep, method)

    kcl = nodal_analysis(circuit)
    kvl = mesh_analysis(circuit) if include_mesh else []

    source_equations = list(acquisition.dipole_equations) + kcl + kvl

    table = EquationTable()
    integrator_updates: dict[str, Equation] = {}
    discretized: list[Equation] = []
    for equation in source_equations:
        lhs_result = discretizer.discretize(equation.lhs)
        rhs_result = discretizer.discretize(equation.rhs)
        for name, update in {**lhs_result.integrator_updates, **rhs_result.integrator_updates}.items():
            update_equation = Equation(
                Variable(name), update, kind=DERIVED, name=f"idt:{name}", origin=f"idt:{name}"
            )
            integrator_updates[name] = update_equation
            table.insert(update_equation)
        flattened = Equation(
            lhs_result.expression,
            rhs_result.expression,
            kind=equation.kind,
            name=equation.name,
            origin=equation.origin,
        )
        discretized.append(flattened)
        table.insert(flattened)

    solved_count = 0
    unknowns: set[str] = set()
    for equation in discretized:
        terms = sorted(name for name in equation.variables() if is_unknown(name))
        unknowns.update(terms)
        for term in terms:
            try:
                solved = equation.solved_for(term)
            except UnsolvableEquationError:
                continue
            table.insert(solved)
            solved_count += 1

    if solved_count == 0:
        raise EnrichmentError(
            f"no equation of circuit {circuit.name!r} could be solved for any "
            "unknown; the description is degenerate"
        )

    return EnrichmentResult(
        table=table,
        kcl_equations=kcl,
        kvl_equations=kvl,
        integrator_updates=integrator_updates,
        discretizer=discretizer,
        unknowns=sorted(unknowns),
        inputs=list(acquisition.inputs),
        solved_count=solved_count,
    )
