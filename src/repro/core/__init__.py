"""Core abstraction methodology (the paper's primary contribution).

The subpackage implements the four-step flow of Section IV — acquisition,
enrichment, assemble and the linear solve — the direct conversion of
signal-flow descriptions (Section III.A), the numeric state-space cross-check
and the code generators (Section IV.D).
"""

from .acquisition import AcquisitionResult, acquire
from .assemble import AssembledModel, Assembler, normalise_output
from .enrichment import EnrichmentResult, enrich, is_unknown
from .flow import AbstractionFlow, AbstractionReport, abstract_circuit
from .linsolve import to_signal_flow
from .signalflow import (
    TIME_VARIABLE,
    Assignment,
    SignalFlowModel,
    SignalFlowTrace,
    convert_signal_flow,
)
from .statespace import abstract_state_space
from .table import EquationTable, TableEntry

__all__ = [
    "AbstractionFlow",
    "AbstractionReport",
    "AcquisitionResult",
    "AssembledModel",
    "Assembler",
    "Assignment",
    "EnrichmentResult",
    "EquationTable",
    "SignalFlowModel",
    "SignalFlowTrace",
    "TIME_VARIABLE",
    "TableEntry",
    "abstract_circuit",
    "abstract_state_space",
    "acquire",
    "convert_signal_flow",
    "enrich",
    "is_unknown",
    "normalise_output",
    "to_signal_flow",
]
