"""Step 3 — Assemble (paper Section IV.C, Algorithm 2).

Starting from the output(s) of interest, the assemble step walks the enriched
equation table and picks, for every unknown quantity it encounters, one
defining equation — disabling the equation's whole equivalence class so that
each physical relation is used at most once.  The result is the sub-set of
the input-state-output equations that determines the chosen outputs (the gray
boxes of the paper's Figure 3): all other equations, and the sub-circuits
they describe, are dropped.  Residual un-delayed couplings between the
selected unknowns (the occurrences of the left value on the right side that
the paper removes in Figure 7) are eliminated afterwards by
:mod:`repro.core.linsolve`.

The selection is a depth-first search with backtracking: whenever a greedy
choice leaves some quantity without an available definition, the most recent
choice is undone and the next candidate is tried.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssembleError
from ..expr.ast import Expr
from ..expr.equation import Equation
from .enrichment import EnrichmentResult, is_unknown
from .table import EquationTable, TableEntry

#: Safety bound on the number of candidate trials during backtracking.
MAX_TRIALS = 200_000


@dataclass
class AssembledModel:
    """Outcome of the assemble step: one chosen definition per unknown."""

    outputs: list[str]
    resolutions: dict[str, Expr]
    order: list[str]
    used_origins: set[str] = field(default_factory=set)
    dropped_unknowns: set[str] = field(default_factory=set)

    @property
    def cone_size(self) -> int:
        """Number of quantities retained in the cone of influence of the outputs."""
        return len(self.resolutions)


def normalise_output(name: str, ground: str = "gnd") -> str:
    """Normalise an output designation to the canonical ``V(node)``/``I(branch)`` form.

    Accepted spellings: ``"out"`` (a node name), ``"V(out)"``, ``"V(out,gnd)"``
    and ``"I(branch)"``.
    """
    name = name.strip()
    if name.startswith("V(") or name.startswith("I("):
        inner = name[2:-1]
        parts = [part.strip() for part in inner.split(",")]
        if len(parts) == 2 and parts[1] == ground:
            return f"{name[0]}({parts[0]})"
        return f"{name[0]}({inner.replace(' ', '')})"
    return f"V({name})"


class Assembler:
    """Depth-first resolver over the enriched equation table."""

    def __init__(self, enrichment: EnrichmentResult) -> None:
        self.enrichment = enrichment
        self.table: EquationTable = enrichment.table
        self._resolvable = set(enrichment.unknowns) | set(enrichment.integrator_updates)
        self._inputs = set(enrichment.inputs)
        self._trials = 0

    # -- public API ---------------------------------------------------------------------
    def assemble(self, outputs: list[str]) -> AssembledModel:
        """Resolve the cone of influence of ``outputs``."""
        self.table.reset_disabled()
        resolutions: dict[str, Expr] = {}
        order: list[str] = []
        journal: list[tuple[str, str]] = []
        self._trials = 0

        for output in outputs:
            if output in self._inputs:
                continue
            if output not in self._resolvable:
                raise AssembleError(
                    f"{output!r} is not a quantity of the description; known "
                    f"quantities are {sorted(self._resolvable)}"
                )
            if not self._resolve(output, resolutions, order, journal, set()):
                raise AssembleError(
                    f"no combination of equations defines the output {output!r}; "
                    "check that it names an existing node or branch quantity"
                )

        used_origins = {origin for kind, origin in journal if kind == "origin"}
        dropped = set(self.enrichment.unknowns) - set(resolutions)
        return AssembledModel(
            outputs=list(outputs),
            resolutions=resolutions,
            order=order,
            used_origins=used_origins,
            dropped_unknowns=dropped,
        )

    # -- resolution ---------------------------------------------------------------------
    def _resolve(
        self,
        name: str,
        resolutions: dict[str, Expr],
        order: list[str],
        journal: list[tuple[str, str]],
        resolving: set[str],
    ) -> bool:
        if name in resolutions or name in resolving:
            return True
        if name not in self._resolvable:
            # Inputs, time and parameters need no definition.
            return True
        candidates = self._ranked_candidates(name, resolutions, resolving)
        if not candidates:
            return False

        resolving.add(name)
        try:
            for entry in candidates:
                self._trials += 1
                if self._trials > MAX_TRIALS:
                    raise AssembleError(
                        "the assemble step exceeded its backtracking budget; "
                        "the description is probably over- or under-determined"
                    )
                if self.table.is_origin_disabled(entry.origin):
                    continue
                mark = len(journal)
                self.table.disable_origin(entry.origin)
                journal.append(("origin", entry.origin))

                success = True
                for dependency in self._unknown_references(entry.equation):
                    if not self._resolve(dependency, resolutions, order, journal, resolving):
                        success = False
                        break
                if success:
                    resolutions[name] = entry.equation.rhs
                    order.append(name)
                    journal.append(("resolution", name))
                    return True
                self._undo(journal, mark, resolutions, order)
            return False
        finally:
            resolving.discard(name)

    def _undo(
        self,
        journal: list[tuple[str, str]],
        mark: int,
        resolutions: dict[str, Expr],
        order: list[str],
    ) -> None:
        while len(journal) > mark:
            kind, value = journal.pop()
            if kind == "origin":
                self.table.enable_origin(value)
            else:
                resolutions.pop(value, None)
                if value in order:
                    order.remove(value)

    def _unknown_references(self, equation: Equation) -> list[str]:
        return sorted(
            name for name in equation.rhs.variables() if name in self._resolvable
        )

    # -- candidate ranking ----------------------------------------------------------------
    def _ranked_candidates(
        self,
        name: str,
        resolutions: dict[str, Expr],
        resolving: set[str],
    ) -> list[TableEntry]:
        candidates = self.table.candidates(name)

        def score(entry: TableEntry) -> tuple:
            origin = entry.origin
            if origin.startswith("dipole:"):
                origin_rank = 0
            elif origin.startswith("idt:"):
                origin_rank = 1
            elif origin.startswith("kcl:"):
                origin_rank = 2
            else:
                origin_rank = 3

            rhs = entry.equation.rhs
            # Prefer definitions anchored to the quantity's own previous value
            # (storage elements): they terminate the recursion.
            anchored = 0 if name in rhs.previous_values() else 1
            # Prefer the dipole equation of the branch whose flow we define.
            own_branch = 1
            if name.startswith("I(") and origin == f"dipole:{name[2:-1]}":
                own_branch = 0
            unresolved = sum(
                1
                for reference in rhs.variables()
                if reference in self._resolvable
                and reference not in resolutions
                and reference not in resolving
            )
            return (anchored, origin_rank, own_branch, unresolved, entry.equation.name)

        return sorted(candidates, key=score)
