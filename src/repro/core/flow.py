"""The complete abstraction flow (paper Figure 4).

:class:`AbstractionFlow` chains the four steps of the methodology —
acquisition, enrichment, assemble and the linear solve — and records the time
spent in each, which is what the abstraction-cost experiment reports (the
paper quotes 7.67 s to process the RC20 model, its largest benchmark with 22
nodes and 41 branches).

The flow also dispatches on the kind of description it is given: conservative
models go through the abstraction methodology, signal-flow models are
converted directly (Section III.A), mirroring the classification of Section
III.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import AbstractionError
from ..obs.tracer import TRACER
from ..network.circuit import Circuit
from ..vams.ast import VamsModule
from ..vams.classify import classify_module
from ..vams.parser import parse_module
from .acquisition import AcquisitionResult, acquire
from .assemble import AssembledModel, Assembler, normalise_output
from .enrichment import EnrichmentResult, enrich
from .linsolve import to_signal_flow
from .signalflow import SignalFlowModel, convert_signal_flow


@dataclass
class AbstractionReport:
    """Everything produced while abstracting one model."""

    model: SignalFlowModel
    acquisition: AcquisitionResult | None = None
    enrichment: EnrichmentResult | None = None
    assembled: AssembledModel | None = None
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total processing time of the abstraction tool, in seconds."""
        return sum(self.timings.values())

    def summary(self) -> str:
        """One-paragraph human-readable description of the run."""
        lines = [f"abstraction of {self.model.name!r}"]
        if self.acquisition is not None:
            lines.append(
                f"  topology : |N| = {self.acquisition.node_count} nodes, "
                f"|B| = {self.acquisition.branch_count} branches"
            )
        if self.enrichment is not None:
            stats = self.enrichment.statistics()
            lines.append(
                f"  enriched : {stats['equations']} equations "
                f"({stats['kcl']} KCL, {stats['kvl']} KVL, {stats['solved']} solved forms)"
            )
        if self.assembled is not None:
            lines.append(
                f"  assembled: {self.assembled.cone_size} quantities in the cone, "
                f"{len(self.assembled.dropped_unknowns)} dropped"
            )
        lines.append(
            "  timings  : "
            + ", ".join(f"{step} {duration * 1e3:.2f} ms" for step, duration in self.timings.items())
        )
        lines.append(f"  total    : {self.total_time * 1e3:.2f} ms")
        return "\n".join(lines)


class AbstractionFlow:
    """End-to-end driver for the abstraction and conversion methodology.

    Parameters
    ----------
    timestep:
        The fixed timestep the generated models will execute at (the paper
        uses 50 ns for its experiments).
    method:
        Discretisation scheme for the analog operators.
    include_mesh:
        Whether the enrichment step also performs the mesh (KVL) analysis.
    """

    def __init__(
        self,
        timestep: float,
        method: str = "backward_euler",
        include_mesh: bool = True,
    ) -> None:
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        self.timestep = float(timestep)
        self.method = method
        self.include_mesh = include_mesh

    # -- conservative path ------------------------------------------------------------
    def abstract(
        self,
        model: "Circuit | VamsModule | str",
        outputs: list[str] | str,
        name: str | None = None,
        initial_state: dict[str, float] | None = None,
    ) -> AbstractionReport:
        """Abstract a conservative description for the given outputs of interest."""
        if isinstance(outputs, str):
            outputs = [outputs]

        timings: dict[str, float] = {}

        start = time.perf_counter()
        acquisition = acquire(model)
        timings["acquisition"] = time.perf_counter() - start

        ground = acquisition.circuit.ground
        normalised = [normalise_output(output, ground) for output in outputs]

        start = time.perf_counter()
        enrichment = enrich(
            acquisition, self.timestep, method=self.method, include_mesh=self.include_mesh
        )
        timings["enrichment"] = time.perf_counter() - start

        start = time.perf_counter()
        assembled = Assembler(enrichment).assemble(normalised)
        timings["assemble"] = time.perf_counter() - start

        start = time.perf_counter()
        signal_flow = to_signal_flow(
            assembled,
            enrichment,
            name=name or acquisition.circuit.name,
            timestep=self.timestep,
            initial_state=initial_state,
        )
        timings["solve"] = time.perf_counter() - start

        if TRACER.enabled:
            TRACER.add("flow.abstractions", 1.0)
            end = time.perf_counter()
            offset = sum(timings.values())
            for step in ("acquisition", "enrichment", "assemble", "solve"):
                duration = timings[step]
                # Phases were timed back-to-back ending (approximately) now,
                # so their start times reconstruct from the accumulated tail.
                TRACER.complete(
                    f"flow.{step}", end - offset, duration, "flow",
                    model=name or getattr(model, "name", None) or "<source>",
                )
                offset -= duration

        return AbstractionReport(
            model=signal_flow,
            acquisition=acquisition,
            enrichment=enrichment,
            assembled=assembled,
            timings=timings,
        )

    # -- signal-flow path -----------------------------------------------------------------
    def convert(self, module: "VamsModule | str") -> SignalFlowModel:
        """Directly convert a signal-flow Verilog-AMS description."""
        if isinstance(module, str):
            module = parse_module(module)
        return convert_signal_flow(module, self.timestep, self.method)

    # -- dispatching -------------------------------------------------------------------------
    def process(
        self,
        model: "Circuit | VamsModule | str",
        outputs: list[str] | str | None = None,
        name: str | None = None,
    ) -> AbstractionReport:
        """Classify ``model`` and run the appropriate path.

        Conservative descriptions require ``outputs``; signal-flow
        descriptions are converted directly and ``outputs`` is ignored.
        """
        module: VamsModule | None = None
        if isinstance(model, str):
            module = parse_module(model)
        elif isinstance(model, VamsModule):
            module = model

        if module is not None and classify_module(module).is_signal_flow:
            start = time.perf_counter()
            converted = self.convert(module)
            conversion_time = time.perf_counter() - start
            if TRACER.enabled:
                TRACER.add("flow.conversions", 1.0)
                TRACER.complete(
                    "flow.conversion", start, conversion_time, "flow",
                    model=name or module.name,
                )
            return AbstractionReport(
                model=converted, timings={"conversion": conversion_time}
            )

        if outputs is None:
            raise AbstractionError(
                "conservative descriptions need at least one output of interest"
            )
        return self.abstract(module if module is not None else model, outputs, name=name)


def abstract_circuit(
    model: "Circuit | VamsModule | str",
    outputs: list[str] | str,
    timestep: float,
    method: str = "backward_euler",
    name: str | None = None,
) -> SignalFlowModel:
    """One-call helper: abstract ``model`` and return only the signal-flow model."""
    flow = AbstractionFlow(timestep, method=method)
    return flow.abstract(model, outputs, name=name).model
