"""Step 1 — Acquisition (paper Section IV.A).

The acquisition step takes the conservative description — either a typed
:class:`~repro.network.circuit.Circuit`, a parsed Verilog-AMS module, or raw
Verilog-AMS source text — parses the right-hand side of every dipole equation
into an AST, stores the equations in the multimap, and retrieves the topology
graph ``G = (N, B)`` of the electrical network.  Its cost is linear in the
number of dipole equations, O(|B|).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AcquisitionError
from ..expr.equation import Equation
from ..network.circuit import Circuit
from ..network.graph import CircuitGraph
from ..vams.ast import VamsModule
from ..vams.classify import classify_module
from ..vams.netlist import to_circuit
from ..vams.parser import parse_module
from .table import EquationTable


@dataclass
class AcquisitionResult:
    """Output of the acquisition step.

    Attributes
    ----------
    circuit:
        The typed netlist of the conservative description.
    graph:
        The topology graph ``G = (N, B)``.
    table:
        The equation multimap populated with the dipole equations.
    dipole_equations:
        The dipole equations, in branch declaration order.
    inputs:
        Names of the external stimuli ``U`` driving the network.
    """

    circuit: Circuit
    graph: CircuitGraph
    table: EquationTable
    dipole_equations: list[Equation]
    inputs: list[str]

    @property
    def node_count(self) -> int:
        """``|N|``, the number of circuit nodes (including ground)."""
        return self.graph.node_count

    @property
    def branch_count(self) -> int:
        """``|B|``, the number of circuit branches."""
        return self.graph.branch_count


def _coerce_circuit(model: "Circuit | VamsModule | str") -> Circuit:
    if isinstance(model, Circuit):
        return model
    if isinstance(model, VamsModule):
        classification = classify_module(model)
        if not classification.is_conservative:
            raise AcquisitionError(
                f"module {model.name!r} is a signal-flow description; the "
                "abstraction methodology applies to conservative models "
                "(use repro.core.signalflow for direct conversion)"
            )
        return to_circuit(model)
    if isinstance(model, str):
        return _coerce_circuit(parse_module(model))
    raise AcquisitionError(
        f"cannot acquire a model of type {type(model).__name__}; expected a "
        "Circuit, a parsed VamsModule or Verilog-AMS source text"
    )


def acquire(model: "Circuit | VamsModule | str") -> AcquisitionResult:
    """Run the acquisition step on ``model``.

    Parameters
    ----------
    model:
        A typed circuit, a parsed Verilog-AMS module, or Verilog-AMS source.

    Returns
    -------
    AcquisitionResult
        The populated equation table and topology graph.

    Raises
    ------
    AcquisitionError
        When the model cannot be interpreted as a conservative description.
    """
    circuit = _coerce_circuit(model)
    try:
        circuit.validate()
    except Exception as exc:
        raise AcquisitionError(f"invalid circuit topology: {exc}") from exc

    table = EquationTable()
    dipole_equations = circuit.dipole_equations()
    for equation in dipole_equations:
        table.insert(equation)
    graph = CircuitGraph(circuit)
    return AcquisitionResult(
        circuit=circuit,
        graph=graph,
        table=table,
        dipole_equations=dipole_equations,
        inputs=circuit.input_names(),
    )
