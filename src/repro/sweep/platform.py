"""Platform-scale scenario sweeps: the whole virtual platform as the unit of work.

:class:`~repro.sweep.runner.SweepRunner` batches bare signal-flow models; the
paper's headline claim (Table III), however, is about the *complete* smart
system — MIPS firmware, bus, UART and ADC on top of the discrete-event
kernel, with one analog subsystem plugged in.  This module scales that
configuration out:

* :class:`PlatformScenarioSpec` composes four orthogonal axes into a flat
  scenario list — analog circuit parameters (any
  :class:`~repro.sweep.spec.SweepSpec`: grid, corners, Monte-Carlo), analog
  integration style (``cosim``/``eln``/``tdf``/``de``/``python``), firmware
  variant, and stimulus family;
* :class:`PlatformSweepRunner` fans the scenarios across ``multiprocessing``
  workers (serial fallback, deterministic per-scenario seeds) and runs each
  one through a fresh :class:`~repro.vp.platform.SmartSystemPlatform`;
* :class:`PlatformSweepResult` aggregates the
  :class:`~repro.vp.platform.PlatformRunResult` of every scenario into
  Table-III-style per-style summaries — wall-clock time, speed-up versus the
  co-simulation baseline, instruction counts, cross-style NRMSE of the ADC
  sample stream — with markdown/CSV reports.

Scenario outcomes are deterministic: a scenario's software-visible result
(:meth:`PlatformRunResult.fingerprint`) is identical whether it ran in the
serial loop or in a worker process, which is what makes multiprocess platform
sweeps trustworthy for design-space exploration.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.flow import AbstractionFlow
from ..core.signalflow import SignalFlowModel
from ..errors import CampaignInterrupted, ReproError, SimulationError
from ..metrics.nrmse import nrmse
from ..network.circuit import Circuit, canonical_quantity
from ..obs.progress import ProgressReporter
from ..obs.telemetry import TelemetryReport
from ..obs.tracer import TRACER, disable_tracing, enable_tracing, tracing_enabled
from ..sim.runners import resolve_steps
from ..store import RunStore, as_run_store, fingerprint
from ..vp.platform import ANALOG_STYLES, PlatformRunResult, SmartSystemPlatform
from .runner import SweepError, map_scenario_chunks
from .seeds import spawn_seeds
from .spec import Scenario, SweepSpec, _format_value

Stimuli = Mapping[str, Callable[[float], float]]

#: A stimulus family: either a ready-made stimulus mapping, or a factory
#: called with the scenario's seed (for randomized/jittered stimulus sets —
#: the factory runs inside the worker, so multiprocess runs regenerate the
#: exact same waveforms as serial ones).
StimulusFamily = "Stimuli | Callable[[int], Stimuli]"

#: Styles that integrate the *abstracted* signal-flow model (need a model).
ABSTRACTED_STYLES = ("python", "de", "tdf")
#: Styles that solve the conservative circuit directly (need the netlist).
CONSERVATIVE_STYLES = ("eln", "cosim")


@dataclass
class PlatformScenario:
    """One platform configuration: analog point × style × firmware × stimulus."""

    index: int
    label: str
    params: dict[str, float]
    style: str
    firmware: str
    stimulus: str
    seed: int
    origin: str = "platform"

    def analog_key(self) -> tuple:
        """Everything but the integration style — scenarios sharing this key
        simulate the same smart system and should agree on the outcome."""
        return (
            tuple(sorted(self.params.items())),
            self.firmware,
            self.stimulus,
        )

    def describe(self) -> str:
        params = ", ".join(
            f"{name}={_format_value(value)}" for name, value in self.params.items()
        )
        parts = [self.style, f"fw={self.firmware}", f"stim={self.stimulus}"]
        if params:
            parts.append(params)
        return f"[{self.index}] {' '.join(parts)}"

    def prepare_platform(self, platform: SmartSystemPlatform) -> None:
        """Hook called on the fully assembled platform, just before ``run``.

        The base scenario does nothing; subclasses (the fault campaign's
        :class:`~repro.fault.campaign.FaultScenario`) override it to arm
        saboteurs, schedule injections, or otherwise instrument the platform.
        Runs inside the worker process, so overrides must be picklable.
        """

    def store_key_extras(self) -> dict:
        """Extra content-key material contributed by scenario subclasses.

        Anything that changes what :meth:`prepare_platform` does to the
        platform MUST be reflected here, or a resumed campaign could load a
        differently-instrumented run's result.  The base scenario
        contributes nothing; the fault campaign's scenario adds the fault
        model, activation time and fault seed.
        """
        return {}


@dataclass
class PlatformScenarioSpec:
    """Cartesian composition of the four platform sweep axes.

    ``parameters`` reuses the signal-flow sweep machinery — any
    :class:`~repro.sweep.spec.SweepSpec` (grid/corners/Monte-Carlo, including
    composites) or an explicit scenario list; ``None`` means a single nominal
    point with the factory's default parameters.  ``firmwares`` maps a
    variant name to its assembly source (``None`` source = the platform's
    default threshold-monitor firmware).  ``stimuli`` lists the stimulus
    family *names*; the runner resolves them against its family table.

    Expansion is deterministic and row-major with the integration style
    innermost, so all styles of one analog point are adjacent and reports
    read in Table III order.  (Multiprocess chunk boundaries are not snapped
    to those groups; a chunk cut inside one costs at most one repeated
    abstraction per worker, since the abstraction memo is per-chunk.)
    Every scenario receives a deterministic ``seed``
    derived from its *analog* axes (parameter point × stimulus × firmware)
    through :func:`repro.sweep.seeds.spawn_seeds`,
    shared by all integration styles of that point — seed-aware stimulus
    families therefore drive every style of one smart system with identical
    waveforms, preserving the cross-style equivalence guarantee.
    """

    parameters: "SweepSpec | Sequence[Scenario] | None" = None
    styles: Sequence[str] = ("python",)
    firmwares: "Mapping[str, str | None] | None" = None
    stimuli: Sequence[str] = ("default",)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.styles:
            raise SweepError("a platform spec needs at least one analog style")
        unknown = [style for style in self.styles if style not in ANALOG_STYLES]
        if unknown:
            raise SweepError(
                f"unknown analog integration style(s) {unknown}; "
                f"expected a subset of {ANALOG_STYLES}"
            )
        if len(set(self.styles)) != len(list(self.styles)):
            raise SweepError("duplicate analog styles in the platform spec")
        if self.firmwares is not None and not self.firmwares:
            raise SweepError("the firmware table must name at least one variant")
        if not self.stimuli:
            raise SweepError("a platform spec needs at least one stimulus family")

    # -- axis expansion ----------------------------------------------------------------
    def firmware_table(self) -> dict[str, "str | None"]:
        """The firmware variants swept over (name → assembly source)."""
        if self.firmwares is None:
            return {"default": None}
        return dict(self.firmwares)

    def _parameter_scenarios(self) -> list[Scenario]:
        if self.parameters is None:
            points = [Scenario(index=0, label="nominal", params={}, origin="nominal")]
        elif isinstance(self.parameters, SweepSpec):
            points = self.parameters.expand()
        else:
            points = list(self.parameters)
        carrying = [point.label for point in points if point.stimuli is not None]
        if carrying:
            # Platform scenarios select stimuli by *family name* (resolved by
            # the runner); honoring a per-point stimulus mapping here would
            # silently bypass that, so make the conflict loud instead.
            raise SweepError(
                f"parameter scenarios {carrying[:3]} carry their own stimuli; "
                f"platform sweeps select stimuli through the spec's stimulus "
                f"families instead"
            )
        return points

    def expand(self) -> list[PlatformScenario]:
        """The flat, deterministically ordered platform scenario list."""
        scenarios: list[PlatformScenario] = []
        firmware_names = list(self.firmware_table())
        points = self._parameter_scenarios()
        seeds = spawn_seeds(
            self.seed, len(points) * len(list(self.stimuli)) * len(firmware_names)
        )
        analog_index = 0
        for point in points:
            for stimulus in self.stimuli:
                for firmware in firmware_names:
                    seed = seeds[analog_index]
                    analog_index += 1
                    for style in self.styles:
                        scenarios.append(
                            PlatformScenario(
                                index=len(scenarios),
                                label=point.label,
                                params=dict(point.params),
                                style=style,
                                firmware=firmware,
                                stimulus=stimulus,
                                seed=seed,
                                origin=point.origin,
                            )
                        )
        return scenarios

    def __len__(self) -> int:
        points = len(self._parameter_scenarios())
        return points * len(list(self.stimuli)) * len(self.firmware_table()) * len(
            list(self.styles)
        )


@dataclass
class PlatformSweepConfig:
    """The picklable execution recipe shipped to every worker process."""

    factory: Callable[..., Circuit]
    output: str
    timestep: float
    duration: float
    cpu_clock_hz: float
    stimuli: dict[str, StimulusFamily]
    firmwares: dict[str, "str | None"]
    method: str = "backward_euler"
    record_analog: bool = True
    #: CPU instructions executed per DE-kernel event (see
    #: :class:`~repro.vp.platform.SmartSystemPlatform`); 1 is the historical
    #: one-instruction-per-tick model, larger blocks are faster with
    #: identical scenario fingerprints.
    cpu_block_cycles: int = 256
    cosim_options: dict[str, int] = field(default_factory=dict)
    #: Pre-abstracted models keyed by the sorted parameter tuple; seeds the
    #: per-chunk abstraction memo so callers that already ran the abstraction
    #: flow (e.g. the Table III harness) do not pay for it twice.
    premade_models: dict[tuple, SignalFlowModel] = field(default_factory=dict)
    #: Capture :class:`~repro.errors.ReproError` raised while attaching or
    #: running a scenario as a ``crashed`` run result instead of aborting the
    #: whole sweep.  Fault campaigns set this: an injected fault taking the
    #: CPU down is a *classification outcome* (crash-halt), not a sweep error.
    capture_errors: bool = False
    #: Campaign-store directory; workers check it before simulating (when
    #: ``resume`` is set) and commit each run's result as it completes.
    store_dir: str | None = None
    resume: bool = False
    #: Crash simulation for resume testing: raise
    #: :class:`~repro.errors.CampaignInterrupted` after this many scenarios
    #: have been *executed* (loaded ones do not count) in one worker.
    interrupt_after: int | None = None
    #: Enable the worker-local tracer and return a telemetry payload with
    #: the chunk results (see :mod:`repro.obs`).
    trace: bool = False

    @property
    def output_quantity(self) -> str:
        return canonical_quantity(self.output)


def _platform_store_inputs(
    config: PlatformSweepConfig, scenario: PlatformScenario
) -> dict:
    """The full-input payload whose digest addresses one platform run.

    Covers the circuit factory, analog parameters, integration style,
    firmware *source* (names are presentation; the assembled image is what
    runs), resolved stimulus family plus scenario seed, the execution grid
    and any scenario-subclass extras (fault spec).  ``cpu_block_cycles`` is
    deliberately excluded: block-stepped execution is guaranteed (and
    tested) to produce bit-identical fingerprints and ADC traces at any
    block size, so records are shared across block configurations.
    ``cosim_options`` only key co-simulation scenarios, the one style they
    affect.  Scenario position/label are excluded — identical work shares a
    record no matter where it sits in the expansion.
    """
    return {
        "engine": "platform-sweep",
        "factory": fingerprint(config.factory),
        "output": config.output,
        "timestep": config.timestep,
        "duration": config.duration,
        "cpu_clock_hz": config.cpu_clock_hz,
        "method": config.method,
        "record_analog": config.record_analog,
        "cosim_options": (
            [[name, value] for name, value in sorted(config.cosim_options.items())]
            if scenario.style == "cosim"
            else []
        ),
        "firmware": config.firmwares[scenario.firmware],
        "stimulus": fingerprint(config.stimuli[scenario.stimulus]),
        "seed": scenario.seed,
        "style": scenario.style,
        # fingerprint() also canonicalizes numpy-typed parameter values
        # (np.float32/np.int64 from array-built axes are not JSON types).
        "params": [
            [name, fingerprint(value)]
            for name, value in sorted(scenario.params.items())
        ],
        "extras": scenario.store_key_extras(),
    }


def _resolve_stimuli(config: PlatformSweepConfig, scenario: PlatformScenario) -> Stimuli:
    try:
        family = config.stimuli[scenario.stimulus]
    except KeyError as exc:
        raise SweepError(
            f"scenario {scenario.describe()} names stimulus family "
            f"{scenario.stimulus!r}, but the runner only knows "
            f"{sorted(config.stimuli)}"
        ) from exc
    if callable(family):
        return family(scenario.seed)
    return family


def _run_platform_scenario(
    config: PlatformSweepConfig,
    scenario: PlatformScenario,
    model_memo: dict,
) -> tuple[PlatformRunResult, float]:
    """Build, attach and run one platform configuration; returns (result, wall)."""
    stimuli = _resolve_stimuli(config, scenario)
    platform = SmartSystemPlatform(
        cpu_clock_hz=config.cpu_clock_hz,
        analog_timestep=config.timestep,
        firmware=config.firmwares[scenario.firmware],
        record_analog=config.record_analog,
        cpu_block_cycles=config.cpu_block_cycles,
    )
    start = None
    try:
        if scenario.style in ABSTRACTED_STYLES:
            # Build the circuit only on a memo miss: with a seeded/memoised
            # model the netlist is never needed (and the factory never called).
            key = tuple(sorted(scenario.params.items()))
            model = model_memo.get(key)
            if model is None:
                circuit = config.factory(**scenario.params)
                flow = AbstractionFlow(config.timestep, method=config.method)
                model = flow.abstract(
                    circuit, config.output, name=circuit.name
                ).model
                model_memo[key] = model
            platform.attach_analog(scenario.style, stimuli, model=model)
        else:
            platform.attach_analog(
                scenario.style,
                stimuli,
                circuit=config.factory(**scenario.params),
                output=config.output_quantity,
                **(config.cosim_options if scenario.style == "cosim" else {}),
            )
        scenario.prepare_platform(platform)
        start = _time.perf_counter()
        result = platform.run(config.duration)
        return result, _time.perf_counter() - start
    except ReproError as error:
        if not config.capture_errors:
            raise
        result = platform.snapshot(crashed=f"{type(error).__name__}: {error}")
        wall = _time.perf_counter() - start if start is not None else 0.0
        return result, wall


def _run_platform_chunk(
    payload: tuple[PlatformSweepConfig, list[PlatformScenario]],
    progress: "Callable[[int], None] | None" = None,
) -> dict:
    """Run one contiguous chunk of platform scenarios (worker entry point).

    With a campaign store configured, each scenario's content key is checked
    before simulating: committed runs are loaded (``resume``), fresh runs
    are committed atomically the moment they complete — killing the process
    mid-chunk preserves every finished scenario.  ``interrupt_after``
    simulates exactly that kill: the worker raises
    :class:`~repro.errors.CampaignInterrupted` once its execution budget is
    spent, *after* committing what it ran.

    The ``progress`` callback is only ever passed by the serial path (pool
    submissions keep the payload a picklable tuple); with ``config.trace``
    set the chunk enables the process-local tracer and returns a compact
    telemetry payload under the ``"telemetry"`` key.
    """
    config, scenarios = payload
    store = RunStore(config.store_dir) if config.store_dir else None
    results: list[PlatformRunResult] = []
    elapsed: list[float] = []
    executed: list[bool] = []
    executed_count = 0
    tracer_was_enabled = TRACER.enabled
    if config.trace and not tracer_was_enabled:
        enable_tracing()
    trace_on = TRACER.enabled
    telemetry_mark = TRACER.mark() if trace_on else None
    # The abstracted model depends only on the analog parameters, so the
    # three abstracted styles of one analog point share one abstraction.
    model_memo: dict[tuple, SignalFlowModel] = dict(config.premade_models)
    try:
        for scenario in scenarios:
            inputs = key = None
            if store is not None:
                inputs = _platform_store_inputs(config, scenario)
                key = store.key(inputs)
                if config.resume:
                    record = store.load(key)
                    if record is not None:
                        stored = PlatformRunResult.from_payload(record["result"])
                        # A crashed result is only a valid outcome under error
                        # capture; without it the engine's contract is to raise,
                        # so re-execute and let the real error surface.
                        if stored.crashed is not None and not config.capture_errors:
                            record = None
                        else:
                            results.append(stored)
                            elapsed.append(float(record.get("elapsed", 0.0)))
                            executed.append(False)
                            if trace_on:
                                TRACER.add("platform.loaded")
                            if progress is not None:
                                progress(1)
                            continue
            if (
                config.interrupt_after is not None
                and executed_count >= config.interrupt_after
            ):
                raise CampaignInterrupted(
                    f"worker interrupted after executing {executed_count} "
                    f"scenario(s); {len(store) if store is not None else 0} "
                    f"record(s) committed"
                )
            result, wall = _run_platform_scenario(config, scenario, model_memo)
            if store is not None:
                store.commit(
                    key, {"result": result.to_payload(), "elapsed": wall}, inputs=inputs
                )
            results.append(result)
            elapsed.append(wall)
            executed.append(True)
            executed_count += 1
            if trace_on:
                TRACER.add("platform.runs")
                TRACER.add("platform.instructions", float(result.instructions))
                TRACER.add("platform.bus_transactions", float(result.bus_transactions))
                TRACER.add("platform.analog_samples", float(result.analog_samples))
                if result.crashed is not None:
                    TRACER.add("platform.crashes")
            if progress is not None:
                progress(1)
    finally:
        if config.trace and not tracer_was_enabled:
            disable_tracing()
    telemetry = TRACER.collect(telemetry_mark) if telemetry_mark is not None else None
    return {
        "results": results,
        "elapsed": elapsed,
        "executed": executed,
        "telemetry": telemetry,
    }


class PlatformSweepRunner:
    """Expand a platform spec, run every scenario, aggregate into a result.

    Parameters
    ----------
    factory:
        Circuit factory called with each scenario's analog parameters.  Must
        be picklable (a module-level function) for multiprocess runs.
    output:
        The analog output observed by the ADC bridge (``"out"`` or
        ``"V(out)"``).
    stimuli:
        Either one stimulus mapping (registered as the ``"default"`` family)
        or a mapping of family name → stimulus family; a family may be a
        callable taking the scenario seed for randomized stimuli.
    timestep / cpu_clock_hz / method:
        Platform construction parameters (analog timestep, CPU clock) and
        the discretisation method of the abstraction flow.
    families:
        Forces the interpretation of ``stimuli``: ``True`` = family table,
        ``False`` = plain stimulus mapping, ``None`` (default) = auto-detect
        (any ``Mapping`` value means a family table).  Only needed for a
        family table whose every family is a seed-taking factory, which is
        indistinguishable from a plain waveform mapping by inspection.
    workers:
        ``multiprocessing`` worker count; ``1`` runs serially.  Multiprocess
        and serial runs produce identical per-scenario outcomes.
    record_analog:
        Record the ADC sample stream of every run (needed for cross-style
        NRMSE columns; costs one float per analog timestep).
    cpu_block_cycles:
        Instructions the MIPS ISS retires per DE-kernel event in every
        platform (``1`` = the historical one-per-tick model).  Any value
        produces identical scenario fingerprints; larger blocks are faster.
    capture_errors:
        Record a scenario whose attach/run raises a
        :class:`~repro.errors.ReproError` as a *crashed*
        :class:`~repro.vp.platform.PlatformRunResult` instead of aborting the
        sweep (see the fault campaign layer, :mod:`repro.fault`).
    store:
        A campaign directory (or :class:`~repro.store.RunStore`) into which
        every completed run's outcome — fingerprint fields, metrics and the
        optional ADC trace — is committed atomically as it finishes.
    resume:
        Load runs already committed to ``store`` instead of re-executing
        them (requires ``store``).  A resumed sweep's fingerprints are
        bit-identical to an uninterrupted run's.
    interrupt_after:
        Testing/CI hook simulating a crash: each worker raises
        :class:`~repro.errors.CampaignInterrupted` after *executing* (not
        loading) this many scenarios, leaving the store with exactly the
        committed prefix.
    trace:
        Collect per-worker telemetry and attach a merged
        :class:`~repro.obs.telemetry.TelemetryReport` to the result.
        ``None`` (the default) follows the process-wide tracing switch
        (:func:`repro.obs.enable_tracing`).
    progress:
        Render a live throttled progress line on stderr.  ``None`` (the
        default) shows it only when stderr is a terminal.
    """

    def __init__(
        self,
        factory: Callable[..., Circuit],
        output: str,
        stimuli: "Stimuli | Mapping[str, StimulusFamily]",
        timestep: float = 50e-9,
        cpu_clock_hz: float = 20e6,
        method: str = "backward_euler",
        families: "bool | None" = None,
        workers: int = 1,
        record_analog: bool = True,
        cpu_block_cycles: int = 256,
        cosim_options: "Mapping[str, int] | None" = None,
        premade_models: "Sequence[tuple[Mapping[str, float], SignalFlowModel]] | None" = None,
        capture_errors: bool = False,
        store: "RunStore | str | None" = None,
        resume: bool = False,
        interrupt_after: "int | None" = None,
        trace: "bool | None" = None,
        progress: "bool | None" = None,
    ) -> None:
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if cpu_block_cycles < 1:
            raise ValueError("cpu_block_cycles must be at least 1")
        if interrupt_after is not None and interrupt_after < 0:
            raise ValueError("interrupt_after must be non-negative")
        self.factory = factory
        self.output = output
        self.stimuli = self._normalise_families(stimuli, families)
        self.timestep = float(timestep)
        self.cpu_clock_hz = float(cpu_clock_hz)
        self.method = method
        self.workers = int(workers)
        self.record_analog = bool(record_analog)
        self.cpu_block_cycles = int(cpu_block_cycles)
        self.cosim_options = dict(cosim_options or {})
        self.capture_errors = bool(capture_errors)
        self.store = as_run_store(store)
        if resume and self.store is None:
            raise SweepError("resume=True needs a store to resume from")
        self.resume = bool(resume)
        if interrupt_after is not None and self.store is None:
            raise SweepError("interrupt_after without a store would lose all work")
        self.interrupt_after = interrupt_after
        self.trace = trace
        self.progress = progress
        #: (params, model) pairs of already-abstracted analog points.
        self.premade_models = {
            tuple(sorted(params.items())): model
            for params, model in (premade_models or ())
        }

    @staticmethod
    def _normalise_families(
        stimuli: "Stimuli | Mapping[str, StimulusFamily]",
        families: "bool | None",
    ) -> dict[str, StimulusFamily]:
        """A plain input-name → waveform mapping becomes the default family."""
        if not stimuli:
            raise SweepError("the platform sweep needs at least one stimulus")
        if families is None:
            families = any(isinstance(value, Mapping) for value in stimuli.values())
        if families:
            return {name: family for name, family in stimuli.items()}
        return {"default": dict(stimuli)}

    # -- execution ---------------------------------------------------------------------
    def run(
        self,
        spec: "PlatformScenarioSpec | Sequence[PlatformScenario]",
        duration: float,
        firmwares: "Mapping[str, str | None] | None" = None,
    ) -> "PlatformSweepResult":
        """Simulate every scenario of ``spec`` for ``duration`` seconds.

        A plain scenario list (e.g. a filtered ``spec.expand()``) carries
        firmware *names* only, so the sources must be supplied via
        ``firmwares`` — scenarios naming anything but ``"default"`` are
        rejected otherwise, rather than silently running on the platform's
        default firmware.
        """
        if isinstance(spec, PlatformScenarioSpec):
            scenarios = spec.expand()
            if firmwares is None:
                firmwares = spec.firmware_table()
        else:
            scenarios = list(spec)
            if firmwares is None:
                named = {scenario.firmware for scenario in scenarios}
                unknown = sorted(named - {"default"})
                if unknown:
                    raise SweepError(
                        f"a plain scenario list names firmware variants "
                        f"{unknown} but no sources were given; pass "
                        f"run(..., firmwares={{name: source}}) or run the "
                        f"PlatformScenarioSpec itself"
                    )
                firmwares = {name: None for name in named}
        firmwares = dict(firmwares)
        missing_firmware = sorted(
            {s.firmware for s in scenarios} - set(firmwares)
        )
        if missing_firmware:
            raise SweepError(
                f"scenarios reference unknown firmware variants "
                f"{missing_firmware}; the firmware table has {sorted(firmwares)}"
            )
        if not scenarios:
            raise SweepError("the platform spec expanded to zero scenarios")
        try:
            resolve_steps(duration, self.timestep)
        except SimulationError as exc:
            raise SweepError(str(exc)) from exc
        missing = [
            scenario.stimulus
            for scenario in scenarios
            if scenario.stimulus not in self.stimuli
        ]
        if missing:
            raise SweepError(
                f"scenarios reference unknown stimulus families "
                f"{sorted(set(missing))}; the runner knows {sorted(self.stimuli)}"
            )

        config = PlatformSweepConfig(
            factory=self.factory,
            output=self.output,
            timestep=self.timestep,
            duration=float(duration),
            cpu_clock_hz=self.cpu_clock_hz,
            stimuli=self.stimuli,
            firmwares=dict(firmwares),
            method=self.method,
            record_analog=self.record_analog,
            cpu_block_cycles=self.cpu_block_cycles,
            cosim_options=self.cosim_options,
            premade_models=self.premade_models,
            capture_errors=self.capture_errors,
            store_dir=str(self.store.directory) if self.store is not None else None,
            resume=self.resume,
            interrupt_after=self.interrupt_after,
            trace=tracing_enabled() if self.trace is None else bool(self.trace),
        )

        reporter = ProgressReporter(
            len(scenarios), "platform scenarios", enabled=self.progress
        )
        advance = reporter.advance if reporter.active else None

        wall_start = _time.perf_counter()
        workers_used = 1
        chunk_results = None
        try:
            if self.workers > 1 and len(scenarios) > 1:
                chunk_results = map_scenario_chunks(
                    _run_platform_chunk, config, scenarios, self.workers, advance
                )
                if chunk_results is not None:
                    workers_used = min(self.workers, len(scenarios))
            if chunk_results is None:
                chunk_results = [
                    _run_platform_chunk((config, scenarios), progress=advance)
                ]
        finally:
            reporter.finish()

        results: list[PlatformRunResult] = []
        elapsed: list[float] = []
        executed: list[bool] = []
        for chunk in chunk_results:
            results.extend(chunk["results"])
            elapsed.extend(chunk["elapsed"])
            executed.extend(chunk["executed"])
        wall = _time.perf_counter() - wall_start
        elapsed_array = np.asarray(elapsed, dtype=float)
        executed_array = np.asarray(executed, dtype=bool)
        telemetry = None
        if config.trace:
            telemetry = TelemetryReport.merge(
                "platform-sweep",
                [chunk.get("telemetry") for chunk in chunk_results],
                scenarios=len(scenarios),
                executed=int(np.count_nonzero(executed_array)),
                wall=wall,
                workers=workers_used,
                latencies=elapsed_array[executed_array],
            )
        return PlatformSweepResult(
            scenarios=scenarios,
            results=results,
            elapsed=elapsed_array,
            duration=float(duration),
            timestep=self.timestep,
            workers=workers_used,
            timings={
                "wall": wall,
                "simulate": float(sum(elapsed)),
            },
            executed=executed_array,
            telemetry=telemetry,
        )


@dataclass
class PlatformSweepResult:
    """Everything produced by one :class:`PlatformSweepRunner` run."""

    scenarios: list[PlatformScenario]
    results: list[PlatformRunResult]
    #: Per-scenario wall-clock seconds spent inside ``platform.run``.
    elapsed: np.ndarray
    duration: float
    timestep: float
    workers: int = 1
    timings: dict[str, float] = field(default_factory=dict)
    #: Per-scenario execution flags: ``True`` for scenarios simulated by this
    #: run, ``False`` for scenarios loaded from a campaign store (resume).
    executed: "np.ndarray | None" = None
    #: Merged worker telemetry when the run was traced; ``None`` otherwise.
    telemetry: "TelemetryReport | None" = None
    #: Memoised scenario_nrmse() result; the traces are immutable after the
    #: run and the reports query the errors once per row.
    _nrmse_cache: "np.ndarray | None | bool" = field(
        default=False, init=False, repr=False, compare=False
    )

    # -- shape queries -----------------------------------------------------------------
    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def executed_count(self) -> int:
        """Scenarios actually simulated (all of them without a resume store)."""
        if self.executed is None:
            return self.n_scenarios
        return int(np.count_nonzero(self.executed))

    def styles(self) -> list[str]:
        """The integration styles present, in first-appearance order."""
        seen: list[str] = []
        for scenario in self.scenarios:
            if scenario.style not in seen:
                seen.append(scenario.style)
        return seen

    @property
    def baseline_style(self) -> str:
        """The style speed-ups are measured against: co-simulation when it is
        part of the sweep (the paper's pre-abstraction configuration),
        otherwise the first style swept."""
        styles = self.styles()
        return "cosim" if "cosim" in styles else styles[0]

    # -- determinism -------------------------------------------------------------------
    def fingerprints(self) -> list[tuple]:
        """Per-scenario deterministic outcomes (see
        :meth:`~repro.vp.platform.PlatformRunResult.fingerprint`)."""
        return [result.fingerprint() for result in self.results]

    # -- per-scenario metrics -----------------------------------------------------------
    def instructions(self) -> np.ndarray:
        return np.array([result.instructions for result in self.results], dtype=float)

    def analog_samples(self) -> np.ndarray:
        return np.array([result.analog_samples for result in self.results], dtype=float)

    def crossings(self) -> np.ndarray:
        return np.array(
            [result.crossings_reported for result in self.results], dtype=float
        )

    def scenario_nrmse(self) -> "np.ndarray | None":
        """Per-scenario NRMSE of the ADC stream versus the baseline style.

        For every scenario the partner is the scenario with the same analog
        point, firmware and stimulus but the baseline integration style; a
        one-sample alignment offset between engines is tolerated, matching
        :func:`repro.metrics.nrmse.compare_traces`.  ``None`` when analog
        recording was off; baseline scenarios report 0.
        """
        if self._nrmse_cache is not False:
            return self._nrmse_cache
        if any(result.analog_trace is None for result in self.results):
            self._nrmse_cache = None
            return None
        baseline = self.baseline_style
        reference: dict[tuple, np.ndarray] = {}
        for scenario, result in zip(self.scenarios, self.results):
            if scenario.style == baseline:
                reference[scenario.analog_key()] = np.asarray(result.analog_trace)
        errors = np.full(self.n_scenarios, np.nan)
        for position, (scenario, result) in enumerate(
            zip(self.scenarios, self.results)
        ):
            partner = reference.get(scenario.analog_key())
            if partner is None:
                continue
            if scenario.style == baseline:
                errors[position] = 0.0
                continue
            errors[position] = _aligned_nrmse(
                partner, np.asarray(result.analog_trace)
            )
        self._nrmse_cache = errors
        return errors

    # -- aggregation -------------------------------------------------------------------
    def summary_by_style(self) -> dict[str, dict[str, float]]:
        """Table-III-style per-style aggregation over all scenarios."""
        nrmse_values = self.scenario_nrmse()
        baseline_mask = np.array(
            [scenario.style == self.baseline_style for scenario in self.scenarios]
        )
        baseline_mean = (
            float(self.elapsed[baseline_mask].mean()) if baseline_mask.any() else None
        )
        instructions = self.instructions()
        analog_samples = self.analog_samples()
        crossings = self.crossings()
        summary: dict[str, dict[str, float]] = {}
        for style in self.styles():
            mask = np.array(
                [scenario.style == style for scenario in self.scenarios]
            )
            mean_elapsed = float(self.elapsed[mask].mean())
            entry = {
                "scenarios": int(mask.sum()),
                "mean_time": mean_elapsed,
                "total_time": float(self.elapsed[mask].sum()),
                "speedup": (
                    baseline_mean / mean_elapsed
                    if baseline_mean is not None and mean_elapsed > 0.0
                    else float("nan")
                ),
                "instructions_mean": float(instructions[mask].mean()),
                "analog_samples_mean": float(analog_samples[mask].mean()),
                "crossings_mean": float(crossings[mask].mean()),
            }
            if nrmse_values is not None:
                style_errors = nrmse_values[mask]
                style_errors = style_errors[~np.isnan(style_errors)]
                if style_errors.size:
                    entry["nrmse_mean"] = float(style_errors.mean())
                    entry["nrmse_max"] = float(style_errors.max())
            summary[style] = entry
        return summary

    # -- reporting ---------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Markdown report: per-style Table-III summary plus scenario table."""
        lines = [
            f"# Platform sweep report — {self.n_scenarios} scenarios",
            "",
            f"- simulated time per scenario: {self.duration:g} s "
            f"({resolve_steps(self.duration, self.timestep)} analog steps of "
            f"{self.timestep:g} s)",
            f"- workers: {self.workers}",
            f"- baseline style: `{self.baseline_style}`",
        ]
        for phase, seconds in self.timings.items():
            lines.append(f"- {phase}: {seconds:.3f} s")
        lines.append("")
        lines.append("## Integration styles (Table III layout)")
        lines.append("")
        summary = self.summary_by_style()
        has_nrmse = any("nrmse_mean" in entry for entry in summary.values())
        header = "| style | scenarios | mean time (s) | speed-up | instructions |"
        divider = "|---|---|---|---|---|"
        if has_nrmse:
            header += " NRMSE mean | NRMSE max |"
            divider += "---|---|"
        lines.append(header)
        lines.append(divider)
        for style, entry in summary.items():
            row = (
                f"| {style} | {entry['scenarios']} | {entry['mean_time']:.4f} "
                f"| {entry['speedup']:.2f}x | {entry['instructions_mean']:.0f} |"
            )
            if has_nrmse:
                mean = entry.get("nrmse_mean")
                peak = entry.get("nrmse_max")
                row += (
                    f" {mean:.3e} | {peak:.3e} |"
                    if mean is not None
                    else " - | - |"
                )
            lines.append(row)
        lines.append("")
        lines.append("## Scenarios")
        lines.append("")
        header_cells = self._header_cells()
        lines.append("| " + " | ".join(header_cells) + " |")
        lines.append("|" + "---|" * len(header_cells))
        for index in range(self.n_scenarios):
            lines.append("| " + " | ".join(self._row_cells(index)) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The per-scenario table as CSV (quoted label/params columns)."""
        rows = [",".join(self._header_cells())]
        for index in range(self.n_scenarios):
            cells = self._row_cells(index)
            cells[1] = f'"{cells[1]}"'
            cells[2] = f'"{cells[2]}"'
            rows.append(",".join(cells))
        return "\n".join(rows)

    def _header_cells(self) -> list[str]:
        cells = [
            "#",
            "label",
            "params",
            "style",
            "firmware",
            "stimulus",
            "time_s",
            "instructions",
            "analog_samples",
            "crossings",
            "uart_bytes",
        ]
        if self.scenario_nrmse() is not None:
            cells.append("nrmse_vs_baseline")
        return cells

    def _row_cells(self, index: int) -> list[str]:
        scenario = self.scenarios[index]
        result = self.results[index]
        params = ";".join(
            f"{name}={_format_value(value)}"
            for name, value in scenario.params.items()
        )
        cells = [
            str(scenario.index),
            scenario.label,
            params,
            scenario.style,
            scenario.firmware,
            scenario.stimulus,
            f"{self.elapsed[index]:.4f}",
            str(result.instructions),
            str(result.analog_samples),
            str(result.crossings_reported),
            str(len(result.uart_output)),
        ]
        errors = self.scenario_nrmse()
        if errors is not None:
            value = errors[index]
            cells.append("-" if np.isnan(value) else f"{value:.3e}")
        return cells


def _aligned_nrmse(reference: np.ndarray, measured: np.ndarray) -> float:
    """NRMSE between two sample streams, tolerating a one-sample offset.

    The integration styles sample the same analog grid but may start one
    delta-aligned sample apart (exactly the offset
    :func:`repro.metrics.nrmse.compare_traces` resamples away for traces);
    with raw index-aligned streams the equivalent is taking the best of the
    {-1, 0, +1} shifts.
    """
    best = np.inf
    for shift in (-1, 0, 1):
        if shift >= 0:
            a, b = reference[shift:], measured
        else:
            a, b = reference, measured[-shift:]
        length = min(a.size, b.size)
        if length == 0:
            continue
        best = min(best, nrmse(a[:length], b[:length]))
    if not np.isfinite(best):
        raise SweepError("cannot compare empty analog traces")
    return float(best)
