"""Ensemble results of a sweep: waveform matrices plus aggregation helpers.

A :class:`SweepResult` holds one waveform matrix per recorded output —
shape ``(n_scenarios, n_steps)`` — together with the scenario list that
produced it.  Aggregation follows the conventions of the experiment harness
(:mod:`repro.experiments`): per-scenario rows, summary statistics over the
ensemble, and text/markdown/CSV renderings for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.trace import TraceSet
from .spec import Scenario


@dataclass
class SweepResult:
    """Everything produced by one :class:`~repro.sweep.runner.SweepRunner` run."""

    scenarios: list[Scenario]
    #: Sample times shared by every scenario, shape ``(n_steps,)``.
    times: np.ndarray
    #: Output name → waveform matrix of shape ``(n_scenarios, n_steps)``.
    outputs: dict[str, np.ndarray]
    backend: str
    workers: int = 1
    #: Wall-clock seconds spent in each phase (``abstract``, ``simulate``...).
    timings: dict[str, float] = field(default_factory=dict)
    #: Number of distinct model structures among the scenarios (the batching
    #: granularity of the vectorized backend).
    structure_groups: int = 0
    #: Output name → per-scenario NRMSE versus the reference AMS engine
    #: (present only when the run requested the reference comparison).
    nrmse: dict[str, np.ndarray] | None = None
    #: Per-scenario execution flags: ``True`` for scenarios simulated by this
    #: run, ``False`` for scenarios loaded from a campaign store (resume).
    #: ``None`` on results built before the store layer existed.
    executed: np.ndarray | None = None
    #: Merged worker telemetry (:class:`~repro.obs.telemetry.TelemetryReport`)
    #: when the run was traced; ``None`` otherwise.
    telemetry: object | None = None

    # -- shape queries -----------------------------------------------------------------
    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def executed_count(self) -> int:
        """Scenarios actually simulated (all of them without a resume store)."""
        if self.executed is None:
            return self.n_scenarios
        return int(np.count_nonzero(self.executed))

    @property
    def n_steps(self) -> int:
        return int(self.times.size)

    def output_names(self) -> list[str]:
        """Names of the recorded outputs."""
        return list(self.outputs)

    # -- ensemble access ---------------------------------------------------------------
    def ensemble(self, name: str) -> np.ndarray:
        """The full waveform matrix of ``name``, shape ``(n_scenarios, n_steps)``."""
        return self.outputs[name]

    def waveform(self, name: str, index: int) -> np.ndarray:
        """One scenario's waveform for output ``name``."""
        return self.outputs[name][index]

    def final_values(self, name: str) -> np.ndarray:
        """Per-scenario value of ``name`` at the final timestep."""
        return self.outputs[name][:, -1]

    def trace_set(self, index: int) -> TraceSet:
        """The scenario's waveforms as a :class:`TraceSet` (engine-compatible)."""
        traces = TraceSet()
        for name, matrix in self.outputs.items():
            trace = traces.add(name)
            for time, value in zip(self.times, matrix[index]):
                trace.append(float(time), float(value))
        return traces

    def envelope(self, name: str) -> dict[str, np.ndarray]:
        """Per-timestep ensemble statistics of output ``name``.

        Returns ``mean``, ``std``, ``min`` and ``max`` arrays of shape
        ``(n_steps,)`` — the tolerance band the sweep explored.
        """
        matrix = self.outputs[name]
        return {
            "mean": matrix.mean(axis=0),
            "std": matrix.std(axis=0),
            "min": matrix.min(axis=0),
            "max": matrix.max(axis=0),
        }

    # -- aggregation -------------------------------------------------------------------
    def summary(self) -> dict[str, dict[str, float]]:
        """Summary statistics of the final values, one entry per output."""
        stats: dict[str, dict[str, float]] = {}
        for name, matrix in self.outputs.items():
            final = matrix[:, -1]
            entry = {
                "mean": float(final.mean()),
                "std": float(final.std()),
                "min": float(final.min()),
                "max": float(final.max()),
            }
            if self.nrmse is not None and name in self.nrmse:
                entry["nrmse_max"] = float(np.max(self.nrmse[name]))
                entry["nrmse_mean"] = float(np.mean(self.nrmse[name]))
            stats[name] = entry
        return stats

    # -- reporting ---------------------------------------------------------------------
    def _row_cells(self, index: int) -> list[str]:
        scenario = self.scenarios[index]
        params = ";".join(
            f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
            for name, value in scenario.params.items()
        )
        cells = [str(scenario.index), scenario.origin, scenario.label, params]
        for name in self.outputs:
            cells.append(f"{self.outputs[name][index, -1]:.6g}")
            if self.nrmse is not None and name in self.nrmse:
                cells.append(f"{self.nrmse[name][index]:.3e}")
        return cells

    def _header_cells(self) -> list[str]:
        cells = ["#", "origin", "label", "params"]
        for name in self.outputs:
            cells.append(f"final {name}")
            if self.nrmse is not None and name in self.nrmse:
                cells.append(f"NRMSE {name}")
        return cells

    def to_markdown(self) -> str:
        """Render the sweep as a markdown report (summary plus per-scenario table)."""
        lines = [
            f"# Sweep report — {self.n_scenarios} scenarios, backend `{self.backend}`",
            "",
            f"- timesteps: {self.n_steps} (dt spanning {self.times[0]:g} s → {self.times[-1]:g} s)",
            f"- structure groups: {self.structure_groups}",
            f"- workers: {self.workers}",
        ]
        for phase, seconds in self.timings.items():
            lines.append(f"- {phase}: {seconds:.3f} s")
        lines.append("")
        lines.append("## Ensemble summary (final values)")
        lines.append("")
        lines.append("| output | mean | std | min | max |")
        lines.append("|---|---|---|---|---|")
        for name, stats in self.summary().items():
            lines.append(
                f"| {name} | {stats['mean']:.6g} | {stats['std']:.3g} "
                f"| {stats['min']:.6g} | {stats['max']:.6g} |"
            )
        lines.append("")
        lines.append("## Scenarios")
        lines.append("")
        header = self._header_cells()
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for index in range(self.n_scenarios):
            lines.append("| " + " | ".join(self._row_cells(index)) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the per-scenario table as CSV (comma-separated, quoted params)."""
        rows = [",".join(self._header_cells())]
        for index in range(self.n_scenarios):
            cells = self._row_cells(index)
            cells[2] = f'"{cells[2]}"'
            cells[3] = f'"{cells[3]}"'
            rows.append(",".join(cells))
        return "\n".join(rows)
