"""Declarative sweep specifications: what to simulate, not how.

A sweep spec describes a family of scenarios over one circuit factory — a
Cartesian parameter grid, a process-corner enumeration, or a tolerance
Monte-Carlo — and expands into a flat list of :class:`Scenario` objects.
Each scenario is a circuit-factory parameterization (keyword arguments for
the factory) plus an optional stimulus choice; the :class:`SweepRunner
<repro.sweep.runner.SweepRunner>` turns the list into ensemble waveforms.

Specs are composable: ``grid + corners + monte_carlo`` concatenates the
scenario lists (re-indexed), so one run can mix systematic and statistical
coverage.  Monte-Carlo expansion is deterministic for a given seed — the
same spec always produces the same scenarios, which is what makes sweep
results reproducible and multiprocess execution order-independent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

Stimuli = Mapping[str, Callable[[float], float]]


def _format_value(value: float) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass
class Scenario:
    """One point of a sweep: factory parameters plus an optional stimulus set."""

    index: int
    label: str
    params: dict[str, float]
    stimuli: Stimuli | None = None
    origin: str = "sweep"

    def describe(self) -> str:
        """Compact human-readable form used by reports."""
        params = ", ".join(
            f"{name}={_format_value(value)}" for name, value in self.params.items()
        )
        return f"[{self.index}] {self.label} ({params})" if params else f"[{self.index}] {self.label}"


class SweepSpec:
    """Base class of every sweep specification."""

    #: Stimuli applied to every scenario this spec expands to (``None`` keeps
    #: the runner's default stimuli).
    stimuli: Stimuli | None = None
    #: Short tag recorded as :attr:`Scenario.origin`.
    origin: str = "sweep"

    def _points(self) -> Iterable[tuple[str, dict[str, float]]]:
        """Yield ``(label, params)`` pairs; implemented by subclasses."""
        raise NotImplementedError

    def expand(self) -> list[Scenario]:
        """Expand into the flat, deterministically ordered scenario list."""
        return [
            Scenario(index=index, label=label, params=params, stimuli=self.stimuli, origin=self.origin)
            for index, (label, params) in enumerate(self._points())
        ]

    def __len__(self) -> int:
        return len(self.expand())

    def __add__(self, other: "SweepSpec") -> "CompositeSpec":
        if not isinstance(other, SweepSpec):
            return NotImplemented
        return CompositeSpec([self, other])


@dataclass
class GridSpec(SweepSpec):
    """Full Cartesian product over the ``axes`` values, on top of ``base``.

    >>> GridSpec(axes={"resistance": [4e3, 5e3], "capacitance": [20e-9, 25e-9]})
    ... # doctest: +SKIP
    expands to 4 scenarios: every (R, C) combination, in row-major axis order.
    """

    axes: Mapping[str, Sequence[float]]
    base: Mapping[str, float] = field(default_factory=dict)
    stimuli: Stimuli | None = None
    origin: str = "grid"

    def _points(self) -> Iterable[tuple[str, dict[str, float]]]:
        names = list(self.axes)
        if not names:
            yield "base", dict(self.base)
            return
        for values in itertools.product(*(self.axes[name] for name in names)):
            params = dict(self.base)
            params.update(zip(names, values))
            label = ",".join(
                f"{name}={_format_value(value)}" for name, value in zip(names, values)
            )
            yield label, params


@dataclass
class CornerSpec(SweepSpec):
    """Process-corner enumeration: every low/high combination of ``corners``.

    ``corners`` maps a parameter name to its ``(low, high)`` extremes; the
    expansion covers all ``2**k`` corners (plus the nominal point when
    ``include_nominal`` is set), each parameter taking either extreme on top
    of the ``nominal`` values.
    """

    nominal: Mapping[str, float]
    corners: Mapping[str, tuple[float, float]]
    include_nominal: bool = True
    stimuli: Stimuli | None = None
    origin: str = "corners"

    def _points(self) -> Iterable[tuple[str, dict[str, float]]]:
        if self.include_nominal:
            yield "nominal", dict(self.nominal)
        names = list(self.corners)
        for choice in itertools.product((0, 1), repeat=len(names)):
            params = dict(self.nominal)
            tags = []
            for name, pick in zip(names, choice):
                low, high = self.corners[name]
                params[name] = high if pick else low
                tags.append(f"{name}:{'hi' if pick else 'lo'}")
            yield ",".join(tags), params


@dataclass
class MonteCarloSpec(SweepSpec):
    """Tolerance Monte-Carlo: random scatter around the nominal point.

    ``tolerances`` maps a parameter name to its relative tolerance (``0.05``
    means ±5 %).  ``distribution`` is ``"uniform"`` (flat within the tolerance
    band) or ``"normal"`` (the tolerance is the 3-sigma point).  Sampling uses
    ``numpy.random.default_rng(seed)``, so a spec expands to the same scenario
    list every time.
    """

    nominal: Mapping[str, float]
    tolerances: Mapping[str, float]
    samples: int = 32
    seed: int = 0
    distribution: str = "uniform"
    stimuli: Stimuli | None = None
    origin: str = "monte-carlo"

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("a Monte-Carlo spec needs at least one sample")
        if self.distribution not in ("uniform", "normal"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        for name, tolerance in self.tolerances.items():
            if tolerance < 0.0:
                raise ValueError(f"tolerance of {name!r} must be non-negative")
            if name not in self.nominal:
                raise ValueError(
                    f"tolerance given for {name!r}, but it has no nominal value"
                )

    def _points(self) -> Iterable[tuple[str, dict[str, float]]]:
        rng = np.random.default_rng(self.seed)
        names = list(self.tolerances)
        for sample in range(self.samples):
            params = dict(self.nominal)
            for name in names:
                tolerance = self.tolerances[name]
                if self.distribution == "uniform":
                    scatter = rng.uniform(-tolerance, tolerance)
                else:
                    scatter = rng.normal(0.0, tolerance / 3.0)
                params[name] = params[name] * (1.0 + scatter)
            yield f"mc#{sample}", params


@dataclass
class CompositeSpec(SweepSpec):
    """Concatenation of several specs (what ``spec_a + spec_b`` builds)."""

    specs: list[SweepSpec]
    origin: str = "composite"

    def expand(self) -> list[Scenario]:
        scenarios: list[Scenario] = []
        for spec in self.specs:
            for scenario in spec.expand():
                scenarios.append(
                    Scenario(
                        index=len(scenarios),
                        label=scenario.label,
                        params=scenario.params,
                        stimuli=scenario.stimuli,
                        origin=scenario.origin,
                    )
                )
        return scenarios

    def _points(self) -> Iterable[tuple[str, dict[str, float]]]:  # pragma: no cover
        raise NotImplementedError("CompositeSpec overrides expand() directly")

    def __add__(self, other: SweepSpec) -> "CompositeSpec":
        if not isinstance(other, SweepSpec):
            return NotImplemented
        return CompositeSpec([*self.specs, other])
