"""Batch simulation and design-space exploration (the ``repro.sweep`` subsystem).

The paper's economic argument — abstracted signal-flow models are cheap
enough to simulate *a lot* — needs an engine that actually runs a lot of
them.  This package provides it:

* :mod:`~repro.sweep.spec` — declarative sweep specifications (parameter
  grids, corner enumeration, tolerance Monte-Carlo) expanding into scenario
  lists;
* :mod:`~repro.sweep.runner` — :class:`SweepRunner`, which abstracts every
  scenario, batches structurally identical models through the vectorized
  NumPy backend, chunks across ``multiprocessing`` workers, and reuses
  compiled classes through the source-digest cache;
* :mod:`~repro.sweep.results` — :class:`SweepResult`, the ensemble waveform
  matrices with envelope/summary aggregation and markdown/CSV reports;
* :mod:`~repro.sweep.platform` — the same idea one level up:
  :class:`PlatformScenarioSpec` / :class:`PlatformSweepRunner` /
  :class:`PlatformSweepResult` sweep the *complete* smart-system virtual
  platform (firmware, bus, ADC and all) across analog parameters ×
  integration styles × firmware variants × stimulus families, with
  Table-III-style aggregation.

Quick start::

    from repro.circuits import build_rc_filter
    from repro.sim import SquareWave
    from repro.sweep import MonteCarloSpec, SweepRunner

    spec = MonteCarloSpec(
        nominal={"resistance": 5e3, "capacitance": 25e-9},
        tolerances={"resistance": 0.05, "capacitance": 0.05},
        samples=256, seed=7,
    )
    runner = SweepRunner(build_rc_filter, "out",
                         stimuli={"vin": SquareWave(period=1e-3)},
                         timestep=50e-9)
    result = runner.run(spec, duration=0.2e-3)
    print(result.to_markdown())
"""

from .platform import (
    PlatformScenario,
    PlatformScenarioSpec,
    PlatformSweepConfig,
    PlatformSweepResult,
    PlatformSweepRunner,
)
from .results import SweepResult
from .runner import SweepConfig, SweepError, SweepRunner, map_scenario_chunks
from .seeds import derive_seed, spawn_seeds
from .spec import (
    CompositeSpec,
    CornerSpec,
    GridSpec,
    MonteCarloSpec,
    Scenario,
    SweepSpec,
)

__all__ = [
    "CompositeSpec",
    "CornerSpec",
    "GridSpec",
    "MonteCarloSpec",
    "PlatformScenario",
    "PlatformScenarioSpec",
    "PlatformSweepConfig",
    "PlatformSweepResult",
    "PlatformSweepRunner",
    "Scenario",
    "SweepConfig",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "derive_seed",
    "map_scenario_chunks",
    "spawn_seeds",
]
