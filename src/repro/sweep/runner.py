"""Batch execution of sweep scenarios: vectorized, cached, and chunkable.

:class:`SweepRunner` is the engine that turns a scenario list into ensemble
waveforms:

1. every scenario's circuit is built (``factory(**scenario.params)``) and
   abstracted into a signal-flow model;
2. scenarios whose models are structurally identical are grouped, and each
   group becomes one vectorized NumPy batch model
   (:mod:`repro.core.codegen.numpy_backend`) that advances *all* of the
   group's scenarios per timestep — per-scenario coefficients live in arrays,
   so a 256-point Monte-Carlo costs one generated class and one Python-level
   loop instead of 256;
3. compiled classes are reused through the source-digest cache
   (:mod:`repro.core.codegen.cache`);
4. with ``workers > 1`` the scenario list is chunked across
   ``multiprocessing`` workers (serial fallback when the platform or the
   payload does not cooperate), and chunk results are concatenated in
   scenario order, so multiprocess and serial runs are bit-identical.

The scalar ``backend="python"`` path runs each scenario through the
generated per-scenario ``step`` class instead; it exists as the equivalence
baseline and as a fallback for models the vectorized renderer cannot batch.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.codegen.cache import cache_info
from ..core.codegen.numpy_backend import NumpyGenerator, structure_signature
from ..core.codegen.python_backend import compile_model_cached
from ..core.flow import AbstractionFlow
from ..core.signalflow import SignalFlowModel
from ..errors import ReproError, SimulationError
from ..metrics.nrmse import compare_traces
from ..network.circuit import Circuit
from ..sim.runners import resolve_steps, run_reference_model
from ..sim.trace import Trace
from .results import SweepResult
from .spec import Scenario, SweepSpec

Stimuli = Mapping[str, Callable[[float], float]]


class SweepError(ReproError):
    """Raised when a sweep cannot be expanded or executed."""


def map_scenario_chunks(
    worker: Callable[[tuple], object],
    config: object,
    scenarios: Sequence,
    workers: int,
) -> "list | None":
    """Run ``worker((config, chunk))`` over contiguous chunks in a process pool.

    Shared by every sweep runner (signal-flow and platform).  Returns the
    chunk results in scenario order, or ``None`` when the pool cannot be
    built or the payload cannot be pickled — the caller then falls back to
    the serial path, which by construction produces identical results.
    Real errors raised inside a worker propagate unchanged.
    """
    import multiprocessing

    workers = min(workers, len(scenarios))
    bounds = np.linspace(0, len(scenarios), workers + 1).astype(int)
    chunks = [
        scenarios[start:stop]
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    try:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = context.Pool(processes=len(chunks))
    except (OSError, ValueError, AttributeError, ImportError) as error:
        # The *pool* could not be built (no fork, fd limits...): fall back.
        import warnings

        warnings.warn(
            f"sweep falling back to serial execution ({error})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    try:
        with pool:
            return pool.map(worker, [(config, chunk) for chunk in chunks])
    except Exception as error:
        # Unpicklable payloads are an execution-strategy problem: fall
        # back.  Anything else is a real error from inside a worker (bad
        # factory arguments, abstraction failures...) and must surface
        # immediately instead of being retried serially.
        if "pickle" in type(error).__name__.lower() or "pickle" in str(error).lower():
            import warnings

            warnings.warn(
                f"sweep payload is not picklable, running serially ({error})",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        raise


@dataclass
class SweepConfig:
    """The picklable execution recipe shipped to every worker process."""

    factory: Callable[..., Circuit]
    outputs: list[str]
    timestep: float
    duration: float
    stimuli: dict[str, Callable[[float], float]]
    method: str = "backward_euler"
    backend: str = "numpy"
    name: str | None = None


def _abstract_scenario(config: SweepConfig, scenario: Scenario) -> SignalFlowModel:
    circuit = config.factory(**scenario.params)
    flow = AbstractionFlow(config.timestep, method=config.method)
    name = config.name or circuit.name
    return flow.abstract(circuit, list(config.outputs), name=name).model


def _scenario_stimuli(config: SweepConfig, scenario: Scenario) -> Stimuli:
    return scenario.stimuli if scenario.stimuli is not None else config.stimuli


def _input_columns(
    config: SweepConfig,
    scenarios: Sequence[Scenario],
    input_names: Sequence[str],
):
    """Per-input evaluators: a shared callable, or a per-scenario array builder."""
    columns = []
    for name in input_names:
        waveforms = []
        for scenario in scenarios:
            stimuli = _scenario_stimuli(config, scenario)
            try:
                waveforms.append(stimuli[name])
            except KeyError as exc:
                raise SweepError(
                    f"scenario {scenario.describe()} provides no stimulus for "
                    f"input {name!r}"
                ) from exc
        first = waveforms[0]
        if all(waveform == first for waveform in waveforms[1:]):
            columns.append(first)
        else:
            columns.append(
                lambda t, _waveforms=waveforms: np.array(
                    [waveform(t) for waveform in _waveforms]
                )
            )
    return columns


def _simulate_batch(
    config: SweepConfig,
    scenarios: Sequence[Scenario],
    models: Sequence[SignalFlowModel],
    steps: int,
) -> dict[str, np.ndarray]:
    """Run one structure group through the vectorized NumPy backend."""
    artifact = NumpyGenerator().generate_batch(models)
    instance = artifact.instantiate()
    dt = float(config.timestep)
    output_names = list(instance.OUTPUTS)
    single_output = len(output_names) == 1
    columns = _input_columns(config, scenarios, instance.INPUTS)
    step_batch = instance.step_batch
    # Record step-major (contiguous row writes), transpose to scenario-major once.
    recorded = {name: np.zeros((steps, len(scenarios))) for name in output_names}
    for index in range(steps):
        now = (index + 1) * dt
        result = step_batch(*[column(now) for column in columns], now)
        if single_output:
            recorded[output_names[0]][index] = result
        else:
            for name, values in zip(output_names, result):
                recorded[name][index] = values
    return {
        name: np.ascontiguousarray(matrix.T) for name, matrix in recorded.items()
    }


def _simulate_scalar(
    config: SweepConfig,
    scenario: Scenario,
    model: SignalFlowModel,
    steps: int,
) -> dict[str, np.ndarray]:
    """Run one scenario through the per-scenario generated ``step`` class."""
    instance = compile_model_cached(model)()
    dt = float(config.timestep)
    stimuli = _scenario_stimuli(config, scenario)
    waveforms = [stimuli[name] for name in instance.INPUTS]
    output_names = list(instance.OUTPUTS)
    single_output = len(output_names) == 1
    rows = {name: np.zeros(steps) for name in output_names}
    step = instance.step
    for index in range(steps):
        now = (index + 1) * dt
        result = step(*[waveform(now) for waveform in waveforms], now)
        if single_output:
            rows[output_names[0]][index] = result
        else:
            for name, value in zip(output_names, result):
                rows[name][index] = value
    return {name: row.reshape(1, steps) for name, row in rows.items()}


def _run_chunk(payload: tuple[SweepConfig, list[Scenario]]) -> dict:
    """Abstract, group and simulate one contiguous chunk of scenarios.

    Module-level so that :mod:`multiprocessing` can import it in workers; the
    serial path calls it directly with the whole scenario list.
    """
    config, scenarios = payload
    timings = {"abstract": 0.0, "simulate": 0.0}

    start = _time.perf_counter()
    models = [_abstract_scenario(config, scenario) for scenario in scenarios]
    timings["abstract"] = _time.perf_counter() - start

    try:
        steps = resolve_steps(config.duration, config.timestep)
    except SimulationError as exc:
        raise SweepError(str(exc)) from exc

    output_names = list(models[0].outputs)
    outputs = {name: np.zeros((len(scenarios), steps)) for name in output_names}

    start = _time.perf_counter()
    if config.backend == "numpy":
        groups: dict[tuple, list[int]] = {}
        for position, model in enumerate(models):
            groups.setdefault(structure_signature(model), []).append(position)
        for positions in groups.values():
            matrices = _simulate_batch(
                config,
                [scenarios[i] for i in positions],
                [models[i] for i in positions],
                steps,
            )
            for name, matrix in matrices.items():
                outputs[name][positions, :] = matrix
    elif config.backend == "python":
        for position, (scenario, model) in enumerate(zip(scenarios, models)):
            rows = _simulate_scalar(config, scenario, model, steps)
            for name, row in rows.items():
                outputs[name][position, :] = row
    else:
        raise SweepError(
            f"unknown sweep backend {config.backend!r}; use 'numpy' or 'python'"
        )
    timings["simulate"] = _time.perf_counter() - start

    return {
        "outputs": outputs,
        "steps": steps,
        "signatures": {structure_signature(model) for model in models},
        "timings": timings,
        "cache": cache_info(),
    }


class SweepRunner:
    """Expand a spec, simulate every scenario, aggregate into a result.

    Parameters
    ----------
    factory:
        Circuit factory called with each scenario's parameters
        (``factory(**scenario.params)``).  Must be picklable for
        multiprocess runs (a module-level function, e.g.
        :func:`repro.circuits.build_rc_filter`).
    outputs:
        Output(s) of interest handed to the abstraction flow (``"out"`` or
        ``["out", "V(n1)"]``).
    stimuli:
        Default stimulus callables keyed by input name; individual scenarios
        may override them.
    timestep:
        Fixed execution timestep of the generated models.
    backend:
        ``"numpy"`` (vectorized batches, the default) or ``"python"``
        (per-scenario scalar classes — the equivalence baseline).
    workers:
        Number of ``multiprocessing`` workers; ``1`` runs serially.  When a
        pool cannot be used (unpicklable payload, missing ``fork``), the
        runner falls back to the serial path and records it in the result.
    """

    def __init__(
        self,
        factory: Callable[..., Circuit],
        outputs: "str | list[str]",
        stimuli: Stimuli,
        timestep: float,
        method: str = "backward_euler",
        backend: str = "numpy",
        workers: int = 1,
        name: str | None = None,
    ) -> None:
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("numpy", "python"):
            raise SweepError(
                f"unknown sweep backend {backend!r}; use 'numpy' or 'python'"
            )
        self.factory = factory
        self.outputs = [outputs] if isinstance(outputs, str) else list(outputs)
        self.stimuli = dict(stimuli)
        self.timestep = float(timestep)
        self.method = method
        self.backend = backend
        self.workers = int(workers)
        self.name = name

    # -- execution ---------------------------------------------------------------------
    def run(
        self,
        spec: "SweepSpec | Sequence[Scenario]",
        duration: float,
        reference: bool = False,
    ) -> SweepResult:
        """Simulate every scenario of ``spec`` for ``duration`` seconds.

        With ``reference=True`` every scenario is additionally simulated on
        the reference AMS engine and the per-scenario NRMSE is recorded
        (slow — the reference engine is the paper's golden baseline, not a
        batch target).
        """
        scenarios = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
        if not scenarios:
            raise SweepError("the sweep spec expanded to zero scenarios")

        config = SweepConfig(
            factory=self.factory,
            outputs=self.outputs,
            timestep=self.timestep,
            duration=float(duration),
            stimuli=self.stimuli,
            method=self.method,
            backend=self.backend,
            name=self.name,
        )

        wall_start = _time.perf_counter()
        workers_used = 1
        if self.workers > 1 and len(scenarios) > 1:
            chunk_results = self._run_parallel(config, scenarios)
            if chunk_results is not None:
                workers_used = min(self.workers, len(scenarios))
            else:
                chunk_results = [_run_chunk((config, scenarios))]
        else:
            chunk_results = [_run_chunk((config, scenarios))]

        outputs: dict[str, np.ndarray] = {}
        for name in chunk_results[0]["outputs"]:
            outputs[name] = np.concatenate(
                [chunk["outputs"][name] for chunk in chunk_results], axis=0
            )
        steps = chunk_results[0]["steps"]
        times = np.arange(1, steps + 1) * self.timestep
        timings = {
            phase: sum(chunk["timings"][phase] for chunk in chunk_results)
            for phase in chunk_results[0]["timings"]
        }
        timings["wall"] = _time.perf_counter() - wall_start

        signatures: set = set()
        for chunk in chunk_results:
            signatures |= chunk["signatures"]
        result = SweepResult(
            scenarios=scenarios,
            times=times,
            outputs=outputs,
            backend=self.backend,
            workers=workers_used,
            timings=timings,
            structure_groups=len(signatures),
        )
        if reference:
            result.nrmse = self._reference_nrmse(config, result)
        return result

    def _run_parallel(
        self,
        config: SweepConfig,
        scenarios: list[Scenario],
    ) -> "list[dict] | None":
        """Chunk across a process pool; ``None`` means fall back to serial."""
        return map_scenario_chunks(_run_chunk, config, scenarios, self.workers)

    # -- reference comparison ----------------------------------------------------------
    def _reference_nrmse(
        self,
        config: SweepConfig,
        result: SweepResult,
    ) -> dict[str, np.ndarray]:
        """Per-scenario NRMSE of every output versus the reference AMS engine."""
        names = result.output_names()
        errors = {name: np.zeros(result.n_scenarios) for name in names}
        for index, scenario in enumerate(result.scenarios):
            circuit = config.factory(**scenario.params)
            reference = run_reference_model(
                circuit,
                _scenario_stimuli(config, scenario),
                config.duration,
                config.timestep,
                record=names,
            )
            for name in names:
                measured = Trace(name)
                for time, value in zip(result.times, result.outputs[name][index]):
                    measured.append(float(time), float(value))
                errors[name][index] = compare_traces(reference[name], measured)
        return errors
