"""Batch execution of sweep scenarios: vectorized, cached, and chunkable.

:class:`SweepRunner` is the engine that turns a scenario list into ensemble
waveforms:

1. every scenario's circuit is built (``factory(**scenario.params)``) and
   abstracted into a signal-flow model;
2. scenarios whose models are structurally identical are grouped, and each
   group becomes one vectorized NumPy batch model
   (:mod:`repro.core.codegen.numpy_backend`) that advances *all* of the
   group's scenarios per timestep — per-scenario coefficients live in arrays,
   so a 256-point Monte-Carlo costs one generated class and one Python-level
   loop instead of 256;
3. compiled classes are reused through the source-digest cache
   (:mod:`repro.core.codegen.cache`);
4. with ``workers > 1`` the scenario list is chunked across
   ``multiprocessing`` workers (serial fallback when the platform or the
   payload does not cooperate), and chunk results are concatenated in
   scenario order, so multiprocess and serial runs are bit-identical.

The scalar ``backend="python"`` path runs each scenario through the
generated per-scenario ``step`` class instead; it exists as the equivalence
baseline and as a fallback for models the vectorized renderer cannot batch.
"""

from __future__ import annotations

import hashlib
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.codegen.cache import cache_info
from ..core.codegen.native_backend import NativeGenerator, toolchain_error
from ..core.codegen.numpy_backend import NumpyGenerator, structure_signature
from ..core.codegen.python_backend import compile_model_cached
from ..core.flow import AbstractionFlow
from ..core.signalflow import SignalFlowModel
from ..errors import ReproError, SimulationError, StoreError
from ..metrics.nrmse import compare_traces
from ..network.circuit import Circuit
from ..obs.progress import ProgressReporter
from ..obs.telemetry import TelemetryReport
from ..obs.tracer import TRACER, disable_tracing, enable_tracing, tracing_enabled
from ..sim.runners import resolve_steps, run_reference_model
from ..sim.trace import Trace
from ..store import RunStore, as_run_store, fingerprint
from .results import SweepResult
from .spec import Scenario, SweepSpec

Stimuli = Mapping[str, Callable[[float], float]]


class SweepError(ReproError):
    """Raised when a sweep cannot be expanded or executed."""


def map_scenario_chunks(
    worker: Callable[[tuple], object],
    config: object,
    scenarios: Sequence,
    workers: int,
    progress: "Callable[[int], None] | None" = None,
) -> "list | None":
    """Run ``worker((config, chunk))`` over contiguous chunks in a process pool.

    Shared by every sweep runner (signal-flow and platform).  Returns the
    chunk results in scenario order, or ``None`` when the pool cannot be
    built or the payload cannot be pickled — the caller then falls back to
    the serial path, which by construction produces identical results.

    ``progress`` (scenario-count callback) is invoked in the parent as each
    chunk completes; chunk results still arrive in submission order.

    Payload picklability is probed *before* submission (``pickle.dumps`` of
    the exact task list), so an unpicklable recipe is a clean serial
    fallback while any exception raised by ``pool.map`` itself is a genuine
    worker error (bad factory arguments, abstraction failures, a simulated
    campaign interruption...) and propagates unchanged — a worker error
    that merely *mentions* pickling in its message must not be misrouted
    into a silent serial retry.
    """
    import multiprocessing
    import pickle
    import warnings

    workers = min(workers, len(scenarios))
    bounds = np.linspace(0, len(scenarios), workers + 1).astype(int)
    chunks = [
        scenarios[start:stop]
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    payloads = [(config, chunk) for chunk in chunks]

    class _NullSink:
        """Discards pickle output: the probe needs the errors, not the bytes."""

        @staticmethod
        def write(data: bytes) -> int:
            return len(data)

    try:
        # Probe the submission path: exactly what the pool would serialize.
        # Unpicklable objects raise PicklingError (lambdas), AttributeError
        # (local functions) or TypeError (unpicklable C objects).  One extra
        # serialization pass on startup buys deterministic error routing —
        # any exception out of pool.map below is then a *worker* error.
        pickle.Pickler(_NullSink()).dump(payloads)
    except (pickle.PicklingError, AttributeError, TypeError) as error:
        warnings.warn(
            f"sweep payload is not picklable, running serially ({error})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    try:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = context.Pool(processes=len(chunks))
    except (OSError, ValueError, AttributeError, ImportError) as error:
        # The *pool* could not be built (no fork, fd limits...): fall back.
        warnings.warn(
            f"sweep falling back to serial execution ({error})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    with pool:
        if progress is None:
            return pool.map(worker, payloads)
        results = []
        # imap preserves submission order while letting the parent observe
        # each chunk as it lands — exactly what the progress line needs.
        for chunk, result in zip(chunks, pool.imap(worker, payloads)):
            results.append(result)
            progress(len(chunk))
        return results


@dataclass
class SweepConfig:
    """The picklable execution recipe shipped to every worker process."""

    factory: Callable[..., Circuit]
    outputs: list[str]
    timestep: float
    duration: float
    stimuli: dict[str, Callable[[float], float]]
    method: str = "backward_euler"
    backend: str = "numpy"
    name: str | None = None
    #: Campaign-store directory; workers check it before simulating (when
    #: ``resume`` is set) and commit each scenario's rows as they complete.
    store_dir: str | None = None
    resume: bool = False
    #: Enable the worker-local tracer and return a telemetry payload with
    #: the chunk results (see :mod:`repro.obs`).
    trace: bool = False
    #: Strict static-analysis gate: lint every abstracted model before it is
    #: simulated and raise :class:`repro.lint.LintError` on any error
    #: diagnostic (see :mod:`repro.lint.artifact_rules`).
    lint: bool = False


def _scenario_store_inputs(config: SweepConfig, scenario: Scenario) -> dict:
    """The full-input payload whose digest addresses one sweep scenario.

    Covers everything that determines the scenario's waveforms: the circuit
    factory identity, its parameters, the recorded outputs, the execution
    grid (duration/timestep), the discretisation method, the backend and the
    resolved stimulus set.  Scenario position/label are deliberately
    excluded — identical work shares a record no matter where it sits in
    the expansion.
    """
    return {
        "engine": "sweep",
        "factory": fingerprint(config.factory),
        "outputs": list(config.outputs),
        "timestep": config.timestep,
        "duration": config.duration,
        "method": config.method,
        "backend": config.backend,
        # fingerprint() also canonicalizes numpy-typed parameter values
        # (np.float32/np.int64 from array-built axes are not JSON types).
        "params": [
            [name, fingerprint(value)]
            for name, value in sorted(scenario.params.items())
        ],
        "stimuli": fingerprint(dict(_scenario_stimuli(config, scenario))),
    }


def _signature_digest(signature: tuple) -> str:
    """A short stable digest of a structure signature (store-record form)."""
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()[:16]


def _abstract_scenario(config: SweepConfig, scenario: Scenario) -> SignalFlowModel:
    circuit = config.factory(**scenario.params)
    flow = AbstractionFlow(config.timestep, method=config.method)
    name = config.name or circuit.name
    return flow.abstract(circuit, list(config.outputs), name=name).model


def _scenario_stimuli(config: SweepConfig, scenario: Scenario) -> Stimuli:
    return scenario.stimuli if scenario.stimuli is not None else config.stimuli


def _input_columns(
    config: SweepConfig,
    scenarios: Sequence[Scenario],
    input_names: Sequence[str],
):
    """Per-input evaluators: a shared callable, or a per-scenario array builder."""
    columns = []
    for name in input_names:
        waveforms = []
        for scenario in scenarios:
            stimuli = _scenario_stimuli(config, scenario)
            try:
                waveforms.append(stimuli[name])
            except KeyError as exc:
                raise SweepError(
                    f"scenario {scenario.describe()} provides no stimulus for "
                    f"input {name!r}"
                ) from exc
        first = waveforms[0]
        if all(waveform == first for waveform in waveforms[1:]):
            columns.append(first)
        else:
            columns.append(
                lambda t, _waveforms=waveforms: np.array(
                    [waveform(t) for waveform in _waveforms]
                )
            )
    return columns


def _simulate_batch(
    config: SweepConfig,
    scenarios: Sequence[Scenario],
    models: Sequence[SignalFlowModel],
    steps: int,
) -> dict[str, np.ndarray]:
    """Run one structure group through the vectorized NumPy or native backend."""
    if config.backend == "native":
        artifact = NativeGenerator().generate_batch(models)
    else:
        artifact = NumpyGenerator().generate_batch(models)
    instance = artifact.instantiate()
    dt = float(config.timestep)
    output_names = list(instance.OUTPUTS)
    single_output = len(output_names) == 1
    columns = _input_columns(config, scenarios, instance.INPUTS)
    step_batch = instance.step_batch
    # Record step-major (contiguous row writes), transpose to scenario-major once.
    recorded = {name: np.zeros((steps, len(scenarios))) for name in output_names}
    for index in range(steps):
        now = (index + 1) * dt
        result = step_batch(*[column(now) for column in columns], now)
        if single_output:
            recorded[output_names[0]][index] = result
        else:
            for name, values in zip(output_names, result):
                recorded[name][index] = values
    return {
        name: np.ascontiguousarray(matrix.T) for name, matrix in recorded.items()
    }


def _simulate_scalar(
    config: SweepConfig,
    scenario: Scenario,
    model: SignalFlowModel,
    steps: int,
) -> dict[str, np.ndarray]:
    """Run one scenario through the per-scenario generated ``step`` class."""
    instance = compile_model_cached(model)()
    dt = float(config.timestep)
    stimuli = _scenario_stimuli(config, scenario)
    waveforms = [stimuli[name] for name in instance.INPUTS]
    output_names = list(instance.OUTPUTS)
    single_output = len(output_names) == 1
    rows = {name: np.zeros(steps) for name in output_names}
    step = instance.step
    for index in range(steps):
        now = (index + 1) * dt
        result = step(*[waveform(now) for waveform in waveforms], now)
        if single_output:
            rows[output_names[0]][index] = result
        else:
            for name, value in zip(output_names, result):
                rows[name][index] = value
    return {name: row.reshape(1, steps) for name, row in rows.items()}


def _commit_scenario(
    store: RunStore,
    key: str,
    inputs: dict,
    rows: "dict[str, np.ndarray]",
    steps: int,
    signature: tuple,
) -> None:
    """Persist one completed scenario's waveform rows (atomic publish)."""
    store.commit(
        key,
        {
            "steps": steps,
            "signature": _signature_digest(signature),
            # JSON objects are written key-sorted; the model's output order
            # must survive explicitly or a fully-resumed run would assemble
            # its ensemble in a different column order than a fresh one.
            "order": list(rows),
            "outputs": {name: row for name, row in rows.items()},
        },
        inputs=inputs,
    )


def _load_scenario_rows(
    record: dict,
    output_names: "list[str]",
    steps: int,
    store: RunStore,
    key: str,
) -> "dict[str, np.ndarray]":
    """Reconstruct a stored scenario's rows, validating shape and coverage."""
    rows: dict[str, np.ndarray] = {}
    stored = record.get("outputs")
    if not isinstance(stored, dict):
        raise StoreError(f"store record {store.path_for(key)} has no output rows")
    for name in output_names:
        if name not in stored:
            raise StoreError(
                f"store record {store.path_for(key)} lacks output {name!r} "
                f"(has {sorted(stored)})"
            )
        row = np.asarray(stored[name], dtype=float)
        if row.shape != (steps,):
            raise StoreError(
                f"store record {store.path_for(key)} holds {row.shape} samples "
                f"for output {name!r}, expected ({steps},)"
            )
        rows[name] = row
    return rows


def _run_chunk(
    payload: tuple[SweepConfig, list[Scenario]],
    progress: "Callable[[int], None] | None" = None,
) -> dict:
    """Abstract, group and simulate one contiguous chunk of scenarios.

    Module-level so that :mod:`multiprocessing` can import it in workers; the
    serial path calls it directly with the whole scenario list (and may pass
    a ``progress`` callback — pool submissions never do, keeping the payload
    a plain picklable tuple).

    With a campaign store configured, scenarios whose content key is already
    committed are loaded instead of re-executed (``resume``), and every
    freshly simulated scenario is committed atomically the moment its group
    finishes — killing the process mid-chunk preserves all completed work.

    With ``config.trace`` set the chunk enables the process-local tracer and
    returns a compact telemetry payload under the ``"telemetry"`` key.
    """
    config, scenarios = payload
    timings = {"abstract": 0.0, "simulate": 0.0}

    tracer_was_enabled = TRACER.enabled
    if config.trace and not tracer_was_enabled:
        enable_tracing()
    telemetry_mark = TRACER.mark() if TRACER.enabled else None

    store = RunStore(config.store_dir) if config.store_dir else None
    keys: list[str | None] = [None] * len(scenarios)
    inputs: list[dict | None] = [None] * len(scenarios)
    loaded: dict[int, dict] = {}
    if store is not None:
        for position, scenario in enumerate(scenarios):
            inputs[position] = _scenario_store_inputs(config, scenario)
            keys[position] = store.key(inputs[position])
            if config.resume:
                record = store.load(keys[position])
                if record is not None:
                    loaded[position] = record
    pending = [
        position for position in range(len(scenarios)) if position not in loaded
    ]

    start = _time.perf_counter()
    models = {
        position: _abstract_scenario(config, scenarios[position])
        for position in pending
    }
    timings["abstract"] = _time.perf_counter() - start
    TRACER.complete(
        "sweep.abstract", start, timings["abstract"], "sweep", scenarios=len(pending)
    )

    if config.lint and pending:
        from ..lint import LintError, lint_model

        lint_report = None
        for position in pending:
            scenario_report = lint_model(
                models[position],
                file=f"<scenario:{scenarios[position].describe()}>",
            )
            if lint_report is None:
                lint_report = scenario_report
            else:
                lint_report.extend(scenario_report)
        if lint_report is not None and not lint_report.ok:
            raise LintError(lint_report)

    try:
        steps = resolve_steps(config.duration, config.timestep)
    except SimulationError as exc:
        raise SweepError(str(exc)) from exc

    if pending:
        output_names = list(models[pending[0]].outputs)
    else:
        first = loaded[min(loaded)]
        output_names = list(first.get("order") or first["outputs"])
    outputs = {name: np.zeros((len(scenarios), steps)) for name in output_names}
    signatures: set = set()

    start = _time.perf_counter()
    if config.backend in ("numpy", "native"):
        groups: dict[tuple, list[int]] = {}
        for position in pending:
            groups.setdefault(structure_signature(models[position]), []).append(
                position
            )
        for signature, positions in groups.items():
            signatures.add(_signature_digest(signature))
            matrices = _simulate_batch(
                config,
                [scenarios[i] for i in positions],
                [models[i] for i in positions],
                steps,
            )
            for name, matrix in matrices.items():
                outputs[name][positions, :] = matrix
            if progress is not None:
                progress(len(positions))
            if store is not None:
                for row, position in enumerate(positions):
                    _commit_scenario(
                        store,
                        keys[position],
                        inputs[position],
                        {name: matrices[name][row] for name in output_names},
                        steps,
                        signature,
                    )
    elif config.backend == "python":
        for position in pending:
            signature = structure_signature(models[position])
            signatures.add(_signature_digest(signature))
            rows = _simulate_scalar(
                config, scenarios[position], models[position], steps
            )
            for name, row in rows.items():
                outputs[name][position, :] = row
            if progress is not None:
                progress(1)
            if store is not None:
                _commit_scenario(
                    store,
                    keys[position],
                    inputs[position],
                    {name: rows[name][0] for name in output_names},
                    steps,
                    signature,
                )
    else:
        raise SweepError(
            f"unknown sweep backend {config.backend!r}; "
            "use 'numpy', 'native' or 'python'"
        )
    timings["simulate"] = _time.perf_counter() - start
    TRACER.complete(
        "sweep.simulate", start, timings["simulate"], "sweep", scenarios=len(pending)
    )

    for position, record in loaded.items():
        rows = _load_scenario_rows(record, output_names, steps, store, keys[position])
        for name, row in rows.items():
            outputs[name][position, :] = row
        signature_digest = record.get("signature")
        if signature_digest:
            signatures.add(signature_digest)
    if progress is not None and loaded:
        progress(len(loaded))

    telemetry = None
    if telemetry_mark is not None:
        TRACER.add("sweep.scenarios", float(len(pending)))
        TRACER.add("sweep.loaded", float(len(loaded)))
        telemetry = TRACER.collect(telemetry_mark)
        if config.trace and not tracer_was_enabled:
            disable_tracing()

    return {
        "outputs": outputs,
        "steps": steps,
        "signatures": signatures,
        "timings": timings,
        "cache": cache_info(),
        "executed": [position in models for position in range(len(scenarios))],
        "telemetry": telemetry,
    }


class SweepRunner:
    """Expand a spec, simulate every scenario, aggregate into a result.

    Parameters
    ----------
    factory:
        Circuit factory called with each scenario's parameters
        (``factory(**scenario.params)``).  Must be picklable for
        multiprocess runs (a module-level function, e.g.
        :func:`repro.circuits.build_rc_filter`).
    outputs:
        Output(s) of interest handed to the abstraction flow (``"out"`` or
        ``["out", "V(n1)"]``).
    stimuli:
        Default stimulus callables keyed by input name; individual scenarios
        may override them.
    timestep:
        Fixed execution timestep of the generated models.
    backend:
        ``"numpy"`` (vectorized batches, the default), ``"native"``
        (cffi-compiled C batch kernels; needs cffi and a C compiler) or
        ``"python"`` (per-scenario scalar classes — the equivalence
        baseline).
    workers:
        Number of ``multiprocessing`` workers; ``1`` runs serially.  When a
        pool cannot be used (unpicklable payload, missing ``fork``), the
        runner falls back to the serial path and records it in the result.
    store:
        A campaign directory (or :class:`~repro.store.RunStore`) into which
        every completed scenario's waveforms are committed atomically as
        they are produced.
    resume:
        Load scenarios already committed to ``store`` instead of
        re-executing them (requires ``store``).  Resumed ensembles are
        bit-identical to uninterrupted runs.
    trace:
        Collect per-worker telemetry and attach a merged
        :class:`~repro.obs.telemetry.TelemetryReport` to the result.
        ``None`` (the default) follows the process-wide tracing switch
        (:func:`repro.obs.enable_tracing`).
    progress:
        Render a live throttled progress line on stderr.  ``None`` (the
        default) shows it only when stderr is a terminal.
    lint:
        Strict static-analysis gate: run the codegen artifact verifier
        (:mod:`repro.lint`) over every abstracted model before simulating
        and raise :class:`~repro.lint.LintError` on any error diagnostic.
    """

    def __init__(
        self,
        factory: Callable[..., Circuit],
        outputs: "str | list[str]",
        stimuli: Stimuli,
        timestep: float,
        method: str = "backward_euler",
        backend: str = "numpy",
        workers: int = 1,
        name: str | None = None,
        store: "RunStore | str | None" = None,
        resume: bool = False,
        trace: "bool | None" = None,
        progress: "bool | None" = None,
        lint: bool = False,
    ) -> None:
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("numpy", "native", "python"):
            raise SweepError(
                f"unknown sweep backend {backend!r}; "
                "use 'numpy', 'native' or 'python'"
            )
        if backend == "native":
            missing = toolchain_error()
            if missing:
                raise SweepError(f"native sweep backend unavailable: {missing}")
        self.factory = factory
        self.outputs = [outputs] if isinstance(outputs, str) else list(outputs)
        self.stimuli = dict(stimuli)
        self.timestep = float(timestep)
        self.method = method
        self.backend = backend
        self.workers = int(workers)
        self.name = name
        self.store = as_run_store(store)
        if resume and self.store is None:
            raise SweepError("resume=True needs a store to resume from")
        self.resume = bool(resume)
        self.trace = trace
        self.progress = progress
        self.lint = bool(lint)

    # -- execution ---------------------------------------------------------------------
    def run(
        self,
        spec: "SweepSpec | Sequence[Scenario]",
        duration: float,
        reference: bool = False,
    ) -> SweepResult:
        """Simulate every scenario of ``spec`` for ``duration`` seconds.

        With ``reference=True`` every scenario is additionally simulated on
        the reference AMS engine and the per-scenario NRMSE is recorded
        (slow — the reference engine is the paper's golden baseline, not a
        batch target).
        """
        scenarios = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
        if not scenarios:
            raise SweepError("the sweep spec expanded to zero scenarios")

        config = SweepConfig(
            factory=self.factory,
            outputs=self.outputs,
            timestep=self.timestep,
            duration=float(duration),
            stimuli=self.stimuli,
            method=self.method,
            backend=self.backend,
            name=self.name,
            store_dir=str(self.store.directory) if self.store is not None else None,
            resume=self.resume,
            trace=tracing_enabled() if self.trace is None else bool(self.trace),
            lint=self.lint,
        )

        reporter = ProgressReporter(
            len(scenarios), "sweep scenarios", enabled=self.progress
        )
        advance = reporter.advance if reporter.active else None

        wall_start = _time.perf_counter()
        workers_used = 1
        try:
            if self.workers > 1 and len(scenarios) > 1:
                chunk_results = self._run_parallel(config, scenarios, advance)
                if chunk_results is not None:
                    workers_used = min(self.workers, len(scenarios))
                else:
                    chunk_results = [_run_chunk((config, scenarios), progress=advance)]
            else:
                chunk_results = [_run_chunk((config, scenarios), progress=advance)]
        finally:
            reporter.finish()

        outputs: dict[str, np.ndarray] = {}
        for name in chunk_results[0]["outputs"]:
            outputs[name] = np.concatenate(
                [chunk["outputs"][name] for chunk in chunk_results], axis=0
            )
        steps = chunk_results[0]["steps"]
        times = np.arange(1, steps + 1) * self.timestep
        timings = {
            phase: sum(chunk["timings"][phase] for chunk in chunk_results)
            for phase in chunk_results[0]["timings"]
        }
        timings["wall"] = _time.perf_counter() - wall_start

        signatures: set = set()
        executed: list[bool] = []
        for chunk in chunk_results:
            signatures |= chunk["signatures"]
            executed.extend(chunk["executed"])
        result = SweepResult(
            scenarios=scenarios,
            times=times,
            outputs=outputs,
            backend=self.backend,
            workers=workers_used,
            timings=timings,
            structure_groups=len(signatures),
            executed=np.asarray(executed, dtype=bool),
        )
        if config.trace:
            result.telemetry = TelemetryReport.merge(
                "sweep",
                [chunk.get("telemetry") for chunk in chunk_results],
                scenarios=len(scenarios),
                executed=result.executed_count,
                wall=timings["wall"],
                workers=workers_used,
            )
        if reference:
            result.nrmse = self._reference_nrmse(config, result)
        return result

    def _run_parallel(
        self,
        config: SweepConfig,
        scenarios: list[Scenario],
        progress: "Callable[[int], None] | None" = None,
    ) -> "list[dict] | None":
        """Chunk across a process pool; ``None`` means fall back to serial."""
        return map_scenario_chunks(
            _run_chunk, config, scenarios, self.workers, progress
        )

    # -- reference comparison ----------------------------------------------------------
    def _reference_nrmse(
        self,
        config: SweepConfig,
        result: SweepResult,
    ) -> dict[str, np.ndarray]:
        """Per-scenario NRMSE of every output versus the reference AMS engine."""
        names = result.output_names()
        errors = {name: np.zeros(result.n_scenarios) for name in names}
        for index, scenario in enumerate(result.scenarios):
            circuit = config.factory(**scenario.params)
            reference = run_reference_model(
                circuit,
                _scenario_stimuli(config, scenario),
                config.duration,
                config.timestep,
                record=names,
            )
            for name in names:
                measured = Trace(name)
                for time, value in zip(result.times, result.outputs[name][index]):
                    measured.append(float(time), float(value))
                errors[name][index] = compare_traces(reference[name], measured)
        return errors
