"""Deterministic seed derivation shared by the sweep and fault layers.

Every layer that hands out per-scenario randomness (platform sweeps with
seed-aware stimulus families, fault campaigns with randomized injection
targets) must derive its seeds the same way, or two layers composing the same
root seed would silently correlate — or worse, drift apart between serial and
multiprocess runs.  This module is that single source of determinism: child
seeds come from :class:`numpy.random.SeedSequence` spawning, which is stable
across runs, platforms and NumPy versions, and statistically independent even
for adjacent roots (unlike the historical ``root + index`` arithmetic, where
scenario ``i`` of root ``s`` collided with scenario ``i-1`` of root ``s+1``).
"""

from __future__ import annotations

import numpy as np


def derive_seed(root: int, *spawn_key: int) -> int:
    """The child seed at ``spawn_key`` under ``root``.

    ``derive_seed(root, i)`` equals ``spawn_seeds(root, n)[i]`` for any
    ``n > i`` — callers that know their index can derive one seed without
    materialising the sibling list.  Deeper keys (``derive_seed(root, i, j)``)
    address nested spawns, e.g. per-fault children of a per-scenario seed.
    """
    sequence = np.random.SeedSequence(root, spawn_key=tuple(spawn_key))
    return int(sequence.generate_state(1, np.uint32)[0])


def spawn_seeds(root: int, count: int) -> list[int]:
    """``count`` independent child seeds of ``root``, in spawn order."""
    if count < 0:
        raise ValueError("cannot spawn a negative number of seeds")
    sequence = np.random.SeedSequence(root)
    return [
        int(child.generate_state(1, np.uint32)[0]) for child in sequence.spawn(count)
    ]
