"""Deterministic content-addressed keys for units of simulation work.

A run store keys each unit of work (one sweep scenario, one platform run,
one fault experiment) by the SHA-256 digest of a *canonical JSON* rendering
of its full inputs.  Two ingredients make that digest trustworthy across
processes and interpreter restarts:

* :func:`canonical_json` — sorted keys, no whitespace, primitives only —
  so the same payload always serializes to the same bytes (Python's JSON
  float rendering is shortest-round-trip exact, so float-valued parameters
  key reproducibly);
* :func:`fingerprint` — a *stable* structural description of the
  non-primitive inputs (circuit factories, stimulus callables, fault
  models).  Memory addresses never leak into a fingerprint: dataclasses
  fingerprint by field values, functions by module-qualified name (plus a
  source digest for lambdas and local functions, whose qualnames alone
  would collide), ``functools.partial`` recursively.

The guarantees are only as strong as the objects being fingerprinted: two
*different* module-level functions with the same qualified name (e.g. after
an edit between runs) fingerprint identically.  The run-store layer records
the full key payload next to every result so such collisions are auditable.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import json
from typing import Mapping

import numpy as np

from ..errors import StoreError

_PRIMITIVES = (type(None), bool, int, float, str)


def fingerprint(obj: object, _seen: "frozenset[int]" = frozenset()) -> object:
    """A JSON-serializable, address-free structural description of ``obj``.

    Handles the object kinds that appear in simulation recipes: primitives,
    numpy scalars/arrays (by byte digest), sequences, mappings, dataclass
    instances (stimulus sources, fault models, factory wrappers),
    ``functools.partial``, bound methods (instance state included), plain
    functions (closure cells and default arguments included — two
    factory-made lambdas capturing different values must key apart) and
    arbitrary callables.  ``_seen`` breaks reference cycles (a recursive
    closure capturing its own function).
    """
    if isinstance(obj, _PRIMITIVES):
        return obj
    if id(obj) in _seen:
        return ["cycle"]
    _seen = _seen | {id(obj)}
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        # Never through repr: numpy truncates ('...') and rounds, so two
        # different arrays could share a fingerprint.  Digest the bytes.
        data = np.ascontiguousarray(obj)
        return [
            "ndarray",
            list(data.shape),
            str(data.dtype),
            hashlib.sha256(data.tobytes()).hexdigest(),
        ]
    if isinstance(obj, (list, tuple)):
        return [fingerprint(item, _seen) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(fingerprint(item, _seen) for item in obj)]
    if isinstance(obj, Mapping):
        return [
            "mapping",
            [
                [str(key), fingerprint(value, _seen)]
                for key, value in sorted(obj.items())
            ],
        ]
    if isinstance(obj, functools.partial):
        return [
            "partial",
            fingerprint(obj.func, _seen),
            [fingerprint(argument, _seen) for argument in obj.args],
            [
                [name, fingerprint(value, _seen)]
                for name, value in sorted(obj.keywords.items())
            ],
        ]
    # Objects may override their own key material — e.g. a factory wrapper
    # whose incidental state (a campaign-wide fault table) must not key
    # every run it builds.
    custom = getattr(type(obj), "store_fingerprint", None)
    if custom is not None and not isinstance(obj, type):
        return obj.store_fingerprint()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return [
            "instance",
            cls.__module__,
            cls.__qualname__,
            [
                [field.name, fingerprint(getattr(obj, field.name), _seen)]
                for field in dataclasses.fields(obj)
            ],
        ]
    if inspect.ismethod(obj):
        # A bound method carries instance state: two benches' .build must
        # key apart even though the underlying function is shared.
        return [
            "method",
            fingerprint(obj.__self__, _seen),
            fingerprint(obj.__func__, _seen),
        ]
    if inspect.isfunction(obj) or inspect.isbuiltin(obj):
        entry = ["function", getattr(obj, "__module__", None), obj.__qualname__]
        if "<lambda>" in obj.__qualname__ or "<locals>" in obj.__qualname__:
            # Qualified names of lambdas/local functions are not unique;
            # add a source digest so two different lambdas key apart.
            try:
                source = inspect.getsource(obj)
                entry.append(hashlib.sha256(source.encode("utf-8")).hexdigest()[:16])
            except (OSError, TypeError):
                entry.append("unsourced")
        # Captured state parameterizes behaviour just like arguments do:
        # factory-made closures over different values, or edited default
        # arguments, must not collide on name + source alone.
        closure = getattr(obj, "__closure__", None) or ()
        cells = []
        for cell in closure:
            try:
                cells.append(fingerprint(cell.cell_contents, _seen))
            except ValueError:  # an empty (not yet filled) cell
                cells.append(["empty-cell"])
        if cells:
            entry.append(["closure", cells])
        defaults = getattr(obj, "__defaults__", None)
        if defaults:
            entry.append(["defaults", fingerprint(list(defaults), _seen)])
        kwdefaults = getattr(obj, "__kwdefaults__", None)
        if kwdefaults:
            entry.append(["kwdefaults", fingerprint(kwdefaults, _seen)])
        return entry
    if isinstance(obj, type):
        return ["class", obj.__module__, obj.__qualname__]
    # Arbitrary instance (a callable class without dataclass fields): use its
    # repr when it is address-free, otherwise fall back to the class identity
    # plus a fingerprint of its instance dict.
    cls = type(obj)
    text = repr(obj)
    if " at 0x" not in text:
        return ["object", cls.__module__, cls.__qualname__, text]
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return ["object", cls.__module__, cls.__qualname__, fingerprint(state, _seen)]
    return ["object", cls.__module__, cls.__qualname__]


def canonical_json(payload: object) -> str:
    """The canonical (sorted, compact) JSON text of ``payload``."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"store key payload is not canonicalizable: {exc}") from exc


def digest_key(payload: object) -> str:
    """The SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
