"""Crash-safe file writes: temp file in the target directory + ``os.replace``.

Every persistence path of the library goes through these helpers.  The
contract is the classic atomic-publish recipe: the payload is written to a
uniquely named temporary file *in the same directory* as the destination
(same filesystem, so the final rename cannot degrade into a copy), flushed
and fsynced, then moved over the destination with :func:`os.replace` — which
POSIX guarantees to be atomic.  A reader therefore sees either the complete
old file or the complete new file, never a torn write; a crash mid-write
leaves at worst a ``.tmp`` orphan that is ignored by every loader and
overwritten-around forever.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..errors import StoreError

#: Suffix of the temporary files; loaders must never match it.
TMP_SUFFIX = ".tmp"


def atomic_write_bytes(path: "str | Path", data: bytes) -> Path:
    """Atomically publish ``data`` at ``path`` (parents created as needed)."""
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb",
            dir=path.parent,
            prefix=f".{path.name}.",
            suffix=TMP_SUFFIX,
            delete=False,
        )
    except OSError as exc:
        raise StoreError(f"cannot write to {path.parent}: {exc}") from exc
    tmp_name = handle.name
    try:
        with handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except OSError as exc:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise StoreError(f"atomic write to {path} failed: {exc}") from exc
    return path


def atomic_write_text(path: "str | Path", text: str, encoding: str = "utf-8") -> Path:
    """Atomically publish ``text`` at ``path``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: "str | Path", payload: object, indent: "int | None" = 2
) -> Path:
    """Atomically publish ``payload`` as sorted JSON at ``path``.

    ``indent=None`` writes compact single-line JSON — the right choice for
    records dominated by waveform arrays, where pretty-printing would put
    every sample on its own line.
    """
    try:
        separators = (",", ":") if indent is None else None
        text = json.dumps(payload, indent=indent, sort_keys=True, separators=separators)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"payload for {path} is not JSON-serializable: {exc}") from exc
    return atomic_write_text(path, text + "\n")
