"""Durable campaign state (the ``repro.store`` subsystem).

The batch engines (:class:`~repro.sweep.runner.SweepRunner`,
:class:`~repro.sweep.platform.PlatformSweepRunner`,
:class:`~repro.fault.campaign.FaultCampaignRunner`) can sweep hundreds of
scenarios in one call — and before this subsystem an interruption lost all
of them.  ``repro.store`` is the persistence substrate underneath
checkpoint/resume:

* :mod:`~repro.store.atomic` — write-temp-then-``os.replace`` file
  publication, the crash-safety primitive shared by every persistence path
  (including :class:`~repro.perf.baseline.BaselineStore`);
* :mod:`~repro.store.keys` — address-free structural fingerprints and
  canonical-JSON SHA-256 digests of a unit of work's full inputs;
* :mod:`~repro.store.runstore` — :class:`RunStore`, the content-addressed
  campaign directory that workers consult before simulating and commit
  into as results complete.

Pass ``store=<dir>`` to any batch runner to persist results as they are
produced, and ``resume=True`` to load completed units instead of
re-executing them; see ``docs/campaign_store.md`` for layout, digest keys
and resume semantics.
"""

from ..errors import CampaignInterrupted, StoreError
from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from .keys import canonical_json, digest_key, fingerprint
from .runstore import STORE_FORMAT, RunStore, as_run_store

__all__ = [
    "CampaignInterrupted",
    "RunStore",
    "STORE_FORMAT",
    "StoreError",
    "as_run_store",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json",
    "digest_key",
    "fingerprint",
]
