"""The content-addressed, crash-safe result store behind checkpoint/resume.

A :class:`RunStore` is a campaign directory holding one JSON file per
completed unit of work, named by the digest of the unit's full inputs (see
:mod:`repro.store.keys`)::

    <campaign-dir>/
        store.json            # format marker
        runs/<sha256>.json    # {"format": 1, "key": ..., "inputs": ..., "record": ...}

Properties the batch engines rely on:

* **content addressing** — the digest covers everything that determines the
  outcome (circuit factory, parameters, integration style, firmware source,
  stimulus family, seed, fault spec, duration/timestep/method), so a hit is
  a *semantic* hit: the stored record is the result the engine would have
  recomputed bit-identically;
* **atomic commits** — every file is published with
  :func:`~repro.store.atomic.atomic_write_json`; killing a campaign at any
  instant leaves the store with only whole records (plus at most ignorable
  ``.tmp`` orphans);
* **concurrent writers** — worker processes commit as they finish.  Distinct
  units write distinct files; identical units write identical content; both
  races are harmless under ``os.replace``;
* **exact round-trip** — records are JSON with Python's shortest-round-trip
  float rendering, so waveforms and metrics reload bit-identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from ..errors import StoreError
from ..obs.tracer import TRACER
from .atomic import atomic_write_json
from .keys import digest_key

#: Schema version written into the marker and every record.
STORE_FORMAT = 1


def _jsonable(value: object) -> object:
    """Recursively convert numpy scalars/arrays so records serialize exactly."""
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class RunStore:
    """Directory of content-addressed run records with atomic commits."""

    MARKER = "store.json"
    RUNS_DIR = "runs"

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self._check_marker()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.directory)!r})"

    # -- layout ------------------------------------------------------------------------
    @property
    def runs_directory(self) -> Path:
        return self.directory / self.RUNS_DIR

    def path_for(self, key: str) -> Path:
        return self.runs_directory / f"{key}.json"

    def _check_marker(self) -> None:
        marker = self.directory / self.MARKER
        if not marker.exists():
            return
        try:
            payload = json.loads(marker.read_text(encoding="utf-8"))
            found = int(payload["format"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise StoreError(f"malformed store marker {marker}: {exc}") from exc
        if found != STORE_FORMAT:
            raise StoreError(
                f"{self.directory} is a format-{found} store; this version "
                f"reads and writes format {STORE_FORMAT}"
            )

    def _ensure_marker(self) -> None:
        marker = self.directory / self.MARKER
        if not marker.exists():
            atomic_write_json(marker, {"format": STORE_FORMAT})

    # -- addressing --------------------------------------------------------------------
    @staticmethod
    def key(inputs: object) -> str:
        """The content digest of a unit of work's canonical input payload."""
        return digest_key(inputs)

    # -- persistence -------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def commit(
        self,
        key: str,
        record: Mapping,
        inputs: object = None,
    ) -> Path:
        """Atomically publish ``record`` under ``key``.

        ``inputs`` (the pre-digest key payload) is stored alongside the
        record for auditability — a hit can always be traced back to the
        exact inputs it was computed from.  Committing the same key twice
        is allowed; the last write wins atomically.
        """
        self._ensure_marker()
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "inputs": _jsonable(inputs),
            "record": _jsonable(record),
        }
        # Compact JSON: records are dominated by waveform arrays, which
        # pretty-printing would blow up to one line per sample.
        path = atomic_write_json(self.path_for(key), payload, indent=None)
        TRACER.add("store.commits")
        return path

    def load(self, key: str) -> "dict | None":
        """The record committed under ``key``, or ``None`` when absent.

        A present-but-unreadable record raises :class:`StoreError` naming
        the offending file — a store that lies about its contents must
        never silently degrade into re-execution with half a cache.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            TRACER.add("store.misses")
            return None
        except OSError as exc:
            raise StoreError(f"cannot read store record {path}: {exc}") from exc
        try:
            payload = json.loads(text)
            if int(payload["format"]) != STORE_FORMAT:
                raise ValueError(f"record format {payload['format']}")
            if payload["key"] != key:
                raise ValueError(
                    f"content digest mismatch (file claims {payload['key']!r})"
                )
            record = payload["record"]
            if not isinstance(record, dict):
                raise ValueError("record payload is not an object")
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(f"malformed store record {path}: {exc}") from exc
        TRACER.add("store.hits")
        return record

    # -- enumeration -------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Digests of every committed record (sorted).

        Temp orphans from interrupted writes are invisible by construction:
        they are named ``.<name>.json.<random>.tmp`` and never match the
        ``*.json`` glob.
        """
        if not self.runs_directory.exists():
            return []
        return sorted(path.stem for path in self.runs_directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())


def as_run_store(store: "RunStore | str | Path | None") -> "RunStore | None":
    """Coerce a user-supplied ``store=`` argument (path or store) to a store."""
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)
