"""Numeric evaluation of expression trees.

Evaluation is used by the reference AMS simulator (to evaluate dipole
equations every timestep), by the abstraction pipeline's self checks and by
tests that compare symbolic transformations against direct evaluation.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from ..errors import EvaluationError
from .ast import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Expr,
    Integral,
    Previous,
    UnaryOp,
    Variable,
)


def _limexp(value: float) -> float:
    """Verilog-AMS ``limexp``: exponential with linearised growth above 80."""
    if value <= 80.0:
        return math.exp(value)
    return math.exp(80.0) * (1.0 + value - 80.0)


#: Default numeric implementations of :data:`repro.expr.ast.KNOWN_FUNCTIONS`.
FUNCTION_TABLE: dict[str, Callable[..., float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "atan2": math.atan2,
    "sinh": math.sinh,
    "cosh": math.cosh,
    "tanh": math.tanh,
    "exp": math.exp,
    "ln": math.log,
    "log": math.log10,
    "sqrt": math.sqrt,
    "abs": abs,
    "min": min,
    "max": max,
    "pow": math.pow,
    "floor": math.floor,
    "ceil": math.ceil,
    "limexp": _limexp,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "**": lambda a, b: a**b,
    "<": lambda a, b: 1.0 if a < b else 0.0,
    "<=": lambda a, b: 1.0 if a <= b else 0.0,
    ">": lambda a, b: 1.0 if a > b else 0.0,
    ">=": lambda a, b: 1.0 if a >= b else 0.0,
    "==": lambda a, b: 1.0 if a == b else 0.0,
    "!=": lambda a, b: 1.0 if a != b else 0.0,
    "&&": lambda a, b: 1.0 if (a != 0.0 and b != 0.0) else 0.0,
    "||": lambda a, b: 1.0 if (a != 0.0 or b != 0.0) else 0.0,
}


def evaluate(
    expr: Expr,
    bindings: Mapping[str, float] | None = None,
    previous: Mapping[str, float] | None = None,
    functions: Mapping[str, Callable[..., float]] | None = None,
) -> float:
    """Numerically evaluate ``expr``.

    Parameters
    ----------
    expr:
        The expression to evaluate.
    bindings:
        Values for :class:`~repro.expr.ast.Variable` leaves, keyed by name.
    previous:
        Values for :class:`~repro.expr.ast.Previous` leaves, keyed by name.
        When omitted, ``bindings`` is consulted instead (useful in steady
        state where ``x`` and ``prev(x)`` coincide).
    functions:
        Extra or overriding function implementations.

    Raises
    ------
    EvaluationError
        If a variable is unbound, a function is unknown, or the expression
        still contains continuous-time operators (``ddt``/``idt``), which have
        no pointwise value and must be discretised first.
    """
    bindings = bindings or {}
    table = dict(FUNCTION_TABLE)
    if functions:
        table.update(functions)

    def visit(node: Expr) -> float:
        if isinstance(node, Constant):
            return node.value
        if isinstance(node, Variable):
            if node.name not in bindings:
                raise EvaluationError(f"unbound variable {node.name!r}")
            return float(bindings[node.name])
        if isinstance(node, Previous):
            source = previous if previous is not None else bindings
            if node.name not in source:
                raise EvaluationError(f"unbound previous value prev({node.name!r})")
            return float(source[node.name])
        if isinstance(node, UnaryOp):
            value = visit(node.operand)
            if node.op == "-":
                return -value
            if node.op == "+":
                return value
            return 1.0 if value == 0.0 else 0.0
        if isinstance(node, BinaryOp):
            lhs = visit(node.lhs)
            rhs = visit(node.rhs)
            try:
                return _ARITHMETIC[node.op](lhs, rhs)
            except ZeroDivisionError as exc:
                raise EvaluationError(f"division by zero in {node}") from exc
        if isinstance(node, Call):
            if node.func not in table:
                raise EvaluationError(f"unknown function {node.func!r}")
            args = [visit(arg) for arg in node.args]
            try:
                return float(table[node.func](*args))
            except (ValueError, OverflowError) as exc:
                raise EvaluationError(f"math error evaluating {node}: {exc}") from exc
        if isinstance(node, Conditional):
            condition = visit(node.condition)
            return visit(node.then) if condition != 0.0 else visit(node.otherwise)
        if isinstance(node, (Derivative, Integral)):
            raise EvaluationError(
                "ddt/idt operators have no pointwise value; discretise the "
                "expression before evaluating it"
            )
        raise EvaluationError(f"cannot evaluate node of type {type(node).__name__}")

    return visit(expr)
