"""Expression AST used throughout the abstraction methodology.

The paper (Section IV.A) parses the right-hand side of every dipole equation
into an abstract syntax tree whose leaves are values and variables and whose
intermediate nodes are operators, with per-node flags recording e.g. the
presence of a derivative operator.  This module provides that AST.

Nodes are immutable value objects: equality and hashing are structural, and
every transformation (substitution, simplification, discretisation, ...)
returns new nodes.  Python operator overloading is provided so that
expressions can be written naturally in library code and tests::

    >>> from repro.expr import Variable, Constant
    >>> v = Variable("V(out,gnd)")
    >>> e = 2.0 * v + Constant(1.0)
    >>> sorted(e.variables())
    ['V(out,gnd)']
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence, Union

Number = Union[int, float]

#: Binary arithmetic operators understood by the engine.
ARITHMETIC_OPERATORS = ("+", "-", "*", "/", "**")

#: Binary comparison operators (used by signal-flow conditionals).
COMPARISON_OPERATORS = ("<", "<=", ">", ">=", "==", "!=")

#: Binary logical operators (used by signal-flow conditionals).
LOGICAL_OPERATORS = ("&&", "||")

#: Every binary operator accepted by :class:`BinaryOp`.
BINARY_OPERATORS = ARITHMETIC_OPERATORS + COMPARISON_OPERATORS + LOGICAL_OPERATORS

#: Unary operators accepted by :class:`UnaryOp`.
UNARY_OPERATORS = ("-", "+", "!")

#: Mathematical functions accepted by :class:`Call` (Verilog-AMS analog functions).
KNOWN_FUNCTIONS = (
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "exp",
    "ln",
    "log",
    "sqrt",
    "abs",
    "min",
    "max",
    "pow",
    "floor",
    "ceil",
    "limexp",
)


def _coerce(value: "Expr | Number") -> "Expr":
    """Turn plain numbers into :class:`Constant` nodes for operator overloading."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise TypeError(f"cannot build an expression from {value!r}")


class Expr:
    """Base class of every expression node.

    Subclasses must define ``__slots__``, provide :meth:`children` and a
    structural key via :meth:`_key` used for equality and hashing.
    """

    __slots__ = ()

    # -- structural protocol -------------------------------------------------
    def children(self) -> tuple["Expr", ...]:
        """Return the direct sub-expressions of this node."""
        return ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._key())

    # -- convenience queries -------------------------------------------------
    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant in pre-order."""
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def variables(self) -> set[str]:
        """Return the names of all :class:`Variable` leaves in the expression."""
        return {node.name for node in self.walk() if isinstance(node, Variable)}

    def previous_values(self) -> set[str]:
        """Return the names referenced through :class:`Previous` nodes."""
        return {node.name for node in self.walk() if isinstance(node, Previous)}

    def contains_variable(self, name: str) -> bool:
        """Return ``True`` when the variable ``name`` appears in the expression."""
        return any(isinstance(node, Variable) and node.name == name for node in self.walk())

    def has_derivative(self) -> bool:
        """Return ``True`` when a ``ddt`` operator appears in the expression.

        This is the per-node flag the paper stores during acquisition.
        """
        return any(isinstance(node, Derivative) for node in self.walk())

    def has_integral(self) -> bool:
        """Return ``True`` when an ``idt`` operator appears in the expression."""
        return any(isinstance(node, Integral) for node in self.walk())

    def size(self) -> int:
        """Return the number of nodes in the expression tree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Return the height of the expression tree (a leaf has depth 1)."""
        children = self.children()
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)

    # -- operator overloading ------------------------------------------------
    def __add__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("+", self, _coerce(other))

    def __radd__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("+", _coerce(other), self)

    def __sub__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("-", self, _coerce(other))

    def __rsub__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("-", _coerce(other), self)

    def __mul__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("*", self, _coerce(other))

    def __rmul__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("*", _coerce(other), self)

    def __truediv__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("/", self, _coerce(other))

    def __rtruediv__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("/", _coerce(other), self)

    def __pow__(self, other: "Expr | Number") -> "BinaryOp":
        return BinaryOp("**", self, _coerce(other))

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)

    def __pos__(self) -> "Expr":
        return self

    # -- rendering -----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self!s})"

    def __str__(self) -> str:
        return to_string(self)


class Constant(Expr):
    """A literal numeric value (a *Value* leaf in the paper's AST)."""

    __slots__ = ("value",)

    def __init__(self, value: Number) -> None:
        self.value = float(value)

    def _key(self) -> tuple:
        return ("const", self.value)


class Variable(Expr):
    """A named quantity: a node potential, a branch flow, an input or a parameter.

    The name convention used by the rest of the library is:

    * ``"V(a,b)"`` — branch/port potential difference between nodes ``a`` and ``b``
    * ``"V(a)"`` — node potential of ``a`` referred to ground
    * ``"I(br)"`` — flow through branch ``br``
    * anything else — an input stimulus, parameter or local variable
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("a Variable needs a non-empty name")
        self.name = name

    def _key(self) -> tuple:
        return ("var", self.name)


class Access(Variable):
    """A :class:`Variable` produced by a Verilog-AMS access function.

    ``Access("I(br)", "I")`` behaves exactly like ``Variable("I(br)")`` for
    equality, hashing, substitution and simplification (the structural key is
    inherited), but additionally records which access *kind* produced it —
    ``"V"`` (potential) or ``"I"`` (flow).  Consumers such as
    :mod:`repro.vams.classify` use the kind instead of string-matching the
    rendered name, which is spacing- and aliasing-safe.
    """

    __slots__ = ("kind",)

    def __init__(self, name: str, kind: str) -> None:
        super().__init__(name)
        self.kind = kind


class Previous(Expr):
    """The value a quantity had one timestep earlier (``x`` at ``t - dt``).

    Discretising ``ddt``/``idt`` operators introduces these nodes; they become
    state variables of the generated signal-flow model.  The paper refers to
    this as "the explicit interest on the output value at -Δt".
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("a Previous node needs a non-empty name")
        self.name = name

    def _key(self) -> tuple:
        return ("prev", self.name)


class BinaryOp(Expr):
    """A binary operator node (arithmetic, comparison or logical)."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in BINARY_OPERATORS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def _key(self) -> tuple:
        return ("bin", self.op, self.lhs._key(), self.rhs._key())


class UnaryOp(Expr):
    """A unary operator node (negation, identity or logical not)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        if op not in UNARY_OPERATORS:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _key(self) -> tuple:
        return ("un", self.op, self.operand._key())


class Call(Expr):
    """A call to a mathematical function (``exp``, ``sin``, ``pow``, ...)."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr]) -> None:
        if func not in KNOWN_FUNCTIONS:
            raise ValueError(f"unknown function {func!r}")
        self.func = func
        self.args = tuple(args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return ("call", self.func) + tuple(arg._key() for arg in self.args)


class Derivative(Expr):
    """The Verilog-AMS ``ddt()`` analog operator (time derivative)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _key(self) -> tuple:
        return ("ddt", self.operand._key())


class Integral(Expr):
    """The Verilog-AMS ``idt()`` analog operator (time integral).

    ``initial`` is the optional initial condition of the integral.
    """

    __slots__ = ("operand", "initial")

    def __init__(self, operand: Expr, initial: Expr | None = None) -> None:
        self.operand = operand
        self.initial = initial

    def children(self) -> tuple[Expr, ...]:
        if self.initial is None:
            return (self.operand,)
        return (self.operand, self.initial)

    def _key(self) -> tuple:
        initial_key = self.initial._key() if self.initial is not None else None
        return ("idt", self.operand._key(), initial_key)


class Conditional(Expr):
    """A ternary choice, modelling Verilog-AMS ``if``/``else`` in signal-flow code."""

    __slots__ = ("condition", "then", "otherwise")

    def __init__(self, condition: Expr, then: Expr, otherwise: Expr) -> None:
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def children(self) -> tuple[Expr, ...]:
        return (self.condition, self.then, self.otherwise)

    def _key(self) -> tuple:
        return ("cond", self.condition._key(), self.then._key(), self.otherwise._key())


# ---------------------------------------------------------------------------
# Tree rebuilding helpers
# ---------------------------------------------------------------------------
def rebuild(node: Expr, children: Sequence[Expr]) -> Expr:
    """Return a copy of ``node`` with its children replaced by ``children``."""
    if isinstance(node, (Constant, Variable, Previous)):
        return node
    if isinstance(node, BinaryOp):
        lhs, rhs = children
        return BinaryOp(node.op, lhs, rhs)
    if isinstance(node, UnaryOp):
        (operand,) = children
        return UnaryOp(node.op, operand)
    if isinstance(node, Call):
        return Call(node.func, tuple(children))
    if isinstance(node, Derivative):
        (operand,) = children
        return Derivative(operand)
    if isinstance(node, Integral):
        if len(children) == 1:
            return Integral(children[0])
        operand, initial = children
        return Integral(operand, initial)
    if isinstance(node, Conditional):
        condition, then, otherwise = children
        return Conditional(condition, then, otherwise)
    raise TypeError(f"cannot rebuild node of type {type(node).__name__}")


def transform(node: Expr, visit) -> Expr:
    """Apply ``visit`` bottom-up to every node of the expression.

    ``visit`` receives a node whose children have already been transformed and
    must return a node (possibly the same one).
    """
    children = node.children()
    if children:
        new_children = [transform(child, visit) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            node = rebuild(node, new_children)
    return visit(node)


def substitute(node: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace every :class:`Variable` whose name is in ``mapping`` by its image."""

    def visit(current: Expr) -> Expr:
        if isinstance(current, Variable) and current.name in mapping:
            return mapping[current.name]
        return current

    return transform(node, visit)


def substitute_previous(node: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace every :class:`Previous` whose name is in ``mapping`` by its image."""

    def visit(current: Expr) -> Expr:
        if isinstance(current, Previous) and current.name in mapping:
            return mapping[current.name]
        return current

    return transform(node, visit)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "**": 7,
}


def to_string(node: Expr, parent_precedence: int = 0) -> str:
    """Render an expression with minimal parentheses (infix notation)."""
    if isinstance(node, Constant):
        if node.value == int(node.value) and abs(node.value) < 1e16:
            return str(int(node.value))
        return repr(node.value)
    if isinstance(node, Variable):
        return node.name
    if isinstance(node, Previous):
        return f"prev({node.name})"
    if isinstance(node, UnaryOp):
        inner = to_string(node.operand, 8)
        return f"{node.op}{inner}"
    if isinstance(node, Call):
        args = ", ".join(to_string(arg) for arg in node.args)
        return f"{node.func}({args})"
    if isinstance(node, Derivative):
        return f"ddt({to_string(node.operand)})"
    if isinstance(node, Integral):
        if node.initial is None:
            return f"idt({to_string(node.operand)})"
        return f"idt({to_string(node.operand)}, {to_string(node.initial)})"
    if isinstance(node, Conditional):
        return (
            f"({to_string(node.condition)} ? {to_string(node.then)}"
            f" : {to_string(node.otherwise)})"
        )
    if isinstance(node, BinaryOp):
        precedence = _PRECEDENCE[node.op]
        lhs = to_string(node.lhs, precedence)
        rhs = to_string(node.rhs, precedence + 1)
        text = f"{lhs} {node.op} {rhs}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot render node of type {type(node).__name__}")


def constant(value: Number) -> Constant:
    """Shorthand constructor for :class:`Constant`."""
    return Constant(value)


def variable(name: str) -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(name)


def iter_leaves(node: Expr) -> Iterable[Expr]:
    """Yield every leaf node (constants, variables and previous values)."""
    for item in node.walk():
        if not item.children():
            yield item


ZERO = Constant(0.0)
ONE = Constant(1.0)
