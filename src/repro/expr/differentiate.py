"""Symbolic partial differentiation of expression trees.

Differentiation with respect to a :class:`~repro.expr.ast.Variable` is used to
extract linear coefficients (see :mod:`repro.expr.linear`) and to verify
linearity of dipole equations during enrichment.
"""

from __future__ import annotations

from ..errors import NonLinearExpressionError
from .ast import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Expr,
    Integral,
    Previous,
    UnaryOp,
    Variable,
)
from .simplify import simplify


def differentiate(expr: Expr, name: str) -> Expr:
    """Return ``d expr / d name`` as a new expression.

    Supports the arithmetic operators and the differentiable functions of the
    Verilog-AMS analog subset.  ``ddt``/``idt`` operators are treated as
    opaque with respect to instantaneous variables and raise
    :class:`~repro.errors.NonLinearExpressionError` when their operand depends
    on ``name`` — they must be discretised before coefficient extraction.
    """

    def visit(node: Expr) -> Expr:
        if isinstance(node, Constant) or isinstance(node, Previous):
            return Constant(0.0)
        if isinstance(node, Variable):
            return Constant(1.0 if node.name == name else 0.0)
        if isinstance(node, UnaryOp):
            inner = visit(node.operand)
            if node.op == "-":
                return UnaryOp("-", inner)
            if node.op == "+":
                return inner
            raise NonLinearExpressionError(
                f"cannot differentiate logical operator {node.op!r}"
            )
        if isinstance(node, BinaryOp):
            du = visit(node.lhs)
            dv = visit(node.rhs)
            u, v = node.lhs, node.rhs
            if node.op == "+":
                return BinaryOp("+", du, dv)
            if node.op == "-":
                return BinaryOp("-", du, dv)
            if node.op == "*":
                return BinaryOp("+", BinaryOp("*", du, v), BinaryOp("*", u, dv))
            if node.op == "/":
                numerator = BinaryOp("-", BinaryOp("*", du, v), BinaryOp("*", u, dv))
                return BinaryOp("/", numerator, BinaryOp("*", v, v))
            if node.op == "**":
                if not isinstance(v, Constant):
                    raise NonLinearExpressionError(
                        "cannot differentiate a power with non-constant exponent"
                    )
                factor = BinaryOp("*", v, BinaryOp("**", u, Constant(v.value - 1.0)))
                return BinaryOp("*", factor, du)
            raise NonLinearExpressionError(
                f"cannot differentiate comparison operator {node.op!r}"
            )
        if isinstance(node, Call):
            return _differentiate_call(node, name, visit)
        if isinstance(node, Conditional):
            if node.condition.contains_variable(name):
                raise NonLinearExpressionError(
                    "cannot differentiate a conditional whose condition depends "
                    f"on {name!r}"
                )
            return Conditional(node.condition, visit(node.then), visit(node.otherwise))
        if isinstance(node, (Derivative, Integral)):
            if node.operand.contains_variable(name):
                raise NonLinearExpressionError(
                    "discretise ddt/idt before differentiating with respect to "
                    f"{name!r}"
                )
            return Constant(0.0)
        raise NonLinearExpressionError(
            f"cannot differentiate node of type {type(node).__name__}"
        )

    return simplify(visit(expr))


def _differentiate_call(node: Call, name: str, visit) -> Expr:
    """Chain rule for the supported single-argument functions."""
    if not node.args[0].contains_variable(name) and all(
        not arg.contains_variable(name) for arg in node.args
    ):
        return Constant(0.0)
    arg = node.args[0]
    darg = visit(arg)
    func = node.func
    if func == "sin":
        outer: Expr = Call("cos", (arg,))
    elif func == "cos":
        outer = UnaryOp("-", Call("sin", (arg,)))
    elif func == "tan":
        cos = Call("cos", (arg,))
        outer = BinaryOp("/", Constant(1.0), BinaryOp("*", cos, cos))
    elif func in ("exp", "limexp"):
        outer = Call("exp", (arg,))
    elif func == "ln":
        outer = BinaryOp("/", Constant(1.0), arg)
    elif func == "sqrt":
        outer = BinaryOp("/", Constant(0.5), Call("sqrt", (arg,)))
    elif func == "tanh":
        tanh = Call("tanh", (arg,))
        outer = BinaryOp("-", Constant(1.0), BinaryOp("*", tanh, tanh))
    elif func == "sinh":
        outer = Call("cosh", (arg,))
    elif func == "cosh":
        outer = Call("sinh", (arg,))
    elif func == "atan":
        outer = BinaryOp(
            "/", Constant(1.0), BinaryOp("+", Constant(1.0), BinaryOp("*", arg, arg))
        )
    elif func == "pow":
        base, exponent = node.args
        if exponent.contains_variable(name):
            raise NonLinearExpressionError(
                "cannot differentiate pow() with a variable exponent"
            )
        if not isinstance(exponent, Constant):
            raise NonLinearExpressionError(
                "cannot differentiate pow() with a non-constant exponent"
            )
        outer = BinaryOp(
            "*", exponent, Call("pow", (base, Constant(exponent.value - 1.0)))
        )
        darg = visit(base)
    else:
        raise NonLinearExpressionError(f"cannot differentiate function {func!r}")
    return BinaryOp("*", outer, darg)


def is_linear_in(expr: Expr, names: set[str] | frozenset[str]) -> bool:
    """Return ``True`` when ``expr`` is (jointly) linear in all ``names``."""
    try:
        for name in names:
            gradient = differentiate(expr, name)
            if any(isinstance(node, Variable) and node.name in names for node in gradient.walk()):
                return False
    except NonLinearExpressionError:
        return False
    return True
