"""Symbolic expression engine.

This package provides the expression trees that the Verilog-AMS frontend
produces, that the abstraction methodology rewrites, and that the code
generators finally emit as C++/SystemC/Python code.  See
:mod:`repro.expr.ast` for the node types.
"""

from .ast import (
    ARITHMETIC_OPERATORS,
    BINARY_OPERATORS,
    COMPARISON_OPERATORS,
    KNOWN_FUNCTIONS,
    LOGICAL_OPERATORS,
    UNARY_OPERATORS,
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Expr,
    Integral,
    Previous,
    UnaryOp,
    Variable,
    constant,
    iter_leaves,
    rebuild,
    substitute,
    substitute_previous,
    to_string,
    transform,
    variable,
)
from .differentiate import differentiate, is_linear_in
from .discretize import (
    BACKWARD_EULER,
    TRAPEZOIDAL,
    DiscretizationResult,
    Discretizer,
    discretize,
    previous_of,
)
from .evaluate import FUNCTION_TABLE, evaluate
from .equation import DERIVED, DIPOLE, KCL, KVL, SIGNAL_FLOW, Equation, unique_variables
from .linear import (
    AffineDecomposition,
    LinearForm,
    affine_decompose,
    linear_form,
    solve_affine_system,
    solve_for,
    solve_linear_system,
)
from .simplify import constant_value, is_constant, simplify

__all__ = [
    "ARITHMETIC_OPERATORS",
    "AffineDecomposition",
    "DERIVED",
    "DIPOLE",
    "Equation",
    "KCL",
    "KVL",
    "SIGNAL_FLOW",
    "affine_decompose",
    "solve_affine_system",
    "unique_variables",
    "BINARY_OPERATORS",
    "COMPARISON_OPERATORS",
    "KNOWN_FUNCTIONS",
    "LOGICAL_OPERATORS",
    "UNARY_OPERATORS",
    "BACKWARD_EULER",
    "TRAPEZOIDAL",
    "BinaryOp",
    "Call",
    "Conditional",
    "Constant",
    "Derivative",
    "DiscretizationResult",
    "Discretizer",
    "Expr",
    "FUNCTION_TABLE",
    "Integral",
    "LinearForm",
    "Previous",
    "UnaryOp",
    "Variable",
    "constant",
    "constant_value",
    "differentiate",
    "discretize",
    "evaluate",
    "is_constant",
    "is_linear_in",
    "iter_leaves",
    "linear_form",
    "previous_of",
    "rebuild",
    "simplify",
    "solve_for",
    "solve_linear_system",
    "substitute",
    "substitute_previous",
    "to_string",
    "transform",
    "variable",
]
