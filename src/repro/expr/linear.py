"""Linear-form extraction and linear equation solving.

The last stage of the assemble step (paper Section IV.C, Figure 7) must
remove every un-delayed occurrence of the output of interest from the right
hand side of the assembled equation.  Because conservative descriptions of
electrical linear networks are linear in node potentials and branch flows,
this amounts to extracting the linear form of an expression with respect to a
set of unknowns and solving the resulting (small) linear system symbolically.
The paper quotes a worst-case cost of O(|N|³) for this step — Gaussian
elimination, which is exactly what :func:`solve_linear_system` performs, with
expression-valued coefficients that constant-fold to numbers whenever the
circuit parameters are numeric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import NonLinearExpressionError, UnsolvableEquationError
from .ast import BinaryOp, Call, Conditional, Constant, Derivative, Expr, Integral, Previous, UnaryOp, Variable
from .simplify import constant_value, is_constant, simplify


@dataclass(frozen=True)
class LinearForm:
    """The decomposition ``expr == sum(coefficients[name] * name) + remainder``.

    ``remainder`` groups everything that does not depend on the chosen
    unknowns (inputs, parameters, previous-step values, other variables).
    """

    coefficients: dict[str, Expr]
    remainder: Expr

    def coefficient(self, name: str) -> Expr:
        """Return the coefficient of ``name`` (zero when absent)."""
        return self.coefficients.get(name, Constant(0.0))

    def depends_on(self, name: str) -> bool:
        """Return ``True`` when the coefficient of ``name`` is not exactly zero."""
        coefficient = self.coefficients.get(name)
        if coefficient is None:
            return False
        value = constant_value(coefficient)
        return value is None or value != 0.0


def _merge(
    lhs: dict[str, Expr], rhs: dict[str, Expr], combine
) -> dict[str, Expr]:
    merged = dict(lhs)
    for name, coefficient in rhs.items():
        if name in merged:
            merged[name] = combine(merged[name], coefficient)
        else:
            merged[name] = combine(Constant(0.0), coefficient)
    return merged


def _scale(coefficients: dict[str, Expr], factor: Expr) -> dict[str, Expr]:
    return {name: BinaryOp("*", coefficient, factor) for name, coefficient in coefficients.items()}


def linear_form(expr: Expr, unknowns: Sequence[str] | set[str]) -> LinearForm:
    """Decompose ``expr`` as an affine combination of ``unknowns``.

    Raises
    ------
    NonLinearExpressionError
        When ``expr`` is not affine in the unknowns (e.g. a product of two
        unknowns, an unknown inside a function call or under ``ddt``).
    """
    unknown_set = set(unknowns)

    def visit(node: Expr) -> tuple[dict[str, Expr], Expr]:
        if isinstance(node, Constant) or isinstance(node, Previous):
            return {}, node
        if isinstance(node, Variable):
            if node.name in unknown_set:
                return {node.name: Constant(1.0)}, Constant(0.0)
            return {}, node
        if isinstance(node, UnaryOp):
            coefficients, remainder = visit(node.operand)
            if node.op == "+":
                return coefficients, remainder
            if node.op == "-":
                negated = {
                    name: UnaryOp("-", coefficient)
                    for name, coefficient in coefficients.items()
                }
                return negated, UnaryOp("-", remainder)
            if coefficients:
                raise NonLinearExpressionError(
                    f"logical operator applied to unknowns in {node}"
                )
            return {}, node
        if isinstance(node, BinaryOp):
            left_coefficients, left_remainder = visit(node.lhs)
            right_coefficients, right_remainder = visit(node.rhs)
            if node.op == "+":
                merged = _merge(
                    left_coefficients,
                    right_coefficients,
                    lambda a, b: BinaryOp("+", a, b),
                )
                return merged, BinaryOp("+", left_remainder, right_remainder)
            if node.op == "-":
                merged = _merge(
                    left_coefficients,
                    right_coefficients,
                    lambda a, b: BinaryOp("-", a, b),
                )
                return merged, BinaryOp("-", left_remainder, right_remainder)
            if node.op == "*":
                if left_coefficients and right_coefficients:
                    raise NonLinearExpressionError(
                        f"product of unknowns in {node}"
                    )
                if left_coefficients:
                    return (
                        _scale(left_coefficients, node.rhs),
                        BinaryOp("*", left_remainder, node.rhs),
                    )
                if right_coefficients:
                    return (
                        _scale(right_coefficients, node.lhs),
                        BinaryOp("*", node.lhs, right_remainder),
                    )
                return {}, node
            if node.op == "/":
                if right_coefficients:
                    raise NonLinearExpressionError(
                        f"unknown in a denominator in {node}"
                    )
                if left_coefficients:
                    scaled = {
                        name: BinaryOp("/", coefficient, node.rhs)
                        for name, coefficient in left_coefficients.items()
                    }
                    return scaled, BinaryOp("/", left_remainder, node.rhs)
                return {}, node
            if left_coefficients or right_coefficients:
                raise NonLinearExpressionError(
                    f"operator {node.op!r} applied to unknowns in {node}"
                )
            return {}, node
        if isinstance(node, (Call, Conditional, Derivative, Integral)):
            if any(name in unknown_set for name in node.variables()):
                raise NonLinearExpressionError(
                    f"unknowns appear inside a non-linear construct: {node}"
                )
            return {}, node
        raise NonLinearExpressionError(
            f"cannot extract a linear form from {type(node).__name__}"
        )

    coefficients, remainder = visit(expr)
    simplified = {name: simplify(value) for name, value in coefficients.items()}
    nonzero = {
        name: value
        for name, value in simplified.items()
        if constant_value(value) != 0.0
    }
    return LinearForm(nonzero, simplify(remainder))


def solve_for(lhs: Expr, rhs: Expr, name: str) -> Expr:
    """Solve the equation ``lhs == rhs`` for the variable ``name``.

    This is the ``Solve`` routine of the paper's enrichment step
    (Algorithm 1, line 7): each equation is re-solved for every term that
    appears in it, producing the enriched hash table.

    Raises
    ------
    UnsolvableEquationError
        When ``name`` does not appear linearly with a non-zero coefficient.
    """
    difference = BinaryOp("-", lhs, rhs)
    try:
        form = linear_form(difference, {name})
    except NonLinearExpressionError as exc:
        raise UnsolvableEquationError(
            f"equation is not linear in {name!r}: {exc}"
        ) from exc
    coefficient = form.coefficient(name)
    coefficient_value = constant_value(coefficient)
    if coefficient_value == 0.0 or (coefficient_value is None and not form.depends_on(name)):
        raise UnsolvableEquationError(f"{name!r} does not appear in the equation")
    solution = BinaryOp("/", UnaryOp("-", form.remainder), coefficient)
    return simplify(solution)


def solve_linear_system(
    equations: Mapping[str, Expr], unknowns: Sequence[str]
) -> dict[str, Expr]:
    """Solve a system ``unknown == expression`` for all ``unknowns`` symbolically.

    ``equations`` maps each unknown to an expression that may reference any of
    the unknowns (an implicit algebraic coupling, as produced by the assemble
    step on circuits with more than one storage element).  The system must be
    linear; Gaussian elimination with expression-valued coefficients is used,
    pivoting on the entry with the largest constant-foldable magnitude.

    Returns a mapping from unknown name to an expression free of every
    unknown.
    """
    order = list(unknowns)
    n = len(order)
    if n == 0:
        return {}

    # Build the augmented system  A x = b  from  x_i = expr_i, i.e.
    # (I - J) x = remainder, where J holds the coefficients of the unknowns.
    matrix: list[list[Expr]] = []
    rhs: list[Expr] = []
    for row_index, name in enumerate(order):
        expression = equations[name]
        form = linear_form(expression, order)
        row = []
        for column_index, column_name in enumerate(order):
            coefficient = form.coefficient(column_name)
            identity = Constant(1.0) if row_index == column_index else Constant(0.0)
            row.append(simplify(BinaryOp("-", identity, coefficient)))
        matrix.append(row)
        rhs.append(form.remainder)

    # Forward elimination with partial pivoting on constant-valued entries.
    for pivot_index in range(n):
        pivot_row = _select_pivot(matrix, pivot_index, n)
        if pivot_row != pivot_index:
            matrix[pivot_index], matrix[pivot_row] = matrix[pivot_row], matrix[pivot_index]
            rhs[pivot_index], rhs[pivot_row] = rhs[pivot_row], rhs[pivot_index]
        pivot = matrix[pivot_index][pivot_index]
        if constant_value(pivot) == 0.0:
            raise UnsolvableEquationError(
                f"singular algebraic system while solving for {order[pivot_index]!r}"
            )
        for row_index in range(pivot_index + 1, n):
            entry = matrix[row_index][pivot_index]
            if constant_value(entry) == 0.0:
                continue
            factor = simplify(BinaryOp("/", entry, pivot))
            for column_index in range(pivot_index, n):
                updated = BinaryOp(
                    "-",
                    matrix[row_index][column_index],
                    BinaryOp("*", factor, matrix[pivot_index][column_index]),
                )
                matrix[row_index][column_index] = simplify(updated)
            rhs[row_index] = simplify(
                BinaryOp("-", rhs[row_index], BinaryOp("*", factor, rhs[pivot_index]))
            )

    # Back substitution.
    solutions: list[Expr | None] = [None] * n
    for row_index in range(n - 1, -1, -1):
        accumulated = rhs[row_index]
        for column_index in range(row_index + 1, n):
            coefficient = matrix[row_index][column_index]
            if constant_value(coefficient) == 0.0:
                continue
            accumulated = BinaryOp(
                "-",
                accumulated,
                BinaryOp("*", coefficient, solutions[column_index]),
            )
        pivot = matrix[row_index][row_index]
        solutions[row_index] = simplify(BinaryOp("/", accumulated, pivot))

    return {name: solution for name, solution in zip(order, solutions)}


@dataclass
class AffineDecomposition:
    """Numeric affine decomposition of an expression.

    ``expr == sum(unknown_coefficients[u] * u) + sum(atom_coefficients[a] * a) + constant``

    where the unknowns are instantaneous :class:`Variable` quantities chosen by
    the caller and the atoms are every other leaf carrying a value at run time:
    input variables (``("var", name)``) and previous-step values
    (``("prev", name)``).  All coefficients must fold to numbers; otherwise
    :class:`~repro.errors.NonLinearExpressionError` is raised and the caller
    should fall back to the fully symbolic path.
    """

    unknown_coefficients: dict[str, float]
    atom_coefficients: dict[tuple[str, str], float]
    constant: float

    def scaled(self, factor: float) -> "AffineDecomposition":
        """Return this decomposition multiplied by ``factor``."""
        return AffineDecomposition(
            {name: value * factor for name, value in self.unknown_coefficients.items()},
            {atom: value * factor for atom, value in self.atom_coefficients.items()},
            self.constant * factor,
        )

    def add(self, other: "AffineDecomposition", sign: float = 1.0) -> "AffineDecomposition":
        """Return ``self + sign * other``."""
        unknowns = dict(self.unknown_coefficients)
        for name, value in other.unknown_coefficients.items():
            unknowns[name] = unknowns.get(name, 0.0) + sign * value
        atoms = dict(self.atom_coefficients)
        for atom, value in other.atom_coefficients.items():
            atoms[atom] = atoms.get(atom, 0.0) + sign * value
        return AffineDecomposition(unknowns, atoms, self.constant + sign * other.constant)

    def is_pure_number(self) -> bool:
        """True when the decomposition has no unknown and no atom contribution."""
        return not any(self.unknown_coefficients.values()) and not any(
            self.atom_coefficients.values()
        )


def affine_decompose(expr: Expr, unknowns: Sequence[str] | set[str]) -> AffineDecomposition:
    """Decompose ``expr`` with *numeric* coefficients; see :class:`AffineDecomposition`.

    Raises
    ------
    NonLinearExpressionError
        When the expression is not affine in the unknowns and atoms, or when a
        coefficient does not fold to a number (symbolic parameters).
    """
    unknown_set = set(unknowns)

    def visit(node: Expr) -> AffineDecomposition:
        if isinstance(node, Constant):
            return AffineDecomposition({}, {}, node.value)
        if isinstance(node, Variable):
            if node.name in unknown_set:
                return AffineDecomposition({node.name: 1.0}, {}, 0.0)
            return AffineDecomposition({}, {("var", node.name): 1.0}, 0.0)
        if isinstance(node, Previous):
            return AffineDecomposition({}, {("prev", node.name): 1.0}, 0.0)
        if isinstance(node, UnaryOp):
            inner = visit(node.operand)
            if node.op == "+":
                return inner
            if node.op == "-":
                return inner.scaled(-1.0)
            raise NonLinearExpressionError(f"cannot decompose logical operator {node.op!r}")
        if isinstance(node, BinaryOp):
            if node.op == "+":
                return visit(node.lhs).add(visit(node.rhs))
            if node.op == "-":
                return visit(node.lhs).add(visit(node.rhs), sign=-1.0)
            if node.op == "*":
                left = visit(node.lhs)
                right = visit(node.rhs)
                if left.is_pure_number():
                    return right.scaled(left.constant)
                if right.is_pure_number():
                    return left.scaled(right.constant)
                raise NonLinearExpressionError(f"product of run-time quantities in {node}")
            if node.op == "/":
                left = visit(node.lhs)
                right = visit(node.rhs)
                if not right.is_pure_number():
                    raise NonLinearExpressionError(f"run-time quantity in a denominator in {node}")
                if right.constant == 0.0:
                    raise NonLinearExpressionError(f"division by zero in {node}")
                return left.scaled(1.0 / right.constant)
            if node.op == "**":
                left = visit(node.lhs)
                right = visit(node.rhs)
                if left.is_pure_number() and right.is_pure_number():
                    return AffineDecomposition({}, {}, left.constant**right.constant)
            raise NonLinearExpressionError(f"operator {node.op!r} is not affine in {node}")
        if isinstance(node, (Call, Conditional, Derivative, Integral)):
            value = constant_value(node) if not isinstance(node, (Derivative, Integral)) else None
            if value is not None:
                return AffineDecomposition({}, {}, value)
            raise NonLinearExpressionError(
                f"non-affine construct {type(node).__name__} in {node}"
            )
        raise NonLinearExpressionError(f"cannot decompose {type(node).__name__}")

    return visit(expr)


def solve_affine_system(
    equations: Mapping[str, Expr],
    unknowns: Sequence[str],
    tolerance: float = 1e-18,
) -> dict[str, Expr]:
    """Numerically solve ``unknown == expression`` for all ``unknowns``.

    This is the fast path of the paper's "solution of the linear equation":
    when every coefficient folds to a number (circuit parameters are known at
    abstraction time), the implicit system is solved with dense numeric
    Gaussian elimination and each unknown becomes a compact affine combination
    of inputs and previous-step values.

    Raises
    ------
    NonLinearExpressionError
        When a coefficient is not numeric; callers should then fall back to
        :func:`solve_linear_system`.
    UnsolvableEquationError
        When the system is singular.
    """
    import numpy as np

    order = list(unknowns)
    n = len(order)
    if n == 0:
        return {}
    index = {name: i for i, name in enumerate(order)}

    decompositions = [affine_decompose(equations[name], order) for name in order]
    atoms: list[tuple[str, str]] = []
    atom_index: dict[tuple[str, str], int] = {}
    for decomposition in decompositions:
        for atom in decomposition.atom_coefficients:
            if atom not in atom_index:
                atom_index[atom] = len(atoms)
                atoms.append(atom)

    matrix = np.eye(n)
    rhs = np.zeros((n, len(atoms) + 1))
    for row, decomposition in enumerate(decompositions):
        for name, value in decomposition.unknown_coefficients.items():
            matrix[row, index[name]] -= value
        for atom, value in decomposition.atom_coefficients.items():
            rhs[row, atom_index[atom]] += value
        rhs[row, -1] += decomposition.constant

    try:
        solution = np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise UnsolvableEquationError(
            "the assembled algebraic system is singular"
        ) from exc

    results: dict[str, Expr] = {}
    for row, name in enumerate(order):
        terms: list[Expr] = []
        for column, atom in enumerate(atoms):
            coefficient = solution[row, column]
            if abs(coefficient) <= tolerance:
                continue
            kind, atom_name = atom
            leaf: Expr = Previous(atom_name) if kind == "prev" else Variable(atom_name)
            terms.append(BinaryOp("*", Constant(float(coefficient)), leaf))
        constant = solution[row, -1]
        expression: Expr
        if abs(constant) > tolerance or not terms:
            expression = Constant(float(constant))
            for term in terms:
                expression = BinaryOp("+", expression, term)
        else:
            expression = terms[0]
            for term in terms[1:]:
                expression = BinaryOp("+", expression, term)
        results[name] = simplify(expression)
    return results


def _select_pivot(matrix: list[list[Expr]], pivot_index: int, n: int) -> int:
    """Pick the row with the largest known-magnitude pivot entry."""
    best_row = pivot_index
    best_magnitude = -1.0
    for row_index in range(pivot_index, n):
        value = constant_value(matrix[row_index][pivot_index])
        if value is None:
            # A symbolic entry is assumed usable; prefer it only if no numeric
            # non-zero pivot was found.
            magnitude = 0.5
        else:
            magnitude = abs(value)
        if magnitude > best_magnitude:
            best_magnitude = magnitude
            best_row = row_index
    return best_row
