"""Discretisation of continuous-time analog operators (``ddt``/``idt``).

The generated signal-flow models are executed at a fixed timestep by the
virtual platform (paper Section IV.C: occurrences of the output on the right
hand side "are already delayed by Δt").  This module rewrites the
continuous-time operators of Verilog-AMS into difference equations over that
timestep:

* ``ddt(x)``  →  ``(x - prev(x)) / dt``          (backward Euler derivative)
* ``idt(x)``  →  an accumulator state updated as ``acc = prev(acc) + dt*x``

``prev(x)`` denotes the value of ``x`` one timestep earlier and becomes a
state variable of the generated model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import (
    BinaryOp,
    Constant,
    Derivative,
    Expr,
    Integral,
    Previous,
    Variable,
    transform,
)
from .simplify import simplify

#: Discretisation schemes supported for the ``ddt`` operator.
BACKWARD_EULER = "backward_euler"
TRAPEZOIDAL = "trapezoidal"
SUPPORTED_METHODS = (BACKWARD_EULER, TRAPEZOIDAL)


def previous_of(expr: Expr) -> Expr:
    """Return ``expr`` with every instantaneous variable delayed by one step."""

    def visit(node: Expr) -> Expr:
        if isinstance(node, Variable):
            return Previous(node.name)
        return node

    return transform(expr, visit)


@dataclass
class DiscretizationResult:
    """Outcome of discretising one expression.

    Attributes
    ----------
    expression:
        The rewritten expression; it references :class:`Previous` values and
        possibly freshly introduced accumulator variables.
    integrator_updates:
        Update expressions for accumulator states introduced for ``idt``
        operators, keyed by the accumulator variable name.  The update must be
        evaluated every step *before* ``expression`` (it only references the
        accumulator's previous value and instantaneous quantities).
    """

    expression: Expr
    integrator_updates: dict[str, Expr] = field(default_factory=dict)


class Discretizer:
    """Rewrites ``ddt``/``idt`` operators against a fixed timestep.

    A single instance should be reused across all equations of a model so
    that accumulator names stay unique.
    """

    def __init__(self, timestep: float, method: str = BACKWARD_EULER) -> None:
        if timestep <= 0.0:
            raise ValueError("the discretisation timestep must be positive")
        if method not in SUPPORTED_METHODS:
            raise ValueError(
                f"unknown discretisation method {method!r}; "
                f"expected one of {SUPPORTED_METHODS}"
            )
        self.timestep = float(timestep)
        self.method = method
        self._integrator_count = 0

    def _next_integrator_name(self) -> str:
        name = f"__idt_{self._integrator_count}"
        self._integrator_count += 1
        return name

    def discretize(self, expr: Expr) -> DiscretizationResult:
        """Rewrite every ``ddt``/``idt`` in ``expr``; see :class:`DiscretizationResult`."""
        updates: dict[str, Expr] = {}
        dt = Constant(self.timestep)

        def visit(node: Expr) -> Expr:
            if isinstance(node, Derivative):
                operand = node.operand
                delayed = previous_of(operand)
                if self.method == BACKWARD_EULER:
                    return BinaryOp("/", BinaryOp("-", operand, delayed), dt)
                # Trapezoidal differentiation uses the same first difference;
                # the distinction matters for idt (and for companion models in
                # the ELN solver), where the average of the operand is used.
                return BinaryOp("/", BinaryOp("-", operand, delayed), dt)
            if isinstance(node, Integral):
                name = self._next_integrator_name()
                operand = node.operand
                if self.method == TRAPEZOIDAL:
                    average = BinaryOp(
                        "/",
                        BinaryOp("+", operand, previous_of(operand)),
                        Constant(2.0),
                    )
                    increment = BinaryOp("*", dt, average)
                else:
                    increment = BinaryOp("*", dt, operand)
                update = BinaryOp("+", Previous(name), increment)
                updates[name] = simplify(update)
                result: Expr = Variable(name)
                if node.initial is not None:
                    result = BinaryOp("+", result, node.initial)
                return result
            return node

        rewritten = transform(expr, visit)
        return DiscretizationResult(simplify(rewritten), updates)


def discretize(
    expr: Expr, timestep: float, method: str = BACKWARD_EULER
) -> DiscretizationResult:
    """One-shot helper around :class:`Discretizer` for a single expression."""
    return Discretizer(timestep, method).discretize(expr)
