"""Symbolic equations (``lhs == rhs``) built from expression trees.

Dipole equations, Kirchhoff equations and the enriched/solved variants the
abstraction pipeline produces are all instances of :class:`Equation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .ast import BinaryOp, Expr, Variable
from .linear import solve_for
from .simplify import simplify

#: Equation kinds, mirroring the paper's terminology.
DIPOLE = "dipole"  # constitutive relation of one branch (explicit equation)
KCL = "kcl"  # Kirchhoff current law at a node (implicit equation)
KVL = "kvl"  # Kirchhoff voltage law around a loop (implicit equation)
DERIVED = "derived"  # produced by re-solving another equation for one term
SIGNAL_FLOW = "signal_flow"  # direct assignment from a signal-flow description

EQUATION_KINDS = (DIPOLE, KCL, KVL, DERIVED, SIGNAL_FLOW)


@dataclass
class Equation:
    """A symbolic equation ``lhs == rhs``.

    Attributes
    ----------
    lhs, rhs:
        The two sides of the equation.  For *solved* equations ``lhs`` is a
        single :class:`~repro.expr.ast.Variable` and the equation reads as a
        definition of that variable.
    kind:
        One of :data:`EQUATION_KINDS`.
    name:
        A human-readable identifier (e.g. ``"dipole:R1"`` or ``"kcl:n3"``).
    origin:
        The name of the equation this one was derived from, if any.  The
        enrichment step uses it to group equations into equivalence classes of
        linearly dependent relations, so that using one member disables the
        whole class (paper Section IV.B).
    """

    lhs: Expr
    rhs: Expr
    kind: str = DIPOLE
    name: str = ""
    origin: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in EQUATION_KINDS:
            raise ValueError(f"unknown equation kind {self.kind!r}")
        if not self.name:
            self.name = f"{self.kind}:{self.lhs}"
        if self.origin is None:
            self.origin = self.name

    # -- queries --------------------------------------------------------------
    def variables(self) -> set[str]:
        """Return every variable name used on either side."""
        return self.lhs.variables() | self.rhs.variables()

    def defined_variable(self) -> str | None:
        """Return the variable this equation defines, when the LHS is a variable."""
        if isinstance(self.lhs, Variable):
            return self.lhs.name
        return None

    def residual(self) -> Expr:
        """Return ``lhs - rhs`` (zero when the equation holds)."""
        return simplify(BinaryOp("-", self.lhs, self.rhs))

    def has_derivative(self) -> bool:
        """Return ``True`` if either side contains a ``ddt`` operator."""
        return self.lhs.has_derivative() or self.rhs.has_derivative()

    def has_integral(self) -> bool:
        """Return ``True`` if either side contains an ``idt`` operator."""
        return self.lhs.has_integral() or self.rhs.has_integral()

    # -- transformations -------------------------------------------------------
    def solved_for(self, name: str, *, new_name: str | None = None) -> "Equation":
        """Return a new equation with ``name`` isolated on the left-hand side.

        This is the ``Solve(equation, term)`` call in Algorithm 1 of the paper.
        """
        solution = solve_for(self.lhs, self.rhs, name)
        return Equation(
            Variable(name),
            solution,
            kind=DERIVED,
            name=new_name or f"{self.name}->{name}",
            origin=self.origin,
        )

    def simplified(self) -> "Equation":
        """Return a copy with both sides simplified."""
        return Equation(
            simplify(self.lhs),
            simplify(self.rhs),
            kind=self.kind,
            name=self.name,
            origin=self.origin,
        )

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


def unique_variables(equations: Iterable[Equation]) -> set[str]:
    """Return the union of variable names over a collection of equations."""
    names: set[str] = set()
    for equation in equations:
        names |= equation.variables()
    return names
