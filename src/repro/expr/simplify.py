"""Algebraic simplification of expression trees.

The abstraction pipeline builds very large expressions by substituting dipole
and Kirchhoff equations into one another (paper Section IV.C).  Constant
folding and identity elimination keep these trees small enough for the final
linear solve and for the generated code to be readable.

The simplifier is intentionally conservative: it only applies rewrites that
are valid for every real-valued input (no reassociation of floating point
sums beyond folding literal constants that are directly adjacent).
"""

from __future__ import annotations

import math

from .ast import (
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Expr,
    Integral,
    Previous,
    UnaryOp,
    Variable,
    transform,
)
from .evaluate import FUNCTION_TABLE


def _is_const(node: Expr, value: float | None = None) -> bool:
    if not isinstance(node, Constant):
        return False
    if value is None:
        return True
    return node.value == value


def _fold_binary(op: str, lhs: float, rhs: float) -> Expr | None:
    """Fold two literal operands; return ``None`` when folding is unsafe."""
    try:
        if op == "+":
            return Constant(lhs + rhs)
        if op == "-":
            return Constant(lhs - rhs)
        if op == "*":
            return Constant(lhs * rhs)
        if op == "/":
            if rhs == 0.0:
                return None
            return Constant(lhs / rhs)
        if op == "**":
            return Constant(lhs**rhs)
        if op == "<":
            return Constant(1.0 if lhs < rhs else 0.0)
        if op == "<=":
            return Constant(1.0 if lhs <= rhs else 0.0)
        if op == ">":
            return Constant(1.0 if lhs > rhs else 0.0)
        if op == ">=":
            return Constant(1.0 if lhs >= rhs else 0.0)
        if op == "==":
            return Constant(1.0 if lhs == rhs else 0.0)
        if op == "!=":
            return Constant(1.0 if lhs != rhs else 0.0)
        if op == "&&":
            return Constant(1.0 if (lhs != 0.0 and rhs != 0.0) else 0.0)
        if op == "||":
            return Constant(1.0 if (lhs != 0.0 or rhs != 0.0) else 0.0)
    except OverflowError:
        return None
    return None


def _negate(node: Expr) -> Expr:
    """Build ``-node`` while removing double negations and folding constants."""
    if isinstance(node, Constant):
        return Constant(-node.value)
    if isinstance(node, UnaryOp) and node.op == "-":
        return node.operand
    return UnaryOp("-", node)


def _is_negation(node: Expr) -> bool:
    return isinstance(node, UnaryOp) and node.op == "-"


def _simplify_binary(node: BinaryOp) -> Expr:
    """Apply the binary rules until the node stops changing.

    A rewrite can expose another rule (``x + (-x)`` becomes ``x - x``, which
    folds to ``0``), so the rules are re-applied locally until a fixpoint —
    this is what makes one ``simplify`` pass idempotent.  Every rewrite
    either folds to a leaf or strips a negation, so the loop terminates.
    """
    result = _simplify_binary_once(node)
    while result is not node and isinstance(result, BinaryOp):
        node = result
        result = _simplify_binary_once(node)
    return result


def _simplify_binary_once(node: BinaryOp) -> Expr:
    lhs, rhs = node.lhs, node.rhs
    if isinstance(lhs, Constant) and isinstance(rhs, Constant):
        folded = _fold_binary(node.op, lhs.value, rhs.value)
        if folded is not None:
            return folded

    op = node.op
    if op == "+":
        if _is_const(lhs, 0.0):
            return rhs
        if _is_const(rhs, 0.0):
            return lhs
        if _is_negation(rhs):
            return BinaryOp("-", lhs, rhs.operand)
    elif op == "-":
        if _is_const(rhs, 0.0):
            return lhs
        if _is_const(lhs, 0.0):
            return _negate(rhs)
        if lhs == rhs:
            return Constant(0.0)
        if _is_negation(rhs):
            return BinaryOp("+", lhs, rhs.operand)
    elif op == "*":
        if _is_const(lhs, 0.0) or _is_const(rhs, 0.0):
            return Constant(0.0)
        if _is_const(lhs, 1.0):
            return rhs
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(lhs, -1.0):
            return _negate(rhs)
        if _is_const(rhs, -1.0):
            return _negate(lhs)
        if _is_negation(lhs) and _is_negation(rhs):
            return BinaryOp("*", lhs.operand, rhs.operand)
        if isinstance(lhs, Constant) and _is_negation(rhs):
            return BinaryOp("*", Constant(-lhs.value), rhs.operand)
        if isinstance(rhs, Constant) and _is_negation(lhs):
            return BinaryOp("*", lhs.operand, Constant(-rhs.value))
    elif op == "/":
        if _is_const(lhs, 0.0) and not _is_const(rhs, 0.0):
            return Constant(0.0)
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(rhs, -1.0):
            return _negate(lhs)
        if _is_negation(lhs) and _is_negation(rhs):
            return BinaryOp("/", lhs.operand, rhs.operand)
        if isinstance(rhs, Constant) and rhs.value < 0.0 and _is_negation(lhs):
            return BinaryOp("/", lhs.operand, Constant(-rhs.value))
    elif op == "**":
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(rhs, 0.0):
            return Constant(1.0)
    return node


def _simplify_unary(node: UnaryOp) -> Expr:
    operand = node.operand
    if node.op == "+":
        return operand
    if node.op == "-":
        return _negate(operand)
    if node.op == "!":
        if isinstance(operand, Constant):
            return Constant(1.0 if operand.value == 0.0 else 0.0)
    return node


def _simplify_call(node: Call) -> Expr:
    if all(isinstance(arg, Constant) for arg in node.args) and node.func in FUNCTION_TABLE:
        try:
            value = FUNCTION_TABLE[node.func](*[arg.value for arg in node.args])
        except (ValueError, OverflowError, ZeroDivisionError):
            return node
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            return node
        return Constant(float(value))
    return node


def _simplify_conditional(node: Conditional) -> Expr:
    if isinstance(node.condition, Constant):
        return node.then if node.condition.value != 0.0 else node.otherwise
    if node.then == node.otherwise:
        return node.then
    return node


def simplify(expr: Expr) -> Expr:
    """Return a simplified, semantically equivalent copy of ``expr``.

    The rewrite is a single bottom-up pass applying constant folding,
    arithmetic identities (``x + 0``, ``x * 1``, ``x * 0``, ``x - x``,
    double negation, ...) and folding of calls whose arguments are literal.
    """

    def visit(node: Expr) -> Expr:
        if isinstance(node, BinaryOp):
            return _simplify_binary(node)
        if isinstance(node, UnaryOp):
            return _simplify_unary(node)
        if isinstance(node, Call):
            return _simplify_call(node)
        if isinstance(node, Conditional):
            return _simplify_conditional(node)
        if isinstance(node, Derivative) and isinstance(node.operand, Constant):
            return Constant(0.0)
        return node

    return transform(expr, visit)


def is_constant(expr: Expr) -> bool:
    """Return ``True`` when the expression contains no variables or states."""
    return not any(isinstance(node, (Variable, Previous)) for node in expr.walk())


def constant_value(expr: Expr) -> float | None:
    """Return the numeric value of a constant expression, else ``None``."""
    simplified = simplify(expr)
    if isinstance(simplified, Constant):
        return simplified.value
    return None
