"""Two-terminal and controlled components of electrical linear networks.

Each component knows how to express its constitutive relation — the *dipole
equation* of the paper — as a symbolic :class:`~repro.expr.equation.Equation`
between the branch flow ``I(branch)`` and the node potentials ``V(node)``, and
how to stamp itself into the Modified Nodal Analysis matrices used by the
conservative solvers (:mod:`repro.network.mna`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..expr.ast import BinaryOp, Constant, Derivative, Expr, Variable
from ..expr.equation import DIPOLE, Equation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .circuit import Branch


def node_potential(node: str, ground: str = "gnd") -> Expr:
    """Return the expression for the potential of ``node`` (zero for ground)."""
    if node == ground:
        return Constant(0.0)
    return Variable(f"V({node})")


def branch_voltage(positive: str, negative: str, ground: str = "gnd") -> Expr:
    """Return the expression ``V(positive) - V(negative)``."""
    return BinaryOp("-", node_potential(positive, ground), node_potential(negative, ground))


def branch_current(branch_name: str) -> Variable:
    """Return the flow variable ``I(branch)`` of a branch."""
    return Variable(f"I({branch_name})")


@dataclass
class Component:
    """Base class of every network component.

    Subclasses provide :meth:`dipole_equation` and the MNA stamping hooks.
    """

    #: Short type code used in branch auto-naming (``R``, ``C``, ``V``...).
    type_code = "X"

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        """Return the constitutive relation of the component on ``branch``."""
        raise NotImplementedError

    def needs_current_unknown(self) -> bool:
        """Whether MNA must carry the branch current as an explicit unknown."""
        return False

    def is_source(self) -> bool:
        """Whether the component injects an external stimulus into the network."""
        return False

    def input_name(self) -> str | None:
        """Name of the external stimulus driving the component, if any."""
        return None


@dataclass
class Resistor(Component):
    """An ideal resistor: ``V(p) - V(n) = R * I(branch)``."""

    resistance: float
    type_code = "R"

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive")

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        voltage = branch_voltage(branch.positive, branch.negative, ground)
        rhs = BinaryOp("*", Constant(self.resistance), branch_current(branch.name))
        return Equation(voltage, rhs, kind=DIPOLE, name=f"dipole:{branch.name}")


@dataclass
class Capacitor(Component):
    """An ideal capacitor: ``I(branch) = C * ddt(V(p) - V(n))``."""

    capacitance: float
    initial_voltage: float = 0.0
    type_code = "C"

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive")

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        voltage = branch_voltage(branch.positive, branch.negative, ground)
        rhs = BinaryOp("*", Constant(self.capacitance), Derivative(voltage))
        return Equation(
            branch_current(branch.name), rhs, kind=DIPOLE, name=f"dipole:{branch.name}"
        )


@dataclass
class Inductor(Component):
    """An ideal inductor: ``V(p) - V(n) = L * ddt(I(branch))``."""

    inductance: float
    initial_current: float = 0.0
    type_code = "L"

    def __post_init__(self) -> None:
        if self.inductance <= 0.0:
            raise ValueError("inductance must be positive")

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        voltage = branch_voltage(branch.positive, branch.negative, ground)
        rhs = BinaryOp(
            "*", Constant(self.inductance), Derivative(branch_current(branch.name))
        )
        return Equation(voltage, rhs, kind=DIPOLE, name=f"dipole:{branch.name}")

    def needs_current_unknown(self) -> bool:
        return True


@dataclass
class VoltageSource(Component):
    """An independent voltage source.

    ``input_signal`` names the external stimulus (an entry of the stimulus
    dictionary ``U`` of the paper); when ``None`` the source holds the
    constant ``dc_value``.
    """

    dc_value: float = 0.0
    input_signal: str | None = None
    type_code = "V"

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        voltage = branch_voltage(branch.positive, branch.negative, ground)
        rhs: Expr
        if self.input_signal is not None:
            rhs = Variable(self.input_signal)
        else:
            rhs = Constant(self.dc_value)
        return Equation(voltage, rhs, kind=DIPOLE, name=f"dipole:{branch.name}")

    def needs_current_unknown(self) -> bool:
        return True

    def is_source(self) -> bool:
        return True

    def input_name(self) -> str | None:
        return self.input_signal


@dataclass
class CurrentSource(Component):
    """An independent current source: ``I(branch) = value`` (or an input)."""

    dc_value: float = 0.0
    input_signal: str | None = None
    type_code = "I"

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        rhs: Expr
        if self.input_signal is not None:
            rhs = Variable(self.input_signal)
        else:
            rhs = Constant(self.dc_value)
        return Equation(
            branch_current(branch.name), rhs, kind=DIPOLE, name=f"dipole:{branch.name}"
        )

    def is_source(self) -> bool:
        return True

    def input_name(self) -> str | None:
        return self.input_signal


@dataclass
class VoltageControlledVoltageSource(Component):
    """A VCVS: ``V(p) - V(n) = gain * (V(ctrl_p) - V(ctrl_n))``.

    Used to model amplification stages (e.g. the operational amplifier
    macromodel of the paper's Figure 8.b).
    """

    gain: float
    control_positive: str = ""
    control_negative: str = "gnd"
    type_code = "E"

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        voltage = branch_voltage(branch.positive, branch.negative, ground)
        control = branch_voltage(self.control_positive, self.control_negative, ground)
        rhs = BinaryOp("*", Constant(self.gain), control)
        return Equation(voltage, rhs, kind=DIPOLE, name=f"dipole:{branch.name}")

    def needs_current_unknown(self) -> bool:
        return True


@dataclass
class VoltageControlledCurrentSource(Component):
    """A VCCS: ``I(branch) = transconductance * (V(ctrl_p) - V(ctrl_n))``."""

    transconductance: float
    control_positive: str = ""
    control_negative: str = "gnd"
    type_code = "G"

    def dipole_equation(self, branch: "Branch", ground: str = "gnd") -> Equation:
        control = branch_voltage(self.control_positive, self.control_negative, ground)
        rhs = BinaryOp("*", Constant(self.transconductance), control)
        return Equation(
            branch_current(branch.name), rhs, kind=DIPOLE, name=f"dipole:{branch.name}"
        )


#: Aliases matching common SPICE-style nomenclature.
VCVS = VoltageControlledVoltageSource
VCCS = VoltageControlledCurrentSource
