"""Generation of Kirchhoff's implicit equations (KCL and KVL).

The enrichment step of the paper (Section IV.B, Algorithm 1) augments the
explicit dipole equations with the energy-conservation laws implied by the
circuit topology: Kirchhoff's current law at every node (nodal analysis) and
Kirchhoff's voltage law around every fundamental loop (mesh analysis).
"""

from __future__ import annotations

from ..expr.ast import BinaryOp, Constant, Expr, UnaryOp, Variable
from ..expr.equation import KCL, KVL, Equation
from ..expr.simplify import simplify
from .circuit import Circuit
from .components import branch_voltage
from .graph import CircuitGraph


def _sum(terms: list[Expr]) -> Expr:
    if not terms:
        return Constant(0.0)
    total = terms[0]
    for term in terms[1:]:
        total = BinaryOp("+", total, term)
    return total


def nodal_analysis(circuit: Circuit, include_ground: bool = False) -> list[Equation]:
    """Return one KCL equation per node: the sum of leaving currents is zero.

    The reference direction of a branch is positive-to-negative, so the branch
    current leaves its positive node and enters its negative node.  The ground
    node's equation is linearly dependent on the others and is skipped unless
    ``include_ground`` is set.
    """
    equations: list[Equation] = []
    for node in circuit.node_names():
        if node == circuit.ground and not include_ground:
            continue
        terms: list[Expr] = []
        for branch in circuit.branches_at(node):
            current = Variable(branch.current_variable())
            if branch.positive == node:
                terms.append(current)
            else:
                terms.append(UnaryOp("-", current))
        if not terms:
            continue
        equations.append(
            Equation(
                simplify(_sum(terms)),
                Constant(0.0),
                kind=KCL,
                name=f"kcl:{node}",
            )
        )
    return equations


def mesh_analysis(circuit: Circuit) -> list[Equation]:
    """Return one KVL equation per fundamental loop of the circuit graph.

    Each equation states that the oriented sum of branch voltages
    ``V(p) - V(n)`` around the loop is zero.  Written over node potentials
    these relations are tautological; they are generated anyway because the
    enrichment step of the paper performs both nodal *and* mesh analysis, and
    the solved forms they produce give the assemble step extra defining
    equations to choose from.
    """
    graph = CircuitGraph(circuit)
    equations: list[Equation] = []
    for loop in graph.fundamental_loops():
        terms: list[Expr] = []
        for edge in loop.edges:
            branch = circuit.branch(edge.branch)
            voltage = branch_voltage(branch.positive, branch.negative, circuit.ground)
            if edge.forward:
                terms.append(voltage)
            else:
                terms.append(UnaryOp("-", voltage))
        equations.append(
            Equation(
                simplify(_sum(terms)),
                Constant(0.0),
                kind=KVL,
                name=f"kvl:{loop.chord}",
            )
        )
    return equations


def kirchhoff_equations(circuit: Circuit, include_mesh: bool = True) -> list[Equation]:
    """Return the full set of implicit equations (KCL, and optionally KVL)."""
    equations = nodal_analysis(circuit)
    if include_mesh:
        equations.extend(mesh_analysis(circuit))
    return equations
