"""Electrical-network substrate: circuits, components, topology and MNA."""

from .circuit import (
    Branch,
    Circuit,
    Node,
    canonical_quantity,
    count_state_variables,
    iter_components,
)
from .components import (
    VCCS,
    VCVS,
    Capacitor,
    Component,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
    VoltageSource,
    branch_current,
    branch_voltage,
    node_potential,
)
from .graph import CircuitGraph, FundamentalLoop, LoopEdge
from .kirchhoff import kirchhoff_equations, mesh_analysis, nodal_analysis
from .mna import MnaIndex, MnaSystem, TransientResult, run_transient

__all__ = [
    "Branch",
    "Circuit",
    "CircuitGraph",
    "Capacitor",
    "Component",
    "CurrentSource",
    "FundamentalLoop",
    "Inductor",
    "LoopEdge",
    "MnaIndex",
    "MnaSystem",
    "Node",
    "Resistor",
    "TransientResult",
    "canonical_quantity",
    "VCCS",
    "VCVS",
    "VoltageControlledCurrentSource",
    "VoltageControlledVoltageSource",
    "VoltageSource",
    "branch_current",
    "branch_voltage",
    "count_state_variables",
    "iter_components",
    "kirchhoff_equations",
    "mesh_analysis",
    "nodal_analysis",
    "node_potential",
    "run_transient",
]
