"""Topology graph of a circuit: ``G = (N, B)``.

Step 1 of the abstraction methodology (paper Section IV.A) retrieves the
topology of the electrical network from the dipole equations and creates a
graph whose nodes are the circuit nodes and whose edges are the branches.
The graph supports the analyses needed by the enrichment step: spanning tree
construction and fundamental-loop extraction (used by the mesh analysis), plus
reachability queries used to drop sub-circuits that cannot influence the
outputs of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopologyError
from .circuit import Branch, Circuit


@dataclass(frozen=True)
class LoopEdge:
    """One edge of a fundamental loop, with its traversal orientation.

    ``forward`` is ``True`` when the loop traverses the branch from its
    positive to its negative node.
    """

    branch: str
    forward: bool


@dataclass
class FundamentalLoop:
    """A fundamental loop: one chord plus the tree path closing it."""

    chord: str
    edges: tuple[LoopEdge, ...]


class CircuitGraph:
    """Undirected multigraph view of a :class:`~repro.network.circuit.Circuit`."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._adjacency: dict[str, list[Branch]] = {
            name: [] for name in circuit.node_names()
        }
        for branch in circuit:
            self._adjacency[branch.positive].append(branch)
            self._adjacency[branch.negative].append(branch)

    # -- basic queries -----------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes ``|N|`` (including ground)."""
        return len(self._adjacency)

    @property
    def branch_count(self) -> int:
        """Number of branches ``|B|``."""
        return len(self.circuit.branches)

    def neighbours(self, node: str) -> list[str]:
        """Return the nodes adjacent to ``node``."""
        return [branch.other_end(node) for branch in self._adjacency[node]]

    def incident_branches(self, node: str) -> list[Branch]:
        """Return every branch incident to ``node``."""
        return list(self._adjacency[node])

    def degree(self, node: str) -> int:
        """Return the number of branches incident to ``node``."""
        return len(self._adjacency[node])

    # -- spanning tree and loops ---------------------------------------------------
    def spanning_tree(self, root: str | None = None) -> dict[str, Branch | None]:
        """Return a BFS spanning tree as a ``node -> parent branch`` mapping.

        The root (default: the ground node) maps to ``None``.

        Raises
        ------
        TopologyError
            If the graph is not connected.
        """
        root = root or self.circuit.ground
        if root not in self._adjacency:
            raise TopologyError(f"unknown root node {root!r}")
        parent: dict[str, Branch | None] = {root: None}
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for branch in self._adjacency[current]:
                other = branch.other_end(current)
                if other not in parent:
                    parent[other] = branch
                    frontier.append(other)
        missing = set(self._adjacency) - set(parent)
        if missing:
            raise TopologyError(
                f"graph of circuit {self.circuit.name!r} is not connected; "
                f"unreachable nodes: {sorted(missing)}"
            )
        return parent

    def tree_branches(self, root: str | None = None) -> set[str]:
        """Return the names of the branches belonging to the spanning tree."""
        parent = self.spanning_tree(root)
        return {branch.name for branch in parent.values() if branch is not None}

    def chords(self, root: str | None = None) -> list[Branch]:
        """Return the branches *not* in the spanning tree (the loop chords)."""
        tree = self.tree_branches(root)
        return [branch for branch in self.circuit if branch.name not in tree]

    def fundamental_loops(self, root: str | None = None) -> list[FundamentalLoop]:
        """Return one fundamental loop per chord of the spanning tree.

        Each loop yields one independent Kirchhoff voltage equation; together
        with the KCL equations they complete the implicit equations the paper
        adds during enrichment.
        """
        root = root or self.circuit.ground
        parent = self.spanning_tree(root)

        def path_to_root(node: str) -> list[tuple[str, Branch]]:
            path: list[tuple[str, Branch]] = []
            current = node
            while parent[current] is not None:
                branch = parent[current]
                path.append((current, branch))
                current = branch.other_end(current)
            return path

        loops: list[FundamentalLoop] = []
        for chord in self.chords(root):
            # Walk both endpoints up to the root and drop the common suffix to
            # obtain the unique tree path joining them.
            path_p = path_to_root(chord.positive)
            path_n = path_to_root(chord.negative)
            branches_p = [branch.name for _, branch in path_p]
            branches_n = [branch.name for _, branch in path_n]
            while branches_p and branches_n and branches_p[-1] == branches_n[-1]:
                path_p.pop()
                path_n.pop()
                branches_p.pop()
                branches_n.pop()

            edges: list[LoopEdge] = [
                LoopEdge(chord.name, forward=True)
            ]
            # Continue from the chord's negative node back up towards the
            # common ancestor, then down to the chord's positive node.
            for node, branch in path_n:
                # We traverse from `node` towards its parent; the traversal is
                # "forward" when `node` is the branch's positive end.
                edges.append(LoopEdge(branch.name, forward=(branch.positive == node)))
            for node, branch in reversed(path_p):
                edges.append(LoopEdge(branch.name, forward=(branch.negative == node)))
            loops.append(FundamentalLoop(chord.name, tuple(edges)))
        return loops

    # -- reachability ---------------------------------------------------------------
    def reachable_from(self, node: str) -> set[str]:
        """Return the set of nodes connected to ``node`` (including itself)."""
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node!r}")
        seen = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for neighbour in self.neighbours(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen

    def mesh_count(self) -> int:
        """Number of independent loops ``|B| - |N| + 1`` (for a connected graph)."""
        return self.branch_count - self.node_count + 1
