"""Circuit container: nodes, branches and their constitutive relations.

A :class:`Circuit` is the in-memory form of a conservative description: a set
of nodes ``N``, a set of branches ``B`` connecting them, and one dipole
equation per branch (paper Section III.B).  Circuits are produced either
programmatically (see :mod:`repro.circuits`) or by the Verilog-AMS frontend
(:mod:`repro.vams.netlist`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import TopologyError
from ..expr.equation import Equation
from .components import (
    Capacitor,
    Component,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)

DEFAULT_GROUND = "gnd"


@dataclass(frozen=True)
class Node:
    """A node of the electrical network."""

    name: str
    is_ground: bool = False


@dataclass
class Branch:
    """A branch: a component connected between two nodes.

    ``positive`` and ``negative`` fix the reference direction used by the
    dipole equation and by the Kirchhoff current law (current flows from
    ``positive`` to ``negative`` through the component).
    """

    name: str
    positive: str
    negative: str
    component: Component

    def other_end(self, node: str) -> str:
        """Return the node at the opposite end of ``node``."""
        if node == self.positive:
            return self.negative
        if node == self.negative:
            return self.positive
        raise TopologyError(f"node {node!r} is not an endpoint of branch {self.name!r}")

    def current_variable(self) -> str:
        """Name of the flow variable associated with the branch."""
        return f"I({self.name})"


class Circuit:
    """A conservative electrical network.

    Parameters
    ----------
    name:
        Identifier of the circuit (used in generated code and reports).
    ground:
        Name of the reference node; it is created automatically.
    """

    def __init__(self, name: str, ground: str = DEFAULT_GROUND) -> None:
        self.name = name
        self.ground = ground
        self._nodes: dict[str, Node] = {ground: Node(ground, is_ground=True)}
        self._branches: dict[str, Branch] = {}
        self._type_counters: dict[str, int] = {}

    # -- construction ----------------------------------------------------------
    def add_node(self, name: str) -> Node:
        """Add (or return the existing) node called ``name``."""
        if name not in self._nodes:
            self._nodes[name] = Node(name, is_ground=(name == self.ground))
        return self._nodes[name]

    def add(
        self,
        component: Component,
        positive: str,
        negative: str,
        name: str | None = None,
    ) -> Branch:
        """Connect ``component`` between ``positive`` and ``negative``.

        When ``name`` is omitted an identifier is generated from the component
        type code (``R1``, ``R2``, ``C1``, ...).
        """
        if name is None:
            code = component.type_code
            self._type_counters[code] = self._type_counters.get(code, 0) + 1
            name = f"{code}{self._type_counters[code]}"
        if name in self._branches:
            raise TopologyError(f"a branch called {name!r} already exists")
        if positive == negative:
            raise TopologyError(
                f"branch {name!r} connects node {positive!r} to itself"
            )
        self.add_node(positive)
        self.add_node(negative)
        branch = Branch(name, positive, negative, component)
        self._branches[name] = branch
        return branch

    # -- convenience shortcuts ---------------------------------------------------
    def add_resistor(
        self, positive: str, negative: str, resistance: float, name: str | None = None
    ) -> Branch:
        """Add a resistor of ``resistance`` ohms."""
        return self.add(Resistor(resistance), positive, negative, name)

    def add_capacitor(
        self, positive: str, negative: str, capacitance: float, name: str | None = None
    ) -> Branch:
        """Add a capacitor of ``capacitance`` farads."""
        return self.add(Capacitor(capacitance), positive, negative, name)

    def add_inductor(
        self, positive: str, negative: str, inductance: float, name: str | None = None
    ) -> Branch:
        """Add an inductor of ``inductance`` henry."""
        return self.add(Inductor(inductance), positive, negative, name)

    def add_voltage_source(
        self,
        positive: str,
        negative: str,
        dc_value: float = 0.0,
        input_signal: str | None = None,
        name: str | None = None,
    ) -> Branch:
        """Add an independent voltage source (optionally driven by an input)."""
        return self.add(
            VoltageSource(dc_value=dc_value, input_signal=input_signal),
            positive,
            negative,
            name,
        )

    def add_current_source(
        self,
        positive: str,
        negative: str,
        dc_value: float = 0.0,
        input_signal: str | None = None,
        name: str | None = None,
    ) -> Branch:
        """Add an independent current source (optionally driven by an input)."""
        return self.add(
            CurrentSource(dc_value=dc_value, input_signal=input_signal),
            positive,
            negative,
            name,
        )

    # -- queries ---------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, Node]:
        """All nodes, including ground, keyed by name."""
        return dict(self._nodes)

    @property
    def branches(self) -> dict[str, Branch]:
        """All branches keyed by name."""
        return dict(self._branches)

    def node_names(self, include_ground: bool = True) -> list[str]:
        """Return node names in insertion order."""
        names = list(self._nodes)
        if not include_ground:
            names = [name for name in names if name != self.ground]
        return names

    def branch_names(self) -> list[str]:
        """Return branch names in insertion order."""
        return list(self._branches)

    def branch(self, name: str) -> Branch:
        """Return the branch called ``name``."""
        try:
            return self._branches[name]
        except KeyError as exc:
            raise TopologyError(f"unknown branch {name!r}") from exc

    def branches_at(self, node: str) -> list[Branch]:
        """Return every branch incident to ``node``."""
        return [
            branch
            for branch in self._branches.values()
            if node in (branch.positive, branch.negative)
        ]

    def input_names(self) -> list[str]:
        """Names of the external stimuli feeding the circuit, in insertion order."""
        names: list[str] = []
        for branch in self._branches.values():
            input_name = branch.component.input_name()
            if input_name is not None and input_name not in names:
                names.append(input_name)
        return names

    def __len__(self) -> int:
        return len(self._branches)

    def __iter__(self) -> Iterator[Branch]:
        return iter(self._branches.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Circuit({self.name!r}, nodes={len(self._nodes)}, "
            f"branches={len(self._branches)})"
        )

    # -- equations ---------------------------------------------------------------
    def dipole_equations(self) -> list[Equation]:
        """Return the dipole equation of every branch.

        This is the "arbitrary set of constitutive dipole equations" that the
        abstraction methodology takes as input (paper Section IV).
        """
        return [
            branch.component.dipole_equation(branch, self.ground)
            for branch in self._branches.values()
        ]

    # -- validation ----------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness of the network.

        Raises
        ------
        TopologyError
            If the circuit is empty, has no ground connection, contains a node
            with a single incident branch (a dangling node that makes KCL
            unsatisfiable for non-source branches), or is not connected.
        """
        if not self._branches:
            raise TopologyError(f"circuit {self.name!r} has no branches")
        incident: dict[str, int] = {name: 0 for name in self._nodes}
        for branch in self._branches.values():
            incident[branch.positive] += 1
            incident[branch.negative] += 1
        if incident.get(self.ground, 0) == 0:
            raise TopologyError(
                f"circuit {self.name!r} has no branch connected to ground "
                f"{self.ground!r}"
            )
        for name, count in incident.items():
            if count == 0 and name != self.ground:
                raise TopologyError(f"node {name!r} has no incident branch")
        self._check_connected()

    def _check_connected(self) -> None:
        adjacency: dict[str, set[str]] = {name: set() for name in self._nodes}
        for branch in self._branches.values():
            adjacency[branch.positive].add(branch.negative)
            adjacency[branch.negative].add(branch.positive)
        seen = {self.ground}
        frontier = [self.ground]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        unreachable = set(self._nodes) - seen
        if unreachable:
            raise TopologyError(
                f"nodes {sorted(unreachable)} are not connected to ground in "
                f"circuit {self.name!r}"
            )


def canonical_quantity(name: str) -> str:
    """Canonical form of an observed quantity: bare node names mean voltages.

    ``"out"`` becomes ``"V(out)"``; names already written as a voltage or
    current quantity (``"V(...)"``, ``"I(...)"``) pass through unchanged.
    """
    return name if name.startswith(("V(", "I(")) else f"V({name})"


def count_state_variables(circuit: Circuit) -> int:
    """Return the number of energy-storage elements (capacitors and inductors)."""
    return sum(
        1
        for branch in circuit
        if isinstance(branch.component, (Capacitor, Inductor))
    )


def iter_components(circuit: Circuit) -> Iterable[tuple[Branch, Component]]:
    """Yield ``(branch, component)`` pairs in insertion order."""
    for branch in circuit:
        yield branch, branch.component
