"""Modified Nodal Analysis (MNA) of linear networks with fixed-step transient.

The conservative solvers of the library — the SystemC-AMS/ELN analogue
(:mod:`repro.sim.eln`) and the numeric state-space abstraction
(:mod:`repro.core.statespace`) — share this machinery.  Energy-storage
elements are replaced by their backward-Euler (or trapezoidal) companion
models so that each timestep reduces to the solution of the linear system::

    A * z_k = B * z_{k-1} + S * u_k + s0

where ``z`` stacks the non-ground node potentials and the currents of the
voltage-defined branches, and ``u`` stacks the external stimuli.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SingularNetworkError, TopologyError
from .circuit import Branch, Circuit
from .components import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
    VoltageSource,
)

BACKWARD_EULER = "backward_euler"
TRAPEZOIDAL = "trapezoidal"


@dataclass
class MnaIndex:
    """Mapping between circuit quantities and rows/columns of the MNA system."""

    unknowns: list[str]
    inputs: list[str]

    def __post_init__(self) -> None:
        self._unknown_index = {name: i for i, name in enumerate(self.unknowns)}
        self._input_index = {name: i for i, name in enumerate(self.inputs)}

    def unknown(self, name: str) -> int:
        """Return the row/column of the unknown called ``name``."""
        try:
            return self._unknown_index[name]
        except KeyError as exc:
            raise TopologyError(f"unknown MNA quantity {name!r}") from exc

    def input(self, name: str) -> int:
        """Return the column of the input called ``name``."""
        try:
            return self._input_index[name]
        except KeyError as exc:
            raise TopologyError(f"unknown MNA input {name!r}") from exc

    def has_unknown(self, name: str) -> bool:
        """Return whether ``name`` is carried as an MNA unknown."""
        return name in self._unknown_index


class MnaSystem:
    """Discretised MNA system of a :class:`~repro.network.circuit.Circuit`.

    Parameters
    ----------
    circuit:
        The network to analyse (validated on construction).
    timestep:
        Fixed integration step used to build the companion models.
    method:
        ``"backward_euler"`` (default) or ``"trapezoidal"``.
    """

    def __init__(
        self,
        circuit: Circuit,
        timestep: float,
        method: str = BACKWARD_EULER,
    ) -> None:
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        if method not in (BACKWARD_EULER, TRAPEZOIDAL):
            raise ValueError(f"unknown integration method {method!r}")
        circuit.validate()
        self.circuit = circuit
        self.timestep = float(timestep)
        self.method = method
        self.index = self._build_index()
        size = len(self.index.unknowns)
        inputs = len(self.index.inputs)
        self.A = np.zeros((size, size))
        self.B = np.zeros((size, size))
        self.S = np.zeros((size, inputs))
        self.s0 = np.zeros(size)
        self._stamp_all()
        self._lu: tuple[np.ndarray, np.ndarray] | None = None

    # -- construction -----------------------------------------------------------
    def _build_index(self) -> MnaIndex:
        unknowns = [f"V({node})" for node in self.circuit.node_names(include_ground=False)]
        for branch in self.circuit:
            if self._carries_current_unknown(branch):
                unknowns.append(branch.current_variable())
        return MnaIndex(unknowns, self.circuit.input_names())

    def _carries_current_unknown(self, branch: Branch) -> bool:
        if branch.component.needs_current_unknown():
            return True
        # Trapezoidal companion models need the branch current history, so
        # capacitors are promoted to current-carrying branches as well.
        return self.method == TRAPEZOIDAL and isinstance(branch.component, Capacitor)

    def _node_index(self, node: str) -> int | None:
        if node == self.circuit.ground:
            return None
        return self.index.unknown(f"V({node})")

    def _stamp_conductance(
        self, matrix: np.ndarray, positive: int | None, negative: int | None, value: float
    ) -> None:
        if positive is not None:
            matrix[positive, positive] += value
        if negative is not None:
            matrix[negative, negative] += value
        if positive is not None and negative is not None:
            matrix[positive, negative] -= value
            matrix[negative, positive] -= value

    def _stamp_all(self) -> None:
        for branch in self.circuit:
            component = branch.component
            positive = self._node_index(branch.positive)
            negative = self._node_index(branch.negative)
            if isinstance(component, Resistor):
                self._stamp_conductance(self.A, positive, negative, 1.0 / component.resistance)
            elif isinstance(component, Capacitor):
                self._stamp_capacitor(branch, component, positive, negative)
            elif isinstance(component, Inductor):
                self._stamp_inductor(branch, component, positive, negative)
            elif isinstance(component, VoltageControlledVoltageSource):
                self._stamp_vcvs(branch, component, positive, negative)
            elif isinstance(component, VoltageSource):
                self._stamp_voltage_source(branch, component, positive, negative)
            elif isinstance(component, CurrentSource):
                self._stamp_current_source(branch, component, positive, negative)
            elif isinstance(component, VoltageControlledCurrentSource):
                self._stamp_vccs(component, positive, negative)
            else:
                raise TopologyError(
                    f"component type {type(component).__name__} on branch "
                    f"{branch.name!r} is not supported by the MNA builder"
                )

    def _stamp_capacitor(
        self,
        branch: Branch,
        component: Capacitor,
        positive: int | None,
        negative: int | None,
    ) -> None:
        if self.method == BACKWARD_EULER:
            # Backward Euler: i_k = (C/dt) * (v_k - v_{k-1}); a conductance in
            # parallel with a history current source.
            geq = component.capacitance / self.timestep
            self._stamp_conductance(self.A, positive, negative, geq)
            self._stamp_conductance(self.B, positive, negative, geq)
            return
        # Trapezoidal: i_k + i_{k-1} = (2C/dt) * (v_k - v_{k-1}); the branch
        # current is carried as an explicit unknown so its history is available.
        row = self.index.unknown(branch.current_variable())
        geq = 2.0 * component.capacitance / self.timestep
        if positive is not None:
            self.A[positive, row] += 1.0
            self.A[row, positive] += geq
            self.B[row, positive] += geq
        if negative is not None:
            self.A[negative, row] -= 1.0
            self.A[row, negative] -= geq
            self.B[row, negative] -= geq
        self.A[row, row] -= 1.0
        self.B[row, row] += 1.0

    def _stamp_inductor(
        self,
        branch: Branch,
        component: Inductor,
        positive: int | None,
        negative: int | None,
    ) -> None:
        row = self.index.unknown(branch.current_variable())
        if positive is not None:
            self.A[positive, row] += 1.0
            self.A[row, positive] += 1.0
        if negative is not None:
            self.A[negative, row] -= 1.0
            self.A[row, negative] -= 1.0
        if self.method == BACKWARD_EULER:
            # Backward Euler: v_k = (L/dt) * (i_k - i_{k-1}).
            req = component.inductance / self.timestep
            self.A[row, row] -= req
            self.B[row, row] -= req
            return
        # Trapezoidal: v_k + v_{k-1} = (2L/dt) * (i_k - i_{k-1}).
        req = 2.0 * component.inductance / self.timestep
        self.A[row, row] -= req
        self.B[row, row] -= req
        if positive is not None:
            self.B[row, positive] -= 1.0
        if negative is not None:
            self.B[row, negative] += 1.0

    def _stamp_voltage_source(
        self,
        branch: Branch,
        component: VoltageSource,
        positive: int | None,
        negative: int | None,
    ) -> None:
        row = self.index.unknown(branch.current_variable())
        if positive is not None:
            self.A[positive, row] += 1.0
            self.A[row, positive] += 1.0
        if negative is not None:
            self.A[negative, row] -= 1.0
            self.A[row, negative] -= 1.0
        if component.input_signal is not None:
            self.S[row, self.index.input(component.input_signal)] += 1.0
        else:
            self.s0[row] += component.dc_value

    def _stamp_vcvs(
        self,
        branch: Branch,
        component: VoltageControlledVoltageSource,
        positive: int | None,
        negative: int | None,
    ) -> None:
        row = self.index.unknown(branch.current_variable())
        if positive is not None:
            self.A[positive, row] += 1.0
            self.A[row, positive] += 1.0
        if negative is not None:
            self.A[negative, row] -= 1.0
            self.A[row, negative] -= 1.0
        control_positive = self._node_index(component.control_positive)
        control_negative = self._node_index(component.control_negative)
        if control_positive is not None:
            self.A[row, control_positive] -= component.gain
        if control_negative is not None:
            self.A[row, control_negative] += component.gain

    def _stamp_current_source(
        self,
        branch: Branch,
        component: CurrentSource,
        positive: int | None,
        negative: int | None,
    ) -> None:
        # The branch current (positive -> negative through the component) is
        # imposed; it leaves the positive node.
        if component.input_signal is not None:
            column = self.index.input(component.input_signal)
            if positive is not None:
                self.S[positive, column] -= 1.0
            if negative is not None:
                self.S[negative, column] += 1.0
        else:
            if positive is not None:
                self.s0[positive] -= component.dc_value
            if negative is not None:
                self.s0[negative] += component.dc_value

    def _stamp_vccs(
        self,
        component: VoltageControlledCurrentSource,
        positive: int | None,
        negative: int | None,
    ) -> None:
        control_positive = self._node_index(component.control_positive)
        control_negative = self._node_index(component.control_negative)
        gm = component.transconductance
        for node_index, sign in ((positive, 1.0), (negative, -1.0)):
            if node_index is None:
                continue
            if control_positive is not None:
                self.A[node_index, control_positive] += sign * gm
            if control_negative is not None:
                self.A[node_index, control_negative] -= sign * gm

    def restamp(self) -> None:
        """Re-evaluate every component stamp from scratch.

        The reference AMS engine calls this every solver iteration to model
        the per-step "device evaluation" cost of SPICE-class simulators; the
        cached factorisation is invalidated as well.
        """
        self.A[:] = 0.0
        self.B[:] = 0.0
        self.S[:] = 0.0
        self.s0[:] = 0.0
        self._lu = None
        self._stamp_all()

    # -- solving -----------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of MNA unknowns."""
        return len(self.index.unknowns)

    def input_vector(self, values: dict[str, float]) -> np.ndarray:
        """Pack an input dictionary into a vector ordered like ``index.inputs``."""
        vector = np.zeros(len(self.index.inputs))
        for name, value in values.items():
            vector[self.index.input(name)] = value
        return vector

    def step(self, previous: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Advance the discretised system by one timestep."""
        rhs = self.B @ previous + self.S @ inputs + self.s0
        return self._solve(rhs)

    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        try:
            if self._lu is None:
                self._lu = _lu_factor(self.A)
            return _lu_solve(self._lu, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularNetworkError(
                f"the MNA matrix of circuit {self.circuit.name!r} is singular"
            ) from exc

    def dc_operating_point(self, inputs: np.ndarray | None = None) -> np.ndarray:
        """Solve the DC operating point (steady state of the discretised system)."""
        if inputs is None:
            inputs = np.zeros(len(self.index.inputs))
        matrix = self.A - self.B
        rhs = self.S @ inputs + self.s0
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularNetworkError(
                f"no DC operating point for circuit {self.circuit.name!r}"
            ) from exc

    def discrete_state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return matrices ``(F, G, g0)`` with ``z_k = F z_{k-1} + G u_k + g0``."""
        try:
            inverse = np.linalg.inv(self.A)
        except np.linalg.LinAlgError as exc:
            raise SingularNetworkError(
                f"the MNA matrix of circuit {self.circuit.name!r} is singular"
            ) from exc
        return inverse @ self.B, inverse @ self.S, inverse @ self.s0


def _lu_factor(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cache-friendly dense factorisation: store the matrix inverse.

    For the small dense systems handled here (tens of unknowns) computing and
    reusing the inverse is the cheapest way to make every step a single
    matrix-vector product, which is what gives the ELN analogue its speed
    advantage over the reference AMS engine that refactorises every step.
    """
    return (np.linalg.inv(matrix), matrix)


def _lu_solve(factor: tuple[np.ndarray, np.ndarray], rhs: np.ndarray) -> np.ndarray:
    inverse, _ = factor
    return inverse @ rhs


@dataclass
class TransientResult:
    """Waveforms produced by :func:`run_transient`."""

    times: np.ndarray
    values: dict[str, np.ndarray]

    def waveform(self, name: str) -> np.ndarray:
        """Return the samples recorded for the quantity ``name``."""
        return self.values[name]


def run_transient(
    system: MnaSystem,
    stimuli: dict[str, "callable"],
    duration: float,
    record: list[str] | None = None,
) -> TransientResult:
    """Run a fixed-step transient analysis and record selected quantities.

    ``stimuli`` maps input names to callables ``f(t) -> float``; ``record``
    lists the unknown names to trace (all of them when omitted).
    """
    record = record or list(system.index.unknowns)
    steps = int(round(duration / system.timestep))
    times = np.arange(1, steps + 1) * system.timestep
    traces = {name: np.zeros(steps) for name in record}
    indices = {name: system.index.unknown(name) for name in record}
    state = np.zeros(system.size)
    for k, t in enumerate(times):
        inputs = system.input_vector({name: f(t) for name, f in stimuli.items()})
        state = system.step(state, inputs)
        for name, idx in indices.items():
            traces[name][k] = state[idx]
    return TransientResult(times, traces)
