"""Metrics: waveform accuracy (NRMSE) and wall-clock timing."""

from .nrmse import compare_trace_sets, compare_traces, nrmse, rmse
from .timing import Stopwatch, TimedResult, measure

__all__ = [
    "Stopwatch",
    "TimedResult",
    "compare_trace_sets",
    "compare_traces",
    "measure",
    "nrmse",
    "rmse",
]
