"""Waveform comparison: the NRMSE metric of the paper's accuracy columns.

"The equivalence of generated models is evaluated by computing the normalized
root-mean-square error (NRMSE) of their output with respect to the output of
the original Verilog-AMS representation" (paper Section V.A).
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import Trace, TraceSet


def rmse(reference: np.ndarray, measured: np.ndarray) -> float:
    """Root-mean-square error between two equally sampled waveforms."""
    reference = np.asarray(reference, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if reference.shape != measured.shape:
        raise ValueError(
            f"waveform shapes differ: {reference.shape} vs {measured.shape}"
        )
    if reference.size == 0:
        raise ValueError("cannot compute the RMSE of empty waveforms")
    return float(np.sqrt(np.mean((reference - measured) ** 2)))


def nrmse(reference: np.ndarray, measured: np.ndarray) -> float:
    """Normalised RMSE: the RMSE divided by the reference peak-to-peak range.

    When the reference is constant, normalisation falls back to its absolute
    mean value and, if that is also zero, to 1 (so that the result degrades
    gracefully to the plain RMSE).
    """
    reference = np.asarray(reference, dtype=float)
    error = rmse(reference, measured)
    span = float(np.max(reference) - np.min(reference))
    if span <= 0.0:
        span = float(np.mean(np.abs(reference)))
    if span <= 0.0:
        span = 1.0
    return error / span


def compare_traces(
    reference: Trace,
    measured: Trace,
    resample: bool = True,
) -> float:
    """NRMSE between two traces, resampling the measured one when requested.

    The engines compared in Tables I and III all run at the same external
    timestep, but their first samples may be offset by one step (delta-cycle
    alignment); resampling the measured waveform onto the reference time grid
    makes the comparison insensitive to that.
    """
    if len(reference) == 0 or len(measured) == 0:
        raise ValueError("cannot compare empty traces")
    if resample:
        measured_values = measured.resample(reference.times)
    else:
        measured_values = measured.values
    return nrmse(reference.values, measured_values)


def compare_trace_sets(
    reference: TraceSet,
    measured: TraceSet,
    names: list[str] | None = None,
) -> dict[str, float]:
    """Per-waveform NRMSE between two trace sets (keys present in both)."""
    names = names or [name for name in reference.names() if name in measured]
    return {
        name: compare_traces(reference[name], measured[name]) for name in names
    }
