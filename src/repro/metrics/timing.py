"""Wall-clock timing helpers used by the experiment harness.

The paper measures simulation times "by using clock() differences for
SystemC/C++ descriptions and the ELDO Global CPU Time property for
Verilog-AMS" (Section V); here everything is a Python callable, so a single
monotonic-clock stopwatch covers every engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """A context manager accumulating elapsed wall-clock time."""

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None


def measure(function: Callable[[], T]) -> tuple[T, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


@dataclass
class TimedResult:
    """A labelled measurement: what ran, how long it took, and its payload."""

    label: str
    elapsed: float
    payload: object = None

    def speedup_over(self, baseline: "TimedResult | float") -> float:
        """Speed-up of this result relative to ``baseline`` (its time / ours)."""
        baseline_time = baseline.elapsed if isinstance(baseline, TimedResult) else float(baseline)
        if self.elapsed <= 0.0:
            return float("inf")
        return baseline_time / self.elapsed
