"""ADC bridge: the register window through which software observes the analog part.

In the paper's smart-system architecture (Figure 1) only a subset of the
analog output signals is observed by the digital hardware and the software.
This peripheral is that observation point: whatever engine simulates the
analog component (generated C++/Python model, SystemC-DE/TDF wrapper, ELN
solver or the Verilog-AMS co-simulation bridge) publishes its output sample
here, and the firmware reads it as a signed millivolt value over the APB bus.
"""

from __future__ import annotations

from .apb import ApbPeripheral

#: Register offsets.
DATA = 0x00
STATUS = 0x04
SAMPLE_COUNT = 0x08
SCALE = 0x0C

#: STATUS bits.
STATUS_VALID = 0x1


class AdcBridge(ApbPeripheral):
    """Latches analog output samples and exposes them as millivolt registers."""

    def __init__(
        self,
        name: str = "adc0",
        millivolts_per_unit: float = 1.0,
        record: bool = False,
    ) -> None:
        self.name = name
        self.millivolts_per_unit = millivolts_per_unit
        self._raw_value = 0.0
        self._valid = False
        self.sample_count = 0
        self.read_count = 0
        #: Every pushed sample in arrival order when ``record`` is set (the
        #: platform sweep layer uses this to compare analog styles), else None.
        self.history: list[float] | None = [] if record else None

    # -- analog side -----------------------------------------------------------------------
    def push_sample(self, value: float) -> None:
        """Publish a new analog output sample (called by the analog wrapper)."""
        self._raw_value = float(value)
        self._valid = True
        self.sample_count += 1
        if self.history is not None:
            self.history.append(self._raw_value)

    @property
    def last_sample(self) -> float:
        """The most recent analog value, in volts."""
        return self._raw_value

    # -- register interface -----------------------------------------------------------------
    def read_register(self, offset: int) -> int:
        if offset == DATA:
            self.read_count += 1
            millivolts = int(round(self._raw_value * 1000.0 / self.millivolts_per_unit))
            return millivolts & 0xFFFFFFFF
        if offset == STATUS:
            return STATUS_VALID if self._valid else 0
        if offset == SAMPLE_COUNT:
            return self.sample_count & 0xFFFFFFFF
        if offset == SCALE:
            return int(self.millivolts_per_unit * 1000.0) & 0xFFFFFFFF
        return 0

    def write_register(self, offset: int, value: int) -> None:
        if offset == SCALE:
            self.millivolts_per_unit = max(value, 1) / 1000.0
