"""Firmware programs executed by the virtual platform's MIPS CPU.

The default program is the smart-system workload used throughout the
experiments: it polls the ADC bridge, detects threshold crossings of the
analog output and reports them over the UART, keeping a crossing counter in
RAM.  It keeps the CPU, the bus and the UART continuously busy, which is what
makes the digital side dominate the platform simulation time (paper Table
III).
"""

from __future__ import annotations

#: Memory-mapped register addresses used by the firmware (see ``platform.py``).
PERIPHERAL_BASE = 0x1000_0000
UART_TX_OFFSET = 0x0000
UART_STATUS_OFFSET = 0x0004
ADC_DATA_OFFSET = 0x1000
ADC_STATUS_OFFSET = 0x1004
ADC_COUNT_OFFSET = 0x1008

#: RAM address where the firmware keeps its crossing counter.
CROSSING_COUNTER_ADDRESS = 0x0000_F000


def threshold_monitor_source(threshold_millivolts: int = 500) -> str:
    """The default workload: report analog threshold crossings over the UART.

    The program busy-polls the ADC sample counter, reads every new sample,
    compares it (signed) against ``threshold_millivolts`` and, on every
    crossing, transmits ``'H'`` or ``'L'`` and increments a counter in RAM.
    """
    return f"""# Threshold-monitor firmware for the smart-system virtual platform.
# t0: peripheral base     t1: scratch / sample      t2: threshold (mV)
# t3: previous state      t4: current state         t5: scratch
# s0: last ADC sample id  s1: crossing counter      s2: counter address
        .text
main:
        lui   $t0, 0x1000            # peripheral window base (0x1000_0000)
        li    $t2, {threshold_millivolts}
        li    $t3, 0                 # previous state: below threshold
        li    $s0, 0                 # last observed sample id
        li    $s1, 0                 # crossing counter
        li    $s2, {CROSSING_COUNTER_ADDRESS:#x}
        sw    $s1, 0($s2)

poll:
        lw    $t5, {ADC_COUNT_OFFSET:#x}($t0)   # ADC sample counter
        beq   $t5, $s0, poll         # wait for a new analog sample
        move  $s0, $t5

        lw    $t1, {ADC_DATA_OFFSET:#x}($t0)    # sample in signed millivolts
        slt   $t4, $t1, $t2          # t4 = 1 when sample < threshold
        beq   $t4, $t3, poll         # no threshold crossing
        move  $t3, $t4

        addiu $s1, $s1, 1            # count the crossing
        sw    $s1, 0($s2)

        beq   $t4, $zero, rising
        li    $a0, 0x4C              # 'L' : fell below the threshold
        j     send
rising:
        li    $a0, 0x48              # 'H' : rose above the threshold
send:
wait_tx:
        lw    $t5, {UART_STATUS_OFFSET:#x}($t0) # UART status
        andi  $t5, $t5, 1            # TX-ready bit
        beq   $t5, $zero, wait_tx
        sw    $a0, {UART_TX_OFFSET:#x}($t0)     # transmit the marker
        j     poll
"""


def averaging_monitor_source(window_shift: int = 2) -> str:
    """An alternative workload: stream a moving average of the ADC samples.

    Every new sample is added to an accumulator; every ``2**window_shift``
    samples the average is stored to RAM and its low byte is transmitted.
    Exercises the multiplier-free arithmetic path (shifts, adds) of the core.
    """
    window = 1 << window_shift
    return f"""# Moving-average firmware for the smart-system virtual platform.
        .text
main:
        lui   $t0, 0x1000            # peripheral window base
        li    $s0, 0                 # last observed sample id
        li    $s1, 0                 # accumulator
        li    $s2, 0                 # samples in the window
        li    $s3, {CROSSING_COUNTER_ADDRESS:#x}

poll:
        lw    $t5, {ADC_COUNT_OFFSET:#x}($t0)
        beq   $t5, $s0, poll
        move  $s0, $t5

        lw    $t1, {ADC_DATA_OFFSET:#x}($t0)
        addu  $s1, $s1, $t1          # accumulate
        addiu $s2, $s2, 1
        slti  $t4, $s2, {window}
        bne   $t4, $zero, poll       # window not full yet

        sra   $t6, $s1, {window_shift}   # average = accumulator / window
        sw    $t6, 0($s3)
        andi  $a0, $t6, 0xFF
wait_tx:
        lw    $t5, {UART_STATUS_OFFSET:#x}($t0)
        andi  $t5, $t5, 1
        beq   $t5, $zero, wait_tx
        sw    $a0, {UART_TX_OFFSET:#x}($t0)
        li    $s1, 0                 # restart the window
        li    $s2, 0
        j     poll
"""


def default_firmware() -> str:
    """The firmware used by the Table III experiments."""
    return threshold_monitor_source()
