"""MIPS-subset processor: ISA definitions, assembler and instruction-set simulator."""

from .assembler import AssembledProgram, Assembler, assemble
from .cpu import MipsCpu
from .isa import (
    INSTRUCTIONS,
    REGISTER_NAMES,
    encode_i,
    encode_j,
    encode_r,
    register_number,
    sign_extend_16,
    to_signed_32,
)

__all__ = [
    "AssembledProgram",
    "Assembler",
    "INSTRUCTIONS",
    "MipsCpu",
    "REGISTER_NAMES",
    "assemble",
    "encode_i",
    "encode_j",
    "encode_r",
    "register_number",
    "sign_extend_16",
    "to_signed_32",
]
