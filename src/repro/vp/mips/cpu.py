"""MIPS instruction-set simulator executing inside the discrete-event kernel.

The CPU is the master of the virtual platform: it fetches 32-bit instructions
from memory, executes them one per clock period, and issues loads/stores
either to its tightly coupled RAM or — for addresses inside the peripheral
window — to the APB bus.  Branch delay slots are not modelled (the assembler
never schedules anything useful in them), which keeps the programmer's model
simple without affecting the platform-level timing picture.
"""

from __future__ import annotations

from typing import Callable

from ...errors import CpuFault
from ..memory import Memory
from .isa import WORD_MASK, sign_extend_16, to_signed_32


class MipsCpu:
    """A functional MIPS-I subset core.

    Parameters
    ----------
    memory:
        Backing RAM holding code and data.
    bus_read / bus_write:
        Callables used for addresses at or above ``peripheral_base``.
    peripheral_base:
        Start of the memory-mapped peripheral window.
    """

    def __init__(
        self,
        memory: Memory,
        bus_read: Callable[[int], int] | None = None,
        bus_write: Callable[[int, int], None] | None = None,
        peripheral_base: int = 0x1000_0000,
    ) -> None:
        self.memory = memory
        self.bus_read = bus_read
        self.bus_write = bus_write
        self.peripheral_base = peripheral_base
        self.registers = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = 0
        self.instruction_count = 0
        self.load_count = 0
        self.store_count = 0
        self.halted = False

    # -- register helpers ---------------------------------------------------------------
    def read_register(self, index: int) -> int:
        """Read a register (register 0 is hard-wired to zero)."""
        return 0 if index == 0 else self.registers[index] & WORD_MASK

    def write_register(self, index: int, value: int) -> None:
        """Write a register (writes to register 0 are ignored)."""
        if index != 0:
            self.registers[index] = value & WORD_MASK

    def reset(self, pc: int = 0) -> None:
        """Reset architectural state and set the program counter."""
        self.registers = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = pc
        self.instruction_count = 0
        self.load_count = 0
        self.store_count = 0
        self.halted = False

    # -- memory access ---------------------------------------------------------------------
    def _load_word(self, address: int) -> int:
        self.load_count += 1
        if address >= self.peripheral_base:
            if self.bus_read is None:
                raise CpuFault(f"load from unmapped peripheral address {address:#x}")
            return self.bus_read(address) & WORD_MASK
        return self.memory.read_word(address)

    def _store_word(self, address: int, value: int) -> None:
        self.store_count += 1
        if address >= self.peripheral_base:
            if self.bus_write is None:
                raise CpuFault(f"store to unmapped peripheral address {address:#x}")
            self.bus_write(address, value & WORD_MASK)
            return
        self.memory.write_word(address, value)

    def _load_byte(self, address: int, signed: bool) -> int:
        self.load_count += 1
        if address >= self.peripheral_base:
            if self.bus_read is None:
                raise CpuFault(f"load from unmapped peripheral address {address:#x}")
            value = self.bus_read(address & ~0x3) >> (8 * (address & 0x3))
            value &= 0xFF
        else:
            value = self.memory.read_byte(address)
        if signed and value & 0x80:
            value -= 0x100
        return value & WORD_MASK

    def _store_byte(self, address: int, value: int) -> None:
        self.store_count += 1
        if address >= self.peripheral_base:
            if self.bus_write is None:
                raise CpuFault(f"store to unmapped peripheral address {address:#x}")
            self.bus_write(address, value & 0xFF)
            return
        self.memory.write_byte(address, value & 0xFF)

    # -- execution -----------------------------------------------------------------------------
    def step(self) -> None:
        """Fetch, decode and execute one instruction."""
        if self.halted:
            return
        instruction = self.memory.read_word(self.pc)
        next_pc = (self.pc + 4) & WORD_MASK
        opcode = (instruction >> 26) & 0x3F

        if instruction == 0:
            pass  # nop
        elif opcode == 0x00:
            next_pc = self._execute_r_type(instruction, next_pc)
        elif opcode in (0x02, 0x03):
            target = (self.pc & 0xF000_0000) | ((instruction & 0x03FF_FFFF) << 2)
            if opcode == 0x03:
                self.write_register(31, next_pc)
            next_pc = target
        else:
            next_pc = self._execute_i_type(opcode, instruction, next_pc)

        self.pc = next_pc
        self.instruction_count += 1

    def _execute_r_type(self, instruction: int, next_pc: int) -> int:
        rs = (instruction >> 21) & 0x1F
        rt = (instruction >> 16) & 0x1F
        rd = (instruction >> 11) & 0x1F
        shamt = (instruction >> 6) & 0x1F
        funct = instruction & 0x3F
        s = self.read_register(rs)
        t = self.read_register(rt)

        if funct == 0x00:  # sll
            self.write_register(rd, t << shamt)
        elif funct == 0x02:  # srl
            self.write_register(rd, t >> shamt)
        elif funct == 0x03:  # sra
            self.write_register(rd, to_signed_32(t) >> shamt)
        elif funct == 0x08:  # jr
            return s
        elif funct == 0x09:  # jalr
            self.write_register(rd if rd else 31, next_pc)
            return s
        elif funct in (0x20, 0x21):  # add/addu
            self.write_register(rd, s + t)
        elif funct in (0x22, 0x23):  # sub/subu
            self.write_register(rd, s - t)
        elif funct == 0x24:
            self.write_register(rd, s & t)
        elif funct == 0x25:
            self.write_register(rd, s | t)
        elif funct == 0x26:
            self.write_register(rd, s ^ t)
        elif funct == 0x27:
            self.write_register(rd, ~(s | t))
        elif funct == 0x2A:  # slt
            self.write_register(rd, 1 if to_signed_32(s) < to_signed_32(t) else 0)
        elif funct == 0x2B:  # sltu
            self.write_register(rd, 1 if s < t else 0)
        elif funct in (0x18, 0x19):  # mult/multu
            if funct == 0x18:
                product = to_signed_32(s) * to_signed_32(t)
            else:
                product = s * t
            self.lo = product & WORD_MASK
            self.hi = (product >> 32) & WORD_MASK
        elif funct in (0x1A, 0x1B):  # div/divu
            if t == 0:
                self.lo, self.hi = 0, 0
            elif funct == 0x1A:
                self.lo = int(to_signed_32(s) / to_signed_32(t)) & WORD_MASK
                self.hi = (to_signed_32(s) - int(to_signed_32(s) / to_signed_32(t)) * to_signed_32(t)) & WORD_MASK
            else:
                self.lo = (s // t) & WORD_MASK
                self.hi = (s % t) & WORD_MASK
        elif funct == 0x10:  # mfhi
            self.write_register(rd, self.hi)
        elif funct == 0x12:  # mflo
            self.write_register(rd, self.lo)
        else:
            raise CpuFault(
                f"unimplemented R-type funct {funct:#04x} at pc {self.pc:#010x}"
            )
        return next_pc

    def _execute_i_type(self, opcode: int, instruction: int, next_pc: int) -> int:
        rs = (instruction >> 21) & 0x1F
        rt = (instruction >> 16) & 0x1F
        immediate = instruction & 0xFFFF
        signed = sign_extend_16(immediate)
        s = self.read_register(rs)

        if opcode == 0x08 or opcode == 0x09:  # addi/addiu
            self.write_register(rt, s + signed)
        elif opcode == 0x0A:  # slti
            self.write_register(rt, 1 if to_signed_32(s) < signed else 0)
        elif opcode == 0x0B:  # sltiu
            self.write_register(rt, 1 if s < (signed & WORD_MASK) else 0)
        elif opcode == 0x0C:
            self.write_register(rt, s & immediate)
        elif opcode == 0x0D:
            self.write_register(rt, s | immediate)
        elif opcode == 0x0E:
            self.write_register(rt, s ^ immediate)
        elif opcode == 0x0F:  # lui
            self.write_register(rt, immediate << 16)
        elif opcode == 0x23:  # lw
            self.write_register(rt, self._load_word((s + signed) & WORD_MASK))
        elif opcode == 0x20:  # lb
            self.write_register(rt, self._load_byte((s + signed) & WORD_MASK, signed=True))
        elif opcode == 0x24:  # lbu
            self.write_register(rt, self._load_byte((s + signed) & WORD_MASK, signed=False))
        elif opcode == 0x2B:  # sw
            self._store_word((s + signed) & WORD_MASK, self.read_register(rt))
        elif opcode == 0x28:  # sb
            self._store_byte((s + signed) & WORD_MASK, self.read_register(rt))
        elif opcode == 0x04:  # beq
            if s == self.read_register(rt):
                return (self.pc + 4 + (signed << 2)) & WORD_MASK
        elif opcode == 0x05:  # bne
            if s != self.read_register(rt):
                return (self.pc + 4 + (signed << 2)) & WORD_MASK
        elif opcode == 0x06:  # blez
            if to_signed_32(s) <= 0:
                return (self.pc + 4 + (signed << 2)) & WORD_MASK
        elif opcode == 0x07:  # bgtz
            if to_signed_32(s) > 0:
                return (self.pc + 4 + (signed << 2)) & WORD_MASK
        else:
            raise CpuFault(
                f"unimplemented opcode {opcode:#04x} at pc {self.pc:#010x}"
            )
        return next_pc
