"""MIPS instruction-set simulator executing inside the discrete-event kernel.

The CPU is the master of the virtual platform: it fetches 32-bit instructions
from memory, executes them, and issues loads/stores either to its tightly
coupled RAM or — for addresses inside the peripheral window — to the APB bus.
Branch delay slots are not modelled (the assembler never schedules anything
useful in them), which keeps the programmer's model simple without affecting
the platform-level timing picture.

Execution model
---------------
Every code word is decoded **once** into a prebound executor tuple (opcode
kind, register indices, sign-extended immediates and absolute branch targets
resolved at decode time) cached per word address.  :meth:`MipsCpu.run_block`
then executes decoded instructions in a tight local loop — registers, memory
and the decode cache bound to locals, taken branches followed in place —
yielding back only when it reaches a peripheral-window load/store that is not
the first instruction of the block, the halt flag, or the cycle budget.
Peripheral accesses are therefore always the *first* instruction of a block,
which is what lets the platform's block driver schedule them on exactly the
same clock cycle as the classic one-instruction-per-tick interpreter.

The decode cache is invalidated by the CPU's own stores (inline, in the hot
loop) and by a :meth:`~repro.vp.memory.Memory.add_write_watcher` hook for
external writes (firmware reloads via ``load_image``, ``clear``, tests poking
at code), so self-modifying code re-decodes and stays architecturally exact.
"""

from __future__ import annotations

import sys
from typing import Callable

from ...errors import CpuFault
from ..memory import Memory
from .isa import WORD_MASK

#: Aligned word accesses go through a ``memoryview(...).cast("I")`` of the
#: RAM, which needs native little-endian byte order (every supported target);
#: on a big-endian host the executor falls back to the byte-wise path.
_NATIVE_LITTLE_ENDIAN = sys.byteorder == "little"

#: Decoded-instruction kinds.  Loads/stores and branches get their own kinds
#: so the block executor can special-case the peripheral window and follow
#: branch targets without re-inspecting opcode fields.
_NOP = 0
_SLL = 1
_SRL = 2
_SRA = 3
_JR = 4
_JALR = 5
_ADDU = 6
_SUBU = 7
_AND = 8
_OR = 9
_XOR = 10
_NOR = 11
_SLT = 12
_SLTU = 13
_MULT = 14
_MULTU = 15
_DIV = 16
_DIVU = 17
_MFHI = 18
_MFLO = 19
_ADDIU = 20
_SLTI = 21
_SLTIU = 22
_ANDI = 23
_ORI = 24
_XORI = 25
_LUI = 26
_LW = 27
_LB = 28
_LBU = 29
_SW = 30
_SB = 31
_BEQ = 32
_BNE = 33
_BLEZ = 34
_BGTZ = 35
_J = 36
_JAL = 37

#: Destination index used for writes to ``$zero``: decode redirects them to a
#: scratch slot past the 32 architectural registers, so the hot loop never
#: needs a per-write "is this register 0" test and ``registers[0]`` stays 0.
_ZERO_SINK = 32

#: Block-entry heat at which a superblock is compiled (see superblock.py);
#: bound here so the hot loop reads it as a module global, the authoritative
#: value lives next to the compiler.
_SB_THRESHOLD = 4

_R_ALU = {
    0x20: _ADDU, 0x21: _ADDU,
    0x22: _SUBU, 0x23: _SUBU,
    0x24: _AND, 0x25: _OR, 0x26: _XOR, 0x27: _NOR,
    0x2A: _SLT, 0x2B: _SLTU,
}

_I_ALU = {
    0x08: _ADDIU, 0x09: _ADDIU,
    0x0A: _SLTI, 0x0C: _ANDI, 0x0D: _ORI, 0x0E: _XORI,
}


def decode_word(word: int, pc: int) -> tuple:
    """Decode one 32-bit instruction word fetched from address ``pc``.

    Returns a 4-tuple ``(kind, a, b, c)`` whose operand meaning depends on
    the kind; immediates are sign-extended and branch/jump targets resolved
    to absolute addresses, so the executor never touches encoding fields.
    Raises :class:`CpuFault` for words outside the implemented subset.
    """
    if word == 0:
        return (_NOP, 0, 0, 0)
    opcode = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F

    if opcode == 0x00:
        rd = (word >> 11) & 0x1F
        dest = rd if rd else _ZERO_SINK
        funct = word & 0x3F
        alu = _R_ALU.get(funct)
        if alu is not None:
            return (alu, dest, rs, rt)
        if funct == 0x00:  # sll
            return (_SLL, dest, rt, (word >> 6) & 0x1F)
        if funct == 0x02:  # srl
            return (_SRL, dest, rt, (word >> 6) & 0x1F)
        if funct == 0x03:  # sra
            return (_SRA, dest, rt, (word >> 6) & 0x1F)
        if funct == 0x08:  # jr
            return (_JR, rs, 0, 0)
        if funct == 0x09:  # jalr
            return (_JALR, rd if rd else 31, rs, (pc + 4) & WORD_MASK)
        if funct == 0x18:  # mult
            return (_MULT, rs, rt, 0)
        if funct == 0x19:  # multu
            return (_MULTU, rs, rt, 0)
        if funct == 0x1A:  # div
            return (_DIV, rs, rt, 0)
        if funct == 0x1B:  # divu
            return (_DIVU, rs, rt, 0)
        if funct == 0x10:  # mfhi
            return (_MFHI, dest, 0, 0)
        if funct == 0x12:  # mflo
            return (_MFLO, dest, 0, 0)
        raise CpuFault(
            f"unimplemented R-type funct {funct:#04x} at pc {pc:#010x}"
        )

    if opcode in (0x02, 0x03):
        target = (pc & 0xF000_0000) | ((word & 0x03FF_FFFF) << 2)
        if opcode == 0x02:
            return (_J, target, 0, 0)
        return (_JAL, target, (pc + 4) & WORD_MASK, 0)

    immediate = word & 0xFFFF
    signed = immediate - 0x10000 if immediate & 0x8000 else immediate
    dest = rt if rt else _ZERO_SINK
    alu = _I_ALU.get(opcode)
    if alu is not None:
        if alu in (_ANDI, _ORI, _XORI):
            return (alu, dest, rs, immediate)
        return (alu, dest, rs, signed)
    if opcode == 0x0B:  # sltiu compares against the sign-extended, remasked imm
        return (_SLTIU, dest, rs, signed & WORD_MASK)
    if opcode == 0x0F:  # lui
        return (_LUI, dest, (immediate << 16) & WORD_MASK, 0)
    if opcode == 0x23:  # lw
        return (_LW, dest, rs, signed)
    if opcode == 0x20:  # lb
        return (_LB, dest, rs, signed)
    if opcode == 0x24:  # lbu
        return (_LBU, dest, rs, signed)
    if opcode == 0x2B:  # sw
        return (_SW, rt, rs, signed)
    if opcode == 0x28:  # sb
        return (_SB, rt, rs, signed)
    branch_target = (pc + 4 + (signed << 2)) & WORD_MASK
    if opcode == 0x04:  # beq
        return (_BEQ, rs, rt, branch_target)
    if opcode == 0x05:  # bne
        return (_BNE, rs, rt, branch_target)
    if opcode == 0x06:  # blez
        return (_BLEZ, rs, branch_target, 0)
    if opcode == 0x07:  # bgtz
        return (_BGTZ, rs, branch_target, 0)
    raise CpuFault(
        f"unimplemented opcode {opcode:#04x} at pc {pc:#010x}"
    )


class MipsCpu:
    """A functional MIPS-I subset core with a predecoded instruction cache.

    Parameters
    ----------
    memory:
        Backing RAM holding code and data.
    bus_read / bus_write:
        Callables used for addresses at or above ``peripheral_base``.
    peripheral_base:
        Start of the memory-mapped peripheral window.
    """

    def __init__(
        self,
        memory: Memory,
        bus_read: Callable[[int], int] | None = None,
        bus_write: Callable[[int, int], None] | None = None,
        peripheral_base: int = 0x1000_0000,
        superblocks: bool = True,
    ) -> None:
        self.memory = memory
        self.bus_read = bus_read
        self.bus_write = bus_write
        self.peripheral_base = peripheral_base
        # 32 architectural registers plus the $zero write sink (see
        # _ZERO_SINK); values are kept masked to 32 bits at all times.
        self.registers = [0] * 33
        self.hi = 0
        self.lo = 0
        self.pc = 0
        self.instruction_count = 0
        self.load_count = 0
        self.store_count = 0
        # Observability counters.  Maintained unconditionally — but only in
        # branches that are already rare (decode misses, code-word stores,
        # external writes, end-of-block flush), so the hot dispatch loop is
        # untouched and the disabled-tracing cost is unmeasurable.
        self.block_count = 0
        self.decode_miss_count = 0
        self.decode_invalidation_count = 0
        self.halted = False
        #: Lazily filled decode cache, one slot per RAM word.
        self._decoded: list[tuple | None] = [None] * (memory.size // 4)
        # Superblock tier (see vp/mips/superblock.py): hot block-entry pcs
        # are fused into specialized callables.  The generated code reads
        # RAM through the little-endian word view, so the tier disables
        # itself on big-endian hosts (the dispatch loop still runs there).
        self.superblocks = bool(superblocks) and _NATIVE_LITTLE_ENDIAN
        self.superblock_compile_count = 0
        self.superblock_hit_count = 0
        self.superblock_invalidation_count = 0
        #: entry pc -> (function, length) | False (negative-cache sentinel).
        self._superblocks: dict[int, object] = {}
        #: entry pc -> candidate heat (compiled at HEAT_THRESHOLD).
        self._sb_heat: dict[int, int] = {}
        #: entry pc -> (first word index, last word index) covered.
        self._sb_spans: dict[int, tuple[int, int]] = {}
        #: word index -> set of entry pcs whose superblock covers that word.
        self._sb_cover: list[set | None] = [None] * (memory.size // 4)
        # Bumped on every superblock drop; running superblocks compare it
        # after bus callbacks to detect that they may have been invalidated.
        self._sb_epoch = 0
        #: Scratch list through which superblocks flush pc and counters.
        self._sb_out: list[int] = [0] * 7
        memory.add_write_watcher(self._on_external_write)

    # -- register helpers ---------------------------------------------------------------
    def read_register(self, index: int) -> int:
        """Read a register (register 0 is hard-wired to zero)."""
        return 0 if index == 0 else self.registers[index] & WORD_MASK

    def write_register(self, index: int, value: int) -> None:
        """Write a register (writes to register 0 are ignored)."""
        if index != 0:
            self.registers[index] = value & WORD_MASK

    def reset(self, pc: int = 0) -> None:
        """Reset architectural state and set the program counter.

        The decode cache is *kept*: it mirrors memory, not register state,
        and is invalidated by writes, not by reset.
        """
        self.registers = [0] * 33
        self.hi = 0
        self.lo = 0
        self.pc = pc
        self.instruction_count = 0
        self.load_count = 0
        self.store_count = 0
        self.block_count = 0
        self.decode_miss_count = 0
        self.decode_invalidation_count = 0
        self.superblock_compile_count = 0
        self.superblock_hit_count = 0
        self.superblock_invalidation_count = 0
        self.halted = False

    # -- decode-cache maintenance --------------------------------------------------------
    def _on_external_write(self, address: int, width: int) -> None:
        """Memory write watcher: drop decoded entries covering the write."""
        decoded = self._decoded
        base = self.memory.base
        first = (address - base) >> 2
        last = (address + width - 1 - base) >> 2
        if first < 0:
            first = 0
        if last >= len(decoded):
            last = len(decoded) - 1
        if first > last:
            return
        span = decoded[first : last + 1]
        invalidated = sum(1 for entry in span if entry is not None)
        self.decode_invalidation_count += invalidated
        decoded[first : last + 1] = [None] * (last - first + 1)
        if self._sb_spans:
            for entry_pc, (lo, hi) in list(self._sb_spans.items()):
                if lo <= last and hi >= first:
                    self._drop_superblock(entry_pc)

    # -- superblock-cache maintenance ----------------------------------------------------
    def _drop_superblocks_at(self, word_index: int) -> None:
        """Drop every superblock whose span covers ``word_index``."""
        cell = self._sb_cover[word_index]
        if cell:
            for entry_pc in tuple(cell):
                self._drop_superblock(entry_pc)

    def _drop_superblock(self, entry_pc: int) -> None:
        self._superblocks.pop(entry_pc, None)
        span = self._sb_spans.pop(entry_pc, None)
        self.superblock_invalidation_count += 1
        self._sb_epoch += 1
        if span is not None:
            cover = self._sb_cover
            for index in range(span[0], span[1] + 1):
                cell = cover[index]
                if cell is not None:
                    cell.discard(entry_pc)
                    if not cell:
                        cover[index] = None

    def _install_superblock(self, entry_pc: int):
        """Compile the superblock entered at ``entry_pc`` (lazy import)."""
        from .superblock import install_superblock

        return install_superblock(self, entry_pc)

    def superblock_stats(self) -> dict[str, int]:
        """Superblock-tier effectiveness counters (since construction or reset)."""
        return {
            "superblocks": sum(
                1 for entry in self._superblocks.values() if entry is not False
            ),
            "superblock_compiles": self.superblock_compile_count,
            "superblock_hits": self.superblock_hit_count,
            "superblock_invalidations": self.superblock_invalidation_count,
        }

    def decode_stats(self) -> dict[str, int]:
        """Decode-cache effectiveness counters (since construction or reset).

        ``decode_misses`` counts executed instructions that were not served
        from the cache (first executions, re-decodes after invalidation and
        uncacheable unaligned fetches); hits are therefore
        ``instruction_count - decode_misses``.
        """
        return {
            "blocks": self.block_count,
            "decode_misses": self.decode_miss_count,
            "decode_invalidations": self.decode_invalidation_count,
        }

    # -- memory access (slow paths, kept for direct use and the bus window) --------------
    def _load_word(self, address: int) -> int:
        self.load_count += 1
        if address >= self.peripheral_base:
            if self.bus_read is None:
                raise CpuFault(f"load from unmapped peripheral address {address:#x}")
            return self.bus_read(address) & WORD_MASK
        return self.memory.read_word(address)

    def _store_word(self, address: int, value: int) -> None:
        self.store_count += 1
        if address >= self.peripheral_base:
            if self.bus_write is None:
                raise CpuFault(f"store to unmapped peripheral address {address:#x}")
            self.bus_write(address, value & WORD_MASK)
            return
        self.memory.write_word(address, value)

    def _load_byte(self, address: int, signed: bool) -> int:
        self.load_count += 1
        if address >= self.peripheral_base:
            if self.bus_read is None:
                raise CpuFault(f"load from unmapped peripheral address {address:#x}")
            value = self.bus_read(address & ~0x3) >> (8 * (address & 0x3))
            value &= 0xFF
        else:
            value = self.memory.read_byte(address)
        if signed and value & 0x80:
            value -= 0x100
        return value & WORD_MASK

    def _store_byte(self, address: int, value: int) -> None:
        self.store_count += 1
        if address >= self.peripheral_base:
            if self.bus_write is None:
                raise CpuFault(f"store to unmapped peripheral address {address:#x}")
            self.bus_write(address, value & 0xFF)
            return
        self.memory.write_byte(address, value & 0xFF)

    # -- execution -----------------------------------------------------------------------------
    def step(self) -> None:
        """Fetch, decode (cached) and execute exactly one instruction."""
        self.run_block(1)

    def run_block(self, max_instructions: int) -> int:
        """Execute up to ``max_instructions`` decoded instructions in one burst.

        Runs a tight local loop over the decode cache, following taken
        branches, and yields back early only at:

        * a peripheral-window load/store that is **not** the first
          instruction of the block (left unexecuted, so the caller can
          reschedule it on its exact clock cycle);
        * the ``halted`` flag;
        * the instruction budget.

        Returns the number of instructions actually executed.  Architectural
        state (``pc``, counters) is flushed back even when an instruction
        faults mid-block, leaving exactly the same state as single-stepping.
        """
        if self.halted or max_instructions <= 0:
            return 0
        # Everything the hot loop touches is bound to locals — including the
        # kind constants, so every dispatch comparison is a LOAD_FAST.
        K_NOP = _NOP; K_SLL = _SLL; K_SRL = _SRL; K_SRA = _SRA  # noqa: E702
        K_JR = _JR; K_JALR = _JALR; K_ADDU = _ADDU; K_SUBU = _SUBU  # noqa: E702
        K_AND = _AND; K_OR = _OR; K_XOR = _XOR; K_NOR = _NOR  # noqa: E702
        K_SLT = _SLT; K_SLTU = _SLTU; K_MULT = _MULT; K_MULTU = _MULTU  # noqa: E702
        K_DIV = _DIV; K_DIVU = _DIVU; K_MFHI = _MFHI; K_MFLO = _MFLO  # noqa: E702
        K_ADDIU = _ADDIU; K_SLTI = _SLTI; K_SLTIU = _SLTIU  # noqa: E702
        K_ANDI = _ANDI; K_ORI = _ORI; K_XORI = _XORI; K_LUI = _LUI  # noqa: E702
        K_LW = _LW; K_LB = _LB; K_LBU = _LBU; K_SW = _SW; K_SB = _SB  # noqa: E702
        K_BEQ = _BEQ; K_BNE = _BNE; K_BLEZ = _BLEZ; K_BGTZ = _BGTZ  # noqa: E702
        K_J = _J; K_JAL = _JAL  # noqa: E702
        decoded = self._decoded
        sb_cover = self._sb_cover
        reg = self.registers
        mem = self.memory
        data = mem._data
        words = memoryview(data).cast("I") if _NATIVE_LITTLE_ENDIAN else None
        mbase = mem.base
        msize = mem.size
        periph = self.peripheral_base
        # The word fast path must never swallow a peripheral access, so its
        # window ends at the peripheral base even if (in exotic configs) the
        # RAM range overlaps the peripheral window — bus precedence matches
        # the _load_word/_store_word slow paths.
        msize4 = min(msize, periph - mbase) - 4
        pc = self.pc
        executed = 0
        loads = 0
        stores = 0
        mem_reads = 0
        mem_writes = 0
        misses = 0
        invalidations = 0
        M = WORD_MASK
        sb_stop = False
        try:
            # Superblock tier: at the block entry (and after each superblock
            # exit, so consecutive compiled regions chain), look the pc up in
            # the superblock cache; on a miss, heat-count it toward
            # compilation.  A superblock is only entered while the remaining
            # budget covers one full pass — the tail of a block, and every
            # per-tick step() (budget 1), runs through the dispatch loop
            # below, keeping block-size invariance bit-exact.
            if self.superblocks and words is not None and max_instructions > 1:
                sblocks = self._superblocks
                heat = self._sb_heat
                cover = self._sb_cover
                out = self._sb_out
                hits = 0
                while executed < max_instructions:
                    entry = sblocks.get(pc)
                    if entry is None:
                        count = heat.get(pc, 0) + 1
                        if count < _SB_THRESHOLD:
                            heat[pc] = count
                            break
                        heat.pop(pc, None)
                        entry = self._install_superblock(pc)
                        if entry is False:
                            break
                    elif entry is False:
                        break
                    function, length = entry
                    if max_instructions - executed < length:
                        break
                    hits += 1
                    try:
                        sb_stop = function(
                            self, reg, decoded, data, words, cover, mem,
                            max_instructions, executed, loads, stores,
                            mem_reads, mem_writes, invalidations, out,
                        )
                    finally:
                        pc = out[0]
                        executed = out[1]
                        loads = out[2]
                        stores = out[3]
                        mem_reads = out[4]
                        mem_writes = out[5]
                        invalidations = out[6]
                    if sb_stop:
                        break
                if hits:
                    self.superblock_hit_count += hits
                if sb_stop:
                    # A peripheral access is pending (or the CPU halted):
                    # yield the block; the finally clause flushes state.
                    return executed
            while executed < max_instructions:
                offset = pc - mbase
                if 0 <= offset < msize and not offset & 3:
                    index = offset >> 2
                    entry = decoded[index]
                    if entry is None:
                        misses += 1
                        entry = decode_word(mem.read_word(pc), pc)
                        decoded[index] = entry
                else:
                    # Unaligned or out-of-range pc: decode uncached (the
                    # fetch itself raises BusError when out of range).
                    misses += 1
                    entry = decode_word(mem.read_word(pc), pc)
                k, a, b, c = entry

                if k == K_LW:
                    address = (reg[b] + c) & M
                    offset = address - mbase
                    if 0 <= offset <= msize4 and not offset & 3 and words is not None:
                        loads += 1
                        mem_reads += 1
                        reg[a] = words[offset >> 2]
                    elif address >= periph:
                        if executed:
                            break
                        loads += 1
                        if self.bus_read is None:
                            raise CpuFault(
                                f"load from unmapped peripheral address {address:#x}"
                            )
                        reg[a] = self.bus_read(address) & M
                    else:
                        loads += 1
                        if offset < 0 or offset + 4 > msize:
                            mem.read_word(address)  # raises BusError
                        mem_reads += 1
                        reg[a] = int.from_bytes(data[offset : offset + 4], "little")
                    pc += 4
                elif k == K_BEQ:
                    pc = c if reg[a] == reg[b] else pc + 4
                elif k == K_ADDIU:
                    reg[a] = (reg[b] + c) & M
                    pc += 4
                elif k == K_ADDU:
                    reg[a] = (reg[b] + reg[c]) & M
                    pc += 4
                elif k == K_SW:
                    address = (reg[b] + c) & M
                    offset = address - mbase
                    if 0 <= offset <= msize4 and not offset & 3 and words is not None:
                        stores += 1
                        mem_writes += 1
                        words[offset >> 2] = reg[a]
                        index = offset >> 2
                        if decoded[index] is not None:
                            decoded[index] = None
                            invalidations += 1
                        if sb_cover[index] is not None:
                            self._drop_superblocks_at(index)
                    elif address >= periph:
                        if executed:
                            break
                        stores += 1
                        if self.bus_write is None:
                            raise CpuFault(
                                f"store to unmapped peripheral address {address:#x}"
                            )
                        self.bus_write(address, reg[a])
                    else:
                        stores += 1
                        if offset < 0 or offset + 4 > msize:
                            mem.write_word(address, reg[a])  # raises BusError
                        data[offset : offset + 4] = reg[a].to_bytes(4, "little")
                        mem_writes += 1
                        index = offset >> 2
                        if decoded[index] is not None:
                            decoded[index] = None
                            invalidations += 1
                        if sb_cover[index] is not None:
                            self._drop_superblocks_at(index)
                        index = (offset + 3) >> 2
                        if decoded[index] is not None:
                            decoded[index] = None
                            invalidations += 1
                        if sb_cover[index] is not None:
                            self._drop_superblocks_at(index)
                    pc += 4
                elif k == K_ANDI:
                    reg[a] = reg[b] & c
                    pc += 4
                elif k == K_SLT:
                    s = reg[b]
                    t = reg[c]
                    if s > 0x7FFFFFFF:
                        s -= 0x100000000
                    if t > 0x7FFFFFFF:
                        t -= 0x100000000
                    reg[a] = 1 if s < t else 0
                    pc += 4
                elif k == K_BNE:
                    pc = c if reg[a] != reg[b] else pc + 4
                elif k == K_SUBU:
                    reg[a] = (reg[b] - reg[c]) & M
                    pc += 4
                elif k == K_NOP:
                    pc += 4
                elif k == K_J:
                    pc = a
                elif k == K_SLL:
                    reg[a] = (reg[b] << c) & M
                    pc += 4
                elif k == K_SRA:
                    t = reg[b]
                    if t > 0x7FFFFFFF:
                        t -= 0x100000000
                    reg[a] = (t >> c) & M
                    pc += 4
                elif k == K_SRL:
                    reg[a] = reg[b] >> c
                    pc += 4
                elif k == K_LUI:
                    reg[a] = b
                    pc += 4
                elif k == K_ORI:
                    reg[a] = reg[b] | c
                    pc += 4
                elif k == K_SLTI:
                    s = reg[b]
                    if s > 0x7FFFFFFF:
                        s -= 0x100000000
                    reg[a] = 1 if s < c else 0
                    pc += 4
                elif k == K_SLTIU:
                    reg[a] = 1 if reg[b] < c else 0
                    pc += 4
                elif k == K_BLEZ:
                    s = reg[a]
                    pc = b if (s == 0 or s > 0x7FFFFFFF) else pc + 4
                elif k == K_BGTZ:
                    s = reg[a]
                    pc = b if 0 < s <= 0x7FFFFFFF else pc + 4
                elif k == K_XORI:
                    reg[a] = reg[b] ^ c
                    pc += 4
                elif k == K_AND:
                    reg[a] = reg[b] & reg[c]
                    pc += 4
                elif k == K_OR:
                    reg[a] = reg[b] | reg[c]
                    pc += 4
                elif k == K_XOR:
                    reg[a] = reg[b] ^ reg[c]
                    pc += 4
                elif k == K_NOR:
                    reg[a] = ~(reg[b] | reg[c]) & M
                    pc += 4
                elif k == K_SLTU:
                    reg[a] = 1 if reg[b] < reg[c] else 0
                    pc += 4
                elif k == K_LB or k == K_LBU:
                    address = (reg[b] + c) & M
                    if address >= periph:
                        if executed:
                            break
                        loads += 1
                        if self.bus_read is None:
                            raise CpuFault(
                                f"load from unmapped peripheral address {address:#x}"
                            )
                        value = (self.bus_read(address & ~0x3) >> (8 * (address & 0x3))) & 0xFF
                    else:
                        loads += 1
                        offset = address - mbase
                        if offset < 0 or offset >= msize:
                            mem.read_byte(address)  # raises BusError
                        mem_reads += 1
                        value = data[offset]
                    if k == K_LB and value & 0x80:
                        value = (value - 0x100) & M
                    reg[a] = value
                    pc += 4
                elif k == K_SB:
                    address = (reg[b] + c) & M
                    if address >= periph:
                        if executed:
                            break
                        stores += 1
                        if self.bus_write is None:
                            raise CpuFault(
                                f"store to unmapped peripheral address {address:#x}"
                            )
                        self.bus_write(address, reg[a] & 0xFF)
                    else:
                        stores += 1
                        offset = address - mbase
                        if offset < 0 or offset >= msize:
                            mem.write_byte(address, reg[a])  # raises BusError
                        data[offset] = reg[a] & 0xFF
                        mem_writes += 1
                        index = offset >> 2
                        if decoded[index] is not None:
                            decoded[index] = None
                            invalidations += 1
                        if sb_cover[index] is not None:
                            self._drop_superblocks_at(index)
                    pc += 4
                elif k == K_JR:
                    pc = reg[a]
                elif k == K_JAL:
                    reg[31] = b
                    pc = a
                elif k == K_JALR:
                    target = reg[b]
                    reg[a] = c
                    pc = target
                elif k == K_MULT:
                    s = reg[a]
                    t = reg[b]
                    if s > 0x7FFFFFFF:
                        s -= 0x100000000
                    if t > 0x7FFFFFFF:
                        t -= 0x100000000
                    product = s * t
                    self.lo = product & M
                    self.hi = (product >> 32) & M
                    pc += 4
                elif k == K_MULTU:
                    product = reg[a] * reg[b]
                    self.lo = product & M
                    self.hi = (product >> 32) & M
                    pc += 4
                elif k == K_DIV:
                    s = reg[a]
                    t = reg[b]
                    if s > 0x7FFFFFFF:
                        s -= 0x100000000
                    if t > 0x7FFFFFFF:
                        t -= 0x100000000
                    if t == 0:
                        self.lo, self.hi = 0, 0
                    else:
                        # Pure-integer truncation toward zero (MIPS div): a
                        # float round trip loses precision above 2**53 and
                        # already misrounds e.g. 0x7FFFFFFF / 1.
                        quotient = abs(s) // abs(t)
                        if (s < 0) != (t < 0):
                            quotient = -quotient
                        self.lo = quotient & M
                        self.hi = (s - quotient * t) & M
                    pc += 4
                elif k == K_DIVU:
                    s = reg[a]
                    t = reg[b]
                    if t == 0:
                        self.lo, self.hi = 0, 0
                    else:
                        self.lo = (s // t) & M
                        self.hi = (s % t) & M
                    pc += 4
                elif k == K_MFHI:
                    reg[a] = self.hi
                    pc += 4
                else:  # _MFLO
                    reg[a] = self.lo
                    pc += 4

                executed += 1
                # Peripheral accesses only execute as a block's first
                # instruction, so a bus callback that halts the CPU (a
                # power/halt control register) can only have fired here —
                # one cheap comparison keeps mid-block halts per-tick exact.
                if executed == 1 and self.halted:
                    break
        finally:
            self.pc = pc
            self.instruction_count += executed
            self.load_count += loads
            self.store_count += stores
            self.block_count += 1
            self.decode_miss_count += misses
            self.decode_invalidation_count += invalidations
            mem.read_count += mem_reads
            mem.write_count += mem_writes
        return executed
