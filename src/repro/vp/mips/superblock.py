"""Superblock compiler for the MIPS ISS: fused straight-line runs as callables.

This is the classic dynamic-translation trick (QEMU's TB chaining, scaled to
a Python host): a *superblock* is a straight-line run of decoded instructions
starting at an entry pc and ending at the first control-flow instruction (or
a size cap).  :func:`install_superblock` specializes that run into a single
exec-compiled Python function — registers hoisted into locals, operands and
branch targets baked in as constants, the dispatch loop gone — and registers
it in the CPU's per-entry-pc cache.  A conditional branch whose taken target
is the entry pc is fused into a ``while True`` loop, so hot firmware loops
execute entire iterations per Python-level jump.

Architectural exactness is the contract (the block-step test compares
``pc``/registers/``hi``/``lo``/instruction, load and store counts and memory
bytes against per-tick stepping):

* the instruction budget is respected exactly: the caller only enters a
  superblock when the remaining budget covers one full pass, and a fused
  loop re-enters only while another full pass fits — the tail of a block
  always runs through the ordinary dispatch loop;
* ``executed`` is correct at every point an exception can surface or a bus
  callback can observe the CPU, so mid-superblock faults leave exactly the
  per-tick architectural state (the generated ``try/finally`` flushes
  registers, pc and counters on every exit, including raises);
* peripheral-window accesses keep the block contract: they only execute as
  the first instruction of a block (``executed == 0``), otherwise the
  superblock returns with the access unexecuted so the platform driver can
  reschedule it on its exact clock cycle;
* stores invalidate both the decode cache (inline, same as the interpreter)
  and any superblock whose span covers the written word; a store into the
  *running* superblock's own span additionally bails out after the store so
  stale specialized code is never re-entered — self-modifying code stays
  per-tick exact.
"""

from __future__ import annotations

from ...errors import CpuFault
from .cpu import (
    _ADDIU,
    _ADDU,
    _AND,
    _ANDI,
    _BEQ,
    _BGTZ,
    _BLEZ,
    _BNE,
    _DIV,
    _DIVU,
    _J,
    _JAL,
    _JALR,
    _JR,
    _LB,
    _LBU,
    _LUI,
    _LW,
    _MFHI,
    _MFLO,
    _MULT,
    _MULTU,
    _NOP,
    _NOR,
    _OR,
    _ORI,
    _SB,
    _SLL,
    _SLT,
    _SLTI,
    _SLTIU,
    _SLTU,
    _SRA,
    _SRL,
    _SUBU,
    _SW,
    _XOR,
    _XORI,
    decode_word,
)
from .isa import WORD_MASK

#: Longest run of instructions fused into one superblock.
MAX_SUPERBLOCK = 64
#: Runs shorter than this are not worth the call overhead; left to dispatch.
MIN_SUPERBLOCK = 2

_CONTROL = frozenset((_JR, _JALR, _BEQ, _BNE, _BLEZ, _BGTZ, _J, _JAL))
_MEMORY = frozenset((_LW, _LB, _LBU, _SW, _SB))

_M = WORD_MASK


class _Emitter:
    """Collects generated source lines with static counter batching.

    All five architectural counters (``executed``, ``loads``, ``stores``,
    ``mem_reads``, ``mem_writes``) are tracked as *codegen-time* constants:
    straight-line fast paths carry no counter statements at all, and the
    accumulated totals are materialized as ``+=`` statements only on exit and
    raise paths (where the ``finally`` clause makes them architecturally
    observable).  Inside a fused loop the materialized constants are
    per-iteration deltas — the terminal branch materializes the full body
    before ``continue``, so counters are exact at every loop top.

    ``bounds`` tracks a sound inclusive upper bound for each register local
    (registers always hold values in ``[0, WORD_MASK]``), letting the emitter
    drop ``& 0xFFFFFFFF`` masks that provably cannot change the result.
    """

    COUNTERS = ("executed", "loads", "stores", "mem_reads", "mem_writes")

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.pending = dict.fromkeys(self.COUNTERS, 0)
        self.used: set[int] = set()
        self.written: set[int] = set()
        self.bounds: dict[int, int] = {}
        #: Fused loops only: per-full-iteration counter deltas; exits emit
        #: ``counter += it * scale + partial`` so the loop body itself carries
        #: no counter statements at all.
        self.iter_counts: "dict[str, int] | None" = None
        #: ``(base_reg, displacement) -> [index_local, forwarded_value]`` for
        #: word accesses whose fast-window guard already passed and whose base
        #: register is unmodified since: repeat accesses skip the guard, and a
        #: load after a store to the same slot becomes a register copy.
        self.verified: dict[tuple[int, int], list] = {}
        self.index_seq = 0

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def materialize(self, indent: int, **extra: int) -> None:
        """Emit the batched counter totals plus ``extra``, without resetting.

        Exit paths branch off the straight line, so the static totals keep
        accumulating for the fall-through path after the branch.  Inside a
        fused loop the totals only cover the current (partial) iteration;
        completed iterations are added back via the ``it`` counter.
        """
        for name in self.COUNTERS:
            constant = self.pending[name] + extra.get(name, 0)
            scale = self.iter_counts[name] if self.iter_counts else 0
            scaled = "it" if scale == 1 else f"it * {scale}"
            if scale and constant:
                self.emit(indent, f"{name} += {scaled} + {constant}")
            elif scale:
                self.emit(indent, f"{name} += {scaled}")
            elif constant:
                self.emit(indent, f"{name} += {constant}")

    def complete(self, **counts: int) -> None:
        """Record one completed instruction's counts into the static batch."""
        self.pending["executed"] += 1
        for name, value in counts.items():
            self.pending[name] += value

    def read(self, index: int) -> str:
        """Source text reading register ``index`` ($zero folds to literal 0)."""
        if index == 0:
            return "0"
        self.used.add(index)
        return f"r{index}"

    def bound(self, index: int) -> int:
        """Known inclusive upper bound of register ``index`` at this point."""
        if index == 0:
            return 0
        return self.bounds.get(index, _M)

    def write(self, index: int, bound: int = _M) -> str:
        """Source text naming the local of destination register ``index``."""
        self.used.add(index)
        self.written.add(index)
        self.bounds[index] = min(bound, _M)
        name = f"r{index}"
        for key in list(self.verified):
            entry = self.verified[key]
            if key[0] == index:
                del self.verified[key]
            elif entry[1] == name:
                entry[1] = None
        return name

    def clobber_memory(self, except_key=None) -> None:
        """Drop forwarded store values (a store may alias any other slot)."""
        for key, entry in self.verified.items():
            if key != except_key:
                entry[1] = None


def _scan(cpu, entry_pc):
    """Collect the straight-line decoded run starting at ``entry_pc``.

    Returns ``None`` when no compilable run exists (unaligned/out-of-window
    entry, undecodable first word, or a run shorter than
    :data:`MIN_SUPERBLOCK`).  Decoded entries are filled into the CPU's
    decode cache via non-counting peeks, so scanning never perturbs
    memory-access statistics.
    """
    mem = cpu.memory
    mbase = mem.base
    msize = mem.size
    periph = cpu.peripheral_base
    msize4 = min(msize, periph - mbase) - 4
    decoded = cpu._decoded
    data = mem._data
    run = []
    pc = entry_pc
    while len(run) < MAX_SUPERBLOCK:
        offset = pc - mbase
        if offset < 0 or offset > msize4 or offset & 3:
            break
        index = offset >> 2
        entry = decoded[index]
        if entry is None:
            word = int.from_bytes(data[offset : offset + 4], "little")
            try:
                entry = decode_word(word, pc)
            except CpuFault:
                break
            decoded[index] = entry
        run.append((pc, index, entry))
        if entry[0] in _CONTROL:
            break
        pc += 4
    if len(run) < MIN_SUPERBLOCK:
        return None
    return run


def _loop_target(entry) -> "int | None":
    """Taken-branch target of a control-flow entry (None when not a branch)."""
    kind = entry[0]
    if kind in (_BEQ, _BNE):
        return entry[3]
    if kind in (_BLEZ, _BGTZ):
        return entry[2]
    if kind == _J:
        return entry[1]
    return None


def _generate(cpu, entry_pc, run) -> str:
    """Emit the specialized function source for the scanned ``run``.

    Cold paths (peripheral-window accesses, misaligned/out-of-window word
    accesses) return to the ordinary dispatch loop after executing at most
    one instruction, so the hot straight line never materializes counters
    mid-block and only the entry instruction ever needs the full
    peripheral-access protocol (any later instruction statically implies
    ``executed > 0``, which per the block contract yields the access).
    """
    mem = cpu.memory
    mbase = mem.base
    msize = mem.size
    periph = cpu.peripheral_base
    msize4 = min(msize, periph - mbase) - 4
    span_lo = (run[0][0] - mbase) >> 2
    span_hi = (run[-1][0] - mbase) >> 2
    length = len(run)
    terminal_kind = run[-1][2][0]
    fused = (
        terminal_kind in (_BEQ, _BNE, _BLEZ, _BGTZ, _J)
        and _loop_target(run[-1][2]) == entry_pc
    )
    out = _Emitter()
    body = 3 if fused else 2  # def(0) / try(1) / [while True(2)] / body
    if fused:
        iter_scale = dict.fromkeys(_Emitter.COUNTERS, 0)
        iter_scale["executed"] = length
        for _, _, fentry in run:
            fkind = fentry[0]
            if fkind in (_LW, _LB, _LBU):
                iter_scale["loads"] += 1
                iter_scale["mem_reads"] += 1
            elif fkind in (_SW, _SB):
                iter_scale["stores"] += 1
                iter_scale["mem_writes"] += 1
        out.iter_counts = iter_scale

    def flush_iterations(indent):
        """Flush exactly ``it`` completed fused iterations (terminal exits)."""
        for name, scale in iter_scale.items():
            if scale == 1:
                out.emit(indent, f"{name} += it")
            elif scale:
                out.emit(indent, f"{name} += it * {scale}")

    def address_of(base_reg, displacement):
        """Emit the effective-address computation; returns (expr, bound).

        Folds the common ``0(rs)`` form to the bare register local and drops
        the wrap-around mask when the displacement provably cannot overflow.
        """
        if base_reg == 0:
            return str(displacement & _M), displacement & _M
        source = out.read(base_reg)
        source_bound = out.bound(base_reg)
        if displacement == 0:
            return source, source_bound
        if displacement > 0 and source_bound + displacement <= _M:
            out.emit(body, f"address = {source} + {displacement}")
            return "address", source_bound + displacement
        out.emit(body, f"address = ({source} + {displacement}) & {_M}")
        return "address", _M

    def word_guards(addr, addr_bound):
        """Fast-window and raise guards for a word access at ``addr``."""
        if mbase == 0:
            window = "" if addr_bound <= msize4 else f"{addr} <= {msize4} and "
            return addr, f"{window}not {addr} & 3", f"{addr} + 4 > {msize}"
        out.emit(body, f"offset = {addr} - {mbase}")
        return (
            "offset",
            f"0 <= offset <= {msize4} and not offset & 3",
            f"offset < 0 or offset + 4 > {msize}",
        )

    def peripheral_yield(indent, pc):
        """Yield the block with the peripheral access unexecuted."""
        out.materialize(indent)
        out.emit(indent, f"pc = {pc}")
        out.emit(indent, "return True")

    def peripheral_entry(indent, next_pc, counter, lines):
        """Full peripheral protocol for the entry instruction.

        ``executed``/pc are architecturally exact here without any flush: no
        instruction has completed yet (in a fused loop, ``it`` completed
        iterations are flushed on the yield path) and the header set ``pc``
        to the entry.  After a successful bus call the block bails to the
        dispatch loop so the straight line stays free of counter state.
        """
        if fused:
            out.emit(indent, "if executed or it:")
            out.materialize(indent + 1)
            out.emit(indent + 1, "return True")
        else:
            out.emit(indent, "if executed:")
            out.emit(indent + 1, "return True")
        out.emit(indent, f"{counter} += 1")
        for line in lines:
            out.emit(indent, line)
        out.emit(indent, "executed += 1")
        out.emit(indent, f"pc = {next_pc}")
        out.emit(indent, "if cpu.halted:")
        out.emit(indent + 1, "return True")
        out.emit(indent, "return False  # cold path: back to dispatch")

    for pc, _, entry in run:
        kind, a, b, c = entry
        next_pc = pc + 4
        is_terminal = pc == run[-1][0] and kind in _CONTROL

        if kind == _NOP:
            out.complete()
        elif kind == _SLL:
            shifted = out.bound(b) << c
            if c == 0:
                out.emit(body, f"{out.write(a, out.bound(b))} = {out.read(b)}")
            elif shifted <= _M:
                out.emit(body, f"{out.write(a, shifted)} = {out.read(b)} << {c}")
            else:
                out.emit(body, f"{out.write(a)} = ({out.read(b)} << {c}) & {_M}")
            out.complete()
        elif kind == _SRL:
            out.emit(body, f"{out.write(a, out.bound(b) >> c)} = {out.read(b)} >> {c}")
            out.complete()
        elif kind == _SRA:
            out.emit(body, f"s = {out.read(b)}")
            out.emit(body, "if s > 0x7FFFFFFF:")
            out.emit(body + 1, "s -= 0x100000000")
            out.emit(body, f"{out.write(a)} = (s >> {c}) & {_M}")
            out.complete()
        elif kind == _ADDU:
            summed = out.bound(b) + out.bound(c)
            if summed <= _M:
                out.emit(body, f"{out.write(a, summed)} = {out.read(b)} + {out.read(c)}")
            else:
                out.emit(body, f"{out.write(a)} = ({out.read(b)} + {out.read(c)}) & {_M}")
            out.complete()
        elif kind == _SUBU:
            out.emit(body, f"{out.write(a)} = ({out.read(b)} - {out.read(c)}) & {_M}")
            out.complete()
        elif kind == _AND:
            bound = min(out.bound(b), out.bound(c))
            out.emit(body, f"{out.write(a, bound)} = {out.read(b)} & {out.read(c)}")
            out.complete()
        elif kind == _OR or kind == _XOR:
            bits = max(out.bound(b).bit_length(), out.bound(c).bit_length())
            operator = "|" if kind == _OR else "^"
            out.emit(
                body,
                f"{out.write(a, (1 << bits) - 1)} = "
                f"{out.read(b)} {operator} {out.read(c)}",
            )
            out.complete()
        elif kind == _NOR:
            out.emit(body, f"{out.write(a)} = ~({out.read(b)} | {out.read(c)}) & {_M}")
            out.complete()
        elif kind == _SLT:
            out.emit(body, f"s = {out.read(b)}")
            out.emit(body, f"t = {out.read(c)}")
            out.emit(body, "if s > 0x7FFFFFFF:")
            out.emit(body + 1, "s -= 0x100000000")
            out.emit(body, "if t > 0x7FFFFFFF:")
            out.emit(body + 1, "t -= 0x100000000")
            out.emit(body, f"{out.write(a, 1)} = 1 if s < t else 0")
            out.complete()
        elif kind == _SLTU:
            out.emit(
                body, f"{out.write(a, 1)} = 1 if {out.read(b)} < {out.read(c)} else 0"
            )
            out.complete()
        elif kind == _MULT:
            out.emit(body, f"s = {out.read(a)}")
            out.emit(body, f"t = {out.read(b)}")
            out.emit(body, "if s > 0x7FFFFFFF:")
            out.emit(body + 1, "s -= 0x100000000")
            out.emit(body, "if t > 0x7FFFFFFF:")
            out.emit(body + 1, "t -= 0x100000000")
            out.emit(body, "product = s * t")
            out.emit(body, f"cpu.lo = product & {_M}")
            out.emit(body, f"cpu.hi = (product >> 32) & {_M}")
            out.complete()
        elif kind == _MULTU:
            out.emit(body, f"product = {out.read(a)} * {out.read(b)}")
            out.emit(body, f"cpu.lo = product & {_M}")
            out.emit(body, f"cpu.hi = (product >> 32) & {_M}")
            out.complete()
        elif kind == _DIV:
            out.emit(body, f"s = {out.read(a)}")
            out.emit(body, f"t = {out.read(b)}")
            out.emit(body, "if s > 0x7FFFFFFF:")
            out.emit(body + 1, "s -= 0x100000000")
            out.emit(body, "if t > 0x7FFFFFFF:")
            out.emit(body + 1, "t -= 0x100000000")
            out.emit(body, "if t == 0:")
            out.emit(body + 1, "cpu.lo = 0")
            out.emit(body + 1, "cpu.hi = 0")
            out.emit(body, "else:")
            out.emit(body + 1, "quotient = abs(s) // abs(t)")
            out.emit(body + 1, "if (s < 0) != (t < 0):")
            out.emit(body + 2, "quotient = -quotient")
            out.emit(body + 1, f"cpu.lo = quotient & {_M}")
            out.emit(body + 1, f"cpu.hi = (s - quotient * t) & {_M}")
            out.complete()
        elif kind == _DIVU:
            out.emit(body, f"s = {out.read(a)}")
            out.emit(body, f"t = {out.read(b)}")
            out.emit(body, "if t == 0:")
            out.emit(body + 1, "cpu.lo = 0")
            out.emit(body + 1, "cpu.hi = 0")
            out.emit(body, "else:")
            out.emit(body + 1, f"cpu.lo = (s // t) & {_M}")
            out.emit(body + 1, f"cpu.hi = (s % t) & {_M}")
            out.complete()
        elif kind == _MFHI:
            out.emit(body, f"{out.write(a)} = cpu.hi")
            out.complete()
        elif kind == _MFLO:
            out.emit(body, f"{out.write(a)} = cpu.lo")
            out.complete()
        elif kind == _ADDIU:
            summed = out.bound(b) + c
            if b == 0:
                out.emit(body, f"{out.write(a, c & _M)} = {c & _M}")
            elif 0 <= c and summed <= _M:
                out.emit(body, f"{out.write(a, summed)} = {out.read(b)} + {c}")
            else:
                out.emit(body, f"{out.write(a)} = ({out.read(b)} + {c}) & {_M}")
            out.complete()
        elif kind == _SLTI:
            out.emit(body, f"s = {out.read(b)}")
            out.emit(body, "if s > 0x7FFFFFFF:")
            out.emit(body + 1, "s -= 0x100000000")
            out.emit(body, f"{out.write(a, 1)} = 1 if s < {c} else 0")
            out.complete()
        elif kind == _SLTIU:
            out.emit(body, f"{out.write(a, 1)} = 1 if {out.read(b)} < {c} else 0")
            out.complete()
        elif kind == _ANDI:
            if b == 0:
                out.emit(body, f"{out.write(a, 0)} = 0")
            else:
                bound = min(out.bound(b), c)
                out.emit(body, f"{out.write(a, bound)} = {out.read(b)} & {c}")
            out.complete()
        elif kind == _ORI or kind == _XORI:
            bits = max(out.bound(b).bit_length(), c.bit_length())
            operator = "|" if kind == _ORI else "^"
            out.emit(
                body, f"{out.write(a, (1 << bits) - 1)} = {out.read(b)} {operator} {c}"
            )
            out.complete()
        elif kind == _LUI:
            out.emit(body, f"{out.write(a, b)} = {b}")
            out.complete()
        elif kind == _LW and (b, c) in out.verified:
            # The fast-window guard for this (base, displacement) pair already
            # passed and the base register is unchanged since, so the address
            # class cannot differ; after a store to the same slot the loaded
            # value is simply the stored register (counters stay exact — they
            # are tracked statically regardless of how the value arrives).
            index_name, forwarded = out.verified[(b, c)]
            if forwarded is not None:
                out.emit(body, f"{out.write(a)} = {forwarded}")
            else:
                out.emit(body, f"{out.write(a)} = words[{index_name}]")
            survivor = out.verified.get((b, c))
            if survivor is not None:
                survivor[1] = f"r{a}"
            out.complete(loads=1, mem_reads=1)
        elif kind == _LW:
            addr, abound = address_of(b, c)
            off, fast_guard, slow_guard = word_guards(addr, abound)
            out.index_seq += 1
            index_name = f"index{out.index_seq}"
            out.emit(body, f"if {fast_guard}:")
            out.emit(body + 1, f"{index_name} = {off} >> 2")
            out.verified[(b, c)] = [index_name, None]
            out.emit(body + 1, f"{out.write(a)} = words[{index_name}]")
            survivor = out.verified.get((b, c))
            if survivor is not None:
                survivor[1] = f"r{a}"
            out.emit(body, f"elif {addr} >= {periph}:")
            if out.pending["executed"]:
                peripheral_yield(body + 1, pc)
            else:
                peripheral_entry(
                    body + 1,
                    next_pc,
                    "loads",
                    [
                        "if cpu.bus_read is None:",
                        "    raise CpuFault("
                        f"'load from unmapped peripheral address %#x' % {addr})",
                        f"{out.write(a)} = cpu.bus_read({addr}) & {_M}",
                    ],
                )
            out.emit(body, "else:")
            out.materialize(body + 1, loads=1)
            out.emit(body + 1, f"pc = {pc}")
            out.emit(body + 1, f"if {slow_guard}:")
            out.emit(body + 2, f"mem.read_word({addr})  # raises BusError")
            out.emit(body + 1, "mem_reads += 1")
            out.emit(
                body + 1,
                f"{out.write(a)} = int.from_bytes(data[{off} : {off} + 4], 'little')",
            )
            out.emit(body + 1, "executed += 1")
            out.emit(body + 1, f"pc = {next_pc}")
            out.emit(body + 1, "return False  # cold path: back to dispatch")
            out.complete(loads=1, mem_reads=1)
        elif kind == _LB or kind == _LBU:
            addr, abound = address_of(b, c)
            out.emit(body, f"if {addr} >= {periph}:")
            if out.pending["executed"]:
                peripheral_yield(body + 1, pc)
            else:
                lines = [
                    "if cpu.bus_read is None:",
                    "    raise CpuFault("
                    f"'load from unmapped peripheral address %#x' % {addr})",
                    f"value = (cpu.bus_read({addr} & 4294967292)"
                    f" >> (8 * ({addr} & 0x3))) & 0xFF",
                ]
                if kind == _LB:
                    lines.append("if value & 0x80:")
                    lines.append(f"    value = (value - 0x100) & {_M}")
                lines.append(f"{out.write(a)} = value")
                peripheral_entry(body + 1, next_pc, "loads", lines)
            out.emit(body, "else:")
            if mbase == 0:
                off = addr
                raise_guard = None if abound < msize else f"{addr} >= {msize}"
            else:
                out.emit(body + 1, f"offset = {addr} - {mbase}")
                off = "offset"
                raise_guard = f"offset < 0 or offset >= {msize}"
            if raise_guard:
                out.emit(body + 1, f"if {raise_guard}:")
                out.materialize(body + 2, loads=1)
                out.emit(body + 2, f"pc = {pc}")
                out.emit(body + 2, f"mem.read_byte({addr})  # raises BusError")
            if kind == _LB:
                out.emit(body + 1, f"value = data[{off}]")
                out.emit(body + 1, "if value & 0x80:")
                out.emit(body + 2, f"value = (value - 0x100) & {_M}")
                out.emit(body + 1, f"{out.write(a)} = value")
            else:
                out.emit(body + 1, f"{out.write(a, 0xFF)} = data[{off}]")
            out.complete(loads=1, mem_reads=1)
        elif kind == _SW and (b, c) in out.verified:
            value = out.read(a)
            out.clobber_memory(except_key=(b, c))
            known = out.verified[(b, c)]
            index_name = known[0]
            out.emit(body, f"words[{index_name}] = {value}")
            out.emit(body, f"if decoded[{index_name}] is not None:")
            out.emit(body + 1, f"decoded[{index_name}] = None")
            out.emit(body + 1, "invalidations += 1")
            out.emit(body, f"if cover[{index_name}] is not None:")
            out.emit(body + 1, f"cpu._drop_superblocks_at({index_name})")
            out.emit(body, f"if {span_lo} <= {index_name} <= {span_hi}:")
            out.materialize(body + 1, executed=1, stores=1, mem_writes=1)
            out.emit(body + 1, f"pc = {next_pc}")
            out.emit(body + 1, "return False  # stale self: back to dispatch")
            known[1] = value
            out.complete(stores=1, mem_writes=1)
        elif kind == _SW:
            value = out.read(a)
            out.clobber_memory()
            addr, abound = address_of(b, c)
            off, fast_guard, slow_guard = word_guards(addr, abound)
            out.index_seq += 1
            index_name = f"index{out.index_seq}"
            out.emit(body, f"if {fast_guard}:")
            out.emit(body + 1, f"{index_name} = {off} >> 2")
            out.emit(body + 1, f"words[{index_name}] = {value}")
            out.emit(body + 1, f"if decoded[{index_name}] is not None:")
            out.emit(body + 2, f"decoded[{index_name}] = None")
            out.emit(body + 2, "invalidations += 1")
            out.emit(body + 1, f"if cover[{index_name}] is not None:")
            out.emit(body + 2, f"cpu._drop_superblocks_at({index_name})")
            out.emit(body + 1, f"if {span_lo} <= {index_name} <= {span_hi}:")
            out.materialize(body + 2, executed=1, stores=1, mem_writes=1)
            out.emit(body + 2, f"pc = {next_pc}")
            out.emit(body + 2, "return False  # stale self: back to dispatch")
            out.verified[(b, c)] = [index_name, value]
            out.emit(body, f"elif {addr} >= {periph}:")
            if out.pending["executed"]:
                peripheral_yield(body + 1, pc)
            else:
                peripheral_entry(
                    body + 1,
                    next_pc,
                    "stores",
                    [
                        "if cpu.bus_write is None:",
                        "    raise CpuFault("
                        f"'store to unmapped peripheral address %#x' % {addr})",
                        f"cpu.bus_write({addr}, {value})",
                    ],
                )
            out.emit(body, "else:")
            out.materialize(body + 1, stores=1)
            out.emit(body + 1, f"pc = {pc}")
            out.emit(body + 1, f"if {slow_guard}:")
            out.emit(body + 2, f"mem.write_word({addr}, {value})  # raises BusError")
            out.emit(
                body + 1,
                f"data[{off} : {off} + 4] = ({value}).to_bytes(4, 'little')",
            )
            out.emit(body + 1, "mem_writes += 1")
            out.emit(body + 1, f"index = {off} >> 2")
            out.emit(body + 1, "if decoded[index] is not None:")
            out.emit(body + 2, "decoded[index] = None")
            out.emit(body + 2, "invalidations += 1")
            out.emit(body + 1, "if cover[index] is not None:")
            out.emit(body + 2, "cpu._drop_superblocks_at(index)")
            out.emit(body + 1, f"index2 = ({off} + 3) >> 2")
            out.emit(body + 1, "if decoded[index2] is not None:")
            out.emit(body + 2, "decoded[index2] = None")
            out.emit(body + 2, "invalidations += 1")
            out.emit(body + 1, "if cover[index2] is not None:")
            out.emit(body + 2, "cpu._drop_superblocks_at(index2)")
            out.emit(body + 1, "executed += 1")
            out.emit(body + 1, f"pc = {next_pc}")
            out.emit(body + 1, "return False  # cold path: back to dispatch")
            out.complete(stores=1, mem_writes=1)
        elif kind == _SB:
            value = out.read(a)
            vmask = "" if out.bound(a) <= 0xFF else " & 0xFF"
            out.clobber_memory()
            addr, abound = address_of(b, c)
            out.emit(body, f"if {addr} >= {periph}:")
            if out.pending["executed"]:
                peripheral_yield(body + 1, pc)
            else:
                peripheral_entry(
                    body + 1,
                    next_pc,
                    "stores",
                    [
                        "if cpu.bus_write is None:",
                        "    raise CpuFault("
                        f"'store to unmapped peripheral address %#x' % {addr})",
                        f"cpu.bus_write({addr}, {value}{vmask})",
                    ],
                )
            out.emit(body, "else:")
            if mbase == 0:
                off = addr
                raise_guard = None if abound < msize else f"{addr} >= {msize}"
            else:
                out.emit(body + 1, f"offset = {addr} - {mbase}")
                off = "offset"
                raise_guard = f"offset < 0 or offset >= {msize}"
            if raise_guard:
                out.emit(body + 1, f"if {raise_guard}:")
                out.materialize(body + 2, stores=1)
                out.emit(body + 2, f"pc = {pc}")
                out.emit(body + 2, f"mem.write_byte({addr}, {value})  # raises BusError")
            out.emit(body + 1, f"data[{off}] = {value}{vmask}")
            out.emit(body + 1, f"index = {off} >> 2")
            out.emit(body + 1, "if decoded[index] is not None:")
            out.emit(body + 2, "decoded[index] = None")
            out.emit(body + 2, "invalidations += 1")
            out.emit(body + 1, "if cover[index] is not None:")
            out.emit(body + 2, "cpu._drop_superblocks_at(index)")
            out.emit(body + 1, f"if {span_lo} <= index <= {span_hi}:")
            out.materialize(body + 2, executed=1, stores=1, mem_writes=1)
            out.emit(body + 2, f"pc = {next_pc}")
            out.emit(body + 2, "return False  # stale self: back to dispatch")
            out.complete(stores=1, mem_writes=1)
        elif kind in (_BEQ, _BNE):
            assert is_terminal
            operator = "==" if kind == _BEQ else "!="
            if fused:
                out.emit(body, "it += 1")
            else:
                out.materialize(body, executed=1)
            out.emit(body, f"if {out.read(a)} {operator} {out.read(b)}:")
            if fused:
                out.emit(body + 1, "if it < limit:")
                out.emit(body + 2, "continue")
                flush_iterations(body + 1)
                out.emit(body + 1, f"pc = {entry_pc}")
            else:
                out.emit(body + 1, f"pc = {c}")
            out.emit(body + 1, "return False")
            if fused:
                flush_iterations(body)
            out.emit(body, f"pc = {next_pc}")
            out.emit(body, "return False")
        elif kind in (_BLEZ, _BGTZ):
            assert is_terminal
            if fused:
                out.emit(body, "it += 1")
            else:
                out.materialize(body, executed=1)
            out.emit(body, f"s = {out.read(a)}")
            if kind == _BLEZ:
                out.emit(body, "if s == 0 or s > 0x7FFFFFFF:")
            else:
                out.emit(body, "if 0 < s <= 0x7FFFFFFF:")
            if fused:
                out.emit(body + 1, "if it < limit:")
                out.emit(body + 2, "continue")
                flush_iterations(body + 1)
                out.emit(body + 1, f"pc = {entry_pc}")
            else:
                out.emit(body + 1, f"pc = {b}")
            out.emit(body + 1, "return False")
            if fused:
                flush_iterations(body)
            out.emit(body, f"pc = {next_pc}")
            out.emit(body, "return False")
        elif kind == _J:
            assert is_terminal
            if fused:
                out.emit(body, "it += 1")
                out.emit(body, "if it < limit:")
                out.emit(body + 1, "continue")
                flush_iterations(body)
                out.emit(body, f"pc = {entry_pc}")
            else:
                out.materialize(body, executed=1)
                out.emit(body, f"pc = {a}")
            out.emit(body, "return False")
        elif kind == _JAL:
            assert is_terminal
            out.materialize(body, executed=1)
            out.emit(body, f"{out.write(31, b)} = {b}")
            out.emit(body, f"pc = {a}")
            out.emit(body, "return False")
        elif kind == _JR:
            assert is_terminal
            out.materialize(body, executed=1)
            out.emit(body, f"pc = {out.read(a)}")
            out.emit(body, "return False")
        elif kind == _JALR:
            assert is_terminal
            out.materialize(body, executed=1)
            out.emit(body, f"pc = {out.read(b)}")
            out.emit(body, f"{out.write(a, c)} = {c}")
            out.emit(body, "return False")
        else:  # pragma: no cover - decode_word never emits unknown kinds
            raise CpuFault(f"superblock compiler cannot handle kind {kind}")

    if terminal_kind not in _CONTROL:
        # Straight-line run (size cap or undecodable successor): fall back to
        # the dispatch loop at the next pc.
        out.materialize(body)
        out.emit(body, f"pc = {run[-1][0] + 4}")
        out.emit(body, "return False")

    name = f"_sb_{entry_pc:08x}"
    header: list[str] = []
    header.append(
        f"def {name}(cpu, reg, decoded, data, words, cover, mem, budget, "
        "executed, loads, stores, mem_reads, mem_writes, invalidations, out):"
    )
    for index in sorted(out.used):
        header.append(f"    r{index} = reg[{index}]")
    header.append(f"    pc = {entry_pc}")
    if fused:
        header.append("    it = 0")
        header.append(f"    limit = (budget - executed) // {length}")
    header.append("    try:")
    if fused:
        header.append("        while True:")
    footer: list[str] = []
    footer.append("    finally:")
    for index in sorted(out.written):
        footer.append(f"        reg[{index}] = r{index}")
    footer.append("        out[0] = pc")
    footer.append("        out[1] = executed")
    footer.append("        out[2] = loads")
    footer.append("        out[3] = stores")
    footer.append("        out[4] = mem_reads")
    footer.append("        out[5] = mem_writes")
    footer.append("        out[6] = invalidations")
    return "\n".join(header + out.lines + footer) + "\n"


def install_superblock(cpu, entry_pc):
    """Compile and register the superblock entered at ``entry_pc``.

    Returns the cache entry stored in ``cpu._superblocks[entry_pc]``: a
    ``(function, length)`` tuple on success, or ``False`` (a negative-cache
    sentinel, invalidated like a real superblock when its first word is
    rewritten) when no compilable run starts there.
    """
    run = _scan(cpu, entry_pc)
    mbase = cpu.memory.base
    if run is None:
        cpu._superblocks[entry_pc] = False
        offset = entry_pc - mbase
        if 0 <= offset < cpu.memory.size and not offset & 3:
            _register_span(cpu, entry_pc, offset >> 2, offset >> 2)
        return False
    source = _generate(cpu, entry_pc, run)
    name = f"_sb_{entry_pc:08x}"
    namespace = {"CpuFault": CpuFault}
    exec(compile(source, f"<superblock:{entry_pc:#010x}>", "exec"), namespace)
    function = namespace[name]
    function.__source__ = source  # introspection/debugging aid
    entry = (function, len(run))
    cpu._superblocks[entry_pc] = entry
    span_lo = (run[0][0] - mbase) >> 2
    span_hi = (run[-1][0] - mbase) >> 2
    _register_span(cpu, entry_pc, span_lo, span_hi)
    cpu.superblock_compile_count += 1
    return entry


def _register_span(cpu, entry_pc, span_lo, span_hi) -> None:
    cpu._sb_spans[entry_pc] = (span_lo, span_hi)
    cover = cpu._sb_cover
    for index in range(span_lo, span_hi + 1):
        cell = cover[index]
        if cell is None:
            cover[index] = {entry_pc}
        else:
            cell.add(entry_pc)
