"""Two-pass assembler for the MIPS subset of :mod:`repro.vp.mips.isa`.

The assembler turns firmware source (labels, instructions, ``.word`` data,
``#`` comments) into a list of 32-bit machine words that the instruction-set
simulator fetches from memory.  A handful of pseudo-instructions (``nop``,
``li``, ``la``, ``move``, ``b`` and the signed branch comparisons) are
expanded into the hardware subset, as a real assembler would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ...errors import AssemblerError
from .isa import (
    INSTRUCTIONS,
    encode_i,
    encode_j,
    encode_r,
    register_number,
)

_LABEL_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass
class AssembledProgram:
    """The output of the assembler."""

    words: list[int]
    symbols: dict[str, int]
    base_address: int = 0

    def size_bytes(self) -> int:
        """Size of the program image in bytes."""
        return 4 * len(self.words)

    def to_bytes(self) -> bytes:
        """Little-endian byte image of the program."""
        image = bytearray()
        for word in self.words:
            image.extend(int(word & 0xFFFFFFFF).to_bytes(4, "little"))
        return bytes(image)


@dataclass
class _Line:
    """One statement after the first pass (mnemonic + operands + address)."""

    mnemonic: str
    operands: list[str]
    address: int
    source_line: int


class Assembler:
    """Two-pass assembler: pass 1 assigns addresses, pass 2 encodes."""

    def __init__(self, base_address: int = 0) -> None:
        self.base_address = base_address

    # -- public API -------------------------------------------------------------------
    def assemble(self, source: str) -> AssembledProgram:
        """Assemble ``source`` and return the machine-code image."""
        statements, symbols = self._first_pass(source)
        words: list[int] = []
        for statement in statements:
            words.extend(self._encode(statement, symbols))
        return AssembledProgram(words, symbols, self.base_address)

    # -- pass 1 -------------------------------------------------------------------------
    def _first_pass(self, source: str) -> tuple[list[_Line], dict[str, int]]:
        statements: list[_Line] = []
        symbols: dict[str, int] = {}
        address = self.base_address
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            while ":" in line:
                label, _, remainder = line.partition(":")
                label = label.strip()
                if not _LABEL_PATTERN.match(label):
                    raise AssemblerError(
                        f"invalid label {label!r} at line {line_number}"
                    )
                if label in symbols:
                    raise AssemblerError(
                        f"duplicate label {label!r} at line {line_number}"
                    )
                symbols[label] = address
                line = remainder.strip()
            if not line:
                continue
            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = [operand.strip() for operand in rest.split(",")] if rest.strip() else []
            statement = _Line(mnemonic, operands, address, line_number)
            statements.append(statement)
            address += 4 * self._word_count(statement)
        return statements, symbols

    def _word_count(self, statement: _Line) -> int:
        mnemonic = statement.mnemonic
        if mnemonic in (".word",):
            return max(1, len(statement.operands))
        if mnemonic == ".space":
            return (self._parse_number(statement.operands[0]) + 3) // 4
        if mnemonic in (".text", ".data", ".globl", ".global"):
            return 0
        if mnemonic in ("li", "la"):
            return 2
        if mnemonic in ("bgt", "blt", "bge", "ble"):
            return 2
        return 1

    # -- pass 2 ---------------------------------------------------------------------------
    def _encode(self, statement: _Line, symbols: dict[str, int]) -> list[int]:
        mnemonic = statement.mnemonic
        operands = statement.operands
        try:
            if mnemonic in (".text", ".data", ".globl", ".global"):
                return []
            if mnemonic == ".word":
                return [self._value(operand, symbols) & 0xFFFFFFFF for operand in operands] or [0]
            if mnemonic == ".space":
                return [0] * self._word_count(statement)
            if mnemonic == "nop":
                return [0]
            if mnemonic == "move":
                rd, rs = operands
                return [encode_r(0x21, register_number(rs), 0, register_number(rd))]
            if mnemonic in ("li", "la"):
                return self._encode_load_immediate(operands, symbols)
            if mnemonic == "b":
                return [self._encode_branch("beq", ["$zero", "$zero", operands[0]], statement, symbols)]
            if mnemonic in ("bgt", "blt", "bge", "ble"):
                return self._encode_compare_branch(mnemonic, operands, statement, symbols)
            if mnemonic in ("beq", "bne"):
                return [self._encode_branch(mnemonic, operands, statement, symbols)]
            if mnemonic in ("blez", "bgtz"):
                spec = INSTRUCTIONS[mnemonic]
                rs = register_number(operands[0])
                offset = self._branch_offset(operands[1], statement, symbols)
                return [encode_i(spec.opcode, rs, 0, offset)]
            if mnemonic in ("j", "jal"):
                spec = INSTRUCTIONS[mnemonic]
                target = self._value(operands[0], symbols)
                return [encode_j(spec.opcode, target >> 2)]
            if mnemonic in ("jr", "jalr"):
                spec = INSTRUCTIONS[mnemonic]
                rs = register_number(operands[0])
                rd = 31 if mnemonic == "jalr" and len(operands) == 1 else 0
                return [encode_r(spec.funct, rs, 0, rd)]
            if mnemonic in ("sll", "srl", "sra"):
                spec = INSTRUCTIONS[mnemonic]
                rd, rt, shamt = operands
                return [
                    encode_r(
                        spec.funct,
                        0,
                        register_number(rt),
                        register_number(rd),
                        self._parse_number(shamt),
                    )
                ]
            if mnemonic in ("mfhi", "mflo"):
                spec = INSTRUCTIONS[mnemonic]
                return [encode_r(spec.funct, 0, 0, register_number(operands[0]))]
            if mnemonic in ("mult", "multu", "div", "divu"):
                spec = INSTRUCTIONS[mnemonic]
                rs, rt = operands
                return [encode_r(spec.funct, register_number(rs), register_number(rt), 0)]
            if mnemonic in INSTRUCTIONS and INSTRUCTIONS[mnemonic].format == "R":
                spec = INSTRUCTIONS[mnemonic]
                rd, rs, rt = operands
                return [
                    encode_r(
                        spec.funct,
                        register_number(rs),
                        register_number(rt),
                        register_number(rd),
                    )
                ]
            if mnemonic in ("lw", "sw", "lb", "lbu", "sb"):
                return [self._encode_memory(mnemonic, operands, symbols)]
            if mnemonic == "lui":
                spec = INSTRUCTIONS[mnemonic]
                rt, immediate = operands
                return [encode_i(spec.opcode, 0, register_number(rt), self._value(immediate, symbols))]
            if mnemonic in INSTRUCTIONS and INSTRUCTIONS[mnemonic].format == "I":
                spec = INSTRUCTIONS[mnemonic]
                rt, rs, immediate = operands
                return [
                    encode_i(
                        spec.opcode,
                        register_number(rs),
                        register_number(rt),
                        self._value(immediate, symbols),
                    )
                ]
        except AssemblerError:
            raise
        except Exception as exc:
            raise AssemblerError(
                f"cannot assemble {mnemonic!r} at line {statement.source_line}: {exc}"
            ) from exc
        raise AssemblerError(
            f"unknown mnemonic {mnemonic!r} at line {statement.source_line}"
        )

    # -- helpers ------------------------------------------------------------------------------
    def _encode_load_immediate(self, operands: list[str], symbols: dict[str, int]) -> list[int]:
        register, value_text = operands
        value = self._value(value_text, symbols) & 0xFFFFFFFF
        rt = register_number(register)
        upper = (value >> 16) & 0xFFFF
        lower = value & 0xFFFF
        return [
            encode_i(INSTRUCTIONS["lui"].opcode, 0, rt, upper),
            encode_i(INSTRUCTIONS["ori"].opcode, rt, rt, lower),
        ]

    def _encode_compare_branch(
        self, mnemonic: str, operands: list[str], statement: _Line, symbols: dict[str, int]
    ) -> list[int]:
        rs, rt, label = operands
        at = "$at"
        if mnemonic == "bgt":  # rs > rt  ->  slt $at, rt, rs ; bne $at, $zero, label
            first = encode_r(0x2A, register_number(rt), register_number(rs), register_number(at))
            branch = "bne"
        elif mnemonic == "blt":  # rs < rt
            first = encode_r(0x2A, register_number(rs), register_number(rt), register_number(at))
            branch = "bne"
        elif mnemonic == "bge":  # rs >= rt  ->  slt $at, rs, rt ; beq $at, $zero, label
            first = encode_r(0x2A, register_number(rs), register_number(rt), register_number(at))
            branch = "beq"
        else:  # ble: rs <= rt  ->  slt $at, rt, rs ; beq
            first = encode_r(0x2A, register_number(rt), register_number(rs), register_number(at))
            branch = "beq"
        shifted = _Line(branch, [], statement.address + 4, statement.source_line)
        second = self._encode_branch(branch, [at, "$zero", label], shifted, symbols)
        return [first, second]

    def _encode_branch(
        self, mnemonic: str, operands: list[str], statement: _Line, symbols: dict[str, int]
    ) -> int:
        spec = INSTRUCTIONS[mnemonic]
        rs, rt, label = operands
        offset = self._branch_offset(label, statement, symbols)
        return encode_i(spec.opcode, register_number(rs), register_number(rt), offset)

    def _branch_offset(self, label: str, statement: _Line, symbols: dict[str, int]) -> int:
        target = self._value(label, symbols)
        offset = (target - (statement.address + 4)) // 4
        if not -32768 <= offset <= 32767:
            raise AssemblerError(
                f"branch target {label!r} is out of range at line {statement.source_line}"
            )
        return offset & 0xFFFF

    def _encode_memory(self, mnemonic: str, operands: list[str], symbols: dict[str, int]) -> int:
        spec = INSTRUCTIONS[mnemonic]
        rt, address = operands
        match = re.match(r"^(.*)\((\$?\w+)\)$", address.strip())
        if match:
            offset_text, base = match.groups()
            offset = self._value(offset_text or "0", symbols)
            rs = register_number(base)
        else:
            offset = self._value(address, symbols)
            rs = 0
        return encode_i(spec.opcode, rs, register_number(rt), offset)

    def _value(self, text: str, symbols: dict[str, int]) -> int:
        text = text.strip()
        if text in symbols:
            return symbols[text]
        return self._parse_number(text)

    @staticmethod
    def _parse_number(text: str) -> int:
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError as exc:
            raise AssemblerError(f"cannot parse the value {text!r}") from exc


def assemble(source: str, base_address: int = 0) -> AssembledProgram:
    """Assemble ``source`` with a default-configured :class:`Assembler`."""
    return Assembler(base_address).assemble(source)
