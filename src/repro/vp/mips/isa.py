"""MIPS-I subset: register names, instruction formats and encodings.

The virtual platform's CPU executes "assembly instructions contained in the
memory" (paper Section V.B).  The subset implemented here covers the
arithmetic, logical, memory-access, branch and jump instructions a polling
firmware needs; encodings follow the classic MIPS32 R-/I-/J-type formats so
that programs are stored in memory as real 32-bit machine words.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Architectural register aliases, index 0..31.
REGISTER_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Reverse map from alias (and plain number) to register index.
REGISTER_INDEX = {name: index for index, name in enumerate(REGISTER_NAMES)}
REGISTER_INDEX.update({str(index): index for index in range(32)})

WORD_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class InstructionSpec:
    """Description of one mnemonic: its format and fixed encoding fields."""

    mnemonic: str
    format: str  # "R", "I", "J" or a pseudo-format handled by the assembler
    opcode: int
    funct: int = 0


#: R-type instructions (opcode 0, selected by the funct field).
R_TYPE = {
    "sll": InstructionSpec("sll", "R", 0x00, 0x00),
    "srl": InstructionSpec("srl", "R", 0x00, 0x02),
    "sra": InstructionSpec("sra", "R", 0x00, 0x03),
    "jr": InstructionSpec("jr", "R", 0x00, 0x08),
    "jalr": InstructionSpec("jalr", "R", 0x00, 0x09),
    "addu": InstructionSpec("addu", "R", 0x00, 0x21),
    "add": InstructionSpec("add", "R", 0x00, 0x20),
    "subu": InstructionSpec("subu", "R", 0x00, 0x23),
    "sub": InstructionSpec("sub", "R", 0x00, 0x22),
    "and": InstructionSpec("and", "R", 0x00, 0x24),
    "or": InstructionSpec("or", "R", 0x00, 0x25),
    "xor": InstructionSpec("xor", "R", 0x00, 0x26),
    "nor": InstructionSpec("nor", "R", 0x00, 0x27),
    "slt": InstructionSpec("slt", "R", 0x00, 0x2A),
    "sltu": InstructionSpec("sltu", "R", 0x00, 0x2B),
    "mult": InstructionSpec("mult", "R", 0x00, 0x18),
    "multu": InstructionSpec("multu", "R", 0x00, 0x19),
    "div": InstructionSpec("div", "R", 0x00, 0x1A),
    "divu": InstructionSpec("divu", "R", 0x00, 0x1B),
    "mfhi": InstructionSpec("mfhi", "R", 0x00, 0x10),
    "mflo": InstructionSpec("mflo", "R", 0x00, 0x12),
}

#: I-type instructions (immediate, load/store, branch).
I_TYPE = {
    "addi": InstructionSpec("addi", "I", 0x08),
    "addiu": InstructionSpec("addiu", "I", 0x09),
    "slti": InstructionSpec("slti", "I", 0x0A),
    "sltiu": InstructionSpec("sltiu", "I", 0x0B),
    "andi": InstructionSpec("andi", "I", 0x0C),
    "ori": InstructionSpec("ori", "I", 0x0D),
    "xori": InstructionSpec("xori", "I", 0x0E),
    "lui": InstructionSpec("lui", "I", 0x0F),
    "lw": InstructionSpec("lw", "I", 0x23),
    "lb": InstructionSpec("lb", "I", 0x20),
    "lbu": InstructionSpec("lbu", "I", 0x24),
    "sw": InstructionSpec("sw", "I", 0x2B),
    "sb": InstructionSpec("sb", "I", 0x28),
    "beq": InstructionSpec("beq", "I", 0x04),
    "bne": InstructionSpec("bne", "I", 0x05),
    "blez": InstructionSpec("blez", "I", 0x06),
    "bgtz": InstructionSpec("bgtz", "I", 0x07),
}

#: J-type instructions.
J_TYPE = {
    "j": InstructionSpec("j", "J", 0x02),
    "jal": InstructionSpec("jal", "J", 0x03),
}

#: Every hardware mnemonic known to the assembler and the ISS.
INSTRUCTIONS = {**R_TYPE, **I_TYPE, **J_TYPE}

#: Assembler pseudo-instructions expanded into the hardware subset.
PSEUDO_INSTRUCTIONS = ("nop", "move", "li", "la", "b", "bgt", "blt", "bge", "ble")


def encode_r(funct: int, rs: int, rt: int, rd: int, shamt: int = 0) -> int:
    """Encode an R-type instruction word."""
    return ((rs & 0x1F) << 21) | ((rt & 0x1F) << 16) | ((rd & 0x1F) << 11) | (
        (shamt & 0x1F) << 6
    ) | (funct & 0x3F)


def encode_i(opcode: int, rs: int, rt: int, immediate: int) -> int:
    """Encode an I-type instruction word (immediate truncated to 16 bits)."""
    return ((opcode & 0x3F) << 26) | ((rs & 0x1F) << 21) | ((rt & 0x1F) << 16) | (
        immediate & 0xFFFF
    )


def encode_j(opcode: int, target: int) -> int:
    """Encode a J-type instruction word (target is a word address)."""
    return ((opcode & 0x3F) << 26) | (target & 0x03FFFFFF)


def sign_extend_16(value: int) -> int:
    """Sign-extend a 16-bit immediate to a Python int."""
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def to_signed_32(value: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    value &= WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def register_number(name: str) -> int:
    """Resolve ``$t0`` / ``$8`` / ``t0`` to a register index."""
    text = name.strip().lstrip("$").lower()
    if text not in REGISTER_INDEX:
        raise KeyError(f"unknown register {name!r}")
    return REGISTER_INDEX[text]
