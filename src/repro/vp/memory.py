"""Byte-addressable RAM for the virtual platform (code + data memory)."""

from __future__ import annotations

from typing import Callable

from ..errors import BusError


class Memory:
    """A little-endian RAM of fixed size.

    The CPU fetches instructions and performs data accesses here; the
    ``load_image`` helper installs an assembled firmware image at its base
    address.

    Writes can be observed through :meth:`add_write_watcher`; the CPU uses
    this to invalidate its predecoded-instruction cache when anything else
    (firmware reloads, tests poking at code, fault injectors, ``clear``)
    touches RAM.  Watchers are always notified with the *word-aligned* span
    covering the write — sub-word writes report the whole containing word —
    so consumers that track word-granular state (the decode cache) never
    have to re-derive the alignment themselves.  The CPU's own store fast
    path bypasses these watchers and maintains its cache invalidation
    directly — watchers see every *external* write.

    :meth:`poke` and :meth:`peek` are the host-side mutation/inspection API:
    they skip the access statistics (so instrumentation does not perturb
    platform metrics), and ``poke`` notifies watchers unless the caller
    explicitly opts out with ``notify=False`` — bypassing watchers on a write
    into code leaves stale decoded instructions behind, which is only ever
    correct for observers that want to model exactly that staleness.
    """

    def __init__(self, size: int = 64 * 1024, base: int = 0) -> None:
        if size <= 0 or size % 4 != 0:
            raise ValueError("memory size must be a positive multiple of 4")
        if base % 4 != 0:
            raise ValueError("memory base address must be word-aligned")
        self.base = base
        self.size = size
        self._data = bytearray(size)
        self.read_count = 0
        self.write_count = 0
        self._write_watchers: list[Callable[[int, int], None]] = []

    # -- write observation -------------------------------------------------------------
    def add_write_watcher(self, watcher: Callable[[int, int], None]) -> None:
        """Call ``watcher(address, width)`` after every write through this API.

        ``(address, width)`` is the word-aligned span covering the written
        bytes: ``address`` is rounded down to a word boundary and ``width``
        rounded up, clamped to the RAM extent.
        """
        self._write_watchers.append(watcher)

    def _notify(self, address: int, width: int) -> None:
        """Notify watchers with the word-aligned covering span of a write."""
        start = address & ~0x3
        span = ((address + width + 3) & ~0x3) - start
        if start < self.base:
            span -= self.base - start
            start = self.base
        end = self.base + self.size
        if start + span > end:
            span = end - start
        for watcher in self._write_watchers:
            watcher(start, span)

    # -- address checking --------------------------------------------------------------
    def _offset(self, address: int, width: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + width > self.size:
            raise BusError(
                f"memory access at {address:#010x} (width {width}) is outside "
                f"the {self.size}-byte RAM at {self.base:#010x}"
            )
        return offset

    # -- word access ----------------------------------------------------------------------
    def read_word(self, address: int) -> int:
        """Read a 32-bit little-endian word."""
        offset = self._offset(address, 4)
        self.read_count += 1
        return int.from_bytes(self._data[offset : offset + 4], "little")

    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        offset = self._offset(address, 4)
        self.write_count += 1
        self._data[offset : offset + 4] = int(value & 0xFFFFFFFF).to_bytes(4, "little")
        if self._write_watchers:
            self._notify(address, 4)

    # -- byte access -----------------------------------------------------------------------
    def read_byte(self, address: int) -> int:
        """Read one byte."""
        offset = self._offset(address, 1)
        self.read_count += 1
        return self._data[offset]

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        offset = self._offset(address, 1)
        self.write_count += 1
        self._data[offset] = value & 0xFF
        if self._write_watchers:
            self._notify(address, 1)

    # -- host-side mutation and inspection ----------------------------------------------
    def peek(self, address: int, width: int = 1) -> bytes:
        """Read ``width`` raw bytes without touching the access statistics."""
        offset = self._offset(address, width)
        return bytes(self._data[offset : offset + width])

    def poke(
        self,
        address: int,
        data: "bytes | bytearray | int",
        notify: bool = True,
    ) -> None:
        """Write raw bytes from the host side (fault injectors, debuggers).

        ``data`` may be a single byte value or a bytes-like object.  The
        access statistics are left untouched, so instrumentation does not
        perturb the metrics of the run it observes.  Watchers are notified
        (word-aligned, like every write) unless ``notify=False`` is passed
        explicitly — only do that when stale downstream caches (the CPU's
        decoded instructions) are the *intended* semantics.
        """
        if isinstance(data, int):
            if not 0 <= data <= 0xFF:
                raise ValueError(
                    f"poke with an int writes one byte; {data:#x} does not fit "
                    f"(pass value.to_bytes(...) for wider writes)"
                )
            data = bytes((data,))
        if not data:
            return
        offset = self._offset(address, len(data))
        self._data[offset : offset + len(data)] = data
        if notify and self._write_watchers:
            self._notify(address, len(data))

    def flip_bit(self, address: int, bit: int, notify: bool = True) -> int:
        """Flip one bit of the byte at ``address``; returns the new byte value.

        The single-event-upset primitive of the fault-injection subsystem.
        """
        if not 0 <= bit <= 7:
            raise ValueError("bit index must be in 0..7 (per-byte flip)")
        offset = self._offset(address, 1)
        value = self._data[offset] ^ (1 << bit)
        self._data[offset] = value
        if notify and self._write_watchers:
            self._notify(address, 1)
        return value

    # -- bulk helpers ------------------------------------------------------------------------
    def load_image(self, image: bytes, address: int | None = None) -> None:
        """Copy a binary image into memory (default: at the RAM base)."""
        address = self.base if address is None else address
        offset = self._offset(address, len(image))
        self._data[offset : offset + len(image)] = image
        if self._write_watchers and image:
            self._notify(address, len(image))

    def clear(self) -> None:
        """Zero the whole memory."""
        self._data = bytearray(self.size)
        self.read_count = 0
        self.write_count = 0
        if self._write_watchers:
            self._notify(self.base, self.size)
