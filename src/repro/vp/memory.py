"""Byte-addressable RAM for the virtual platform (code + data memory)."""

from __future__ import annotations

from typing import Callable

from ..errors import BusError


class Memory:
    """A little-endian RAM of fixed size.

    The CPU fetches instructions and performs data accesses here; the
    ``load_image`` helper installs an assembled firmware image at its base
    address.

    Writes can be observed through :meth:`add_write_watcher`; the CPU uses
    this to invalidate its predecoded-instruction cache when anything else
    (firmware reloads, tests poking at code, ``clear``) touches RAM.  The
    CPU's own store fast path bypasses these watchers and maintains its
    cache invalidation directly — watchers see every *external* write.
    """

    def __init__(self, size: int = 64 * 1024, base: int = 0) -> None:
        if size <= 0 or size % 4 != 0:
            raise ValueError("memory size must be a positive multiple of 4")
        self.base = base
        self.size = size
        self._data = bytearray(size)
        self.read_count = 0
        self.write_count = 0
        self._write_watchers: list[Callable[[int, int], None]] = []

    # -- write observation -------------------------------------------------------------
    def add_write_watcher(self, watcher: Callable[[int, int], None]) -> None:
        """Call ``watcher(address, width)`` after every write through this API."""
        self._write_watchers.append(watcher)

    # -- address checking --------------------------------------------------------------
    def _offset(self, address: int, width: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + width > self.size:
            raise BusError(
                f"memory access at {address:#010x} (width {width}) is outside "
                f"the {self.size}-byte RAM at {self.base:#010x}"
            )
        return offset

    # -- word access ----------------------------------------------------------------------
    def read_word(self, address: int) -> int:
        """Read a 32-bit little-endian word."""
        offset = self._offset(address, 4)
        self.read_count += 1
        return int.from_bytes(self._data[offset : offset + 4], "little")

    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        offset = self._offset(address, 4)
        self.write_count += 1
        self._data[offset : offset + 4] = int(value & 0xFFFFFFFF).to_bytes(4, "little")
        if self._write_watchers:
            for watcher in self._write_watchers:
                watcher(address, 4)

    # -- byte access -----------------------------------------------------------------------
    def read_byte(self, address: int) -> int:
        """Read one byte."""
        offset = self._offset(address, 1)
        self.read_count += 1
        return self._data[offset]

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        offset = self._offset(address, 1)
        self.write_count += 1
        self._data[offset] = value & 0xFF
        if self._write_watchers:
            for watcher in self._write_watchers:
                watcher(address, 1)

    # -- bulk helpers ------------------------------------------------------------------------
    def load_image(self, image: bytes, address: int | None = None) -> None:
        """Copy a binary image into memory (default: at the RAM base)."""
        address = self.base if address is None else address
        offset = self._offset(address, len(image))
        self._data[offset : offset + len(image)] = image
        if self._write_watchers and image:
            for watcher in self._write_watchers:
                watcher(address, len(image))

    def clear(self) -> None:
        """Zero the whole memory."""
        self._data = bytearray(self.size)
        self.read_count = 0
        self.write_count = 0
        if self._write_watchers:
            for watcher in self._write_watchers:
                watcher(self.base, self.size)
