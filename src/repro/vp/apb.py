"""APB bus model: the peripheral interconnect of the virtual platform.

The paper's digital subsystem is "a MIPS-based CPU ..., a UART and the APB
bus" (Section V.B).  The bus decodes peripheral addresses, forwards register
reads/writes to the selected slave and keeps transaction statistics.  Each
transfer is modelled with the two-phase APB protocol cost (setup + access
cycles) so that platform-level cycle counts are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BusError


class ApbPeripheral:
    """Interface every APB slave implements (register-level model)."""

    #: Size of the peripheral's register window in bytes.
    window_size = 0x1000

    def read_register(self, offset: int) -> int:
        """Read the 32-bit register at byte ``offset``."""
        raise NotImplementedError

    def write_register(self, offset: int, value: int) -> None:
        """Write the 32-bit register at byte ``offset``."""
        raise NotImplementedError


@dataclass
class _Mapping:
    name: str
    base: int
    size: int
    peripheral: ApbPeripheral


class ApbBus:
    """Address decoder and transaction router for APB slaves."""

    #: Cycles consumed by one APB transfer (setup + access phase).
    CYCLES_PER_TRANSFER = 2

    def __init__(self, base_address: int = 0x1000_0000) -> None:
        self.base_address = base_address
        self._mappings: list[_Mapping] = []
        self.read_transactions = 0
        self.write_transactions = 0
        self.cycles = 0

    # -- construction ---------------------------------------------------------------------
    def attach(self, name: str, base: int, peripheral: ApbPeripheral, size: int | None = None) -> None:
        """Map ``peripheral`` at absolute address ``base``."""
        size = size if size is not None else peripheral.window_size
        new_mapping = _Mapping(name, base, size, peripheral)
        for existing in self._mappings:
            if not (base + size <= existing.base or existing.base + existing.size <= base):
                raise BusError(
                    f"peripheral {name!r} at {base:#010x} overlaps {existing.name!r}"
                )
        self._mappings.append(new_mapping)

    def peripherals(self) -> list[str]:
        """Names of the attached peripherals."""
        return [mapping.name for mapping in self._mappings]

    def peripheral(self, name: str) -> ApbPeripheral:
        """The peripheral currently mapped as ``name``."""
        for mapping in self._mappings:
            if mapping.name == name:
                return mapping.peripheral
        raise BusError(f"no peripheral named {name!r} on the bus")

    def interpose(self, name: str, wrapper) -> ApbPeripheral:
        """Replace the peripheral mapped as ``name`` with ``wrapper(it)``.

        The saboteur pattern of the fault-injection subsystem: the wrapper
        receives the currently mapped peripheral and returns the object to map
        in its place (usually a delegating proxy that corrupts selected
        transactions).  The address window is unchanged, and transaction
        statistics keep accumulating on the bus as before.  Returns the newly
        mapped peripheral.
        """
        for mapping in self._mappings:
            if mapping.name == name:
                mapping.peripheral = wrapper(mapping.peripheral)
                return mapping.peripheral
        raise BusError(f"no peripheral named {name!r} on the bus")

    # -- decoding --------------------------------------------------------------------------
    def _decode(self, address: int) -> tuple[_Mapping, int]:
        for mapping in self._mappings:
            if mapping.base <= address < mapping.base + mapping.size:
                return mapping, address - mapping.base
        raise BusError(f"no peripheral mapped at address {address:#010x}")

    # -- transactions -----------------------------------------------------------------------
    def read(self, address: int) -> int:
        """Perform an APB read transfer."""
        mapping, offset = self._decode(address)
        self.read_transactions += 1
        self.cycles += self.CYCLES_PER_TRANSFER
        return mapping.peripheral.read_register(offset) & 0xFFFFFFFF

    def write(self, address: int, value: int) -> None:
        """Perform an APB write transfer."""
        mapping, offset = self._decode(address)
        self.write_transactions += 1
        self.cycles += self.CYCLES_PER_TRANSFER
        mapping.peripheral.write_register(offset, value & 0xFFFFFFFF)

    @property
    def transaction_count(self) -> int:
        """Total number of bus transfers performed."""
        return self.read_transactions + self.write_transactions
