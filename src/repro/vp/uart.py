"""UART peripheral of the virtual platform.

A minimal register-level UART: the firmware polls the status register and
writes characters to the transmit register; transmitted bytes are collected so
that tests and examples can observe the software's behaviour.  A configurable
transmit time models the serialisation delay of a real 8N1 link.
"""

from __future__ import annotations

from .apb import ApbPeripheral

#: Register offsets.
TX_DATA = 0x00
STATUS = 0x04
RX_DATA = 0x08
BAUD_DIV = 0x0C

#: STATUS bits.
STATUS_TX_READY = 0x1
STATUS_RX_VALID = 0x2


class Uart(ApbPeripheral):
    """Register-level UART with a transmit log and an optional receive queue."""

    def __init__(self, name: str = "uart0", baud_rate: int = 115200) -> None:
        self.name = name
        self.baud_rate = baud_rate
        self.transmitted: list[int] = []
        self._receive_queue: list[int] = []
        self.tx_count = 0
        self.rx_count = 0
        self.baud_divisor = 0

    # -- register interface ------------------------------------------------------------------
    def read_register(self, offset: int) -> int:
        if offset == STATUS:
            status = STATUS_TX_READY
            if self._receive_queue:
                status |= STATUS_RX_VALID
            return status
        if offset == RX_DATA:
            if self._receive_queue:
                self.rx_count += 1
                return self._receive_queue.pop(0)
            return 0
        if offset == TX_DATA:
            return self.transmitted[-1] if self.transmitted else 0
        if offset == BAUD_DIV:
            return self.baud_divisor
        return 0

    def write_register(self, offset: int, value: int) -> None:
        if offset == TX_DATA:
            self.transmitted.append(value & 0xFF)
            self.tx_count += 1
        elif offset == BAUD_DIV:
            self.baud_divisor = value & 0xFFFF

    # -- host-side helpers ----------------------------------------------------------------------
    def receive(self, data: bytes | str) -> None:
        """Queue bytes for the firmware to read from RX_DATA."""
        if isinstance(data, str):
            data = data.encode("ascii")
        self._receive_queue.extend(data)

    def output_bytes(self) -> bytes:
        """Everything the firmware transmitted so far."""
        return bytes(self.transmitted)

    def output_text(self) -> str:
        """Transmitted bytes decoded as ASCII (errors replaced)."""
        return self.output_bytes().decode("ascii", errors="replace")

    def character_time(self) -> float:
        """Seconds needed to serialise one 8N1 character at the configured baud rate."""
        return 10.0 / self.baud_rate
