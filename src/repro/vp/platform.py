"""The smart-system virtual platform (paper Figure 1 and Section V.B).

:class:`SmartSystemPlatform` assembles the digital subsystem — a MIPS CPU
executing firmware from RAM, an APB bus, a UART and the ADC bridge — on top
of the discrete-event kernel, and offers one ``attach_analog_*`` method per
analog integration style evaluated in Table III:

* ``attach_analog_python`` — the generated C++/Python model called directly
  (the paper's pure-C++ integration);
* ``attach_analog_de`` — the generated model wrapped as a SystemC-DE module;
* ``attach_analog_tdf`` — the generated model inside a TDF cluster bridged to
  the DE kernel;
* ``attach_analog_eln`` — the conservative ELN solver embedded in the kernel;
* ``attach_analog_cosim`` — co-simulation with the reference Verilog-AMS
  engine through the marshalled bridge (the pre-abstraction configuration).
"""

from __future__ import annotations

import dataclasses
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.codegen.python_backend import compile_model_cached
from ..core.signalflow import SignalFlowModel
from ..errors import PlatformError
from ..network.circuit import Circuit
from ..obs.tracer import TRACER
from ..sim.ams import ReferenceAmsSimulator
from ..sim.cosim import AnalogCosimServer, CoSimulationBridge
from ..sim.de import Kernel, Module, PeriodicTicker, Signal
from ..sim.eln import ElnModel
from ..sim.integration import (
    DeSignalFlowModule,
    DeSourceModule,
    ElnDeModule,
    TdfDeBridge,
    TdfSignalFlowModule,
    TdfSourceModule,
)
from ..sim.tdf import TdfCluster, TdfModule
from .adc_bridge import AdcBridge
from .apb import ApbBus
from .firmware import default_firmware
from .memory import Memory
from .mips.assembler import assemble
from .mips.cpu import MipsCpu
from .uart import Uart

Stimuli = Mapping[str, Callable[[float], float]]

PERIPHERAL_BASE = 0x1000_0000
UART_BASE = PERIPHERAL_BASE + 0x0000
ADC_BASE = PERIPHERAL_BASE + 0x1000

#: Short keys of the analog integration styles accepted by
#: :meth:`SmartSystemPlatform.attach_analog`, in Table III's row order
#: (co-simulation first — the paper's pre-abstraction baseline).
ANALOG_STYLES = ("cosim", "eln", "tdf", "de", "python")


@dataclass
class PlatformRunResult:
    """Statistics collected by :meth:`SmartSystemPlatform.run`."""

    simulated_time: float
    instructions: int
    bus_transactions: int
    uart_output: str
    analog_samples: int
    crossings_reported: int
    analog_style: str
    extra: dict[str, float] = field(default_factory=dict)
    #: Every ADC sample in arrival order, when the platform was built with
    #: ``record_analog=True`` (used for cross-style NRMSE comparisons).
    analog_trace: list[float] | None = None
    #: ``"ErrorType: message"`` when the run was cut short by a platform
    #: error (an injected fault crashing the CPU, a bus violation);
    #: ``None`` for a run that reached its full duration.
    crashed: str | None = None

    def fingerprint(self) -> tuple:
        """The deterministic software-visible outcome of the run.

        Two runs of the same scenario must produce equal fingerprints no
        matter where they executed (serial loop, multiprocessing worker) —
        this is what the platform sweep layer's equivalence guarantee checks.
        """
        return (
            self.instructions,
            self.bus_transactions,
            self.uart_output,
            self.analog_samples,
            self.crossings_reported,
            self.crashed,
            self.analog_style,
        )

    def to_payload(self) -> dict:
        """A JSON-serializable rendering that round-trips bit-identically.

        Every field is a Python primitive (the analog trace is a list of
        floats, which JSON renders shortest-round-trip exact), so a result
        committed to a :class:`~repro.store.RunStore` and loaded back
        compares equal — same fingerprint, same trace bits.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PlatformRunResult":
        """Rebuild a result from :meth:`to_payload` output (store records)."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise PlatformError(
                f"platform run record carries unknown fields {unknown}"
            )
        return cls(**{name: payload[name] for name in payload})


class _CpuBlockDriver(Module):
    """Advances the CPU one instruction *block* per kernel event.

    The classic integration steps the CPU through a :class:`PeriodicTicker`,
    one instruction per clock event — millions of heap operations per
    simulated millisecond.  This driver instead asks the predecoded ISS for a
    burst of up to ``block_cycles`` instructions and schedules its next
    wake-up exactly ``executed`` clock cycles later on the same absolute
    cycle grid the ticker would have used.

    Timing equivalence with the one-instruction-per-tick model is preserved
    because

    * :meth:`~repro.vp.mips.cpu.MipsCpu.run_block` yields back *before* any
      peripheral-window load/store that is not the first instruction of a
      block, so every UART/APB/ADC access executes as the first instruction
      of an event scheduled on precisely its own clock cycle;
    * instructions between peripheral accesses touch only CPU-private state
      (registers and RAM), so executing them early within one kernel event
      is unobservable;
    * the block budget is clamped to the kernel's ``end_time`` horizon so a
      bounded ``run(duration)`` retires exactly as many instructions as the
      per-tick model would.

    ``block_cycles=1`` degenerates to the historical per-tick behaviour.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        cpu: MipsCpu,
        period: float,
        block_cycles: int = 256,
    ) -> None:
        super().__init__(kernel, name)
        if period <= 0.0:
            raise ValueError("CPU clock period must be positive")
        if block_cycles < 1:
            raise ValueError("block_cycles must be at least 1")
        self.cpu = cpu
        self.period = period
        self.block_cycles = block_cycles
        #: Index of the next clock cycle to execute (cycle ``c`` fires at
        #: ``origin + c * period``, mirroring PeriodicTicker's drift-free grid).
        self.cycle = 0
        self._grid_origin = kernel.now + period
        #: Absolute times no instruction block may execute across (sorted).
        #: Injection events use these so a burst never runs an instruction
        #: whose clock cycle lies at or past a pending mutation.
        self._sync_times: list[float] = []
        kernel.schedule(period, self._wake)

    def add_sync_point(self, time: float) -> None:
        """Forbid instruction blocks from crossing the absolute time ``time``.

        Between peripheral accesses the block executor runs *ahead* of the
        kernel clock, which is unobservable for CPU-private state — until an
        external event (a fault injection) mutates that state at a scheduled
        time.  A sync point restores exactness: every instruction whose clock
        cycle fires strictly before ``time`` executes first, and the cycle at
        or after ``time`` waits for its own kernel event, matching the
        one-instruction-per-tick interleaving (the mutation event was
        scheduled earlier, so at equal timestamps it fires before the tick).
        """
        insort(self._sync_times, time)

    def _wake(self) -> None:
        kernel = self.kernel
        budget = self.block_cycles
        end = kernel.end_time
        if end is not None and budget > 1:
            # Cycles fire at now + j*period; only those within the run
            # horizon may execute in this burst (the per-tick model would
            # not have reached the later ones yet).
            fit = int((end - kernel.now) / self.period + 1e-9) + 1
            if fit < budget:
                budget = fit if fit >= 1 else 1
        sync = self._sync_times
        while sync and sync[0] <= kernel.now + 1e-18:
            sync.pop(0)  # already behind us: the mutation event has fired
        if sync and budget > 1:
            # Cycles at now + j*period with j < (sync - now) / period happen
            # strictly before the next mutation and are safe to burst; the
            # first cycle at or past it must start its own kernel event.
            ratio = (sync[0] - kernel.now) / self.period
            fit = int(ratio + 1e-9)
            if fit < ratio - 1e-9:
                fit += 1
            if fit < 1:
                fit = 1
            if fit < budget:
                budget = fit
        executed = self.cpu.run_block(budget)
        if executed < 1:
            # Halted CPU: let the idle cycles pass in bulk (the per-tick
            # ticker would fire on each of them and do nothing).
            executed = budget
        self.cycle += executed
        kernel.schedule_abs(self._grid_origin + self.cycle * self.period, self._wake)


class _AdcSampler(Module):
    """Publishes the value of a discrete-event signal into the ADC bridge."""

    def __init__(self, kernel: Kernel, name: str, signal: Signal, adc: AdcBridge, timestep: float) -> None:
        super().__init__(kernel, name)
        self.watched = signal
        self.adc = adc
        self._ticker = PeriodicTicker(kernel, f"{name}.tick", timestep, self._sample)

    def _sample(self, now: float) -> None:
        # Defer three deltas: stimulus update, analog module update, then read.
        # Bound methods instead of nested lambdas: this runs once per analog
        # timestep, and the closure allocations showed up in profiles.
        self.kernel._schedule_delta(self._after_first_delta)

    def _after_first_delta(self) -> None:
        self.kernel._schedule_delta(self._after_second_delta)

    def _after_second_delta(self) -> None:
        self.kernel._schedule_delta(self._push)

    def _push(self) -> None:
        self.adc.push_sample(self.watched.read())


class _TdfAdcSink(TdfModule):
    """TDF sink pushing every sample into the ADC bridge."""

    def __init__(self, name: str, adc: AdcBridge) -> None:
        super().__init__(name)
        self.inp = self.in_port("in")
        self.adc = adc

    def processing(self) -> None:
        self.adc.push_sample(self.inp.read())


class SmartSystemPlatform:
    """Digital virtual platform with a pluggable analog subsystem."""

    def __init__(
        self,
        cpu_clock_hz: float = 20e6,
        analog_timestep: float = 50e-9,
        firmware: str | None = None,
        ram_size: int = 64 * 1024,
        uart_baud: int = 115200,
        record_analog: bool = False,
        cpu_block_cycles: int = 256,
        cpu_superblocks: bool = True,
    ) -> None:
        self.kernel = Kernel()
        self.analog_timestep = float(analog_timestep)
        self.cpu_clock_hz = float(cpu_clock_hz)
        self.cpu_period = 1.0 / float(cpu_clock_hz)

        self.memory = Memory(size=ram_size, base=0)
        self.bus = ApbBus(PERIPHERAL_BASE)
        self.uart = Uart(baud_rate=uart_baud)
        self.adc = AdcBridge(record=record_analog)
        self.bus.attach("uart0", UART_BASE, self.uart)
        self.bus.attach("adc0", ADC_BASE, self.adc)

        self.firmware_source = firmware if firmware is not None else default_firmware()
        self.program = assemble(self.firmware_source)
        self.memory.load_image(self.program.to_bytes())

        self.cpu = MipsCpu(
            self.memory,
            bus_read=self.bus.read,
            bus_write=self.bus.write,
            peripheral_base=PERIPHERAL_BASE,
            superblocks=cpu_superblocks,
        )
        self.cpu_block_cycles = int(cpu_block_cycles)
        self._cpu_driver = _CpuBlockDriver(
            self.kernel,
            "cpu.clock",
            self.cpu,
            self.cpu_period,
            self.cpu_block_cycles,
        )

        self.analog_style: str | None = None
        self._analog_modules: list[object] = []

    # -- analog attachment --------------------------------------------------------------------
    def _ensure_unattached(self) -> None:
        if self.analog_style is not None:
            raise PlatformError(
                f"an analog subsystem ({self.analog_style!r}) is already attached"
            )

    def attach_analog(
        self,
        style: str,
        stimuli: Stimuli,
        model: "SignalFlowModel | type | object | None" = None,
        circuit: "Circuit | str | None" = None,
        output: str | None = None,
        **options: float,
    ) -> None:
        """Attach an analog subsystem by style key (see :data:`ANALOG_STYLES`).

        The abstracted styles (``"python"``, ``"de"``, ``"tdf"``) need a
        ``model``; the conservative styles (``"eln"``, ``"cosim"``) need a
        ``circuit`` and the observed ``output`` quantity.  ``options`` are
        forwarded to the style-specific ``attach_analog_*`` method (e.g.
        ``oversampling`` for the co-simulation bridge).
        """
        if style in ("python", "de", "tdf"):
            if model is None:
                raise PlatformError(f"analog style {style!r} needs a signal-flow model")
            attach = getattr(self, f"attach_analog_{style}")
            attach(model, stimuli, **options)
            return
        if style in ("eln", "cosim"):
            if circuit is None or output is None:
                raise PlatformError(
                    f"analog style {style!r} needs a circuit and an output quantity"
                )
            attach = getattr(self, f"attach_analog_{style}")
            attach(circuit, stimuli, output, **options)
            return
        raise PlatformError(
            f"unknown analog integration style {style!r}; expected one of {ANALOG_STYLES}"
        )

    def attach_analog_python(self, model: "SignalFlowModel | type | object", stimuli: Stimuli) -> None:
        """Integrate the generated model as plain code called every timestep."""
        self._ensure_unattached()
        instance = _instantiate(model)
        input_names = list(instance.INPUTS)
        waveforms = [stimuli[name] for name in input_names]
        single_output = len(instance.OUTPUTS) == 1

        def tick(now: float) -> None:
            result = instance.step(*[w(now) for w in waveforms], now)
            self.adc.push_sample(result if single_output else result[0])

        ticker = PeriodicTicker(self.kernel, "analog.cpp", self.analog_timestep, tick)
        self._analog_modules.append(ticker)
        self.analog_style = "python"

    def attach_analog_de(self, model: "SignalFlowModel | type | object", stimuli: Stimuli) -> None:
        """Integrate the generated model as a SystemC-DE style module."""
        self._ensure_unattached()
        instance = _instantiate(model)
        sources = {
            name: DeSourceModule(self.kernel, f"src_{name}", stimuli[name], self.analog_timestep)
            for name in instance.INPUTS
        }
        device = DeSignalFlowModule(
            self.kernel,
            "analog.de",
            instance,
            {name: source.out for name, source in sources.items()},
        )
        sampler = _AdcSampler(
            self.kernel, "adc.sampler", device.output(), self.adc, self.analog_timestep
        )
        self._analog_modules.extend([*sources.values(), device, sampler])
        self.analog_style = "systemc_de"

    def attach_analog_tdf(self, model: "SignalFlowModel | type | object", stimuli: Stimuli) -> None:
        """Integrate the generated model as a TDF cluster bridged to the DE kernel."""
        self._ensure_unattached()
        instance = _instantiate(model)
        cluster = TdfCluster("analog.tdf")
        device = cluster.add(TdfSignalFlowModule("dut", instance))
        for name in instance.INPUTS:
            source = cluster.add(TdfSourceModule(f"src_{name}", stimuli[name], self.analog_timestep))
            cluster.connect(source.out, device.inputs[name])
        sink = cluster.add(_TdfAdcSink("adc_sink", self.adc))
        cluster.connect(device.outputs[instance.OUTPUTS[0]], sink.inp)
        bridge = TdfDeBridge(self.kernel, "analog.tdf_bridge", cluster)
        self._analog_modules.extend([cluster, bridge])
        self.analog_style = "systemc_tdf"

    def attach_analog_eln(self, circuit: Circuit, stimuli: Stimuli, output: str) -> None:
        """Integrate the conservative ELN solver."""
        self._ensure_unattached()
        model = ElnModel(circuit, self.analog_timestep)
        sources = {
            name: DeSourceModule(self.kernel, f"src_{name}", stimuli[name], self.analog_timestep)
            for name in model.inputs
        }
        device = ElnDeModule(
            self.kernel,
            "analog.eln",
            model,
            {name: source.out for name, source in sources.items()},
            observed=[output],
        )
        sampler = _AdcSampler(
            self.kernel, "adc.sampler", device.output(output), self.adc, self.analog_timestep
        )
        self._analog_modules.extend([*sources.values(), device, sampler])
        self.analog_style = "systemc_ams_eln"

    def attach_analog_cosim(
        self,
        circuit: "Circuit | str",
        stimuli: Stimuli,
        output: str,
        oversampling: int = 2,
        solver_iterations: int = 2,
    ) -> None:
        """Integrate the original Verilog-AMS model through co-simulation."""
        self._ensure_unattached()
        simulator = ReferenceAmsSimulator(
            circuit,
            self.analog_timestep,
            oversampling=oversampling,
            solver_iterations=solver_iterations,
        )
        server = AnalogCosimServer(simulator, observed_quantities=[output])
        sources = {
            name: DeSourceModule(self.kernel, f"src_{name}", stimuli[name], self.analog_timestep)
            for name in simulator.inputs
        }
        output_signal = Signal(self.kernel, 0.0, "cosim.out")
        bridge = CoSimulationBridge(
            self.kernel,
            "analog.cosim",
            server,
            input_signals={name: source.out for name, source in sources.items()},
            output_signals={output: output_signal},
            timestep=self.analog_timestep,
        )
        sampler = _AdcSampler(
            self.kernel, "adc.sampler", output_signal, self.adc, self.analog_timestep
        )
        self._analog_modules.extend([*sources.values(), bridge, sampler])
        self.analog_style = "verilog_ams_cosim"

    # -- instrumentation ----------------------------------------------------------------------
    def schedule_injection(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action`` at the absolute virtual time ``time``, exactly.

        The CPU block driver is synchronised around the injection point, so a
        mutation of CPU-visible state (RAM, registers) lands on precisely the
        same instruction boundary whether the platform runs per-tick
        (``cpu_block_cycles=1``) or block-stepped — the fault-injection
        subsystem's equivalence guarantee rests on this.
        """
        self._cpu_driver.add_sync_point(time)
        self.kernel.schedule_abs(time, action)

    # -- execution ----------------------------------------------------------------------------------
    def snapshot(self, crashed: str | None = None) -> PlatformRunResult:
        """The run statistics of the platform's *current* state.

        :meth:`run` returns this after a completed simulation; crash handlers
        (the sweep layer's ``capture_errors`` path) call it directly to record
        how far a faulted platform got before the error.
        """
        counter_value = self.memory.read_word(0x0000_F000)
        return PlatformRunResult(
            simulated_time=self.kernel.now,
            instructions=self.cpu.instruction_count,
            bus_transactions=self.bus.transaction_count,
            uart_output=self.uart.output_text(),
            analog_samples=self.adc.sample_count,
            crossings_reported=counter_value,
            analog_style=self.analog_style or "unattached",
            analog_trace=list(self.adc.history) if self.adc.history is not None else None,
            crashed=crashed,
        )

    def run(self, duration: float) -> PlatformRunResult:
        """Simulate the platform for ``duration`` seconds of virtual time."""
        if self.analog_style is None:
            raise PlatformError(
                "attach an analog subsystem before running the platform"
            )
        tracer = TRACER
        if not tracer.enabled:
            self.kernel.run(duration)
            return self.snapshot()
        start = tracer.now()
        cpu = self.cpu
        instructions_before = cpu.instruction_count
        compiles_before = cpu.superblock_compile_count
        hits_before = cpu.superblock_hit_count
        invalidations_before = cpu.superblock_invalidation_count
        self.kernel.run(duration)
        result = self.snapshot()
        compiles = cpu.superblock_compile_count - compiles_before
        hits = cpu.superblock_hit_count - hits_before
        invalidations = cpu.superblock_invalidation_count - invalidations_before
        tracer.end(
            "platform.run",
            start,
            "platform",
            style=self.analog_style,
            instructions=result.instructions - instructions_before,
            blocks=cpu.block_count,
            decode_misses=cpu.decode_miss_count,
            decode_invalidations=cpu.decode_invalidation_count,
            superblock_compiles=compiles,
            superblock_hits=hits,
            superblock_invalidations=invalidations,
        )
        tracer.add("iss.superblock.compiles", float(compiles))
        tracer.add("iss.superblock.hits", float(hits))
        tracer.add("iss.superblock.invalidations", float(invalidations))
        return result


def _instantiate(model: "SignalFlowModel | type | object"):
    if isinstance(model, SignalFlowModel):
        return compile_model_cached(model)()
    if isinstance(model, type):
        return model()
    return model
