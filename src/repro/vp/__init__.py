"""Virtual platform: MIPS CPU, memory, APB bus, UART, ADC bridge and the top level."""

from .adc_bridge import AdcBridge
from .apb import ApbBus, ApbPeripheral
from .firmware import (
    CROSSING_COUNTER_ADDRESS,
    averaging_monitor_source,
    default_firmware,
    threshold_monitor_source,
)
from .memory import Memory
from .mips import AssembledProgram, Assembler, MipsCpu, assemble
from .platform import (
    ADC_BASE,
    ANALOG_STYLES,
    PERIPHERAL_BASE,
    UART_BASE,
    PlatformRunResult,
    SmartSystemPlatform,
)
from .uart import Uart

__all__ = [
    "ADC_BASE",
    "ANALOG_STYLES",
    "AdcBridge",
    "ApbBus",
    "ApbPeripheral",
    "AssembledProgram",
    "Assembler",
    "CROSSING_COUNTER_ADDRESS",
    "Memory",
    "MipsCpu",
    "PERIPHERAL_BASE",
    "PlatformRunResult",
    "SmartSystemPlatform",
    "UART_BASE",
    "Uart",
    "assemble",
    "averaging_monitor_source",
    "default_firmware",
    "threshold_monitor_source",
]
