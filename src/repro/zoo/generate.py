"""Seeded generation of random-but-valid Verilog-AMS conservative networks.

The circuit-zoo fuzz harness rests on this module: every case derives
deterministically from a :class:`numpy.random.SeedSequence` (``entropy`` =
campaign seed, ``spawn_key`` = case index), so any generated netlist can be
re-produced from its ``(seed, index)`` pair alone.

A generated case is held twice: as a structured :class:`ZooNetlist` (typed
components over named nodes — the form the shrinker mutates) and as rendered
Verilog-AMS source (the form the frontend parses).  The renderer exercises
the supported subset on purpose: ``parameter real`` declarations with
defaults, named branches next to anonymous pair/implicit-ground accesses,
``ddt`` and ``idt`` contributions, ``if``/``else`` and ternary conditionals
over parameters, both comment styles, and SI-suffixed literals.

Topologies are constrained to be *well-posed by construction*: a resistive/
capacitive spine from the input to the output node, every non-input node
shunted to ground, and gain stages (VCVS/VCCS) only at feed-forward section
boundaries — the resulting system is block-triangular with passive blocks,
hence uniquely solvable and stable under backward-Euler discretisation, so
any cross-engine disagreement the oracle finds is an engine or frontend
defect, never a pathological input.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

# Component kinds.
RESISTOR = "resistor"
CAPACITOR = "capacitor"
INDUCTOR = "inductor"
VSOURCE = "vsource"
ISOURCE = "isource"
VCVS = "vcvs"
VCCS = "vccs"

# Access rendering: a declared named branch, an anonymous two-node access, or
# a single-net access implicitly referencing ground.
NAMED = "named"
PAIR = "pair"
GROUND = "ground"

#: SI suffixes the renderer may attach to literals (subset of the lexer's
#: scale-factor table chosen so every engineering value has a clean form).
_SI_SUFFIXES = (("M", 1e6), ("k", 1e3), ("", 1.0), ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12))

_FILLER_COMMENTS = (
    "nominal corner",
    "values from the datasheet",
    "see the schematic for the reference direction",
    "generated - do not edit by hand",
    "loading network",
)


@dataclass(frozen=True)
class ZooComponent:
    """One typed component of a generated netlist.

    ``style`` selects among the equivalent Verilog-AMS spellings of the
    component's constitutive relation (e.g. a capacitor as ``I <+ C*ddt(V)``
    or as ``V <+ idt(I)/C``); ``param`` lifts the value into a
    ``parameter real`` of that name; conditional gain stages carry the
    inactive arm in ``alt_value`` and the parameter threshold the generated
    ``if``/ternary tests against in ``threshold``.
    """

    kind: str
    name: str
    positive: str
    negative: str
    value: float
    access: str = NAMED
    style: str = "direct"
    param: str | None = None
    control: tuple[str, str] | None = None
    alt_value: float | None = None
    threshold: float | None = None
    si: bool = False


@dataclass(frozen=True)
class ZooNetlist:
    """A structured generated circuit: the shrinker's unit of mutation."""

    name: str
    inputs: tuple[str, ...]
    output: str
    components: tuple[ZooComponent, ...]
    decorate: bool = True
    seed: "int | None" = None
    index: int = 0

    def parameters(self) -> dict[str, float]:
        """``parameter real`` names and default values, in declaration order."""
        params: dict[str, float] = {}
        for component in self.components:
            if component.param is not None and component.param not in params:
                params[component.param] = component.value
        return params

    def nodes(self) -> list[str]:
        """Every node the components touch (ports first, ground excluded)."""
        names = [*self.inputs, self.output]
        for component in self.components:
            for node in (component.positive, component.negative, *(component.control or ())):
                if node != "gnd" and node not in names:
                    names.append(node)
        return names

    def __len__(self) -> int:
        return len(self.components)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random topology generator (all probabilities in [0, 1])."""

    max_internal_nodes: int = 5
    max_extras: int = 3
    max_gain_stages: int = 2
    gain_probability: float = 0.35
    second_input_probability: float = 0.3
    inductor_probability: float = 0.08
    param_probability: float = 0.5
    si_probability: float = 0.35
    decorate_probability: float = 0.6
    conditional_probability: float = 0.4

    def __post_init__(self) -> None:
        if self.max_internal_nodes < 1:
            raise ValueError("the generator needs at least one internal node")
        if self.max_extras < 0 or self.max_gain_stages < 0:
            raise ValueError("extras and gain-stage counts must be non-negative")


# -- value sampling ------------------------------------------------------------------
def _log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    value = float(np.exp(rng.uniform(np.log(low), np.log(high))))
    # Three significant digits: rendered literals round-trip through the
    # lexer without surprising long mantissas.
    from math import floor, log10

    digits = 2 - floor(log10(abs(value)))
    return round(value, digits)


def _resistance(rng: np.random.Generator) -> float:
    return _log_uniform(rng, 2e2, 2e5)


def _capacitance(rng: np.random.Generator) -> float:
    return _log_uniform(rng, 2e-9, 2e-7)


def _inductance(rng: np.random.Generator) -> float:
    return _log_uniform(rng, 1e-3, 5e-2)


def _gain(rng: np.random.Generator) -> float:
    magnitude = round(float(rng.uniform(0.25, 8.0)), 3)
    return magnitude if rng.random() < 0.5 else -magnitude


# -- generation ----------------------------------------------------------------------
class _Builder:
    """Accumulates components with per-kind counters and rng-driven styles."""

    def __init__(self, rng: np.random.Generator, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.components: list[ZooComponent] = []
        self._counters: dict[str, int] = {}

    def _name(self, prefix: str) -> str:
        self._counters[prefix] = self._counters.get(prefix, 0) + 1
        return f"{prefix}{self._counters[prefix]}"

    def _maybe_param(self, prefix: str) -> "str | None":
        if self.rng.random() < self.config.param_probability:
            return self._name(prefix).upper()
        return None

    def _access(self, negative: str, allow_ground: bool = True) -> str:
        choices = [NAMED, PAIR]
        if allow_ground and negative == "gnd":
            choices.append(GROUND)
        return str(self.rng.choice(choices))

    def resistor(self, positive: str, negative: str) -> None:
        self.components.append(
            ZooComponent(
                kind=RESISTOR,
                name=self._name("r"),
                positive=positive,
                negative=negative,
                value=_resistance(self.rng),
                access=self._access(negative),
                style=str(self.rng.choice(["potential", "flow"])),
                param=self._maybe_param("r"),
                si=bool(self.rng.random() < self.config.si_probability),
            )
        )

    def capacitor(self, positive: str, negative: str) -> None:
        self.components.append(
            ZooComponent(
                kind=CAPACITOR,
                name=self._name("c"),
                positive=positive,
                negative=negative,
                value=_capacitance(self.rng),
                access=self._access(negative),
                style=str(self.rng.choice(["ddt", "idt"])),
                param=self._maybe_param("c"),
                si=bool(self.rng.random() < self.config.si_probability),
            )
        )

    def inductor(self, positive: str, negative: str) -> None:
        self.components.append(
            ZooComponent(
                kind=INDUCTOR,
                name=self._name("l"),
                positive=positive,
                negative=negative,
                value=_inductance(self.rng),
                access=str(self.rng.choice([NAMED, PAIR])),
                style=str(self.rng.choice(["ddt", "idt"])),
                param=self._maybe_param("l"),
                si=bool(self.rng.random() < self.config.si_probability),
            )
        )

    def shunt(self, node: str, force_resistor: bool = False) -> None:
        if force_resistor or self.rng.random() < 0.5:
            self.resistor(node, "gnd")
        else:
            self.capacitor(node, "gnd")

    def series(self, positive: str, negative: str) -> None:
        roll = self.rng.random()
        if roll < self.config.inductor_probability:
            self.inductor(positive, negative)
        elif roll < 0.75:
            self.resistor(positive, negative)
        else:
            self.capacitor(positive, negative)

    def gain_stage(self, control: str, driven: str) -> str:
        """A feed-forward controlled source driving ``driven`` from ``control``."""
        kind = VCVS if self.rng.random() < 0.7 else VCCS
        gain = _gain(self.rng)
        style = "plain"
        alt_value = threshold = None
        param = self._maybe_param("g")
        if param is not None and self.rng.random() < self.config.conditional_probability:
            style = str(self.rng.choice(["ifelse", "ternary"]))
            alt_value = _gain(self.rng)
            # Pick the threshold so the *then* arm is active for the default
            # parameter value about half of the time.
            offset = round(float(self.rng.uniform(0.1, 1.0)), 3)
            threshold = gain - offset if self.rng.random() < 0.5 else gain + offset
        control_pair = (control, "gnd")
        self.components.append(
            ZooComponent(
                kind=kind,
                name=self._name("amp" if kind == VCVS else "gm"),
                positive=driven,
                negative="gnd",
                value=gain,
                access=NAMED,
                style=style,
                param=param,
                control=control_pair,
                alt_value=alt_value,
                threshold=threshold,
            )
        )
        return kind

    def dc_current(self, node: str) -> None:
        value = round(float(self.rng.uniform(-1e-3, 1e-3)), 6)
        if value == 0.0:
            value = 1e-4
        self.components.append(
            ZooComponent(
                kind=ISOURCE,
                name=self._name("is"),
                positive=node,
                negative="gnd",
                value=value,
                access=str(self.rng.choice([NAMED, PAIR, GROUND])),
                si=bool(self.rng.random() < self.config.si_probability),
            )
        )

    def shifted_shunt(self, node: str, shift_node: str) -> None:
        """A level-shifted shunt leg: node --R-- shift_node --Vdc-- gnd."""
        self.resistor(node, shift_node)
        self.components.append(
            ZooComponent(
                kind=VSOURCE,
                name=self._name("vs"),
                positive=shift_node,
                negative="gnd",
                value=round(float(self.rng.uniform(-2.0, 2.0)), 3),
                access=str(self.rng.choice([NAMED, PAIR, GROUND])),
            )
        )


def generate_netlist(
    seed: int,
    index: int = 0,
    config: "GeneratorConfig | None" = None,
) -> ZooNetlist:
    """Generate the ``index``-th random conservative netlist of campaign ``seed``."""
    config = config or GeneratorConfig()
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(index,)))
    builder = _Builder(rng, config)

    internal = int(rng.integers(1, config.max_internal_nodes + 1))
    spine = ["vin"] + [f"n{i}" for i in range(1, internal)] + ["out"]

    # Section ids partition the spine at gain-stage boundaries; passive
    # extras later only ever connect nodes of one section, keeping the
    # system block-triangular (see the module docstring).
    sections = [0] * len(spine)
    gain_budget = config.max_gain_stages
    vccs_driven: set[str] = set()
    for position in range(1, len(spine)):
        previous, current = spine[position - 1], spine[position]
        if gain_budget > 0 and rng.random() < config.gain_probability:
            kind = builder.gain_stage(previous, current)
            if kind == VCCS:
                vccs_driven.add(current)
            gain_budget -= 1
            boundary = sections[position - 1] + 1
        else:
            builder.series(previous, current)
            boundary = sections[position - 1]
        sections[position] = boundary

    # Every non-input spine node is shunted to ground; VCCS-driven nodes get
    # a resistive shunt so their potential is stiffly defined.
    for node in spine[1:]:
        builder.shunt(node, force_resistor=node in vccs_driven)

    inputs = ["vin"]
    if rng.random() < config.second_input_probability:
        inputs.append("in2")
        target = spine[int(rng.integers(1, len(spine)))]
        builder.resistor("in2", target)

    extra_count = int(rng.integers(0, config.max_extras + 1))
    shift_counter = 0
    for _ in range(extra_count):
        roll = rng.random()
        node = spine[int(rng.integers(1, len(spine)))]
        if roll < 0.45:
            builder.shunt(node)
        elif roll < 0.75:
            # A bridge between two spine nodes of the same section.
            position = int(rng.integers(1, len(spine)))
            peers = [
                other
                for other, section in zip(spine, sections)
                if section == sections[position] and other != spine[position]
            ]
            if peers:
                builder.resistor(spine[position], str(rng.choice(peers)))
            else:
                builder.shunt(spine[position])
        elif roll < 0.9:
            builder.dc_current(node)
        else:
            shift_counter += 1
            builder.shifted_shunt(node, f"s{shift_counter}")

    return ZooNetlist(
        name=f"zoo_s{seed}_c{index}",
        inputs=tuple(inputs),
        output="out",
        components=tuple(builder.components),
        decorate=bool(rng.random() < config.decorate_probability),
        seed=seed,
        index=index,
    )


def generate_cases(
    seed: int,
    count: int,
    config: "GeneratorConfig | None" = None,
) -> Iterator[ZooNetlist]:
    """Yield ``count`` deterministic netlists for campaign ``seed``."""
    for index in range(count):
        yield generate_netlist(seed, index, config)


# -- defect planting -----------------------------------------------------------------
#: Lint rules plant_defect() knows how to trigger (the linter-recall surface).
BREAKABLE_RULES = (
    "floating-node",
    "vsource-loop",
    "nonphysical-value",
    "dead-arm",
    "zero-value",
)


def plant_defect(netlist: ZooNetlist, rule: str) -> ZooNetlist:
    """Return a copy of ``netlist`` with exactly one defect for ``rule`` planted.

    Generated netlists are lint-clean by construction, which makes the
    linter's *recall* untestable from the zoo alone; this hook deliberately
    breaks one invariant so ``repro-lint`` can be fuzz-tested against known
    defects (``repro-fuzz --break <rule>``).  The planted netlists are for
    linting only — they are not meant to simulate.
    """
    if rule not in BREAKABLE_RULES:
        raise ValueError(
            f"unknown breakable rule {rule!r} (choose from {', '.join(BREAKABLE_RULES)})"
        )
    anchor = netlist.output
    if rule == "floating-node":
        # A branch to a node nothing else touches: degree-one, not a port.
        extra = ZooComponent(
            RESISTOR, "r_broken", anchor, "dangle", 3300.0, access=PAIR, style="flow"
        )
    elif rule == "vsource-loop":
        # Parallels the implicit input-drive source on the first input port.
        extra = ZooComponent(
            VSOURCE, "v_broken", netlist.inputs[0], "gnd", 1.0, access=GROUND
        )
    elif rule == "nonphysical-value":
        extra = ZooComponent(
            RESISTOR, "r_broken", anchor, "gnd", -3300.0, access=GROUND
        )
    elif rule == "dead-arm":
        extra = ZooComponent(
            RESISTOR, "r_broken", anchor, "gnd", 3300.0, access=GROUND, style="deadif"
        )
    else:  # zero-value
        # A zero scale factor collapses the component law to a short.
        extra = ZooComponent(RESISTOR, "r_broken", anchor, "gnd", 0.0, access=GROUND)
    return replace(
        netlist,
        name=f"{netlist.name}_broken_{rule.replace('-', '_')}",
        components=(*netlist.components, extra),
    )


# -- rendering -----------------------------------------------------------------------
def _render_value(value: float, si: bool) -> str:
    """Render a literal, optionally with an engineering SI suffix."""
    if value == 0.0:
        return "0.0"
    if si:
        magnitude = abs(value)
        for suffix, factor in _SI_SUFFIXES:
            mantissa = value / factor
            if suffix and 1.0 <= abs(mantissa) < 1000.0:
                text = f"{mantissa:.6g}"
                # The lexer requires the suffix to trail the mantissa
                # directly; exponent forms cannot take one.
                if "e" not in text and "E" not in text:
                    return f"{text}{suffix}"
        _ = magnitude
    return f"{value:g}"


def _potential(component: ZooComponent) -> str:
    if component.access == NAMED:
        return f"V({component.name})"
    if component.access == PAIR:
        return f"V({component.positive}, {component.negative})"
    return f"V({component.positive})"


def _flow(component: ZooComponent) -> str:
    if component.access == NAMED:
        return f"I({component.name})"
    if component.access == PAIR:
        return f"I({component.positive}, {component.negative})"
    return f"I({component.positive})"


def _control_ref(component: ZooComponent) -> str:
    control_positive, control_negative = component.control or ("gnd", "gnd")
    if control_negative == "gnd":
        return f"V({control_positive})"
    return f"V({control_positive}, {control_negative})"


def _contribution(component: ZooComponent) -> list[str]:
    """Render the analog statement(s) of one component."""
    value = component.param or _render_value(component.value, component.si)
    potential = _potential(component)
    flow = _flow(component)
    kind, style = component.kind, component.style
    if kind == RESISTOR:
        if style == "flow":
            return [f"{flow} <+ {potential} / {value};"]
        if style == "deadif":
            # Only plant_defect() emits this: a literal-constant condition
            # whose first arm can never execute (the 'dead-arm' lint rule).
            return [
                "if (1 < 0)",
                f"  {potential} <+ 2 * {value} * {flow};",
                "else",
                f"  {potential} <+ {value} * {flow};",
            ]
        return [f"{potential} <+ {value} * {flow};"]
    if kind == CAPACITOR:
        if style == "idt":
            return [f"{potential} <+ idt({flow}) / {value};"]
        return [f"{flow} <+ {value} * ddt({potential});"]
    if kind == INDUCTOR:
        if style == "idt":
            return [f"{flow} <+ idt({potential}) / {value};"]
        return [f"{potential} <+ {value} * ddt({flow});"]
    if kind == VSOURCE:
        return [f"{potential} <+ {value};"]
    if kind == ISOURCE:
        return [f"{flow} <+ {value};"]
    if kind in (VCVS, VCCS):
        target = potential if kind == VCVS else flow
        control = _control_ref(component)
        if style in ("ifelse", "ternary") and component.param is not None:
            alt = _render_value(component.alt_value or 1.0, False)
            threshold = _render_value(component.threshold or 0.0, False)
            if style == "ternary":
                return [
                    f"{target} <+ (({component.param} >= {threshold}) ? "
                    f"{component.param} : {alt}) * {control};"
                ]
            return [
                f"if ({component.param} >= {threshold})",
                f"  {target} <+ {component.param} * {control};",
                "else",
                f"  {target} <+ {alt} * {control};",
            ]
        return [f"{target} <+ {value} * {control};"]
    raise ValueError(f"unknown zoo component kind {kind!r}")


def render(netlist: ZooNetlist) -> str:
    """Render the netlist as Verilog-AMS source accepted by :mod:`repro.vams`."""
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=netlist.seed or 0, spawn_key=(netlist.index, 0xC0))
    )
    decorate = netlist.decorate

    def filler() -> str:
        return str(rng.choice(_FILLER_COMMENTS))

    lines: list[str] = ['`include "disciplines.vams"', ""]
    if decorate:
        lines.append(f"/* {filler()}\n   (seed {netlist.seed}, case {netlist.index}) */")
    ports = ", ".join([*netlist.inputs, netlist.output])
    lines.append(f"module {netlist.name}({ports});")
    for name in netlist.inputs:
        lines.append(f"  input {name};")
    lines.append(f"  output {netlist.output};")
    lines.append(f"  electrical {', '.join([*netlist.nodes(), 'gnd'])};")
    lines.append("  ground gnd;")
    for name, default in netlist.parameters().items():
        lines.append(f"  parameter real {name} = {_render_value(default, False)};")
    for component in netlist.components:
        if component.access == NAMED:
            declaration = (
                f"  branch ({component.positive}, {component.negative}) {component.name};"
            )
            if decorate and rng.random() < 0.2:
                declaration += f"  // {filler()}"
            lines.append(declaration)
    lines.append("  analog begin")
    for component in netlist.components:
        if decorate and rng.random() < 0.15:
            lines.append(f"    // {filler()}")
        for statement in _contribution(component):
            lines.append(f"    {statement}")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


# -- shrinking mutations --------------------------------------------------------------
def drop_component(netlist: ZooNetlist, position: int) -> ZooNetlist:
    """The netlist with the ``position``-th component removed."""
    components = list(netlist.components)
    del components[position]
    return replace(netlist, components=tuple(components))


def plainify_component(netlist: ZooNetlist, position: int) -> "ZooNetlist | None":
    """Rewrite one component in its simplest spelling (``None`` = already plain).

    Simplification collapses rendering indirection while preserving the
    component's elaborated value: conditional gain arms fold to the active
    arm, ``idt`` forms become ``ddt`` forms, conductance divisions become
    potential products, parameters inline into literals, SI suffixes and
    named-branch declarations drop to plain anonymous accesses.
    """
    component = netlist.components[position]
    plain_style = {
        RESISTOR: "potential",
        CAPACITOR: "ddt",
        INDUCTOR: "ddt",
        VSOURCE: "dc",
        ISOURCE: "dc",
        VCVS: "plain",
        VCCS: "plain",
    }[component.kind]
    value = component.value
    if component.style in ("ifelse", "ternary") and component.threshold is not None:
        value = (
            component.value
            if component.value >= component.threshold
            else (component.alt_value or 1.0)
        )
    access = component.access
    if access == NAMED:
        access = GROUND if component.negative == "gnd" else PAIR
    simplified = replace(
        component,
        style=plain_style,
        value=value,
        param=None,
        alt_value=None,
        threshold=None,
        si=False,
        access=access,
    )
    if simplified == component and not netlist.decorate:
        return None
    components = list(netlist.components)
    components[position] = simplified
    return replace(netlist, components=tuple(components), decorate=False)


def round_component(netlist: ZooNetlist, position: int) -> "ZooNetlist | None":
    """Round the component's value to one significant digit (``None`` = no-op)."""
    component = netlist.components[position]
    value = component.value
    if value == 0.0:
        return None
    from math import floor, log10

    rounded = round(value, -floor(log10(abs(value))))
    if rounded == 0.0 or rounded == value:
        return None
    components = list(netlist.components)
    components[position] = replace(component, value=rounded)
    return replace(netlist, components=tuple(components))
