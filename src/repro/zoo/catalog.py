"""The committed circuit zoo, exposed as first-class circuit factories.

Every ``corpus/*.va`` netlist is a hand-written, third-party-style
Verilog-AMS module.  :func:`zoo_entries` loads them all; :func:`zoo_factory`
wraps one as a **picklable** callable with the exact factory contract the
sweep and fault subsystems expect — ``factory(**params) -> Circuit`` where
the keyword arguments override the module's ``parameter real`` defaults.
That makes the whole zoo consumable by ``SweepSpec`` grids and
``FaultCampaignSpec`` runs with no glue code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..network import Circuit
from ..vams import NetlistError, VamsModule, parse_module, to_circuit


def corpus_dir() -> Path:
    """The directory holding the committed ``*.va`` zoo netlists."""
    return Path(__file__).resolve().parent / "corpus"


@dataclass(frozen=True)
class ZooEntry:
    """One zoo netlist: its source, parsed module, and interface summary."""

    name: str
    path: Path
    source: str
    module: VamsModule = field(compare=False)
    parameters: "dict[str, float]" = field(compare=False)
    inputs: tuple[str, ...] = ()
    output: str = "out"

    def circuit(self, **overrides: float) -> Circuit:
        """Build the circuit, optionally overriding ``parameter real`` values."""
        return to_circuit(self.module, overrides=overrides or None)


def _load_path(path: Path) -> ZooEntry:
    source = path.read_text(encoding="utf-8")
    module = parse_module(source)
    inputs = tuple(port.name for port in module.ports if port.direction == "input")
    outputs = [port.name for port in module.ports if port.direction == "output"]
    return ZooEntry(
        name=module.name,
        path=path,
        source=source,
        module=module,
        parameters=module.parameter_values(),
        inputs=inputs,
        output=outputs[0] if outputs else "out",
    )


def zoo_entries(directory: "str | Path | None" = None) -> list[ZooEntry]:
    """Load every ``*.va`` netlist of the zoo (or of ``directory``), by name."""
    root = Path(directory) if directory is not None else corpus_dir()
    return [_load_path(path) for path in sorted(root.glob("*.va"))]


def load_entry(name: str, directory: "str | Path | None" = None) -> ZooEntry:
    """Load the zoo entry whose module is called ``name``."""
    for entry in zoo_entries(directory):
        if entry.name == name:
            return entry
    known = ", ".join(entry.name for entry in zoo_entries(directory)) or "none"
    raise KeyError(f"no zoo netlist called {name!r} (known: {known})")


@dataclass(frozen=True)
class ZooCircuitFactory:
    """Picklable ``factory(**params) -> Circuit`` over one zoo netlist.

    Only the netlist *name* (and optional corpus directory) is carried across
    process boundaries; each worker re-parses the committed source, so the
    factory stays valid under ``multiprocessing`` sweeps.
    """

    name: str
    directory: "str | None" = None

    def __call__(self, **overrides: float) -> Circuit:
        entry = load_entry(self.name, self.directory)
        unknown = set(overrides) - set(entry.parameters)
        if unknown:
            raise NetlistError(
                f"zoo netlist {self.name!r} has no parameter called "
                f"{', '.join(sorted(unknown))}"
            )
        return entry.circuit(**overrides)


def zoo_factory(name: str, directory: "str | Path | None" = None) -> ZooCircuitFactory:
    """A picklable circuit factory for the zoo netlist called ``name``."""
    load_entry(name, directory)  # fail fast on unknown names
    return ZooCircuitFactory(name, str(directory) if directory is not None else None)
