"""Differential oracle and greedy shrinker for the circuit-zoo fuzz harness.

The oracle takes one Verilog-AMS netlist through the whole pipeline — parse,
build, abstract — and then runs the abstracted model on **every** engine the
repository ships: the compiled scalar recursion (``python``), the vectorised
batch backend (``numpy``), the discrete-event integration (``de``), the TDF
cluster (``tdf``), and the conservative MNA solver on the *unabstracted*
circuit (``mna``, backward-Euler so its discretisation matches the
abstraction).  Every pair of output waveforms must agree to
:attr:`OracleConfig.tolerance` NRMSE; any violation — or any exception from
any stage — is a :class:`OracleVerdict` failure.

When a generated netlist fails, the greedy :func:`shrink` loop minimises it
while it still fails: drop components, fold conditional/parameterised
spellings to their plain forms, round values.  :func:`write_reproducer`
renders the minimal case (with full provenance in a header comment) into a
corpus directory so the failure becomes a permanent regression test.

``engine_overrides`` lets tests swap any engine for a deliberately broken
one, which is how the shrinker itself is tested without breaking a real
engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from ..core import AbstractionFlow
from ..core.codegen import NativeGenerator, NumpyGenerator
from ..errors import ReproError
from ..metrics import compare_traces
from ..network.mna import BACKWARD_EULER
from ..sim import (
    ElnModel,
    SineWave,
    Trace,
    TraceSet,
    resolve_steps,
    run_de_model,
    run_python_model,
    run_tdf_model,
)
from ..vams import parse_module, to_circuit
from .generate import (
    ZooNetlist,
    drop_component,
    plainify_component,
    render,
    round_component,
)

#: Stages a verdict can fail at: the frontend (lex/parse/build/abstract), the
#: pre-execution lint of the source and abstracted model, a single engine
#: raising, or the engines disagreeing beyond tolerance.
FRONTEND = "frontend"
LINT = "lint"
ENGINE = "engine"
AGREEMENT = "agreement"

#: An engine runner: ``(model, circuit, stimuli, config) -> TraceSet`` with
#: the output waveform recorded under the model's output quantity.
EngineRunner = Callable[..., TraceSet]


@dataclass(frozen=True)
class OracleConfig:
    """Differential-run parameters shared by the CLI, tests, and the shrinker."""

    timestep: float = 50e-9
    duration: float = 100e-6
    tolerance: float = 1e-9
    engines: tuple[str, ...] = ("python", "numpy", "de", "tdf", "mna")

    def __post_init__(self) -> None:
        if self.timestep <= 0.0 or self.duration <= 0.0:
            raise ValueError("oracle timestep and duration must be positive")
        if self.tolerance <= 0.0:
            raise ValueError("the oracle tolerance must be positive")
        unknown = set(self.engines) - set(ENGINE_RUNNERS)
        if unknown:
            raise ValueError(f"unknown oracle engines: {', '.join(sorted(unknown))}")
        if len(self.engines) < 2:
            raise ValueError("a differential oracle needs at least two engines")


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one differential run.

    ``ok`` summarises; on failure ``stage`` names the pipeline layer (one of
    :data:`FRONTEND`, :data:`ENGINE`, :data:`AGREEMENT`), ``detail`` is the
    human-readable cause, and — for agreement failures — ``worst_pair`` and
    ``worst_error`` identify the most-disagreeing engine pair.  ``errors``
    records the full pairwise NRMSE matrix whenever all engines completed.
    """

    ok: bool
    stage: str | None = None
    detail: str = ""
    worst_pair: tuple[str, str] | None = None
    worst_error: float = 0.0
    errors: Mapping[tuple[str, str], float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """One line suitable for a log or a reproducer header."""
        if self.ok:
            return f"ok (worst pairwise NRMSE {self.worst_error:.3e})"
        if self.stage == AGREEMENT and self.worst_pair is not None:
            first, second = self.worst_pair
            return (
                f"{first} and {second} disagree: NRMSE {self.worst_error:.3e}"
            )
        return f"{self.stage}: {self.detail}"


# -- engine runners ------------------------------------------------------------------
def _sine_stimuli(inputs: Iterable[str]) -> dict[str, SineWave]:
    """The matrix stimuli: one sine per input, distinct frequencies."""
    return {
        name: SineWave(amplitude=1.0, frequency=10e3 * (index + 1))
        for index, name in enumerate(inputs)
    }


def _run_batch_of_one(instance, stimuli, config: OracleConfig) -> TraceSet:
    """Drive an instantiated batch artefact (width 1) and record a TraceSet."""
    waveforms = [stimuli[name] for name in instance.INPUTS]
    steps = resolve_steps(config.duration, float(instance.TIMESTEP))
    traces = TraceSet({name: Trace(name) for name in instance.OUTPUTS})
    single = len(instance.OUTPUTS) == 1
    for index in range(steps):
        now = (index + 1) * float(instance.TIMESTEP)
        result = instance.step_batch(*[wave(now) for wave in waveforms], now)
        values = (result,) if single else tuple(result)
        for name, value in zip(instance.OUTPUTS, values):
            traces[name].append(now, float(np.ravel(value)[0]))
    return traces


def _run_numpy(model, circuit, stimuli, config: OracleConfig) -> TraceSet:
    """A batch-of-one through the vectorised backend, as a TraceSet."""
    instance = NumpyGenerator().generate_batch([model]).instantiate()
    return _run_batch_of_one(instance, stimuli, config)


def _run_native(model, circuit, stimuli, config: OracleConfig) -> TraceSet:
    """A batch-of-one through the cffi-compiled C kernel, as a TraceSet."""
    instance = NativeGenerator().generate_batch([model]).instantiate()
    return _run_batch_of_one(instance, stimuli, config)


def _run_python(model, circuit, stimuli, config: OracleConfig) -> TraceSet:
    return run_python_model(model, stimuli, config.duration)


def _run_de(model, circuit, stimuli, config: OracleConfig) -> TraceSet:
    return run_de_model(model, stimuli, config.duration)


def _run_tdf(model, circuit, stimuli, config: OracleConfig) -> TraceSet:
    return run_tdf_model(model, stimuli, config.duration)


def _run_mna(model, circuit, stimuli, config: OracleConfig) -> TraceSet:
    # Backward Euler, not the ELN default trapezoidal: the oracle compares
    # against backward-Euler abstractions, and mixing discretisations would
    # bury real defects under O(dt) method error.
    eln = ElnModel(circuit, config.timestep, method=BACKWARD_EULER)
    return eln.run(stimuli, config.duration, list(model.outputs))


ENGINE_RUNNERS: dict[str, EngineRunner] = {
    "python": _run_python,
    "numpy": _run_numpy,
    "native": _run_native,
    "de": _run_de,
    "tdf": _run_tdf,
    "mna": _run_mna,
}


# -- the oracle ----------------------------------------------------------------------
def check_source(
    source: str,
    config: "OracleConfig | None" = None,
    engine_overrides: "Mapping[str, EngineRunner] | None" = None,
    output: str = "out",
) -> OracleVerdict:
    """Differentially check one Verilog-AMS source string across all engines."""
    config = config or OracleConfig()
    try:
        module = parse_module(source)
        circuit = to_circuit(module)
        model = AbstractionFlow(config.timestep).abstract(
            circuit, output, name=module.name
        ).model
    except ReproError as exc:
        return OracleVerdict(
            ok=False, stage=FRONTEND, detail=f"{type(exc).__name__}: {exc}"
        )

    # Pre-execution static analysis: a netlist or abstracted model that lints
    # fatal must not reach the engines — any runtime-clean result would then
    # be a lint/runtime disagreement worth a reproducer.
    from ..lint import lint_model, lint_module as lint_vams_module

    lint = lint_vams_module(module, file=f"<{module.name}>")
    lint.extend(lint_model(model, file=f"<{module.name}:model>"))
    if not lint.ok:
        first = lint.errors()[0]
        return OracleVerdict(
            ok=False,
            stage=LINT,
            detail=f"{first.rule}: {first.message}",
        )

    stimuli = _sine_stimuli(model.inputs)
    quantity = model.outputs[0]

    waveforms: dict[str, Trace] = {}
    for engine in config.engines:
        runner = ENGINE_RUNNERS[engine]
        if engine_overrides and engine in engine_overrides:
            runner = engine_overrides[engine]
        try:
            traces = runner(model, circuit, stimuli, config)
            waveforms[engine] = traces[quantity]
        except (ReproError, ValueError, KeyError, FloatingPointError) as exc:
            return OracleVerdict(
                ok=False,
                stage=ENGINE,
                detail=f"engine {engine!r} failed with {type(exc).__name__}: {exc}",
            )

    errors: dict[tuple[str, str], float] = {}
    for first, second in itertools.combinations(config.engines, 2):
        errors[(first, second)] = compare_traces(waveforms[first], waveforms[second])
    worst_pair = max(errors, key=errors.__getitem__)
    worst_error = errors[worst_pair]
    if worst_error > config.tolerance:
        return OracleVerdict(
            ok=False,
            stage=AGREEMENT,
            detail=(
                f"{worst_pair[0]} and {worst_pair[1]} disagree beyond "
                f"{config.tolerance:g} (NRMSE {worst_error:.3e})"
            ),
            worst_pair=worst_pair,
            worst_error=worst_error,
            errors=errors,
        )
    return OracleVerdict(
        ok=True, worst_pair=worst_pair, worst_error=worst_error, errors=errors
    )


def check_netlist(
    netlist: ZooNetlist,
    config: "OracleConfig | None" = None,
    engine_overrides: "Mapping[str, EngineRunner] | None" = None,
) -> OracleVerdict:
    """Render and differentially check one structured zoo netlist."""
    return check_source(
        render(netlist),
        config,
        engine_overrides=engine_overrides,
        output=netlist.output,
    )


# -- the shrinker --------------------------------------------------------------------
def _still_fails(verdict: OracleVerdict, original_stage: str) -> bool:
    """Whether a shrink candidate preserves the failure being minimised.

    Frontend failures only count for frontend-stage originals; for engine and
    agreement failures a candidate that stops *parsing* is an invalid shrink
    (it removed the circuit, not the bug), while either failing stage keeps
    the reproducer interesting.
    """
    if verdict.ok:
        return False
    if original_stage == FRONTEND:
        return verdict.stage == FRONTEND
    return verdict.stage in (ENGINE, AGREEMENT)


def shrink(
    netlist: ZooNetlist,
    config: "OracleConfig | None" = None,
    engine_overrides: "Mapping[str, EngineRunner] | None" = None,
    max_checks: int = 400,
) -> tuple[ZooNetlist, OracleVerdict]:
    """Greedily minimise a failing netlist while it keeps failing.

    Three mutation classes, in decreasing order of payoff: drop a whole
    component, rewrite a component in its plainest spelling (fold
    conditionals, inline parameters, drop ``idt``/conductance/SI sugar), and
    round values to one significant digit.  The loop restarts after every
    accepted mutation and stops at a fixed point (or after ``max_checks``
    oracle runs, a safety valve for pathological cascades).

    Returns the minimal netlist and its (still failing) verdict.  Raises
    :class:`ValueError` if the input doesn't fail the oracle in the first
    place — shrinking a passing netlist means the harness lost the defect.
    """
    verdict = check_netlist(netlist, config, engine_overrides)
    if verdict.ok:
        raise ValueError("refusing to shrink a netlist that passes the oracle")
    stage = verdict.stage or AGREEMENT
    checks = 0

    def attempt(candidate: "ZooNetlist | None") -> "OracleVerdict | None":
        nonlocal checks
        if candidate is None or checks >= max_checks:
            return None
        checks += 1
        candidate_verdict = check_netlist(candidate, config, engine_overrides)
        if _still_fails(candidate_verdict, stage):
            return candidate_verdict
        return None

    progress = True
    while progress and checks < max_checks:
        progress = False
        # Pass 1: drop components (largest first reduction).
        for position in range(len(netlist.components) - 1, -1, -1):
            candidate = drop_component(netlist, position)
            candidate_verdict = attempt(candidate)
            if candidate_verdict is not None:
                netlist, verdict = candidate, candidate_verdict
                progress = True
        # Pass 2: simplify spellings.
        for position in range(len(netlist.components)):
            candidate_verdict = attempt(plainify_component(netlist, position))
            if candidate_verdict is not None:
                netlist = plainify_component(netlist, position) or netlist
                verdict = candidate_verdict
                progress = True
        # Pass 3: round values.
        for position in range(len(netlist.components)):
            candidate = round_component(netlist, position)
            candidate_verdict = attempt(candidate)
            if candidate_verdict is not None and candidate is not None:
                netlist, verdict = candidate, candidate_verdict
                progress = True
    return replace(netlist, name=f"{netlist.name}_shrunk"), verdict


def write_reproducer(
    netlist: ZooNetlist,
    verdict: OracleVerdict,
    directory: "str | Path",
) -> Path:
    """Render a (typically shrunk) failing netlist into ``directory``.

    The header comment carries full provenance — campaign seed, case index,
    component count, and the verdict summary — so a promoted reproducer
    documents itself.  Returns the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{netlist.name}.va"
    header = (
        "// Shrunk reproducer emitted by the repro.zoo differential oracle.\n"
        f"// provenance: seed={netlist.seed} index={netlist.index} "
        f"components={len(netlist)}\n"
        f"// verdict: {verdict.summary()}\n"
    )
    path.write_text(header + render(netlist), encoding="utf-8")
    return path
