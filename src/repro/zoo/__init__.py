"""Circuit zoo: corpus of Verilog-AMS netlists + differential fuzz harness.

``repro.zoo`` defends the abstraction methodology at corpus scale.  It bundles

- :mod:`repro.zoo.generate` — seeded generation of random-but-valid
  conservative Verilog-AMS netlists, deterministic per ``(seed, index)``;
- :mod:`repro.zoo.oracle` — the differential oracle that pushes each netlist
  through every engine (python / numpy batch / DE / TDF / MNA) and asserts
  pairwise agreement, plus the greedy shrinker that minimises disagreements
  into committed reproducers;
- :mod:`repro.zoo.catalog` — the committed ``corpus/*.va`` zoo exposed as
  first-class circuit factories consumable by sweeps and fault campaigns;
- :mod:`repro.zoo.cli` — the ``repro-fuzz`` console entry point.
"""

from .catalog import ZooEntry, corpus_dir, load_entry, zoo_entries, zoo_factory
from .generate import (
    GeneratorConfig,
    ZooComponent,
    ZooNetlist,
    generate_cases,
    generate_netlist,
    render,
)
from .oracle import (
    OracleConfig,
    OracleVerdict,
    check_netlist,
    check_source,
    shrink,
    write_reproducer,
)

__all__ = [
    "GeneratorConfig",
    "OracleConfig",
    "OracleVerdict",
    "ZooComponent",
    "ZooEntry",
    "ZooNetlist",
    "check_netlist",
    "check_source",
    "corpus_dir",
    "generate_cases",
    "generate_netlist",
    "load_entry",
    "render",
    "shrink",
    "write_reproducer",
    "zoo_factory",
    "zoo_entries",
]
