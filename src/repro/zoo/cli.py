"""``repro-fuzz``: the circuit-zoo differential fuzzing campaign driver.

Generates ``--count`` random conservative netlists from ``--seed``, pushes
each through the five-engine differential oracle, and — for any failure —
greedily shrinks the case and writes a reproducer netlist into
``--corpus-dir`` (default ``tests/corpus/``) so the bug becomes a permanent
regression test.  ``--smoke`` is the CI profile: a fixed small campaign that
also re-checks every committed zoo netlist first.

Exit status: 0 when every case agrees, 1 when any case fails, 2 on bad
arguments.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from ..core.codegen import resolve_backend
from ..obs import ProgressReporter
from .catalog import zoo_entries
from .generate import BREAKABLE_RULES, GeneratorConfig, generate_netlist, plant_defect
from .oracle import (
    ENGINE_RUNNERS,
    OracleConfig,
    check_netlist,
    check_source,
    shrink,
    write_reproducer,
)

#: The ``--smoke`` campaign size: what CI runs on every push.
SMOKE_COUNT = 50


@dataclass
class CampaignReport:
    """Aggregated outcome of one fuzz campaign (returned by :func:`run_campaign`)."""

    seed: int
    checked: int = 0
    failures: "list[tuple[str, str]]" = field(default_factory=list)
    reproducers: "list[str]" = field(default_factory=list)
    worst_error: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(
    seed: int,
    count: int,
    corpus_dir: "str | None" = None,
    config: "OracleConfig | None" = None,
    generator: "GeneratorConfig | None" = None,
    include_zoo: bool = False,
    progress: "ProgressReporter | None" = None,
    log=None,
) -> CampaignReport:
    """Run one differential fuzz campaign; shrink and persist any failure."""
    config = config or OracleConfig()
    report = CampaignReport(seed=seed)

    def record(name: str, verdict) -> None:
        report.checked += 1
        report.worst_error = max(report.worst_error, verdict.worst_error)
        if progress is not None:
            progress.advance()
        if verdict.ok:
            return
        report.failures.append((name, verdict.summary()))
        if log is not None:
            print(f"FAIL {name}: {verdict.summary()}", file=log)

    if include_zoo:
        for entry in zoo_entries():
            verdict = check_source(entry.source, config, output=entry.output)
            record(entry.name, verdict)

    for index in range(count):
        netlist = generate_netlist(seed, index, generator)
        verdict = check_netlist(netlist, config)
        if verdict.ok:
            record(netlist.name, verdict)
            continue
        record(netlist.name, verdict)
        if corpus_dir is not None:
            minimal, final_verdict = shrink(netlist, config)
            path = write_reproducer(minimal, final_verdict, corpus_dir)
            report.reproducers.append(str(path))
            if log is not None:
                print(
                    f"  shrunk to {len(minimal)} components -> {path}", file=log
                )
    return report


def run_recall_campaign(
    seed: int,
    count: int,
    rules: "tuple[str, ...]",
    generator: "GeneratorConfig | None" = None,
    progress: "ProgressReporter | None" = None,
    log=None,
) -> CampaignReport:
    """Fuzz the *linter* instead of the engines: plant known defects.

    For every generated netlist this first asserts the clean netlist lints
    clean (the by-construction guarantee), then plants one defect per
    requested rule via :func:`plant_defect` and demands ``repro-lint``
    reports exactly that rule — a recall measurement over the linter.
    """
    from ..lint import lint_netlist

    report = CampaignReport(seed=seed)

    def record(name: str, failure: "str | None") -> None:
        report.checked += 1
        if progress is not None:
            progress.advance()
        if failure is None:
            return
        report.failures.append((name, failure))
        if log is not None:
            print(f"FAIL {name}: {failure}", file=log)

    for index in range(count):
        base = generate_netlist(seed, index, generator)
        clean = lint_netlist(base)
        record(
            base.name,
            None
            if clean.ok
            else f"generated netlist is not lint-clean: {clean.summary()}",
        )
        for rule in rules:
            broken = plant_defect(base, rule)
            lint = lint_netlist(broken)
            record(
                broken.name,
                None
                if rule in lint.rules()
                else f"lint missed the planted '{rule}' defect",
            )
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Differential fuzzing of the Verilog-AMS frontend and every "
            "simulation engine against randomly generated conservative "
            "networks."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--count",
        type=int,
        default=100,
        help="number of generated netlists to check (default 100)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            f"CI profile: check the committed zoo plus {SMOKE_COUNT} "
            "generated netlists (overrides --count unless --count is larger)"
        ),
    )
    parser.add_argument(
        "--corpus-dir",
        default="tests/corpus",
        help=(
            "directory shrunk reproducers are written into "
            "(default tests/corpus); 'none' disables shrinking"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1e-9,
        help="pairwise NRMSE agreement threshold (default 1e-9)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=100e-6,
        help="simulated duration per case in seconds (default 100e-6)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write a self-contained HTML dashboard of the campaign "
        "(see repro-report)",
    )
    parser.add_argument(
        "--break",
        dest="break_rules",
        action="append",
        default=None,
        metavar="RULE",
        help=(
            "lint-recall mode: plant one defect of RULE per generated "
            "netlist and require repro-lint to report it (repeatable; "
            f"'all' = {', '.join(BREAKABLE_RULES)}); skips the engine oracle"
        ),
    )
    parser.add_argument(
        "--engines",
        default=None,
        help=(
            "comma-separated engine set to compare (default "
            "python,numpy,de,tdf,mna; add 'native' for the compiled C "
            "kernel — it degrades to numpy with a warning when no C "
            "toolchain is present)"
        ),
    )
    return parser


def _resolve_engines(text: "str | None") -> "tuple[str, ...] | None":
    """Parse ``--engines``, degrading ``native`` to numpy when unavailable."""
    if text is None:
        return None
    engines = []
    for name in (part.strip() for part in text.split(",")):
        if not name:
            continue
        if name == "native":
            name = resolve_backend("native", fallback="numpy")
        if name not in ENGINE_RUNNERS:
            raise SystemExit(
                f"repro-fuzz: unknown engine {name!r}; "
                f"available: {', '.join(sorted(ENGINE_RUNNERS))}"
            )
        if name not in engines:
            engines.append(name)
    if len(engines) < 2:
        raise SystemExit(
            "repro-fuzz: --engines needs at least two distinct engines"
        )
    return tuple(engines)


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.count < 1:
        print("repro-fuzz: --count must be at least 1", file=sys.stderr)
        return 2
    count = max(args.count, SMOKE_COUNT) if args.smoke else args.count

    if args.break_rules:
        rules: list[str] = []
        for raw in args.break_rules:
            expanded = BREAKABLE_RULES if raw == "all" else (raw,)
            for rule in expanded:
                if rule not in BREAKABLE_RULES:
                    print(
                        f"repro-fuzz: unknown --break rule {rule!r}; "
                        f"available: {', '.join(BREAKABLE_RULES)} (or 'all')",
                        file=sys.stderr,
                    )
                    return 2
                if rule not in rules:
                    rules.append(rule)
        progress = ProgressReporter(count * (1 + len(rules)), "netlists")
        recall = run_recall_campaign(
            args.seed, count, tuple(rules), progress=progress, log=sys.stderr
        )
        progress.finish()
        if recall.ok:
            print(
                f"repro-fuzz: linter recalled every planted defect across "
                f"{recall.checked} checks ({count} netlists x "
                f"{len(rules)} rules, seed {recall.seed})"
            )
            return 0
        print(
            f"repro-fuzz: {len(recall.failures)}/{recall.checked} recall "
            f"checks FAILED (seed {recall.seed}):",
            file=sys.stderr,
        )
        for name, summary in recall.failures:
            print(f"  {name}: {summary}", file=sys.stderr)
        return 1

    corpus_dir = None if args.corpus_dir.lower() == "none" else args.corpus_dir
    engines = _resolve_engines(args.engines)
    if engines is not None:
        config = OracleConfig(
            tolerance=args.tolerance, duration=args.duration, engines=engines
        )
    else:
        config = OracleConfig(tolerance=args.tolerance, duration=args.duration)

    total = count + (len(zoo_entries()) if args.smoke else 0)
    progress = ProgressReporter(total, "netlists")
    report = run_campaign(
        args.seed,
        count,
        corpus_dir=corpus_dir,
        config=config,
        include_zoo=args.smoke,
        progress=progress,
        log=sys.stderr,
    )
    progress.finish()

    if args.report:
        from ..report import Dashboard, fuzz_section

        dashboard = Dashboard(
            title="Differential fuzzing",
            subtitle=f"seed {report.seed}, {len(config.engines)} engines",
        )
        dashboard.add(fuzz_section(report))
        print(f"wrote {dashboard.write(args.report)}")

    if report.ok:
        print(
            f"repro-fuzz: {report.checked} netlists agree across "
            f"{len(config.engines)} engines (seed {report.seed}, worst "
            f"pairwise NRMSE {report.worst_error:.3e})"
        )
        return 0
    print(
        f"repro-fuzz: {len(report.failures)}/{report.checked} netlists FAILED "
        f"(seed {report.seed}):",
        file=sys.stderr,
    )
    for name, summary in report.failures:
        print(f"  {name}: {summary}", file=sys.stderr)
    for path in report.reproducers:
        print(f"  reproducer: {path}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
