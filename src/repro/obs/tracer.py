"""The process-local instrumentation core (spans, events, counters).

Design constraints, in priority order:

1. **Near-zero cost when disabled.**  Every hot code path (the DE kernel's
   scheduler loop, the block-stepped ISS, the abstraction flow, the run
   store) guards its instrumentation behind a single attribute check —
   ``if TRACER.enabled:`` — and calls the tracer only inside that branch.
   The hottest loops (per-instruction ISS dispatch, per-delta kernel
   evaluation) are not instrumented at all: they maintain plain integer
   counters that the tracer *reads at boundaries* (end of a block, end of a
   ``run``), so the disabled configuration executes exactly the seed
   instruction stream plus a handful of rare-branch integer increments.
2. **Multiprocessing-safe collection.**  The tracer is process-local by
   construction (a module global, never shared).  Worker processes enable
   their own tracer, run, and ship a compact :meth:`Tracer.collect` payload
   back with their results; the parent merges payloads into a
   :class:`~repro.obs.telemetry.TelemetryReport`.  :meth:`Tracer.mark` /
   :meth:`Tracer.collect` bracket a region so the serial path (which runs in
   the parent's tracer) reports exactly the same delta a worker would.
3. **Bounded memory.**  Events are compact tuples and capped at
   ``max_events``; past the cap the tracer counts drops instead of growing.

Timestamps are raw :func:`time.perf_counter` seconds.  On the platforms we
support ``perf_counter`` is a system-wide monotonic clock, so events
recorded in forked workers land on the same timeline as the parent's; the
exporters rebase to the earliest event when rendering.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

#: Event phase keys, matching the Chrome ``trace_event`` phases the
#: exporters emit: complete spans and instants.
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"

#: Default cap on buffered events per process.
DEFAULT_MAX_EVENTS = 200_000

_perf_counter = time.perf_counter


class Tracer:
    """Process-local span/event/counter recorder.

    The public attribute ``enabled`` is the one flag hot paths may check;
    everything else is only touched once that check has passed.  Events are
    stored as ``(phase, name, category, ts, dur, args)`` tuples with
    ``ts``/``dur`` in ``perf_counter`` seconds; counters are a plain
    ``name -> float`` accumulator.
    """

    __slots__ = ("enabled", "max_events", "events", "counters", "dropped")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.enabled = False
        self.max_events = int(max_events)
        self.events: list[tuple] = []
        self.counters: dict[str, float] = {}
        self.dropped = 0

    # -- clock -------------------------------------------------------------------------
    @staticmethod
    def now() -> float:
        """The tracer's clock (``perf_counter`` seconds)."""
        return _perf_counter()

    # -- recording ---------------------------------------------------------------------
    def _append(self, event: tuple) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "",
        **args,
    ) -> None:
        """Record a complete span from explicit ``start``/``duration``.

        This is the workhorse for code that already measures its own phases
        (the abstraction flow, the compile cache): the caller times the work
        with ``perf_counter`` and hands the numbers over, so disabled runs
        pay nothing beyond the guard.
        """
        if not self.enabled:
            return
        self._append((PHASE_COMPLETE, name, category, start, duration, args or None))

    def end(self, name: str, start: float, category: str = "", **args) -> None:
        """Record a complete span that started at ``start`` and ends now."""
        if not self.enabled:
            return
        self._append(
            (PHASE_COMPLETE, name, category, start, _perf_counter() - start, args or None)
        )

    def instant(self, name: str, category: str = "", **args) -> None:
        """Record an instantaneous event."""
        if not self.enabled:
            return
        self._append((PHASE_INSTANT, name, category, _perf_counter(), 0.0, args or None))

    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto the named counter."""
        if not self.enabled:
            return
        counters = self.counters
        counters[name] = counters.get(name, 0.0) + value

    @contextmanager
    def span(self, name: str, category: str = "", **args):
        """Context manager recording a complete span around its body.

        Convenience for cold paths; hot paths should guard with
        ``if tracer.enabled:`` and use :meth:`end`/:meth:`complete` so the
        disabled case never pays the generator machinery.
        """
        if not self.enabled:
            yield
            return
        start = _perf_counter()
        try:
            yield
        finally:
            self._append(
                (
                    PHASE_COMPLETE,
                    name,
                    category,
                    start,
                    _perf_counter() - start,
                    args or None,
                )
            )

    # -- collection --------------------------------------------------------------------
    def mark(self) -> tuple[int, dict[str, float]]:
        """A resumable position: everything recorded so far.

        Pass the mark to :meth:`collect` to obtain only the events and
        counter increments recorded *after* it — the mechanism that lets the
        serial execution path (running inside the parent's tracer) report
        the same delta payload a freshly forked worker would.
        """
        return (len(self.events), dict(self.counters))

    def collect(self, mark: "tuple[int, dict[str, float]] | None" = None) -> dict:
        """The compact, picklable telemetry payload since ``mark``.

        ``None`` collects everything.  The payload is what worker processes
        return alongside their results: the recording process id, the event
        tuples, the counter *deltas* and the drop count.
        """
        if mark is None:
            start, base = 0, {}
        else:
            start, base = mark
        counters = {
            name: value - base.get(name, 0.0)
            for name, value in self.counters.items()
            if value != base.get(name, 0.0)
        }
        return {
            "pid": os.getpid(),
            "events": list(self.events[start:]),
            "counters": counters,
            "dropped": self.dropped,
        }

    def reset(self) -> None:
        """Drop every buffered event and counter (the enabled flag is kept)."""
        self.events.clear()
        self.counters.clear()
        self.dropped = 0


#: The process-local tracer every instrumentation point talks to.
TRACER = Tracer()


def enable_tracing(reset: bool = False) -> Tracer:
    """Switch the process-local tracer on (optionally from a clean slate)."""
    if reset:
        TRACER.reset()
    TRACER.enabled = True
    return TRACER


def disable_tracing() -> Tracer:
    """Switch the process-local tracer off (buffered data is kept)."""
    TRACER.enabled = False
    return TRACER


def tracing_enabled() -> bool:
    """Whether the process-local tracer is currently recording."""
    return TRACER.enabled
