"""Campaign-level telemetry: merged worker payloads → one report.

Every batch engine (parameter sweep, platform sweep, fault campaign) can run
with tracing on.  Each worker — forked process or the serial fallback —
returns a compact :meth:`~repro.obs.tracer.Tracer.collect` payload with its
results; :meth:`TelemetryReport.merge` folds those payloads together with
the engine's own bookkeeping (scenario counts, wall clock, per-scenario
latencies) into the one object reports and exporters consume.

The report answers the questions a campaign operator actually asks:

- throughput (scenarios/s) and wall-clock split,
- latency percentiles across scenarios (p50/p90/p99/max),
- worker utilization (busy time vs. ``wall × workers``),
- cache and store effectiveness (codegen hit rate, store hits/commits),
- every raw counter the instrumentation points accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

#: Percentiles quoted in summaries and markdown reports.
PERCENTILES = (50.0, 90.0, 99.0)


def _normalized_events(payload: dict) -> list[dict]:
    """Tracer event tuples → pid-tagged dicts (the merged on-wire shape)."""
    pid = int(payload.get("pid", 0))
    events = []
    for phase, name, category, ts, dur, args in payload.get("events", ()):
        events.append(
            {
                "ph": phase,
                "name": name,
                "cat": category,
                "ts": float(ts),
                "dur": float(dur),
                "args": args,
                "pid": pid,
            }
        )
    return events


@dataclass
class TelemetryReport:
    """Merged telemetry of one campaign run.

    ``latencies`` holds per-*executed*-scenario wall seconds where the engine
    measures them (platform sweeps, fault campaigns); batched engines that
    simulate scenarios jointly leave it empty and the report falls back to
    aggregate throughput only.
    """

    engine: str
    scenarios: int
    executed: int
    loaded: int
    wall: float
    workers: int
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    counters: dict[str, float] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    dropped: int = 0

    # -- construction ------------------------------------------------------------------
    @classmethod
    def merge(
        cls,
        engine: str,
        payloads: "list[dict | None]",
        *,
        scenarios: int,
        executed: int,
        wall: float,
        workers: int,
        latencies: "np.ndarray | None" = None,
    ) -> "TelemetryReport":
        """Fold per-worker tracer payloads into one campaign report."""
        counters: dict[str, float] = {}
        events: list[dict] = []
        dropped = 0
        for payload in payloads:
            if not payload:
                continue
            events.extend(_normalized_events(payload))
            for name, value in payload.get("counters", {}).items():
                counters[name] = counters.get(name, 0.0) + float(value)
            dropped += int(payload.get("dropped", 0))
        events.sort(key=lambda event: event["ts"])
        if latencies is None:
            latencies = np.empty(0)
        return cls(
            engine=engine,
            scenarios=int(scenarios),
            executed=int(executed),
            loaded=int(scenarios) - int(executed),
            wall=float(wall),
            workers=int(workers),
            latencies=np.asarray(latencies, dtype=float),
            counters=counters,
            events=events,
            dropped=dropped,
        )

    def retagged(self, engine: str) -> "TelemetryReport":
        """The same report attributed to a different engine name."""
        return replace(self, engine=engine)

    # -- derived metrics ---------------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Executed scenarios per wall-clock second."""
        if self.wall <= 0.0:
            return 0.0
        return self.executed / self.wall

    @property
    def busy_seconds(self) -> float:
        """Total measured scenario time across all workers."""
        return float(self.latencies.sum()) if self.latencies.size else 0.0

    @property
    def worker_utilization(self) -> "float | None":
        """Busy time / (wall × workers); ``None`` without per-scenario latencies."""
        if not self.latencies.size or self.wall <= 0.0 or self.workers <= 0:
            return None
        return min(1.0, self.busy_seconds / (self.wall * self.workers))

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p90/p99/max scenario latency in seconds (empty without latencies)."""
        if not self.latencies.size:
            return {}
        stats = {
            f"p{percentile:g}": float(np.percentile(self.latencies, percentile))
            for percentile in PERCENTILES
        }
        stats["max"] = float(self.latencies.max())
        return stats

    def _ratio(self, hits_key: str, misses_key: str) -> "float | None":
        hits = self.counters.get(hits_key, 0.0)
        misses = self.counters.get(misses_key, 0.0)
        total = hits + misses
        if total <= 0.0:
            return None
        return hits / total

    @property
    def codegen_hit_rate(self) -> "float | None":
        """Compile-cache hit rate over the campaign (``None`` if never exercised)."""
        return self._ratio("codegen.cache_hits", "codegen.compiles")

    @property
    def store_hit_rate(self) -> "float | None":
        """Run-store hit rate over the campaign (``None`` if never exercised)."""
        return self._ratio("store.hits", "store.misses")

    def summary(self) -> dict:
        """The headline numbers as one plain dict (JSON-friendly)."""
        summary = {
            "engine": self.engine,
            "scenarios": self.scenarios,
            "executed": self.executed,
            "loaded": self.loaded,
            "wall_seconds": self.wall,
            "workers": self.workers,
            "throughput_per_second": self.throughput,
            "events": len(self.events),
            "dropped_events": self.dropped,
        }
        utilization = self.worker_utilization
        if utilization is not None:
            summary["worker_utilization"] = utilization
        percentiles = self.latency_percentiles()
        if percentiles:
            summary["latency_seconds"] = percentiles
        if self.codegen_hit_rate is not None:
            summary["codegen_hit_rate"] = self.codegen_hit_rate
        if self.store_hit_rate is not None:
            summary["store_hit_rate"] = self.store_hit_rate
        return summary

    # -- serialization -----------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable dump (summary + counters + events)."""
        return {
            "summary": self.summary(),
            "counters": dict(self.counters),
            "latencies": [float(value) for value in self.latencies],
            "events": list(self.events),
        }

    # -- reporting ---------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Render the campaign telemetry as a markdown report."""
        lines = [
            f"# Telemetry — {self.engine}",
            "",
            f"- scenarios: {self.scenarios} ({self.executed} executed, "
            f"{self.loaded} loaded from store)",
            f"- wall clock: {self.wall:.3f} s across {self.workers} worker(s)",
            f"- throughput: {self.throughput:.2f} scenarios/s",
        ]
        utilization = self.worker_utilization
        if utilization is not None:
            lines.append(f"- worker utilization: {100.0 * utilization:.1f} %")
        percentiles = self.latency_percentiles()
        if percentiles:
            rendered = ", ".join(
                f"{name}={seconds * 1e3:.1f} ms" for name, seconds in percentiles.items()
            )
            lines.append(f"- scenario latency: {rendered}")
        if self.codegen_hit_rate is not None:
            lines.append(f"- codegen cache hit rate: {100.0 * self.codegen_hit_rate:.1f} %")
        if self.store_hit_rate is not None:
            lines.append(f"- store hit rate: {100.0 * self.store_hit_rate:.1f} %")
        if self.dropped:
            lines.append("")
            lines.append(
                f"**WARNING — telemetry truncated:** the tracer hit its event "
                f"buffer cap and dropped {self.dropped} event(s); the span "
                f"tallies below are partial and undercount the campaign. "
                f"Raise `max_events` to capture everything. (Counters are "
                f"unaffected — they accumulate outside the event buffer.)"
            )
        if self.counters:
            lines.append("")
            lines.append("## Counters")
            lines.append("")
            lines.append("| counter | value |")
            lines.append("|---|---|")
            for name in sorted(self.counters):
                lines.append(f"| {name} | {self.counters[name]:g} |")
        spans = self.span_stats()
        if spans:
            lines.append("")
            lines.append("## Spans")
            lines.append("")
            lines.append("| span | count | total s | mean ms |")
            lines.append("|---|---|---|---|")
            for name, stats in spans.items():
                lines.append(
                    f"| {name} | {stats['count']} | {stats['total']:.3f} "
                    f"| {1e3 * stats['mean']:.2f} |"
                )
        return "\n".join(lines)

    def span_stats(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregate (count / total / mean seconds), sorted by total."""
        totals: dict[str, list[float]] = {}
        for event in self.events:
            if event["ph"] != "X":
                continue
            totals.setdefault(event["name"], []).append(event["dur"])
        stats = {
            name: {
                "count": float(len(durations)),
                "total": float(sum(durations)),
                "mean": float(sum(durations) / len(durations)),
            }
            for name, durations in totals.items()
        }
        return dict(sorted(stats.items(), key=lambda item: -item[1]["total"]))
