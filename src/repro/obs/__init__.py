"""repro.obs — structured tracing, metrics and live telemetry.

The observability layer for every engine in the reproduction: a
near-zero-cost process-local :class:`~repro.obs.tracer.Tracer` feeding
instrumentation points in the DE kernel, the block-stepped ISS, the
abstraction flow, the compile cache and the run store; multiprocessing-safe
payload collection merged into campaign-level
:class:`~repro.obs.telemetry.TelemetryReport` objects; and exporters for
Chrome/Perfetto ``trace_event`` JSON, flat JSONL and markdown/HTML reports
(fronted by the ``repro-trace`` console script).

Keep this module import-light: instrumented subsystems import
``repro.obs.tracer`` at module load, so anything heavy here would tax every
import of the kernel or ISS.
"""

from .progress import ProgressReporter
from .telemetry import TelemetryReport
from .tracer import TRACER, Tracer, disable_tracing, enable_tracing, tracing_enabled

__all__ = [
    "TRACER",
    "Tracer",
    "TelemetryReport",
    "ProgressReporter",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]
